"""Figure 5.1 — search performance of in-memory GraphDBs on PubMed-S.

Paper's claims: Array beats HashMap (hash lookup per adjacency access);
the gap matters more at longer path lengths, where fringe sizes grow
exponentially; and "when increasing the number of processors, this
overhead is spread over multiple processors and the difference between
Array and HashMap is lessened."
"""

from conftest import run_once

from repro.experiments import fig_5_1


def test_fig_5_1(benchmark, bench_scale, bench_queries, save_result):
    series, text = run_once(
        benchmark, lambda: fig_5_1(scale=bench_scale, num_queries=bench_queries)
    )
    save_result("fig_5_1", text)

    array, hashmap = series["Array"], series["HashMap"]
    distances = sorted(set(array) & set(hashmap))
    assert len(distances) >= 2
    long_paths = [d for d in distances if d >= 2]
    # Array is the lower bound at every measured long path length.
    for d in long_paths:
        assert array[d] <= hashmap[d], f"HashMap beat Array at distance {d}"
    # The absolute gap widens with path length (exponential fringe).
    gaps = [hashmap[d] - array[d] for d in distances]
    assert gaps[-1] > gaps[0]
    # Search time increases with path length for both backends.
    for s in (array, hashmap):
        xs = sorted(s)
        assert s[xs[-1]] > s[xs[0]]


def test_fig_5_1_gap_shrinks_with_processors(benchmark, bench_scale, bench_queries, save_result):
    """The paper's processor-count observation, measured at 4 vs 16 nodes."""

    def sweep():
        out = {}
        for p in (4, 16):
            out[p] = fig_5_1(
                scale=bench_scale, num_queries=bench_queries, num_backends=p,
                render=False,
            )
        return out

    by_p = run_once(benchmark, sweep)
    rows = []
    for p, series in by_p.items():
        longest = max(series["Array"])
        gap = series["HashMap"][longest] - series["Array"][longest]
        rows.append((p, gap))
    save_result(
        "fig_5_1_gap",
        "\n".join(f"p={p}: HashMap-Array gap = {g:.6f} s" for p, g in rows),
    )
    gap4 = dict(rows)[4]
    gap16 = dict(rows)[16]
    assert gap16 < gap4, "the in-memory overhead gap should shrink with processors"
