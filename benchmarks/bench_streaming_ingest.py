"""Streaming ingest — query latency under sustained in-drain delta appends.

Not a paper figure: the prototype loaded each graph in one batch before
serving anything.  This benchmark drives the multi-query scheduler while
a stream feed publishes edge batches *mid-drain* — every scheduling
round (or every second round) a batch lands in each back-end's delta log
and published overlay — and measures what the concurrent clients see:

* per-query virtual latency (p50 / p99 of admission-to-completion) at a
  fixed admission cap, idle vs streamed — the acceptance bar is that the
  p50 stays flat (bounded slowdown) while ingest is sustained;
* aggregate scanned edges per virtual second across the drain;
* total *device* virtual-seconds (disk busy time summed over back-end
  nodes), which absorbs the delta-log appends;
* the snapshot ids queries were admitted at, showing staggered
  admissions pin staggered snapshots of the same drain.

The streamed batches re-sample edges the base store already holds, so
overlay reads and log appends cost real device time while every BFS
level set is unchanged — answers at every feed rate are asserted
bit-identical to a sequential pass, and a final ``compact()`` folds the
deltas and is asserted answer-preserving and idempotent.
"""

import numpy as np
from conftest import run_once

from repro.experiments import PUBMED_S, Deployment
from repro.experiments.harness import build_and_ingest, queries_for

#: (row label, number of streamed batches, rounds between batches).
FEEDS = (("idle", 0, 1), ("every-2", 6, 2), ("every-1", 6, 1))

INFLIGHT = 16

#: Streamed-to-idle p50 latency ratio the scheduler must stay under while
#: a batch lands every scheduling round (the PR's acceptance bar: the
#: delta path keeps serving latency flat, not "merely bounded").
MAX_P50_SLOWDOWN = 1.5


def _device_seconds(mssg) -> float:
    """Total disk busy time across the back-end nodes, all devices."""
    F = mssg.config.num_frontends
    return sum(
        dev.stats.busy_seconds
        for node in mssg.cluster.nodes[F : F + mssg.config.num_backends]
        for dev in node._disks.values()
    )


def _one_rate(backend: str, scale: float, pairs, want, batches, every):
    """Fresh deployment, one drain at one feed rate; returns the row."""
    dep = Deployment(
        backend=backend,
        num_backends=4,
        direction_opt=True,
        cache_policy="2q",
        streaming=True,
    )
    mssg, edges, _ = build_and_ingest(PUBMED_S, dep, scale)
    try:
        # No cache warm-up: every row drains the same cold build, so the
        # queries pay real device time — the cost the feed's appends and
        # snapshot-pinned scans must stay small against.
        rng = np.random.default_rng(7)
        feed = None
        if batches:
            size = max(64, len(edges) // 200)
            feed = [edges[rng.integers(0, len(edges), size=size)] for _ in range(batches)]
        dev0 = _device_seconds(mssg)
        rep = mssg.query_many(
            pairs,
            max_inflight=INFLIGHT,
            stream_batches=feed,
            stream_every=every,
        )
        assert [r.result for r in rep.queries] == want, (
            f"{backend} batches={batches} every={every}: answers diverged"
        )
        assert rep.stream_batches == batches
        lat = np.array([r.seconds for r in rep.queries])
        # No feed -> no snapshots pinned (snapshot_seq is None end to end).
        snaps = [-1 if r.snapshot_seq is None else r.snapshot_seq for r in rep.queries]
        row = {
            "p50": float(np.percentile(lat, 50)),
            "p99": float(np.percentile(lat, 99)),
            "eps": rep.edges_per_second,
            "device_s": _device_seconds(mssg) - dev0,
            "batches": rep.stream_batches,
            "snap_lo": min(snaps),
            "snap_hi": max(snaps),
        }
        if batches:
            # Folding the deltas must preserve answers and drain the log.
            fold = mssg.compact()
            assert fold.batches_folded == batches * mssg.config.num_backends
            assert mssg.compact().batches_folded == 0
            assert [mssg.query_bfs(s, d).result for s, d in pairs] == want, (
                f"{backend}: answers diverged after compaction"
            )
            row["compact_s"] = fold.seconds
        return row
    finally:
        mssg.close()


def run_streaming_sweep(backend: str, scale: float, num_queries: int):
    queries = queries_for(PUBMED_S, scale, num_queries)
    pairs = [(s, d) for s, d, _ in queries]
    # Sequential reference answers from a non-streaming build: the feed
    # replays stored edges, so every snapshot answers identically.
    mssg, _, _ = build_and_ingest(
        PUBMED_S,
        Deployment(backend=backend, num_backends=4, direction_opt=True, cache_policy="2q"),
        scale,
    )
    try:
        want = [mssg.query_bfs(s, d).result for s, d in pairs]
    finally:
        mssg.close()
    rows = []
    for label, batches, every in FEEDS:
        row = _one_rate(backend, scale, pairs, want, batches, every)
        row["label"] = label
        rows.append(row)
    return {"rows": rows, "num_queries": len(pairs)}


def _render(backend: str, sweep) -> str:
    lines = [
        f"Streaming ingest: {backend}, PubMed-S, 4 back-ends, "
        f"{INFLIGHT} in flight ({sweep['num_queries']} queries; feed re-samples "
        f"stored edges so answers are invariant across snapshots)",
        f"  {'feed':>8s} {'batches':>7s} {'p50 lat':>10s} {'p99 lat':>10s} "
        f"{'edges/s':>12s} {'device s':>10s} {'snaps':>9s} {'compact s':>10s}",
    ]
    for row in sweep["rows"]:
        snaps = f"{row['snap_lo']}..{row['snap_hi']}" if row["snap_lo"] >= 0 else "—"
        compact = f"{row['compact_s']:>10.5f}" if "compact_s" in row else f"{'—':>10s}"
        lines.append(
            f"  {row['label']:>8s} {row['batches']:>7d} {row['p50']:>10.5f} "
            f"{row['p99']:>10.5f} {row['eps']:>12,.0f} {row['device_s']:>10.5f} "
            f"{snaps:>9s} " + compact
        )
    return "\n".join(lines)


def _assert_latency_flat(sweep) -> None:
    idle = next(r for r in sweep["rows"] if r["label"] == "idle")
    for row in sweep["rows"]:
        if row["label"] == "idle":
            assert row["snap_lo"] == row["snap_hi"]
            continue
        # Staggered admissions pinned advancing snapshots of one drain.
        assert row["snap_hi"] > row["snap_lo"]
        assert row["p50"] <= MAX_P50_SLOWDOWN * idle["p50"], (
            f"{row['label']}: p50 {row['p50']:.5f}s vs idle {idle['p50']:.5f}s — "
            f"in-drain ingest slowed queries beyond {MAX_P50_SLOWDOWN:.2f}x"
        )


def test_streaming_ingest_streamdb(benchmark, bench_scale, bench_queries, save_result):
    sweep = run_once(
        benchmark,
        lambda: run_streaming_sweep("StreamDB", bench_scale, 4 * bench_queries),
    )
    save_result("streaming_ingest_streamdb", _render("StreamDB", sweep))
    _assert_latency_flat(sweep)


def test_streaming_ingest_grdb(benchmark, bench_scale, bench_queries, save_result):
    sweep = run_once(
        benchmark,
        lambda: run_streaming_sweep("grDB", bench_scale, 4 * bench_queries),
    )
    save_result("streaming_ingest_grdb", _render("grDB", sweep))
    _assert_latency_flat(sweep)
