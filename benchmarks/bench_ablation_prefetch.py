"""Ablation — fringe prefetching with offset-sorted disk accesses (§4.2).

The optimization the paper leaves as future work: "introducing some
pre-fetching of the adjacency lists of the vertices in the frontier.
Further optimization for performance might include sorting the pre-fetch
disk accesses by file offsets to reduce the seek overhead."

Measured in the regime where it matters: PubMed-L on 4 back-ends, where
per-node data exceeds the node page cache (Fig. 5.6's thrashing corner),
so each level's scattered level-0 reads really hit the device.
"""

from conftest import run_once

from repro.experiments import PUBMED_L, Deployment, run_search_experiment
from repro.experiments.harness import build_and_ingest
from repro.experiments.report import format_series_table


def run_prefetch_sweep(scale: float):
    dep = Deployment(backend="grDB", num_backends=4)
    mssg, _, _ = build_and_ingest(PUBMED_L, dep, scale)
    series: dict[str, dict[int, float]] = {}
    try:
        for label, prefetch in (("no prefetch", False), ("sorted prefetch", True)):
            res = run_search_experiment(
                PUBMED_L, dep, scale=scale, num_queries=5, min_distance=3,
                mssg=mssg, prefetch=prefetch,
            )
            series[label] = dict(res.seconds_by_distance)
    finally:
        mssg.close()
    return series


def test_ablation_prefetch(benchmark, bench_scale, save_result):
    series = run_once(benchmark, lambda: run_prefetch_sweep(bench_scale))
    text = format_series_table(
        "Ablation: fringe prefetch, offset-sorted (grDB, PubMed-L, 4 back-ends)",
        "path length", series,
    )
    save_result("ablation_prefetch", text)

    longest = max(series["no prefetch"])
    # Sorted prefetch never hurts on the longest (most I/O bound) queries,
    # and usually helps by coalescing seeks.
    assert series["sorted prefetch"][longest] <= series["no prefetch"][longest] * 1.05
