"""Ablation — batched fringe I/O (per-vertex vs batched vs batched+prefetch).

Not a paper figure: the paper's prototype expanded the fringe one adjacency
request at a time, and §4.2 leaves batching/prefetching as future work.
This ablation measures what that future work buys on the two out-of-core
backends with a real batched plan: grDB plans each BFS level as one sorted,
merged sub-block batch (adjacent cold blocks coalesce into single vectored
device reads), BerkeleyDB visits the fringe's keys in sorted order through
the B-tree (dense fringes become one leaf-chain range scan).

Run deliberately cache-starved (8 KB per node instead of the default
64 KB) so the coalescing is visible at the device: the batched plan issues
*fewer, larger* reads than the per-vertex loop, and the prefetch pass
actually pulls cold blocks (counted in ``cache_stats.prefetched``).
Adjacency results are identical in all three modes — the harness asserts
every query's BFS distance.
"""

from conftest import run_once

from repro.experiments import PUBMED_S, Deployment, run_search_experiment
from repro.experiments.harness import build_and_ingest
from repro.experiments.report import format_series_table

#: Small enough that PubMed-S level-0 working sets spill out of the block
#: cache on 16 nodes, so query-time device reads exist to be coalesced.
CACHE_BYTES = 8 << 10

MODES = (
    ("per-vertex", False, False),
    ("batched", True, False),
    ("batched+prefetch", True, True),
)


def _device_stats(mssg):
    reads = bytes_read = 0
    for db in mssg.dbs:
        if hasattr(db, "storage"):  # grDB
            s = db.storage.total_device_stats()
            reads += s["reads"]
            bytes_read += s["bytes_read"]
        elif hasattr(db, "store"):  # BerkeleyDB
            reads += db.store.device.stats.reads
            bytes_read += db.store.device.stats.bytes_read
    return {"reads": reads, "bytes_read": bytes_read}


def run_batchio_sweep(backend: str, scale: float, num_queries: int = 6):
    series: dict[str, dict[int, float]] = {}
    aux: dict[str, dict[str, float]] = {}
    for label, batch_io, prefetch in MODES:
        dep = Deployment(
            backend=backend,
            num_backends=16,
            cache_bytes=CACHE_BYTES,
            batch_io=batch_io,
        )
        mssg, _, _ = build_and_ingest(PUBMED_S, dep, scale)
        try:
            before = _device_stats(mssg)
            res = run_search_experiment(
                PUBMED_S, dep, scale=scale, num_queries=num_queries,
                mssg=mssg, prefetch=prefetch,
            )
            after = _device_stats(mssg)
            reads = after["reads"] - before["reads"]
            series[label] = dict(res.seconds_by_distance)
            aux[label] = {
                "seconds": res.total_seconds,
                "device_reads": reads,
                "bytes_per_read": (
                    (after["bytes_read"] - before["bytes_read"]) / reads if reads else 0.0
                ),
                "prefetched": sum(db.cache_stats.prefetched for db in mssg.dbs),
            }
        finally:
            mssg.close()
    return series, aux


def _render(backend: str, series, aux) -> str:
    text = format_series_table(
        f"Ablation: batched fringe I/O ({backend}, PubMed-S, 16 back-ends, 8 KB cache)",
        "path length", series,
    )
    lines = [text, ""]
    for label, a in aux.items():
        lines.append(
            f"  {label:18s} total={a['seconds']:.5f}s device_reads={a['device_reads']:.0f} "
            f"bytes/read={a['bytes_per_read']:.0f} prefetched={a['prefetched']:.0f}"
        )
    return "\n".join(lines)


def test_ablation_batchio_grdb(benchmark, bench_scale, save_result):
    series, aux = run_once(benchmark, lambda: run_batchio_sweep("grDB", bench_scale))
    save_result("ablation_batchio_grdb", _render("grDB", series, aux))

    # Batching makes the whole query stream faster, not just one bucket.
    assert aux["batched"]["seconds"] < aux["per-vertex"]["seconds"]
    # Coalescing is observable at the device: the sorted batch plan issues
    # fewer reads, each covering at least as many bytes.
    assert aux["batched"]["device_reads"] < aux["per-vertex"]["device_reads"]
    assert aux["batched"]["bytes_per_read"] >= aux["per-vertex"]["bytes_per_read"]
    # The prefetch pass really pulls cold blocks, and only that mode does.
    assert aux["batched+prefetch"]["prefetched"] > 0
    assert aux["per-vertex"]["prefetched"] == 0
    assert aux["batched"]["prefetched"] == 0


def test_ablation_batchio_bdb(benchmark, bench_scale, save_result):
    series, aux = run_once(
        benchmark, lambda: run_batchio_sweep("BerkeleyDB", bench_scale)
    )
    save_result("ablation_batchio_bdb", _render("BerkeleyDB", series, aux))

    # Sorted-key batching amortizes B-tree descents across the fringe.
    assert aux["batched"]["seconds"] < aux["per-vertex"]["seconds"]
    # Prefetch is a grDB-only plan; BerkeleyDB's no-op must report zero.
    assert aux["batched+prefetch"]["prefetched"] == 0
