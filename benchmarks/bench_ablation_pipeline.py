"""Ablation — Algorithm 1 vs Algorithm 2 and the pipelining threshold.

Algorithm 2 overlaps fringe communication with computation by shipping
threshold-sized chunks eagerly (§4.2).  On a slow interconnect the overlap
pays; the threshold trades per-message overhead (too small) against lost
overlap (too large).
"""

from conftest import run_once

from repro.experiments import PUBMED_S, Deployment, run_search_experiment
from repro.experiments.report import format_series_table
from repro.experiments.harness import build_and_ingest

THRESHOLDS = (16, 64, 256, 1024)


def run_pipeline_sweep(scale: float):
    dep = Deployment(backend="HashMap", num_backends=8)
    mssg, _, _ = build_and_ingest(PUBMED_S, dep, scale)
    series: dict[str, dict[int, float]] = {"level-sync (Alg 1)": {}, "pipelined (Alg 2)": {}}
    try:
        base = run_search_experiment(
            PUBMED_S, dep, scale=scale, num_queries=6, mssg=mssg
        )
        for t in THRESHOLDS:
            res = run_search_experiment(
                PUBMED_S, dep, scale=scale, num_queries=6, mssg=mssg,
                pipelined=True, threshold=t,
            )
            series["pipelined (Alg 2)"][t] = res.mean_seconds
            series["level-sync (Alg 1)"][t] = base.mean_seconds
    finally:
        mssg.close()
    return series


def test_ablation_pipeline(benchmark, bench_scale, save_result):
    series = run_once(benchmark, lambda: run_pipeline_sweep(bench_scale))
    text = format_series_table(
        "Ablation: pipelined BFS threshold (PubMed-S, 8 back-ends)",
        "threshold", series,
    )
    save_result("ablation_pipeline", text)

    alg1 = next(iter(series["level-sync (Alg 1)"].values()))
    pipelined = series["pipelined (Alg 2)"]
    # The best pipelined configuration is at least competitive with the
    # level-synchronous algorithm (the overlap pays for its overhead).
    assert min(pipelined.values()) <= alg1 * 1.10
    # Extremely small chunks pay per-message overhead: the best threshold
    # is not the smallest one or beats it.
    assert min(pipelined.values()) <= pipelined[min(THRESHOLDS)]
