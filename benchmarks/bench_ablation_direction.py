"""Ablation — direction-optimizing BFS (pure top-down vs push/pull hybrid).

Not a paper figure: the thesis prototype searched pure top-down, and its
§4.2 future-work list is where this optimization points.  The ablation
measures what the Beamer-style hybrid buys on PubMed-S at 16 back-ends,
bucketed by path length as in ch. 5's methodology.

Expected shape, tied to the Fig 5.6 crossover: grDB and BerkeleyDB pay
per-vertex random access during the wide mid-BFS levels, exactly the
regime where the bottom-up pull (one sequential storage scan + bitmap
fringe + early exit) wins — long-path queries spend most of their time
there.  StreamDB gains nothing: its top-down expansion already replays
the whole log sequentially, so the hybrid's pull levels only re-buy what
the backend had built in (the same reason StreamDB won the low-node-count
end of Fig 5.6 in the first place).

Results must be an access-plan change only — the harness asserts every
query's BFS distance in both modes and that the modes agree.
"""

from conftest import run_once

from repro.experiments import PUBMED_S, Deployment
from repro.experiments.harness import build_and_ingest, queries_for
from repro.experiments.report import format_series_table

#: "Long path" threshold for the headline claim: >= 6 hops crosses the
#: whole graph (PubMed-S' effective diameter is ~6), maximizing time spent
#: in wide mid-BFS levels.
LONG_HOPS = 6

MODES = (("top-down", False), ("hybrid", True))


def _queries(scale: float, num_queries: int):
    """Stratified short queries plus a dedicated long-path set."""
    short = queries_for(PUBMED_S, scale, num_queries, seed=0, min_distance=2)
    longq = queries_for(PUBMED_S, scale, 4, seed=17, min_distance=LONG_HOPS)
    if len(longq) < 2:
        # Sub-scale smoke graphs have few >= 6-hop pairs; take the deepest
        # bucket that exists so the long-path series stays populated.
        longq = queries_for(PUBMED_S, scale, 4, seed=17, min_distance=LONG_HOPS - 1)
    return short + longq, min(d for _, _, d in longq)


def run_direction_sweep(backend: str, scale: float, num_queries: int = 6):
    queries, long_hops = _queries(scale, num_queries)
    series: dict[str, dict[int, float]] = {}
    aux: dict[str, dict[str, float]] = {}
    answers: dict[str, list[int]] = {}
    for label, opt in MODES:
        dep = Deployment(backend=backend, num_backends=16, direction_opt=opt)
        mssg, _, _ = build_and_ingest(PUBMED_S, dep, scale)
        try:
            buckets: dict[int, list[float]] = {}
            a = {
                "seconds": 0.0, "long_seconds": 0.0, "edges_scanned": 0,
                "edges_examined": 0, "edges_skipped": 0, "bottom_up_levels": 0,
            }
            answers[label] = []
            for s, d, dist in queries:
                report = mssg.query_bfs(s, d)
                assert report.result == dist, (
                    f"{backend}/{label}: {s}->{d} returned {report.result}, "
                    f"expected {dist}"
                )
                answers[label].append(report.result)
                buckets.setdefault(dist, []).append(report.seconds)
                a["seconds"] += report.seconds
                if dist >= long_hops:
                    a["long_seconds"] += report.seconds
                a["edges_scanned"] += report.edges_scanned
                a["edges_examined"] += report.edges_examined
                a["edges_skipped"] += report.edges_skipped
                a["bottom_up_levels"] += sum(
                    x == "bottom-up" for x in report.directions
                )
        finally:
            mssg.close()
        series[label] = {
            dist: sum(ts) / len(ts) for dist, ts in sorted(buckets.items())
        }
        aux[label] = a
    # The hybrid is an access-plan change only: zero change to BFS levels.
    assert answers["top-down"] == answers["hybrid"]
    return series, aux


def _render(backend: str, series, aux) -> str:
    text = format_series_table(
        f"Ablation: direction-optimizing BFS ({backend}, PubMed-S, 16 back-ends)",
        "path length", series,
    )
    lines = [text, ""]
    for label, a in aux.items():
        lines.append(
            f"  {label:9s} total={a['seconds']:.5f}s long(>={LONG_HOPS}hop)="
            f"{a['long_seconds']:.5f}s edges_scanned={a['edges_scanned']:.0f} "
            f"examined={a['edges_examined']:.0f} skipped={a['edges_skipped']:.0f} "
            f"bottom_up_levels={a['bottom_up_levels']:.0f}"
        )
    return "\n".join(lines)


def test_ablation_direction_grdb(benchmark, bench_scale, save_result):
    series, aux = run_once(benchmark, lambda: run_direction_sweep("grDB", bench_scale))
    save_result("ablation_direction_grdb", _render("grDB", series, aux))

    td, hy = aux["top-down"], aux["hybrid"]
    # The hybrid really pulled, and pure top-down really never does.
    assert hy["bottom_up_levels"] > 0
    assert td["edges_examined"] == 0 and td["edges_skipped"] == 0
    # Far fewer adjacency entries touched: the bitmap + early exit replace
    # full per-vertex expansion of the wide mid-BFS levels.
    assert hy["edges_scanned"] < td["edges_scanned"]
    # Hybrid wins outright on the whole stream...
    assert hy["seconds"] < td["seconds"]
    # ...and cuts long-path searches by >= 25% (the headline number needs
    # full-scale graphs; smoke scales shrink the mid-BFS bulge).
    if bench_scale >= 1.0:
        assert hy["long_seconds"] <= 0.75 * td["long_seconds"]


def test_ablation_direction_bdb(benchmark, bench_scale, save_result):
    series, aux = run_once(
        benchmark, lambda: run_direction_sweep("BerkeleyDB", bench_scale)
    )
    save_result("ablation_direction_bdb", _render("BerkeleyDB", series, aux))

    td, hy = aux["top-down"], aux["hybrid"]
    # Same story as grDB: leaf-chain range scans beat per-key descents on
    # the wide levels.
    assert hy["edges_scanned"] < td["edges_scanned"]
    assert hy["seconds"] < td["seconds"]


def test_ablation_direction_streamdb(benchmark, bench_scale, save_result):
    series, aux = run_once(
        benchmark, lambda: run_direction_sweep("StreamDB", bench_scale)
    )
    save_result("ablation_direction_streamdb", _render("StreamDB", series, aux))

    td, hy = aux["top-down"], aux["hybrid"]
    # The scan-everything backend was already doing sequential I/O every
    # level, so the hybrid shrinks the *CPU-side* edge visits...
    assert hy["edges_scanned"] < td["edges_scanned"]
    assert hy["bottom_up_levels"] > 0
    # ...but buys no long-path win — there is no random access to remove
    # (the same property that won StreamDB the 4-node end of Fig 5.6).
    assert hy["long_seconds"] > 0.75 * td["long_seconds"]
