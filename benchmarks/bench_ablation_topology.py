"""Ablation — scale-free vs Erdős–Rényi topology.

The paper's motivation (ch. 1-2): real semantic graphs are scale-free
small worlds, so "queries which analyze long paths often must access a
significant portion of the graph data, sometimes over 80% of the total
graph's edges".  This ablation runs the same deployment over a power-law
graph and an ER graph with identical vertex/edge budgets and measures (a)
the share of edges a long query touches and (b) the BFS level count,
confirming that the design target is the harder case.
"""

from conftest import run_once

from repro.experiments.harness import EXPERIMENT_NODE_SPEC, scaled_grdb_format
from repro.experiments.report import format_rows
from repro.framework import MSSG, MSSGConfig
from repro.graphgen import CSRGraph, erdos_renyi_edges, graph_stats, pubmed_like
from repro.bfs import sample_queries_by_distance


def run_topology_experiment(scale: float):
    n = max(300, int(3000 * scale))
    powerlaw = pubmed_like(n, avg_degree=14.8, seed=4)
    er = erdos_renyi_edges(n, len(powerlaw), seed=4)
    out = {}
    for name, edges in (("scale-free", powerlaw), ("erdos-renyi", er)):
        graph = CSRGraph.from_edges(edges)
        queries = sample_queries_by_distance(graph, 6, seed=1, min_distance=2)
        with MSSG(
            MSSGConfig(
                num_backends=4, backend="HashMap",
                grdb_format=scaled_grdb_format(), node_spec=EXPERIMENT_NODE_SPEC,
            )
        ) as mssg:
            mssg.ingest(edges)
            touched = []
            for s, d, dist in queries:
                answer = mssg.query_bfs(s, d)
                assert answer.result == dist
                touched.append(answer.edges_scanned / (2 * len(edges)))
            # The crisp small-world signature: how much of the graph sits
            # within 2 hops of a typical vertex?
            coverage2 = []
            for source in (1, 7, 42, 99, 500):
                reached = mssg.query("neighborhood", source=source, hops=2).result
                coverage2.append(reached / graph.num_vertices)
            out[name] = {
                "stats": graph_stats(edges, name=name),
                "max_touched": max(touched),
                "mean_coverage2": sum(coverage2) / len(coverage2),
            }
    return out


def test_ablation_topology(benchmark, bench_scale, save_result):
    data = run_once(benchmark, lambda: run_topology_experiment(bench_scale))
    rows = []
    for name, d in data.items():
        s = d["stats"]
        rows.append(
            f"{name:<12} max-deg={s.max_degree:<6} "
            f"long query touches <= {d['max_touched']:.0%} of edges   "
            f"2-hop coverage = {d['mean_coverage2']:.0%} of vertices"
        )
    text = format_rows(
        "Ablation: scale-free vs Erdos-Renyi topology (same |V|, |E|)",
        "topology     metrics",
        rows,
    )
    save_result("ablation_topology", text)

    sf, er = data["scale-free"], data["erdos-renyi"]
    # The scale-free hub dominates; ER has no comparable hub.
    assert sf["stats"].max_degree > 5 * er["stats"].max_degree
    # Long scale-free queries sweep a large share of all edges (the
    # paper's "sometimes over 80%" motivation).
    assert sf["max_touched"] > 0.5
    # The small-world signature: 2 hops of a typical scale-free vertex
    # reach far more of the graph than 2 hops of an ER vertex.
    assert sf["mean_coverage2"] > 1.5 * er["mean_coverage2"]
