"""Figure 5.8 — grDB search execution time on the Syn-2B graph.

Paper's claims: the system searches very large scale-free graphs in
reasonable time-frames; using an external-memory visited structure
"adversely affects the performance ... but this is expected"; search time
falls as back-end nodes are added.
"""

from conftest import run_once

from repro.experiments import fig_5_8


def test_fig_5_8(benchmark, bench_scale, save_result):
    series, text = run_once(
        benchmark, lambda: fig_5_8(scale=bench_scale, num_queries=4)
    )
    save_result("fig_5_8", text)

    mem = series["in-memory visited"]
    ext = series["external visited"]

    for p in (4, 8, 16):
        # Paging the visited structure costs extra, at every node count...
        assert ext[p] > mem[p]
        # ...but keeps the search usable (well under 2x here).
        assert ext[p] < 2.5 * mem[p]

    # Both configurations scale with node count.
    for s in (mem, ext):
        assert s[16] < s[8] < s[4]
