"""Figure 5.9 — grDB aggregate edges/second on the Syn-2B graph.

Paper's claims: when touching a large portion of the graph (as long
scale-free searches do), MSSG + grDB sustain a high aggregate edge rate
that grows with node count; the external visited structure taxes the rate.
"""

from conftest import run_once

from repro.experiments import fig_5_9


def test_fig_5_9(benchmark, bench_scale, save_result):
    series, text = run_once(
        benchmark, lambda: fig_5_9(scale=bench_scale, num_queries=4)
    )
    save_result("fig_5_9", text)

    mem = series["in-memory visited"]
    ext = series["external visited"]

    # Edge rate grows with back-end count (both configurations).
    for s in (mem, ext):
        assert s[4] < s[8] < s[16]

    # A healthy aggregate rate at 16 nodes (paper: >10M at full scale;
    # the scaled graphs sustain >1M).
    assert mem[16] > 1e6

    # External visited reduces the sustained rate at every node count.
    for p in (4, 8, 16):
        assert ext[p] < mem[p]
