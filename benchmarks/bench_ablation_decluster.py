"""Ablation — declustering strategy (§3.2).

MSSG supports vertex- and edge-level granularity with pluggable
declusterers.  Vertex granularity with a globally-known map lets BFS route
fringe vertices to owners; edge granularity forces fringe broadcast to all
processors.  This sweep measures the search-side price of each choice.
"""

from conftest import run_once

from repro.experiments import PUBMED_S, Deployment, run_search_experiment
from repro.experiments.report import format_series_table

STRATEGIES = ("vertex-rr", "vertex-hash", "window-greedy", "edge-rr")


def run_decluster_sweep(scale: float):
    series: dict[str, dict[int, float]] = {}
    for strategy in STRATEGIES:
        res = run_search_experiment(
            PUBMED_S,
            Deployment(backend="HashMap", num_backends=8, declustering=strategy),
            scale=scale,
            num_queries=6,
        )
        series[strategy] = dict(res.seconds_by_distance)
    return series


def test_ablation_decluster(benchmark, bench_scale, save_result):
    series = run_once(benchmark, lambda: run_decluster_sweep(bench_scale))
    text = format_series_table(
        "Ablation: declustering strategy (HashMap backend, 8 back-ends)",
        "path length", series,
    )
    save_result("ablation_decluster", text)

    longest = max(series["vertex-rr"])
    # Edge granularity pays for its fringe broadcasts on long searches.
    vertex_best = min(
        series[s][longest] for s in ("vertex-rr", "vertex-hash", "window-greedy")
    )
    assert series["edge-rr"][longest] > vertex_best
    # The owner-routed strategies are close to one another (same
    # communication structure, different maps).
    vertex_worst = max(
        series[s][longest] for s in ("vertex-rr", "vertex-hash", "window-greedy")
    )
    assert vertex_worst < 1.6 * vertex_best
