"""Ablation — grDB level geometry (§3.4.1).

The paper suggests capacities following an exponential curve (d_l = 2^2^l,
prototype: 2, 4, 16, 256, 4K, 16K) "since our target graphs exhibit the
power-law degree distribution".  This ablation compares that geometry with
the minimum-growth alternative (pure doubling) and a flat, oversized
level-0 layout, measuring search time and storage footprint.

Expected: doubling wastes time on long pointer chains for hubs; oversized
level-0 wastes space on the many low-degree vertices; the paper's curve
is the balanced choice.
"""

from conftest import run_once

from repro.experiments import PUBMED_S, Deployment, run_search_experiment
from repro.experiments.harness import build_and_ingest
from repro.experiments.report import format_series_table
from repro.graphdb.grdb import GrDBFormat

GEOMETRIES = {
    "paper (2..16K)": GrDBFormat(
        capacities=(2, 4, 16, 256, 4096, 16384),
        block_sizes=(512, 512, 512, 4096, 32768, 262144),
        max_file_bytes=1 << 20,
    ),
    "doubling": GrDBFormat(
        capacities=(2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048),
        block_sizes=(512, 512, 512, 512, 512, 512, 1024, 2048, 4096, 8192, 16384),
        max_file_bytes=1 << 20,
    ),
    "fat level-0": GrDBFormat(
        capacities=(64, 2048, 16384),
        block_sizes=(4096, 16384, 262144),
        max_file_bytes=1 << 20,
    ),
}


def run_geometry_sweep(scale: float):
    import repro.experiments.harness as harness

    times: dict[str, dict[int, float]] = {}
    bytes_used: dict[str, int] = {}
    original = harness.scaled_grdb_format
    try:
        for name, fmt in GEOMETRIES.items():
            harness.scaled_grdb_format = lambda fmt=fmt: fmt
            dep = Deployment(backend="grDB", num_backends=8)
            mssg, _, _ = harness.build_and_ingest(PUBMED_S, dep, scale)
            res = run_search_experiment(
                PUBMED_S, dep, scale=scale, num_queries=6, mssg=mssg
            )
            times[name] = dict(res.seconds_by_distance)
            bytes_used[name] = sum(
                dev.size()
                for node in mssg.cluster.nodes[1:]
                for dev in node._disks.values()
            )
            mssg.close()
    finally:
        harness.scaled_grdb_format = original
    return times, bytes_used


def test_ablation_geometry(benchmark, bench_scale, save_result):
    times, bytes_used = run_once(benchmark, lambda: run_geometry_sweep(bench_scale))
    text = format_series_table(
        "Ablation: grDB level geometry (search time by path length)",
        "path length", times,
    )
    text += "\n\nStorage footprint (all back-ends):\n" + "\n".join(
        f"  {name:<16} {size >> 10:>8} KB" for name, size in bytes_used.items()
    )
    save_result("ablation_geometry", text)

    longest = max(times["paper (2..16K)"])
    # The paper's curve is not beaten by minimum (doubling) growth on
    # search time — hub chains are shorter.
    assert times["paper (2..16K)"][longest] <= times["doubling"][longest] * 1.05
    # ...while doubling's finer capacities save space: the exponential
    # curve spends storage to buy those shorter chains.
    assert bytes_used["doubling"] < bytes_used["paper (2..16K)"]
    # The flat fat-level-0 layout resolves everything in one hop but pays
    # heavily in space for a power-law graph full of low-degree vertices.
    assert bytes_used["fat level-0"] > 1.4 * bytes_used["paper (2..16K)"]
    assert times["paper (2..16K)"][longest] < 3 * times["fat level-0"][longest]
