"""Figure 5.4 — search performance of five GraphDBs on PubMed-S.

Paper's claims (verbatim from ch. 5): "the Array implementation gives the
lowest search time. Not surprisingly, the second best results are achieved
with the other in-memory implementation, HashMap. MySQL performs
significantly worse than all other implementations. The fastest of the
three out-of-core GraphDB implementations, grDB, performs an average of
33% faster than the next fastest out-of-core implementation, BerkeleyDB.
When comparing grDB with the in-memory implementations, grDB is only 1.7
times slower than HashMap and about 2.9 times slower than Array, on
average."
"""

import numpy as np
from conftest import run_once

from repro.experiments import fig_5_4


def test_fig_5_4(benchmark, bench_scale, bench_queries, save_result):
    series, text = run_once(
        benchmark, lambda: fig_5_4(scale=bench_scale, num_queries=bench_queries)
    )
    save_result("fig_5_4", text)

    longest = max(series["Array"])
    order = ["Array", "HashMap", "grDB", "BerkeleyDB", "MySQL"]
    times = [series[b][longest] for b in order]
    # Full standings at the longest (storage-bound) path length.
    assert times == sorted(times), f"standings broken at distance {longest}: {order} -> {times}"

    # Factor checks, averaged over long paths (distance >= 2), with slack:
    long_d = [d for d in series["Array"] if d >= 2]

    def mean_ratio(a, b):
        return float(np.mean([series[a][d] / series[b][d] for d in long_d]))

    # grDB vs BerkeleyDB: paper says grDB ~33% faster (ratio ~1.33).
    assert 1.1 < mean_ratio("BerkeleyDB", "grDB") < 1.8
    # grDB vs in-memory: ~1.7x HashMap and ~2.9x Array in the paper.
    assert 1.2 < mean_ratio("grDB", "HashMap") < 2.5
    assert 1.5 < mean_ratio("grDB", "Array") < 4.5
    # MySQL is in a different league (the paper's chart is dominated by it).
    assert mean_ratio("MySQL", "grDB") > 3.0


def test_fig_5_4_batched(benchmark, bench_scale, bench_queries, save_result):
    """Figure 5.4 rerun with batched/coalescing fringe expansion.

    Not a paper figure: the paper's prototype expanded the fringe one
    adjacency request at a time (the default above).  With ``batch_io``
    the out-of-core backends plan each level's I/O as one sorted, merged
    batch; adjacency results are identical, virtual time drops.  Asserts
    the headline win (grDB >= 20% faster end to end) while the backend
    standings survive.
    """
    base = fig_5_4(scale=bench_scale, num_queries=bench_queries, render=False)
    series, text = run_once(
        benchmark,
        lambda: fig_5_4(
            scale=bench_scale, num_queries=bench_queries, batch_io=True
        ),
    )
    save_result("fig_5_4_batched", text)

    longest = max(series["Array"])
    order = ["Array", "HashMap", "grDB", "BerkeleyDB", "MySQL"]
    times = [series[b][longest] for b in order]
    # Batching must not reorder the standings at the longest path length.
    assert times == sorted(times), f"standings broken at distance {longest}: {order} -> {times}"

    # The in-memory backends have no batched path; their times are untouched.
    for backend in ("Array", "HashMap"):
        assert series[backend] == base[backend]

    # Headline: batched grDB cuts total search time by >= 20%.
    for backend, floor in (("grDB", 0.20), ("BerkeleyDB", 0.15)):
        total_base = sum(base[backend].values())
        total_batch = sum(series[backend].values())
        improvement = 1.0 - total_batch / total_base
        assert improvement >= floor, (
            f"{backend} batched improvement {improvement:.1%} below {floor:.0%}"
        )
