"""Concurrent serving — latency percentiles, throughput, shared-scan savings.

Not a paper figure: the prototype served one relationship query at a
time.  This benchmark drives the multi-query scheduler at increasing
admission caps (1/4/16/64/256 in flight) on the two backends whose
sweeps the shared-scan board can batch — StreamDB (whole-log replays)
and grDB (bottom-up storage scans under the direction hybrid) — with
sharing off vs on, and measures:

* per-query virtual latency (p50 / p99 of admission-to-completion);
* aggregate scanned edges per virtual second across the drain;
* total *device* virtual-seconds (disk busy time summed over back-end
  nodes) — the resource shared sweeps actually save: one pass per
  scheduling round instead of one per subscribed query.

Runs under the process-wide 2q block pool (``cache_policy="2q"``), the
configuration the scheduler ships with; answers at every cap and sharing
setting are asserted bit-identical to a sequential pass over the same
queries.
"""

import numpy as np
from conftest import run_once

from repro.experiments import PUBMED_S, Deployment
from repro.experiments.harness import build_and_ingest, queries_for

INFLIGHT = (1, 4, 16, 64, 256)

#: Device-seconds reduction the shared-scan board must deliver once the
#: admission cap lets whole tenant batches overlap (the PR's acceptance
#: bar: >= 25% at 16+ in flight).
MIN_SAVINGS_AT_16 = 0.25


def _device_seconds(mssg) -> float:
    """Total disk busy time across the back-end nodes, all devices."""
    F = mssg.config.num_frontends
    return sum(
        dev.stats.busy_seconds
        for node in mssg.cluster.nodes[F : F + mssg.config.num_backends]
        for dev in node._disks.values()
    )


def run_concurrent_sweep(backend: str, scale: float, num_queries: int):
    dep = Deployment(
        backend=backend,
        num_backends=4,
        direction_opt=True,  # gives grDB bottom-up sweeps worth sharing
        cache_policy="2q",
    )
    mssg, _, _ = build_and_ingest(PUBMED_S, dep, scale)
    try:
        queries = queries_for(PUBMED_S, scale, num_queries)
        pairs = [(s, d) for s, d, _ in queries]
        # Warm the block pool the way a long-lived service would be, then
        # take the sequential reference answers and device cost.
        for s, d in pairs[:2]:
            mssg.query_bfs(s, d)
        dev0 = _device_seconds(mssg)
        want = [mssg.query_bfs(s, d).result for s, d in pairs]
        seq_device = _device_seconds(mssg) - dev0
        rows = []
        for cap in INFLIGHT:
            row = {"inflight": cap}
            for label, sharing in (("off", False), ("on", True)):
                dev0 = _device_seconds(mssg)
                rep = mssg.query_many(pairs, max_inflight=cap, shared_scans=sharing)
                assert [r.result for r in rep.queries] == want, (
                    f"{backend} cap={cap} sharing={label}: answers diverged"
                )
                lat = np.array([r.seconds for r in rep.queries])
                row[label] = {
                    "p50": float(np.percentile(lat, 50)),
                    "p99": float(np.percentile(lat, 99)),
                    "eps": rep.edges_per_second,
                    "device_s": _device_seconds(mssg) - dev0,
                    "passes": rep.shared_passes,
                    "served": rep.shared_served,
                }
            rows.append(row)
        return {"rows": rows, "seq_device_s": seq_device, "num_queries": len(pairs)}
    finally:
        mssg.close()


def _render(backend: str, sweep) -> str:
    lines = [
        f"Concurrent serving: {backend}, PubMed-S, 4 back-ends, 2q block pool "
        f"({sweep['num_queries']} queries; sequential device time "
        f"{sweep['seq_device_s']:.5f}s)",
        f"  {'inflight':>8s} {'share':>5s} {'p50 lat':>10s} {'p99 lat':>10s} "
        f"{'edges/s':>12s} {'device s':>10s} {'passes':>6s} {'served':>6s} {'saved':>6s}",
    ]
    for row in sweep["rows"]:
        off, on = row["off"], row["on"]
        saved = 1.0 - on["device_s"] / off["device_s"] if off["device_s"] else 0.0
        for label, m in (("off", off), ("on", on)):
            lines.append(
                f"  {row['inflight']:>8d} {label:>5s} {m['p50']:>10.5f} {m['p99']:>10.5f} "
                f"{m['eps']:>12,.0f} {m['device_s']:>10.5f} {m['passes']:>6d} "
                f"{m['served']:>6d} "
                + (f"{saved:>5.0%}" if label == "on" else f"{'—':>6s}")
            )
    return "\n".join(lines)


def _assert_sharing_pays(sweep) -> None:
    for row in sweep["rows"]:
        if row["inflight"] < 16:
            continue
        off, on = row["off"], row["on"]
        # One pass fans to every subscriber in the round...
        assert on["served"] >= on["passes"] >= 1
        # ...so the device does measurably less work — the acceptance bar.
        assert on["device_s"] <= (1.0 - MIN_SAVINGS_AT_16) * off["device_s"], (
            f"inflight={row['inflight']}: sharing saved only "
            f"{1.0 - on['device_s'] / off['device_s']:.0%} device-seconds"
        )


def test_concurrent_queries_streamdb(benchmark, bench_scale, bench_queries, save_result):
    sweep = run_once(
        benchmark,
        lambda: run_concurrent_sweep("StreamDB", bench_scale, 4 * bench_queries),
    )
    save_result("concurrent_queries_streamdb", _render("StreamDB", sweep))
    _assert_sharing_pays(sweep)
    # Sharing cannot help a serial drain: a round of one never arms a sweep.
    assert sweep["rows"][0]["on"]["served"] == 0


def test_concurrent_queries_grdb(benchmark, bench_scale, bench_queries, save_result):
    sweep = run_once(
        benchmark,
        lambda: run_concurrent_sweep("grDB", bench_scale, 4 * bench_queries),
    )
    save_result("concurrent_queries_grdb", _render("grDB", sweep))
    _assert_sharing_pays(sweep)
    assert sweep["rows"][0]["on"]["served"] == 0
