"""Figure 5.6 — search execution time of five GraphDBs on PubMed-L.

Paper's claims: Array fastest, HashMap close behind; "On 8 and 16
processors, grDB performs admirably, but the random access of the graph
data forces the performance to drop below that of StreamDB on 4 nodes" —
the StreamDB/grDB crossover that motivates the chapter's closing remarks
about cache size vs graph size.
"""

from conftest import run_once

from repro.experiments import fig_5_6


def test_fig_5_6(benchmark, bench_scale, save_result):
    series, text = run_once(
        benchmark, lambda: fig_5_6(scale=bench_scale, num_queries=5)
    )
    save_result("fig_5_6", text)

    for p in (4, 8, 16):
        # In-memory backends lead everywhere.
        assert series["Array"][p] < series["HashMap"][p]
        assert series["HashMap"][p] < min(
            series[b][p] for b in ("StreamDB", "BerkeleyDB", "grDB")
        )

    # The crossover: StreamDB beats grDB on 4 nodes...
    assert series["StreamDB"][4] < series["grDB"][4]
    # ...and loses on 8 and 16 nodes, where grDB's cache covers its data.
    assert series["grDB"][8] < series["StreamDB"][8]
    assert series["grDB"][16] < series["StreamDB"][16]

    # Everything scales: more nodes, faster searches.
    for backend, by_p in series.items():
        assert by_p[16] < by_p[4], f"{backend} failed to scale"
