"""Vertex-program runtime ablation — dict-allreduce baselines vs scatter/gather.

Not a paper figure: the prototype shipped BFS only.  This benchmark runs
PageRank and weakly-connected components twice over the same ingested
PubMed-S graph — once through the naive rank programs (one adjacency
request per vertex per round, contribution/label tables as whole Python
dicts shipped through allreduce) and once through the scatter/gather
vertex-program runtime (batched storage-order sweeps on dense frontiers,
numpy triplet messages with a canonical vectorized combiner) — and
measures virtual makespan, scanned edges, and device busy seconds.

Answers are asserted to agree between the two implementations; the
runtime must beat the baseline's virtual makespan on both analyses —
that speedup is the point of the runtime PR.
"""

import numpy as np
from conftest import run_once

from repro.experiments import PUBMED_S, Deployment
from repro.experiments.harness import build_and_ingest

#: Makespan ratio (dict / runtime) each analysis must reach — the
#: acceptance bar for the runtime being worth its complexity.  Observed:
#: ~1.7-1.8x on grDB (batched sweeps + compress-before-broadcast beat
#: per-vertex fetches + dict allreduces) and two to three orders of
#: magnitude on StreamDB (the dict baseline replays the whole log per
#: adjacency request; the runtime pays one replay per sweep).
MIN_SPEEDUP = 1.3


def _device_seconds(mssg) -> float:
    F = mssg.config.num_frontends
    return sum(
        dev.stats.busy_seconds
        for node in mssg.cluster.nodes[F : F + mssg.config.num_backends]
        for dev in node._disks.values()
    )


def _agree(analysis: str, runtime, naive) -> None:
    if analysis == "pagerank":
        assert [v for v, _ in runtime["top"]] == [v for v, _ in naive["top"]]
        assert np.allclose(
            [x for _, x in runtime["top"]], [x for _, x in naive["top"]]
        ), "pagerank implementations diverged"
    else:
        assert runtime["num_components"] == naive["num_components"]
        assert runtime["sizes"] == naive["sizes"]


def run_vertexprog_ablation(backend: str, scale: float):
    dep = Deployment(backend=backend, num_backends=4, cache_policy="2q")
    mssg, _, _ = build_and_ingest(PUBMED_S, dep, scale)
    try:
        rows = []
        for analysis, baseline in (
            ("pagerank", "pagerank-dict"),
            ("components", "components-dict"),
        ):
            row = {"analysis": analysis}
            for label, name in (("dict", baseline), ("runtime", analysis)):
                dev0 = _device_seconds(mssg)
                report = mssg.query(name)
                row[label] = {
                    "seconds": report.seconds,
                    "edges": report.edges_scanned,
                    "rounds": report.levels,
                    "device_s": _device_seconds(mssg) - dev0,
                    "result": report.result,
                }
            _agree(analysis, row["runtime"]["result"], row["dict"]["result"])
            rows.append(row)
        return {"rows": rows, "backend": backend}
    finally:
        mssg.close()


def _render(sweep) -> str:
    lines = [
        f"Vertex-program runtime ablation: {sweep['backend']}, PubMed-S, "
        f"4 back-ends, 2q block pool (dict-allreduce baseline vs "
        f"scatter/gather runtime; identical answers asserted)",
        f"  {'analysis':>10s} {'impl':>8s} {'virtual s':>10s} {'edges':>12s} "
        f"{'rounds':>6s} {'device s':>10s} {'speedup':>8s}",
    ]
    for row in sweep["rows"]:
        speedup = row["dict"]["seconds"] / row["runtime"]["seconds"]
        for label in ("dict", "runtime"):
            m = row[label]
            lines.append(
                f"  {row['analysis']:>10s} {label:>8s} {m['seconds']:>10.5f} "
                f"{m['edges']:>12,d} {m['rounds']:>6d} {m['device_s']:>10.5f} "
                + (f"{speedup:>7.2f}x" if label == "runtime" else f"{'—':>8s}")
            )
    return "\n".join(lines)


def _assert_runtime_pays(sweep) -> None:
    for row in sweep["rows"]:
        speedup = row["dict"]["seconds"] / row["runtime"]["seconds"]
        assert speedup >= MIN_SPEEDUP, (
            f"{row['analysis']}: runtime is {speedup:.2f}x the dict baseline "
            f"(bar: {MIN_SPEEDUP:.2f}x)"
        )


def test_vertexprog_grdb(benchmark, bench_scale, save_result):
    sweep = run_once(benchmark, lambda: run_vertexprog_ablation("grDB", bench_scale))
    save_result("vertexprog_grdb", _render(sweep))
    _assert_runtime_pays(sweep)


def test_vertexprog_streamdb(benchmark, bench_scale, save_result):
    sweep = run_once(
        benchmark, lambda: run_vertexprog_ablation("StreamDB", bench_scale)
    )
    save_result("vertexprog_streamdb", _render(sweep))
    _assert_runtime_pays(sweep)
