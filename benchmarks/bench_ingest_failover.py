"""Ingestion failover — healthy-path cost anchor and degraded-mode sweep.

The ingestion-time failover machinery (death board polling, routed
assignment, shard copy records) sits on the hot ingestion path, so this
benchmark pins the healthy path down hard: on a fixed reference workload
the *virtual* ingestion seconds must be bit-identical to the values
recorded before the machinery existed — the fault-tolerant path must cost
literally nothing when nothing fails.  Virtual time is deterministic, so
the assertion is exact equality, not a tolerance band.

The degraded sweep then kills one back-end mid-stream at each replication
factor and reports the outcome: with replication the run completes with
zero lost entries; without it the dead owner's shards are counted lost.
The degraded runs use a small block cache so stores actually reach the
device mid-stream (with the default cache the whole workload is absorbed
in memory and the device is only touched at finalize, after which a kill
has nothing in flight to lose).
"""

from conftest import run_once

from repro import MSSG, MSSGConfig
from repro.graphgen import pubmed_like
from repro.simcluster import FaultPlan

#: Reference workload for the healthy anchor (fixed — independent of
#: REPRO_BENCH_SCALE, the anchor values only hold for this exact stream).
ANCHOR_VERTICES = 2000
ANCHOR_SEED = 11

#: Healthy-path virtual ingestion seconds and stored entries, recorded on
#: the pre-failover ingestion service (4 back-ends, 2 front-ends).  Any
#: drift means the failover machinery started charging the healthy path.
ANCHOR = {
    1: (0.33580132931717255, 29426),
    2: (0.5651691816242412, 58852),
}


def _deploy(replication: int, fault_plan=None, cache_blocks=None) -> MSSG:
    kwargs = {} if cache_blocks is None else {"cache_blocks": cache_blocks}
    return MSSG(
        MSSGConfig(
            num_backends=4,
            num_frontends=2,
            replication=replication,
            fault_plan=fault_plan,
            **kwargs,
        )
    )


def run_failover_sweep():
    edges = pubmed_like(ANCHOR_VERTICES, seed=ANCHOR_SEED)
    rows = []
    for replication, (want_seconds, want_entries) in ANCHOR.items():
        with _deploy(replication) as healthy:
            report = healthy.ingest(edges)
        assert report.seconds == want_seconds, (
            f"healthy ingest cost drifted at replication={replication}: "
            f"{report.seconds!r} != anchor {want_seconds!r}"
        )
        assert report.entries_stored == want_entries
        assert not report.degraded and report.lost_entries == 0

        plan = FaultPlan.kill_node(2, at_time=report.seconds * 0.25)
        with _deploy(replication, fault_plan=plan, cache_blocks=4) as faulted:
            degraded = faulted.ingest(edges)
        assert degraded.degraded and 0 in degraded.failed_backends
        if replication > 1:
            assert degraded.lost_entries == 0
        else:
            assert degraded.lost_entries > 0
        rows.append(
            {
                "replication": replication,
                "healthy_seconds": report.seconds,
                "degraded_seconds": degraded.seconds,
                "lost_entries": degraded.lost_entries,
            }
        )
    return rows


def test_ingest_failover(benchmark, save_result):
    rows = run_once(benchmark, run_failover_sweep)
    lines = ["replication  healthy[s]  degraded[s]  lost entries"]
    for r in rows:
        lines.append(
            f"{r['replication']:>11} {r['healthy_seconds']:>11.4f} "
            f"{r['degraded_seconds']:>12.4f} {r['lost_entries']:>13,}"
        )
    save_result("ingest_failover", "\n".join(lines))
