"""Figure 5.7 — aggregate edges/second during search on PubMed-L.

Paper's claims: Array approaches ~30M edges/s when visiting large portions
of the graph; grDB reaches ~20M on 16 nodes (about two thirds of Array)
"but this number drops significantly on 4 nodes"; grDB processes more
useful edges per second than StreamDB even where StreamDB's wall-clock
search time is lower.
"""

from conftest import run_once

from repro.experiments import fig_5_7


def test_fig_5_7(benchmark, bench_scale, save_result):
    series, text = run_once(
        benchmark, lambda: fig_5_7(scale=bench_scale, num_queries=5)
    )
    save_result("fig_5_7", text)

    # Array tops the chart at 16 nodes, in the tens of millions of edges/s.
    top = max(series[b][16] for b in series)
    assert series["Array"][16] == top
    assert series["Array"][16] > 10e6

    # grDB is the best out-of-core performer at 16 nodes and lands within
    # a plausible band of Array (paper: ~2/3).
    assert series["grDB"][16] == max(
        series[b][16] for b in ("StreamDB", "BerkeleyDB", "grDB")
    )
    assert series["grDB"][16] > 0.25 * series["Array"][16]

    # grDB's rate "drops significantly on 4 nodes".
    assert series["grDB"][4] < 0.4 * series["grDB"][16]

    # At 8/16 nodes grDB processes more useful edges/s than StreamDB,
    # whose scans mostly stream past non-fringe edges.
    for p in (8, 16):
        assert series["grDB"][p] > series["StreamDB"][p]

    # Edge rates grow with node count for every backend.
    for backend, by_p in series.items():
        assert by_p[16] > by_p[4]
