"""Ablation — grDB growth policy (move vs link) and defragmentation.

§3.4.1's explicit design fork: when a sub-block fills, either *move* its
contents up a level (extra copies at ingest, compact chains) or *link* a
new sub-block (cheap ingest, fragmented chains), with background
defragmentation recovering compactness "during idle time".  This bench
measures all three corners: ingest cost, fragmented search cost, and
post-defrag search cost.
"""

from conftest import run_once

from repro.experiments import PUBMED_S, Deployment, run_search_experiment
from repro.experiments.harness import build_and_ingest
from repro.experiments.report import format_rows
from repro.graphdb.grdb import defragment


def run_defrag_experiment(scale: float):
    out = {}
    for policy in ("move", "link"):
        dep = Deployment(backend="grDB", num_backends=8, growth_policy=policy)
        mssg, _, ingest_seconds = build_and_ingest(PUBMED_S, dep, scale)
        try:
            search = run_search_experiment(
                PUBMED_S, dep, scale=scale, num_queries=6, mssg=mssg
            ).mean_seconds
            entry = {"ingest": ingest_seconds, "search": search}
            if policy == "link":
                rewritten = sum(defragment(db) for db in mssg.dbs)
                entry["defragged_vertices"] = rewritten
                entry["search_after_defrag"] = run_search_experiment(
                    PUBMED_S, dep, scale=scale, num_queries=6, mssg=mssg
                ).mean_seconds
            out[policy] = entry
        finally:
            mssg.close()
    return out


def test_ablation_defrag(benchmark, bench_scale, save_result):
    data = run_once(benchmark, lambda: run_defrag_experiment(bench_scale))
    rows = [
        f"{'move':<8} ingest={data['move']['ingest']:.4f}s  search={data['move']['search']:.4f}s",
        f"{'link':<8} ingest={data['link']['ingest']:.4f}s  search={data['link']['search']:.4f}s"
        f"  after-defrag={data['link']['search_after_defrag']:.4f}s"
        f"  (rewrote {data['link']['defragged_vertices']} vertices)",
    ]
    text = format_rows(
        "Ablation: grDB growth policy + defragmentation (PubMed-S, 8 back-ends)",
        "policy   metrics",
        rows,
    )
    save_result("ablation_defrag", text)

    move, link = data["move"], data["link"]
    # Ingest costs are comparable: link avoids copy-up traffic, move's
    # recycled sub-blocks keep its writes cache-local — neither dominates.
    assert link["ingest"] <= move["ingest"] * 1.25
    assert move["ingest"] <= link["ingest"] * 1.25
    # Move reads clearly faster than fragmented link (chains of <= 2).
    assert move["search"] < link["search"]
    # Defragmentation recovers part of the gap for the link policy.
    assert link["search_after_defrag"] <= link["search"] * 1.02
    assert link["defragged_vertices"] > 0
