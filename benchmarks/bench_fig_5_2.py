"""Figure 5.2 — BerkeleyDB and grDB with/without their block caches.

Paper's claims: "caching can reduce the execution time up to 50% on both
implementations, especially for longer path queries."
"""

from conftest import run_once

from repro.experiments import fig_5_2


def test_fig_5_2(benchmark, bench_scale, bench_queries, save_result):
    series, text = run_once(
        benchmark, lambda: fig_5_2(scale=bench_scale, num_queries=bench_queries)
    )
    save_result("fig_5_2", text)

    for backend in ("BerkeleyDB", "grDB"):
        cached = series[backend]
        uncached = series[f"{backend} (no cache)"]
        longest = max(set(cached) & set(uncached))
        # Cache helps, and markedly so on the longest paths (>= ~25% off,
        # the paper reports up to 50%).
        assert cached[longest] < uncached[longest]
        assert cached[longest] <= 0.75 * uncached[longest], (
            f"{backend}: cache saved too little at distance {longest}"
        )
        # Short paths barely touch storage, so the effect shrinks there.
        shortest = min(set(cached) & set(uncached))
        short_ratio = uncached[shortest] / cached[shortest]
        long_ratio = uncached[longest] / cached[longest]
        assert long_ratio >= short_ratio * 0.9
