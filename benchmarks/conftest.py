"""Shared benchmark fixtures.

Every benchmark regenerates one table/figure of the paper's chapter 5,
prints the rendered series, saves it under ``benchmarks/results/``, and
asserts the paper's qualitative claims about that artifact (who wins, by
roughly what factor, where crossovers fall).

Scale: set ``REPRO_BENCH_SCALE`` (default 1.0) to grow the workloads
toward paper sizes; ``REPRO_BENCH_QUERIES`` adjusts queries per figure.
"""

import os

import pytest


@pytest.fixture(scope="session")
def bench_scale() -> float:
    return float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


@pytest.fixture(scope="session")
def bench_queries() -> int:
    return int(os.environ.get("REPRO_BENCH_QUERIES", "8"))


@pytest.fixture()
def save_result():
    results_dir = os.path.join(os.path.dirname(__file__), "results")
    os.makedirs(results_dir, exist_ok=True)

    def save(name: str, text: str) -> None:
        print(text)
        with open(os.path.join(results_dir, f"{name}.txt"), "w") as f:
            f.write(text + "\n")

    return save


def run_once(benchmark, fn):
    """Run a whole-figure experiment exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
