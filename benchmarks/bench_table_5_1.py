"""Table 5.1 — statistics for the graphs used in experiments.

Regenerates the scaled PubMed-S / PubMed-L / Syn-2B stand-ins and checks
their degree shapes against the paper's reported statistics.
"""

from conftest import run_once

from repro.experiments import table_5_1
from repro.experiments.workloads import WORKLOADS


def test_table_5_1(benchmark, bench_scale, save_result):
    stats, text = run_once(benchmark, lambda: table_5_1(scale=bench_scale))
    save_result("table_5_1", text)

    by_name = {s.name: s for s in stats}
    for name, s in by_name.items():
        paper = WORKLOADS[name]
        # Average degree within 15% of the paper's (14.84 / 19.48 / 20.0).
        assert abs(s.avg_degree - paper.paper_avg_degree) / paper.paper_avg_degree < 0.15
        # Min degree 1, as in every row of Table 5.1.
        assert s.min_degree == 1
        # Scale-free: hubs far above the mean.
        assert s.max_degree > 10 * s.avg_degree

    # The PubMed graphs carry the extreme relative hubs of the extractions
    # (~19% and ~23% of |V|); the synthetic R-MAT graph stays much flatter.
    assert by_name["PubMed-S"].max_degree / by_name["PubMed-S"].vertices > 0.10
    assert by_name["PubMed-L"].max_degree / by_name["PubMed-L"].vertices > 0.10
    assert by_name["Syn-2B"].max_degree / by_name["Syn-2B"].vertices < 0.10
    # Relative sizes preserved: S < L < Syn-2B in vertices and edges.
    assert (
        by_name["PubMed-S"].vertices
        < by_name["PubMed-L"].vertices
        < by_name["Syn-2B"].vertices
    )
