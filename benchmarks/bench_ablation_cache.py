"""Ablation — grDB block-cache size vs search time.

Chapter 5's closing observation: grDB degrades "when the grDB cache size
becomes negligible compared to the size of the graph".  This sweep holds
the deployment fixed (PubMed-L, 4 back-ends — the thrashing regime of
Fig. 5.6) and varies the per-node cache budget.
"""

from conftest import run_once

from repro.experiments import PUBMED_L, Deployment, run_search_experiment
from repro.experiments.report import format_series_table

BUDGETS_KB = (4, 16, 64, 256, 1024)


def run_cache_sweep(scale: float):
    series: dict[str, dict[int, float]] = {"grDB": {}}
    for kb in BUDGETS_KB:
        res = run_search_experiment(
            PUBMED_L,
            Deployment(backend="grDB", num_backends=4, cache_bytes=kb << 10),
            scale=scale,
            num_queries=5,
            min_distance=3,
        )
        series["grDB"][kb] = res.mean_seconds
    return series


def test_ablation_cache(benchmark, bench_scale, save_result):
    series = run_once(benchmark, lambda: run_cache_sweep(bench_scale))
    text = format_series_table(
        "Ablation: grDB search time vs block-cache budget (PubMed-L, 4 back-ends)",
        "cache KB", series,
    )
    save_result("ablation_cache", text)

    by_budget = series["grDB"]
    # Bigger caches never hurt...
    budgets = sorted(by_budget)
    for small, large in zip(budgets, budgets[1:]):
        assert by_budget[large] <= by_budget[small] * 1.02
    # ...and the full sweep buys a significant improvement.
    assert by_budget[budgets[-1]] < 0.9 * by_budget[budgets[0]]
