"""Ablation — delta+varint compressed adjacency (grDB and StreamDB).

Not a paper figure: the paper's prototype stored raw 8-byte slot words in
grDB sub-blocks and raw 16-byte edge records in the StreamDB log, and the
chapter-5 figures keep that layout (``Deployment.compress_adjacency``
defaults off so the committed tables stay bit-identical).  This ablation
flips the knob on and measures what the encoding buys: sorted neighbor
lists become delta+varint streams, so each sub-block holds more neighbors
(shorter chains, fewer device reads) and each log record ships fewer bytes
per edge, at the price of a vectorized decode pass charged through
``CpuProfile.varint_decode_seconds``.

Run cache-starved (8 KB per node) so the byte savings are visible at the
device rather than absorbed by the block cache.  BFS answers are identical
in both modes — the harness asserts every query's distance against ground
truth, and this file additionally asserts the two sweeps agree bucket for
bucket.
"""

from conftest import run_once

from repro.experiments import PUBMED_S, Deployment, run_search_experiment
from repro.experiments.harness import build_and_ingest
from repro.experiments.report import format_series_table

#: Small enough that PubMed-S working sets spill out of the block cache on
#: 16 nodes, so device traffic exists for the encoding to shrink.
CACHE_BYTES = 8 << 10

MODES = (("raw", False), ("compressed", True))


def _device_stats(mssg):
    """Total device traffic (both directions) across all backend stores."""
    moved = reads = 0
    for db in mssg.dbs:
        if hasattr(db, "storage"):  # grDB
            s = db.storage.total_device_stats()
            moved += s["bytes_read"] + s["bytes_written"]
            reads += s["reads"]
        elif hasattr(db, "device"):  # StreamDB
            moved += db.device.stats.bytes_read + db.device.stats.bytes_written
            reads += db.device.stats.reads
    return {"bytes_moved": moved, "reads": reads}


def run_compression_sweep(backend: str, scale: float, num_queries: int = 6):
    series: dict[str, dict[int, float]] = {}
    aux: dict[str, dict[str, float]] = {}
    for label, compress in MODES:
        dep = Deployment(
            backend=backend,
            num_backends=16,
            cache_bytes=CACHE_BYTES,
            compress_adjacency=compress,
        )
        mssg, _, ingest_seconds = build_and_ingest(PUBMED_S, dep, scale)
        try:
            ingest_stats = _device_stats(mssg)
            res = run_search_experiment(
                PUBMED_S, dep, scale=scale, num_queries=num_queries, mssg=mssg
            )
            query_stats = _device_stats(mssg)
            series[label] = dict(res.seconds_by_distance)
            aux[label] = {
                "ingest_seconds": ingest_seconds,
                "query_seconds": res.total_seconds,
                "ingest_bytes_moved": ingest_stats["bytes_moved"],
                "query_bytes_moved": (
                    query_stats["bytes_moved"] - ingest_stats["bytes_moved"]
                ),
                "query_reads": query_stats["reads"] - ingest_stats["reads"],
            }
        finally:
            mssg.close()
    return series, aux


def _render(backend: str, series, aux) -> str:
    text = format_series_table(
        f"Ablation: compressed adjacency ({backend}, PubMed-S, 16 back-ends, "
        "8 KB cache)",
        "path length", series,
    )
    lines = [text, ""]
    for label, a in aux.items():
        lines.append(
            f"  {label:11s} ingest={a['ingest_seconds']:.5f}s "
            f"query={a['query_seconds']:.5f}s "
            f"ingest_bytes={a['ingest_bytes_moved']:.0f} "
            f"query_bytes={a['query_bytes_moved']:.0f} "
            f"query_reads={a['query_reads']:.0f}"
        )
    raw, comp = aux["raw"], aux["compressed"]
    for phase in ("ingest", "query"):
        ratio = comp[f"{phase}_bytes_moved"] / max(raw[f"{phase}_bytes_moved"], 1)
        lines.append(f"  {phase} bytes-moved ratio (compressed/raw): {ratio:.3f}")
    return "\n".join(lines)


def _check(series, aux):
    # Same workload, same queries: the distance buckets must agree exactly
    # (each mode's distances were already asserted against ground truth).
    assert set(series["raw"]) == set(series["compressed"])
    # The encoding must actually shrink device traffic in both phases.
    assert aux["compressed"]["ingest_bytes_moved"] < aux["raw"]["ingest_bytes_moved"]
    assert aux["compressed"]["query_bytes_moved"] < aux["raw"]["query_bytes_moved"]


def test_ablation_compression_grdb(benchmark, bench_scale, save_result):
    series, aux = run_once(
        benchmark, lambda: run_compression_sweep("grDB", bench_scale)
    )
    save_result("ablation_compression_grdb", _render("grDB", series, aux))
    _check(series, aux)
    # Denser sub-blocks mean shorter chains, hence fewer query-time reads.
    assert aux["compressed"]["query_reads"] <= aux["raw"]["query_reads"]


def test_ablation_compression_streamdb(benchmark, bench_scale, save_result):
    series, aux = run_once(
        benchmark, lambda: run_compression_sweep("StreamDB", bench_scale)
    )
    save_result("ablation_compression_streamdb", _render("StreamDB", series, aux))
    _check(series, aux)
