"""Figure 5.3 — ingestion of PubMed-S with 1 vs 4 front-end nodes.

Paper's claims: ingestion performance is more or less the same for all
approaches except MySQL, which is slower than every other backend; adding
front-end ingestion nodes helps the configurations that were front-end
bound and never hurts.
"""

from conftest import run_once

from repro.experiments import fig_5_3


def test_fig_5_3(benchmark, bench_scale, save_result):
    series, text = run_once(benchmark, lambda: fig_5_3(scale=bench_scale))
    save_result("fig_5_3", text)

    # MySQL is the ingestion outlier at both front-end counts.
    for f in (1, 4):
        others = [series[b][f] for b in series if b != "MySQL"]
        assert series["MySQL"][f] > max(others)

    # More front-ends never slow ingestion down (within 10% noise).
    for backend, by_f in series.items():
        assert by_f[4] <= by_f[1] * 1.10, f"{backend} got slower with more front-ends"

    # Back-end-bound stores (MySQL, BerkeleyDB, grDB) barely move with
    # front-end count, mirroring the paper's "similar performance in both
    # cases" observation for the storage-limited backends.
    for backend in ("MySQL", "BerkeleyDB", "grDB"):
        assert series[backend][1] <= series[backend][4] * 1.35
