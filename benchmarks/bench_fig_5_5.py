"""Figure 5.5 — ingestion of PubMed-L: 8 front-ends, 4/8/16 back-ends.

Paper's claims: with the larger graph, grDB has "a significant advantage"
over BerkeleyDB (whose bar is literally off the chart, >1600s);
"the StreamDB instance has unrivaled ingestion performance" because it
only appends to disk.
"""

from conftest import run_once

from repro.experiments import fig_5_5


def test_fig_5_5(benchmark, bench_scale, save_result):
    series, text = run_once(benchmark, lambda: fig_5_5(scale=bench_scale))
    save_result("fig_5_5", text)

    for p in (4, 8, 16):
        # StreamDB's append-only log is unrivaled among the disk-based
        # stores, and stays within noise of the in-memory HashMap bound
        # (at 16 back-ends both are front-end-limited).
        disk_based = [series[b][p] for b in ("MySQL", "BerkeleyDB", "grDB")]
        assert series["StreamDB"][p] < min(disk_based)
        assert series["StreamDB"][p] <= series["HashMap"][p] * 1.5
        # grDB clearly ahead of BerkeleyDB at large-graph scale.
        assert series["grDB"][p] < 0.5 * series["BerkeleyDB"][p]
        # MySQL remains the slowest ingester.
        assert series["MySQL"][p] == max(series[b][p] for b in series)

    # More back-end storage nodes make ingestion faster for the
    # storage-bound backends.
    for backend in ("MySQL", "BerkeleyDB", "grDB"):
        assert series[backend][16] < series[backend][4]
