"""Ablation — end-to-end block integrity (raw frames vs CRC32 framing).

Not a paper figure: the thesis prototype stored raw frames and trusted
the disks, so the chapter-5 reproductions keep ``checksums=False``.  This
ablation prices the integrity layer on the Fig 5.4 grDB workload
(PubMed-S searches at 16 back-ends, bucketed by path length): every
device framed into 4 KiB payloads with CRC32 trailers, verified on every
read, plus grDB's crash-consistent WAL flush.

Expected shape: results are identical — the frame map is monotone, so a
logically sequential access stays physically sequential and only the
~0.1 % trailer overhead plus the WAL's ingest-time write amplification
shows up.  Query-side cost must stay within low single digits; ingestion
pays more (the WAL journals every flushed span twice) but stays within a
small constant factor.
"""

from conftest import run_once

from repro.experiments import PUBMED_S, Deployment
from repro.experiments.harness import build_and_ingest, queries_for
from repro.experiments.report import format_series_table

MODES = (("raw", False), ("checksummed", True))


def run_checksum_sweep(scale: float, num_queries: int = 8):
    queries = queries_for(PUBMED_S, scale, num_queries, seed=0, min_distance=2)
    series: dict[str, dict[int, float]] = {}
    aux: dict[str, dict[str, float]] = {}
    answers: dict[str, list[int]] = {}
    for label, on in MODES:
        dep = Deployment(backend="grDB", num_backends=16, checksums=on)
        mssg, _, ingest_seconds = build_and_ingest(PUBMED_S, dep, scale)
        try:
            buckets: dict[int, list[float]] = {}
            a = {"seconds": 0.0, "ingest_seconds": ingest_seconds}
            answers[label] = []
            for s, d, dist in queries:
                report = mssg.query_bfs(s, d)
                assert report.result == dist, (
                    f"{label}: {s}->{d} returned {report.result}, expected {dist}"
                )
                assert not report.corrupt_backends
                answers[label].append(report.result)
                buckets.setdefault(dist, []).append(report.seconds)
                a["seconds"] += report.seconds
            if on:
                # Every stored frame verifies after a healthy run.
                sr = mssg.scrub(repair=False)
                a["frames_scanned"] = sr.frames_scanned
                assert sr.corrupt_frames == 0
        finally:
            mssg.close()
        series[label] = {
            dist: sum(ts) / len(ts) for dist, ts in sorted(buckets.items())
        }
        aux[label] = a
    # Checksums are an integrity layer, not an algorithm change.
    assert answers["raw"] == answers["checksummed"]
    return series, aux


def _render(series, aux) -> str:
    text = format_series_table(
        "Ablation: CRC32 block integrity (grDB, PubMed-S, 16 back-ends)",
        "path length", series,
    )
    lines = [text, ""]
    for label, a in aux.items():
        extra = (
            f" frames_verified={a['frames_scanned']:.0f}"
            if "frames_scanned" in a
            else ""
        )
        lines.append(
            f"  {label:11s} query_total={a['seconds']:.5f}s "
            f"ingest={a['ingest_seconds']:.5f}s{extra}"
        )
    raw, ck = aux["raw"], aux["checksummed"]
    lines.append(
        f"  overhead: query {ck['seconds'] / raw['seconds'] - 1.0:+.2%}, "
        f"ingest {ck['ingest_seconds'] / raw['ingest_seconds'] - 1.0:+.2%}"
    )
    return "\n".join(lines)


def test_ablation_checksums_grdb(benchmark, bench_scale, save_result):
    series, aux = run_once(benchmark, lambda: run_checksum_sweep(bench_scale))
    save_result("ablation_checksums_grdb", _render(series, aux))

    raw, ck = aux["raw"], aux["checksummed"]
    # The query-side price of verifying every read: low single digits.
    assert ck["seconds"] <= 1.10 * raw["seconds"]
    # Ingestion pays the WAL's journal-then-apply write amplification but
    # stays within a small constant factor of the raw path.
    assert ck["ingest_seconds"] <= 3.0 * raw["ingest_seconds"]
    assert ck["frames_scanned"] > 0
