"""Ablation — semi-external-memory mode (grDB and StreamDB).

Not a paper figure: the paper's prototype is fully out-of-core — vertex
metadata, visited levels, and adjacency all live behind the storage
engine, and the chapter-5 figures keep that discipline
(``Deployment.semi_external`` defaults off so the committed tables stay
bit-identical).  This ablation flips the knob on and measures what the
FlashGraph/GraphMP-style split buys: per-vertex state (degree census, id
maps, visited levels) pinned in resident arrays, a block→vertex-extent
directory that lets sparse frontiers fetch only the adjacency blocks
holding active sources, and a pinned cache segment whole-graph sweeps
cannot evict.

Run cache-starved (8 KB per node) with the external visited structure and
the direction-optimizing hybrid, so all three layers are load-bearing:
visited paging, degree lookups, and frontier-driven block selection all
hit devices in the off configuration.  Device traffic is summed over
*every* device of every node — including the visited scratch disks — so
the pinned-visited savings are counted, not hidden.  BFS answers are
identical in both modes: the harness asserts every distance against
ground truth, and this file additionally asserts the two sweeps agree
bucket for bucket.  A concurrent ``query_many`` drain at the end checks
the mode composes with shared scans and the 2q pool (answers identical,
latency no worse).
"""

from conftest import run_once

from repro.experiments import PUBMED_S, Deployment, run_search_experiment
from repro.experiments.harness import build_and_ingest, queries_for
from repro.experiments.report import format_series_table

#: Small enough that PubMed-S working sets spill out of the block cache on
#: 16 nodes, so selective I/O has device traffic to avoid.
CACHE_BYTES = 8 << 10

MODES = (("off", False), ("on", True))


def _device_stats(mssg):
    """Traffic over every device of every node, visited scratch included."""
    reads = moved = 0
    for node in mssg.cluster.nodes:
        for dev in node._disks.values():
            reads += dev.stats.reads
            moved += dev.stats.bytes_read + dev.stats.bytes_written
    return {"reads": reads, "bytes_moved": moved}


def _deployment(backend: str, semi: bool) -> Deployment:
    return Deployment(
        backend=backend,
        num_backends=16,
        cache_bytes=CACHE_BYTES,
        direction_opt=True,
        semi_external=semi,
    )


def run_semiem_sweep(backend: str, scale: float, num_queries: int = 6):
    series: dict[str, dict[int, float]] = {}
    aux: dict[str, dict[str, float]] = {}
    for label, semi in MODES:
        dep = _deployment(backend, semi)
        mssg, _, ingest_seconds = build_and_ingest(PUBMED_S, dep, scale)
        try:
            ingest_stats = _device_stats(mssg)
            res = run_search_experiment(
                PUBMED_S,
                dep,
                scale=scale,
                num_queries=num_queries,
                visited="external",
                mssg=mssg,
            )
            query_stats = _device_stats(mssg)
            pinned = sum(db.pinned_resident_bytes() for db in mssg.dbs)
            series[label] = dict(res.seconds_by_distance)
            aux[label] = {
                "ingest_seconds": ingest_seconds,
                "query_seconds": res.total_seconds,
                "query_reads": query_stats["reads"] - ingest_stats["reads"],
                "query_bytes_moved": (
                    query_stats["bytes_moved"] - ingest_stats["bytes_moved"]
                ),
                "pinned_bytes": pinned,
            }
        finally:
            mssg.close()
    return series, aux


def run_semiem_drain(backend: str, scale: float, num_queries: int = 8):
    """Concurrent serving: the same query batch drained under both modes."""
    out: dict[str, dict[str, float]] = {}
    queries = queries_for(PUBMED_S, scale, num_queries)
    for label, semi in MODES:
        dep = _deployment(backend, semi)
        mssg, _, _ = build_and_ingest(PUBMED_S, dep, scale)
        try:
            report = mssg.query_many(
                [(s, d) for s, d, _ in queries], visited="external"
            )
            answers = [r.result for r in report.queries]
            assert answers == [dist for _, _, dist in queries], (
                f"{backend} semi_external={semi} drain answers {answers}"
            )
            out[label] = {
                "drain_seconds": report.seconds,
                "answers": answers,
            }
        finally:
            mssg.close()
    return out


def _render(backend: str, series, aux, drain) -> str:
    text = format_series_table(
        f"Ablation: semi-external memory ({backend}, PubMed-S, 16 back-ends, "
        "8 KB cache, external visited, direction-opt)",
        "path length",
        series,
    )
    lines = [text, ""]
    for label, a in aux.items():
        lines.append(
            f"  semi-EM {label:3s} ingest={a['ingest_seconds']:.5f}s "
            f"query={a['query_seconds']:.5f}s "
            f"query_reads={a['query_reads']:.0f} "
            f"query_bytes={a['query_bytes_moved']:.0f} "
            f"pinned_bytes={a['pinned_bytes']:.0f}"
        )
    off, on = aux["off"], aux["on"]
    lines.append(
        f"  query reads ratio (on/off): "
        f"{on['query_reads'] / max(off['query_reads'], 1):.3f}"
    )
    lines.append(
        f"  query seconds ratio (on/off): "
        f"{on['query_seconds'] / max(off['query_seconds'], 1e-12):.3f}"
    )
    lines.append(
        f"  query_many drain seconds: off={drain['off']['drain_seconds']:.5f} "
        f"on={drain['on']['drain_seconds']:.5f}"
    )
    return "\n".join(lines)


def _check(series, aux, drain):
    # Same workload, same queries: the distance buckets must agree exactly
    # (each mode's distances were already asserted against ground truth).
    assert set(series["off"]) == set(series["on"])
    # Pinned vertex state + selective I/O must actually keep devices idle.
    assert aux["on"]["query_reads"] < aux["off"]["query_reads"]
    assert aux["on"]["query_seconds"] < aux["off"]["query_seconds"]
    assert aux["on"]["pinned_bytes"] > 0 and aux["off"]["pinned_bytes"] == 0
    # Concurrent serving: answers identical, latency flat or better.
    assert drain["on"]["answers"] == drain["off"]["answers"]
    assert (
        drain["on"]["drain_seconds"]
        <= drain["off"]["drain_seconds"] * 1.05
    )


def test_ablation_semiem_grdb(benchmark, bench_scale, save_result):
    def sweep():
        series, aux = run_semiem_sweep("grDB", bench_scale)
        drain = run_semiem_drain("grDB", bench_scale)
        return series, aux, drain

    series, aux, drain = run_once(benchmark, sweep)
    save_result("ablation_semiem_grdb", _render("grDB", series, aux, drain))
    _check(series, aux, drain)


def test_ablation_semiem_streamdb(benchmark, bench_scale, save_result):
    def sweep():
        series, aux = run_semiem_sweep("StreamDB", bench_scale)
        drain = run_semiem_drain("StreamDB", bench_scale)
        return series, aux, drain

    series, aux, drain = run_once(benchmark, sweep)
    save_result("ablation_semiem_streamdb", _render("StreamDB", series, aux, drain))
    _check(series, aux, drain)
