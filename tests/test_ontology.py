"""Tests for ontologies, semantic graphs, and validation."""

import pytest

from repro.ontology import (
    Ontology,
    SemanticGraph,
    example_meeting_ontology,
    validate_graph,
)
from repro.ontology.schema import EdgeTypeRule
from repro.util import OntologyError


class TestOntology:
    def test_build_and_query(self):
        onto = Ontology("test")
        onto.add_vertex_type("A").add_vertex_type("B")
        onto.add_edge_type("A", "links", "B")
        assert onto.allows("A", "links", "B")
        assert onto.allows("B", "links", "A")  # symmetric by default
        assert not onto.allows("A", "links", "A")
        assert "A" in onto and "C" not in onto

    def test_asymmetric_rule(self):
        onto = Ontology()
        onto.add_vertex_type("A").add_vertex_type("B")
        onto.add_edge_type("A", "cites", "B", symmetric=False)
        assert onto.allows("A", "cites", "B")
        assert not onto.allows("B", "cites", "A")

    def test_unknown_vertex_type_rejected(self):
        onto = Ontology()
        onto.add_vertex_type("A")
        with pytest.raises(OntologyError):
            onto.add_edge_type("A", "links", "Nope")

    def test_empty_names_rejected(self):
        onto = Ontology()
        with pytest.raises(OntologyError):
            onto.add_vertex_type("")
        onto.add_vertex_type("A")
        with pytest.raises(OntologyError):
            onto.add_edge_type("A", "", "A")

    def test_allowed_neighbors(self):
        onto = example_meeting_ontology()
        assert ("attends", "Meeting") in onto.allowed_neighbors("Person")
        # Figure 1.1's constraint: Date never connects directly to Person.
        assert all(dst != "Person" for _, dst in onto.allowed_neighbors("Date"))

    def test_rules_are_frozen_view(self):
        onto = Ontology()
        onto.add_vertex_type("A")
        onto.add_edge_type("A", "x", "A")
        assert EdgeTypeRule("A", "x", "A") in onto.rules


class TestSemanticGraph:
    def make(self):
        onto = example_meeting_ontology()
        g = SemanticGraph(onto)
        g.add_vertex(0, "Person")
        g.add_vertex(1, "Meeting")
        g.add_vertex(2, "Date")
        return g

    def test_valid_edges(self):
        g = self.make()
        g.add_edge(0, 1, "attends")
        g.add_edge(1, 2, "occurred on")
        assert g.num_edges == 2
        assert g.vertex_type(1) == "Meeting"

    def test_ontology_enforced(self):
        g = self.make()
        with pytest.raises(OntologyError):
            g.add_edge(0, 2, "occurred on")  # Person--Date forbidden
        with pytest.raises(OntologyError):
            g.add_edge(0, 1, "nonsense")

    def test_edge_needs_declared_vertices(self):
        g = self.make()
        with pytest.raises(OntologyError):
            g.add_edge(0, 99, "attends")

    def test_type_conflict(self):
        g = self.make()
        with pytest.raises(OntologyError):
            g.add_vertex(0, "Meeting")
        g.add_vertex(0, "Person")  # same type is idempotent

    def test_negative_gid(self):
        g = self.make()
        with pytest.raises(OntologyError):
            g.add_vertex(-1, "Person")

    def test_edge_list_and_histogram(self):
        g = self.make()
        g.add_edge(0, 1, "attends")
        el = g.edge_list()
        assert el.shape == (1, 2)
        assert el[0].tolist() == [0, 1]
        assert g.type_histogram() == {"Person": 1, "Meeting": 1, "Date": 1}

    def test_untyped_graph_allows_any_edge(self):
        g = SemanticGraph()  # no ontology
        g.add_vertex(0, "X")
        g.add_vertex(1, "Y")
        g.add_edge(0, 1, "whatever")
        assert g.num_edges == 1


class TestValidation:
    def test_clean_graph(self):
        onto = example_meeting_ontology()
        g = SemanticGraph(onto)
        g.add_vertex(0, "Person")
        g.add_vertex(1, "Meeting")
        g.add_edge(0, 1, "attends")
        assert validate_graph(g) == []

    def test_violations_reported(self):
        onto = example_meeting_ontology()
        g = SemanticGraph()  # untyped container, validated post-hoc
        g.add_vertex(0, "Person")
        g.add_vertex(1, "Alien")
        g.add_vertex(2, "Date")
        g.add_edge(0, 2, "occurred on")
        violations = validate_graph(g, onto)
        kinds = sorted(v.kind for v in violations)
        assert kinds == ["forbidden-edge", "unknown-vertex-type"]

    def test_requires_an_ontology(self):
        g = SemanticGraph()
        with pytest.raises(ValueError):
            validate_graph(g)
