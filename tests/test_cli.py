"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import main
from repro.graphgen import read_ascii_edges, read_binary_edges


class TestGenerateAndStats:
    @pytest.mark.parametrize("generator", ["pubmed", "ba", "rmat"])
    def test_generate_ascii(self, tmp_path, capsys, generator):
        out = tmp_path / "edges.txt"
        rc = main(
            ["generate", str(out), "--generator", generator, "--vertices", "300"]
        )
        assert rc == 0
        with open(out) as f:
            edges = read_ascii_edges(f)
        assert len(edges) > 100
        assert "wrote" in capsys.readouterr().out

    def test_generate_binary(self, tmp_path):
        out = tmp_path / "edges.bin"
        assert main(["generate", str(out), "--vertices", "200"]) == 0
        with open(out, "rb") as f:
            edges = read_binary_edges(f)
        assert edges.shape[1] == 2

    def test_stats(self, tmp_path, capsys):
        out = tmp_path / "e.txt"
        main(["generate", str(out), "--vertices", "200"])
        capsys.readouterr()
        assert main(["stats", str(out)]) == 0
        text = capsys.readouterr().out
        assert "Vertices" in text and "Avg. Deg." in text


class TestSearch:
    def test_search_roundtrip(self, tmp_path, capsys):
        out = tmp_path / "e.txt"
        main(["generate", str(out), "--vertices", "300", "--seed", "3"])
        capsys.readouterr()
        rc = main(
            [
                "search", str(out),
                "--query", "0:250", "--query", "1:1",
                "--backend", "HashMap", "--backends", "3",
            ]
        )
        assert rc == 0
        text = capsys.readouterr().out
        assert "ingested" in text
        assert "distance(0 -> 250)" in text
        assert "distance(1 -> 1) = 0" in text

    def test_search_pipelined(self, tmp_path, capsys):
        out = tmp_path / "e.txt"
        main(["generate", str(out), "--vertices", "200"])
        capsys.readouterr()
        assert main(["search", str(out), "--query", "0:5", "--pipelined"]) == 0
        assert "distance(0 -> 5)" in capsys.readouterr().out


class TestExperiment:
    def test_table_experiment(self, capsys):
        assert main(["experiment", "table5.1", "--scale", "0.1"]) == 0
        assert "Table 5.1" in capsys.readouterr().out

    def test_unknown_experiment(self, capsys):
        assert main(["experiment", "fig9.9"]) == 2
        assert "unknown experiment" in capsys.readouterr().out

    def test_list(self, capsys):
        assert main(["list"]) == 0
        text = capsys.readouterr().out
        assert "fig5.4" in text and "PubMed-S" in text
