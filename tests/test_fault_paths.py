"""Failure-injection and error-propagation tests.

A distributed storage framework is defined as much by how it fails as by
how it succeeds: these tests corrupt on-disk state, raise inside rank
programs and filters, and drive engines into their guard rails, asserting
that every failure surfaces as the right exception instead of silent
corruption.
"""

import numpy as np
import pytest

from repro.datacutter import DataCutterRuntime, Filter, FilterGraph
from repro.simcluster import BlockDevice, MemoryBacking, NodeSpec, SimCluster, SimNode
from repro.storage import BTree, KVStore, PagedFile
from repro.util import (
    GraphStorageException,
    PageFormatError,
    SimulationError,
    StorageEngineError,
)


class TestRankFailures:
    def test_exception_in_rank_program_propagates(self):
        cluster = SimCluster(nranks=2)

        def program(ctx):
            if ctx.rank == 1:
                raise RuntimeError("node 1 exploded")
            yield from ctx.comm.barrier()

        with pytest.raises(RuntimeError, match="node 1 exploded"):
            cluster.run(program)

    def test_invalid_yield_rejected(self):
        cluster = SimCluster(nranks=1)

        def program(ctx):
            yield "not-an-effect"

        with pytest.raises(SimulationError, match="invalid effect"):
            cluster.run(program)

    def test_exception_in_filter_propagates(self):
        class Bomb(Filter):
            outputs = ("out",)

            def process(self, ctx):
                raise ValueError("filter bomb")

        class Sink(Filter):
            inputs = ("in",)

            def process(self, ctx):
                yield from ctx.read("in")

        g = FilterGraph()
        g.add_filter("bomb", Bomb, [0])
        g.add_filter("sink", Sink, [1])
        g.connect("bomb", "out", "sink", "in")
        with pytest.raises(ValueError, match="filter bomb"):
            DataCutterRuntime(g, SimCluster(nranks=2)).run()


class TestCorruptedStorage:
    def test_btree_detects_bad_node_type(self):
        dev = BlockDevice()
        tree = BTree(PagedFile(dev, 256), cache_pages=0)
        tree.put(b"k", b"v")
        # Stomp the root page's type byte on disk.
        root_offset = tree.root * 256
        dev.write(root_offset, b"\x7f")
        with pytest.raises(PageFormatError):
            tree.get(b"k")

    def test_btree_detects_bad_meta_magic(self):
        dev = BlockDevice()
        tree = BTree(PagedFile(dev, 256), cache_pages=0)
        tree.put(b"k", b"v")
        dev.write(0, b"\x00\x00\x00\x00")
        with pytest.raises(PageFormatError):
            BTree(PagedFile(dev, 256))

    def test_btree_detects_truncated_overflow_chain(self):
        dev = BlockDevice()
        tree = BTree(PagedFile(dev, 256), cache_pages=0)
        tree.put(b"big", b"x" * 1000)  # spills to overflow pages
        # Zero a chunk-length field deep in the chain: lengths mismatch.
        # Find an overflow page: scan pages for non-node types.
        pf = tree.pages
        for page_no in range(1, pf.npages):
            raw = pf.read_page(page_no)
            if raw[0] not in (0x4C, 0x49) and raw != b"\x00" * 256:
                dev.write(page_no * 256 + 8, (0).to_bytes(4, "big"))
                break
        with pytest.raises(PageFormatError):
            tree.get(b"big")

    def test_grdb_rejects_cycle_in_chain(self):
        from repro.graphdb import GrDB, GrDBFormat
        from repro.graphdb.grdb.format import encode_pointer

        fmt = GrDBFormat(capacities=(2, 4), block_sizes=(128, 128), max_file_bytes=1024)
        node = SimNode(0, NodeSpec())
        db = GrDB(node.disk, fmt=fmt, clock=node.clock)
        db.store_edges([(0, 1), (0, 2), (0, 3)])  # chains into level 1
        # Point the level-1 tail back at itself.
        chain = db.chain_of(0)
        level, sb = chain[-1]
        slots = db._read_slots(level, sb).copy()
        slots[-1] = encode_pointer(level, sb)
        db._write_slots(level, sb, slots)
        db.invalidate_tail_memo()
        with pytest.raises(GraphStorageException):
            db.get_adjacency(0)


class TestEngineGuards:
    def test_kvstore_oversized_key(self):
        s = KVStore(BlockDevice(), page_size=256)
        with pytest.raises(StorageEngineError):
            s.put(b"k" * 200, b"v")

    def test_pagedfile_rejects_mismatched_reopen(self):
        dev = BlockDevice()
        pf = PagedFile(dev, 64)
        pf.allocate_page()
        # Reopen with a different page size silently misinterprets pages;
        # the B-tree layer catches it via its format checks.
        tree_dev = BlockDevice()
        tree = BTree(PagedFile(tree_dev, 256))
        tree.put(b"a", b"b")
        tree.flush()
        # The meta page's magic survives a smaller-page reinterpretation,
        # but the first node access trips the per-page type check.
        reopened = BTree(PagedFile(tree_dev, 128))
        with pytest.raises(PageFormatError):
            reopened.get(b"a")

    def test_store_edges_wrong_shape(self):
        from repro.graphdb import make_graphdb

        node = SimNode(0, NodeSpec())
        db = make_graphdb("HashMap", node)
        with pytest.raises(ValueError):
            db.store_edges(np.array([1, 2, 3]))  # not reshapable to (E, 2)


class TestMemoryBackingEdge:
    def test_zero_length_ops(self):
        m = MemoryBacking()
        assert m.read(0, 0) == b""
        m.write(5, b"")
        assert m.size() == 0  # empty write does not extend
