"""Failure-injection and error-propagation tests.

A distributed storage framework is defined as much by how it fails as by
how it succeeds: these tests corrupt on-disk state, raise inside rank
programs and filters, and drive engines into their guard rails, asserting
that every failure surfaces as the right exception instead of silent
corruption.
"""

import numpy as np
import pytest

from repro import MSSG, MSSGConfig
from repro.datacutter import DataCutterRuntime, Filter, FilterGraph
from repro.graphgen import pubmed_like
from repro.simcluster import (
    BlockDevice,
    DiskFault,
    FaultPlan,
    MemoryBacking,
    NodeSpec,
    SimCluster,
    SimNode,
)
from repro.storage import BTree, KVStore, PagedFile
from repro.util import (
    ConfigError,
    DeviceFailedError,
    GraphStorageException,
    PageFormatError,
    SimulationError,
    StorageEngineError,
)


class TestRankFailures:
    def test_exception_in_rank_program_propagates(self):
        cluster = SimCluster(nranks=2)

        def program(ctx):
            if ctx.rank == 1:
                raise RuntimeError("node 1 exploded")
            yield from ctx.comm.barrier()

        with pytest.raises(RuntimeError, match="node 1 exploded"):
            cluster.run(program)

    def test_invalid_yield_rejected(self):
        cluster = SimCluster(nranks=1)

        def program(ctx):
            yield "not-an-effect"

        with pytest.raises(SimulationError, match="invalid effect"):
            cluster.run(program)

    def test_exception_in_filter_propagates(self):
        class Bomb(Filter):
            outputs = ("out",)

            def process(self, ctx):
                raise ValueError("filter bomb")

        class Sink(Filter):
            inputs = ("in",)

            def process(self, ctx):
                yield from ctx.read("in")

        g = FilterGraph()
        g.add_filter("bomb", Bomb, [0])
        g.add_filter("sink", Sink, [1])
        g.connect("bomb", "out", "sink", "in")
        with pytest.raises(ValueError, match="filter bomb"):
            DataCutterRuntime(g, SimCluster(nranks=2)).run()


class TestCorruptedStorage:
    def test_btree_detects_bad_node_type(self):
        dev = BlockDevice()
        tree = BTree(PagedFile(dev, 256), cache_pages=0)
        tree.put(b"k", b"v")
        # Stomp the root page's type byte on disk.
        root_offset = tree.root * 256
        dev.write(root_offset, b"\x7f")
        with pytest.raises(PageFormatError):
            tree.get(b"k")

    def test_btree_detects_bad_meta_magic(self):
        dev = BlockDevice()
        tree = BTree(PagedFile(dev, 256), cache_pages=0)
        tree.put(b"k", b"v")
        dev.write(0, b"\x00\x00\x00\x00")
        with pytest.raises(PageFormatError):
            BTree(PagedFile(dev, 256))

    def test_btree_detects_truncated_overflow_chain(self):
        dev = BlockDevice()
        tree = BTree(PagedFile(dev, 256), cache_pages=0)
        tree.put(b"big", b"x" * 1000)  # spills to overflow pages
        # Zero a chunk-length field deep in the chain: lengths mismatch.
        # Find an overflow page: scan pages for non-node types.
        pf = tree.pages
        for page_no in range(1, pf.npages):
            raw = pf.read_page(page_no)
            if raw[0] not in (0x4C, 0x49) and raw != b"\x00" * 256:
                dev.write(page_no * 256 + 8, (0).to_bytes(4, "big"))
                break
        with pytest.raises(PageFormatError):
            tree.get(b"big")

    def test_grdb_rejects_cycle_in_chain(self):
        from repro.graphdb import GrDB, GrDBFormat
        from repro.graphdb.grdb.format import encode_pointer

        fmt = GrDBFormat(capacities=(2, 4), block_sizes=(128, 128), max_file_bytes=1024)
        node = SimNode(0, NodeSpec())
        db = GrDB(node.disk, fmt=fmt, clock=node.clock)
        db.store_edges([(0, 1), (0, 2), (0, 3)])  # chains into level 1
        # Point the level-1 tail back at itself.
        chain = db.chain_of(0)
        level, sb = chain[-1]
        slots = db._read_slots(level, sb).copy()
        slots[-1] = encode_pointer(level, sb)
        db._write_slots(level, sb, slots)
        db.invalidate_tail_memo()
        with pytest.raises(GraphStorageException):
            db.get_adjacency(0)


class TestEngineGuards:
    def test_kvstore_oversized_key(self):
        s = KVStore(BlockDevice(), page_size=256)
        with pytest.raises(StorageEngineError):
            s.put(b"k" * 200, b"v")

    def test_pagedfile_rejects_mismatched_reopen(self):
        dev = BlockDevice()
        pf = PagedFile(dev, 64)
        pf.allocate_page()
        # Reopen with a different page size silently misinterprets pages;
        # the B-tree layer catches it via its format checks.
        tree_dev = BlockDevice()
        tree = BTree(PagedFile(tree_dev, 256))
        tree.put(b"a", b"b")
        tree.flush()
        # The meta page's magic survives a smaller-page reinterpretation,
        # but the first node access trips the per-page type check.
        reopened = BTree(PagedFile(tree_dev, 128))
        with pytest.raises(PageFormatError):
            reopened.get(b"a")

    def test_store_edges_wrong_shape(self):
        from repro.graphdb import make_graphdb

        node = SimNode(0, NodeSpec())
        db = make_graphdb("HashMap", node)
        with pytest.raises(ValueError):
            db.store_edges(np.array([1, 2, 3]))  # not reshapable to (E, 2)


class TestMemoryBackingEdge:
    def test_zero_length_ops(self):
        m = MemoryBacking()
        assert m.read(0, 0) == b""
        m.write(5, b"")
        assert m.size() == 0  # empty write does not extend


class TestFaultInjection:
    """Unit-level behavior of DiskFault / FaultPlan / BlockDevice hooks."""

    def test_time_fault_fires_and_is_sticky(self):
        node = SimNode(0, NodeSpec(), fault_plan=FaultPlan.kill_node(0, at_time=0.0))
        dev = node.disk()
        with pytest.raises(DeviceFailedError):
            dev.read(0, 16)
        assert dev.failed
        assert dev.stats.failures == 1
        with pytest.raises(DeviceFailedError):
            dev.write(0, b"x")  # still dead; failure counted once
        assert dev.stats.failures == 1

    def test_after_ops_fault(self):
        plan = FaultPlan([DiskFault(node=0, after_ops=3)])
        dev = SimNode(0, NodeSpec(), fault_plan=plan).disk()
        for i in range(3):
            dev.write(i * 8, b"ok")
        with pytest.raises(DeviceFailedError):
            dev.read(0, 2)
        assert dev.ops == 3  # the fourth operation never completed

    def test_readv_checks_faults(self):
        plan = FaultPlan([DiskFault(node=0, after_ops=0)])
        dev = SimNode(0, NodeSpec(), fault_plan=plan).disk()
        with pytest.raises(DeviceFailedError):
            dev.readv([(0, 8), (16, 8)])

    def test_slow_fault_multiplies_latency(self):
        def read_cost(plan):
            node = SimNode(0, NodeSpec(), fault_plan=plan)
            dev = node.disk()
            dev.write(0, b"z" * 4096)
            t0 = node.clock.now
            dev.read(0, 4096)
            return node.clock.now - t0

        healthy = read_cost(None)
        slow = read_cost(
            FaultPlan([DiskFault(node=0, kind="slow", at_time=0.0, slow_factor=10.0)])
        )
        assert healthy > 0
        assert slow == pytest.approx(10.0 * healthy)

    def test_disarmed_plan_is_inert_until_armed(self):
        plan = FaultPlan.kill_node(0, at_time=0.0)
        plan.disarm()
        dev = SimNode(0, NodeSpec(), fault_plan=plan).disk()
        dev.write(0, b"fine")  # scheduled fault held back
        plan.arm()
        with pytest.raises(DeviceFailedError):
            dev.read(0, 4)

    def test_fault_matches_device_prefix_and_node(self):
        plan = FaultPlan([DiskFault(node=0, device="grdb", at_time=0.0)])
        node = SimNode(0, NodeSpec(), fault_plan=plan)
        with pytest.raises(DeviceFailedError):
            node.disk("grdb_L0").write(0, b"x")
        node.disk("wal").write(0, b"x")  # different prefix: unaffected
        other = SimNode(1, NodeSpec(), fault_plan=plan)
        other.disk("grdb_L0").write(0, b"x")  # different node: unaffected

    def test_clearing_plan_cancels_pending_but_not_dead(self):
        plan = FaultPlan([DiskFault(node=0, after_ops=1)])
        node = SimNode(0, NodeSpec(), fault_plan=plan)
        dev = node.disk()
        dev.write(0, b"a")
        node.install_fault_plan(None)  # cancel before the trigger
        dev.read(0, 1)  # would have failed under the plan
        node.install_fault_plan(FaultPlan.kill_node(0, at_time=0.0))
        with pytest.raises(DeviceFailedError):
            dev.read(0, 1)
        node.install_fault_plan(None)
        with pytest.raises(DeviceFailedError):
            dev.read(0, 1)  # hard failure is not repaired by clearing

    def test_invalid_faults_rejected(self):
        with pytest.raises(ConfigError):
            DiskFault(node=0)  # no trigger at all
        with pytest.raises(ConfigError):
            DiskFault(node=0, kind="melt", at_time=0.0)
        with pytest.raises(ConfigError):
            DiskFault(node=0, at_time=-1.0)
        with pytest.raises(ConfigError):
            DiskFault(node=0, after_ops=-5)
        with pytest.raises(ConfigError):
            DiskFault(node=0, kind="slow", at_time=0.0, slow_factor=0.5)

    def test_cluster_wide_install_covers_existing_devices(self):
        cluster = SimCluster(nranks=2)

        def touch(ctx):
            ctx.node.disk().write(0, b"warm")
            yield from ctx.comm.barrier()

        cluster.run(touch)
        cluster.install_fault_plan(FaultPlan.kill_node(1, at_time=0.0))

        def probe(ctx):
            yield from ctx.comm.barrier()
            try:
                ctx.node.disk().read(0, 4)
                return "ok"
            except DeviceFailedError:
                return "dead"

        assert cluster.run(probe) == ["ok", "dead"]


class TestReplicatedDeclustering:
    def _rows(self, arr):
        return {tuple(r) for r in np.asarray(arr).tolist()}

    def test_assign_rotates_base_partitions(self):
        from repro.services.declustering import ReplicatedDeclusterer, VertexRoundRobin

        window = np.column_stack([np.arange(30), np.arange(30) + 100])
        base = VertexRoundRobin(3)
        rep = ReplicatedDeclusterer(VertexRoundRobin(3), replication=2)
        plain = base.assign(window)
        doubled = rep.assign(window)
        for q in range(3):
            want = self._rows(plain[q]) | self._rows(plain[(q - 1) % 3])
            assert self._rows(doubled[q]) == want

    def test_replication_one_matches_base(self):
        from repro.services.declustering import ReplicatedDeclusterer, VertexRoundRobin

        window = np.column_stack([np.arange(20), np.arange(20) + 50])
        rep = ReplicatedDeclusterer(VertexRoundRobin(4), replication=1)
        for mine, base in zip(rep.assign(window), VertexRoundRobin(4).assign(window)):
            assert self._rows(mine) == self._rows(base)

    def test_owner_of_reports_primary_and_chain_rotates(self):
        from repro.services.declustering import ReplicatedDeclusterer, VertexRoundRobin

        rep = ReplicatedDeclusterer(VertexRoundRobin(4), replication=3)
        assert rep.owner_of(np.array([5, 8])).tolist() == [1, 0]
        assert rep.replica_chain(3) == [3, 0, 1]
        assert rep.owner_known

    def test_validation(self):
        from repro.services.declustering import ReplicatedDeclusterer, VertexRoundRobin

        with pytest.raises(ConfigError):
            ReplicatedDeclusterer(VertexRoundRobin(3), replication=0)
        with pytest.raises(ConfigError):
            ReplicatedDeclusterer(VertexRoundRobin(3), replication=4)
        with pytest.raises(ConfigError):
            ReplicatedDeclusterer(
                ReplicatedDeclusterer(VertexRoundRobin(3), 2), replication=2
            )

    def test_config_replication_bounds(self):
        with pytest.raises(ConfigError):
            MSSGConfig(num_backends=2, replication=3)
        with pytest.raises(ConfigError):
            MSSGConfig(num_backends=2, replication=0)


# --- End-to-end failover: the acceptance scenario of the fault-tolerance PR.
#
# A small graph with a tiny block cache (so queries are forced onto the
# simulated devices — a graph that fits in cache never touches a disk and
# faults can't fire), three back-ends, one front-end.  Node index of
# back-end q is 1 + q.
_FT_EDGES = pubmed_like(600, seed=7)
_FT_SOURCE, _FT_DEST = 3, 450


def _ft_query(
    replication,
    kill=(),
    at_time=0.0,
    pipelined=False,
    declustering="vertex-rr",
    backend="grDB",
    cache_blocks=4,
):
    mssg = MSSG(
        MSSGConfig(
            num_backends=3,
            num_frontends=1,
            backend=backend,
            declustering=declustering,
            replication=replication,
            cache_blocks=cache_blocks,
        )
    )
    try:
        report = mssg.ingest(_FT_EDGES)
        if kill:
            plan = FaultPlan(
                [DiskFault(node=1 + q, at_time=at_time) for q in kill]
            )
            mssg.set_fault_plan(plan)
        query = mssg.query_bfs(_FT_SOURCE, _FT_DEST, pipelined=pipelined)
        return report, query
    finally:
        mssg.close()


class TestQueryFailover:
    def test_ingest_reports_replication(self):
        ingest, _ = _ft_query(replication=2)
        single, _ = _ft_query(replication=1)
        assert ingest.replication == 2 and single.replication == 1
        assert ingest.entries_stored == 2 * single.entries_stored

    def test_failover_preserves_result(self):
        _, healthy = _ft_query(replication=2)
        _, faulted = _ft_query(replication=2, kill=[0])
        assert healthy.result is not None
        assert faulted.result == healthy.result
        assert faulted.failovers >= 1
        assert faulted.device_failures == 1
        assert not faulted.partial

    def test_failover_preserves_result_pipelined(self):
        _, healthy = _ft_query(replication=2, pipelined=True)
        _, faulted = _ft_query(replication=2, kill=[0], pipelined=True)
        assert faulted.result == healthy.result
        assert faulted.failovers >= 1
        assert not faulted.partial

    def test_unreplicated_fault_degrades_to_partial(self):
        # Cache disabled so the query must touch the dead device: with
        # compressed adjacency (the default) this tiny graph is otherwise
        # fully cache-resident and the fault would never fire.
        _, report = _ft_query(replication=1, kill=[0], cache_blocks=0)
        assert report.partial
        assert report.device_failures == 1
        assert report.dropped_vertices > 0

    def test_exhausted_replica_chain_degrades_to_partial(self):
        # Back-ends 0 and 1 hold both copies of partition 0; killing both
        # exhausts the chain, which must degrade — not raise.
        _, report = _ft_query(replication=2, kill=[0, 1])
        assert report.partial
        assert report.device_failures == 2

    def test_device_death_mid_bfs(self):
        _, healthy = _ft_query(replication=2)
        _, faulted = _ft_query(
            replication=2, kill=[0], at_time=healthy.seconds * 0.5
        )
        assert faulted.result == healthy.result
        assert faulted.device_failures == 1
        assert not faulted.partial

    def test_broadcast_mode_failover(self):
        _, healthy = _ft_query(replication=2, declustering="edge-rr")
        _, faulted = _ft_query(replication=2, declustering="edge-rr", kill=[0])
        assert faulted.result == healthy.result
        assert not faulted.partial
        _, single = _ft_query(replication=1, declustering="edge-rr", kill=[0])
        assert single.partial

    def test_berkeleydb_backend_failover(self):
        _, healthy = _ft_query(replication=2, backend="BerkeleyDB")
        _, faulted = _ft_query(replication=2, backend="BerkeleyDB", kill=[0])
        assert faulted.result == healthy.result
        assert faulted.failovers >= 1
        assert not faulted.partial

    def test_ingestion_time_fault_no_longer_raises(self):
        # Ingestion is fault-tolerant now: a plan live during ingest is
        # flagged on the report instead of surfacing as DeviceFailedError.
        mssg = MSSG(
            MSSGConfig(
                num_backends=3,
                num_frontends=1,
                cache_blocks=4,
                fault_plan=FaultPlan.kill_node(1, at_time=0.0),
            )
        )
        try:
            report = mssg.ingest(_FT_EDGES)
            assert report.degraded
            assert report.failed_backends == (0,)
            # Unreplicated: the dead owner was the only holder.
            assert report.lost_entries > 0
            assert report.per_backend_entries[0] == 0
        finally:
            mssg.close()


_ALL_DECLUSTERERS = ["vertex-rr", "vertex-hash", "edge-rr", "window-greedy"]


def _backend_contents(mssg):
    """Per-back-end multiset of stored (vertex, neighbor) entries."""
    out = []
    for db in mssg.dbs:
        rows = []
        for v in db.local_vertices():
            for n in db.get_adjacency(int(v)):
                rows.append((int(v), int(n)))
        out.append(sorted(rows))
    return out


class TestIngestionDeterminism:
    """The declusterer protocol (reset/prepare/assign_at) must make
    partitions a pure function of the stream: identical for every
    front-end count and reader-copy schedule, for every strategy."""

    @pytest.mark.parametrize("declustering", _ALL_DECLUSTERERS)
    @pytest.mark.parametrize("replication", [1, 2])
    def test_partitions_independent_of_frontend_count(self, declustering, replication):
        edges = pubmed_like(300, seed=3)

        def deploy(F):
            mssg = MSSG(
                MSSGConfig(
                    num_backends=3,
                    num_frontends=F,
                    backend="HashMap",
                    declustering=declustering,
                    replication=replication,
                    window_size=64,
                )
            )
            try:
                report = mssg.ingest(edges)
                return report.per_backend_entries, _backend_contents(mssg)
            finally:
                mssg.close()

        ref_counts, ref_contents = deploy(1)
        for F in (2, 4):
            counts, contents = deploy(F)
            assert counts == ref_counts, (declustering, F)
            assert contents == ref_contents, (declustering, F)


class TestIngestionStateReset:
    """Regression: stateful declusterers must not leak state between
    successive ingest() calls on one deployment (stale round-robin
    counters / owner tables used to shift the second run's assignments)."""

    @pytest.mark.parametrize("declustering", ["edge-rr", "window-greedy"])
    def test_second_ingest_assigns_like_the_first(self, declustering):
        edges = pubmed_like(200, seed=5)
        mssg = MSSG(
            MSSGConfig(num_backends=3, backend="HashMap", declustering=declustering)
        )
        try:
            first = mssg.ingest(edges)
            second = mssg.ingest(edges)
            assert second.per_backend_entries == first.per_backend_entries
        finally:
            mssg.close()


class TestIngestionFailover:
    """Tentpole: a back-end dying mid-ingest degrades instead of raising."""

    def _deploy(self, replication, at_time=0.01, declustering="vertex-rr"):
        return MSSG(
            MSSGConfig(
                num_backends=3,
                num_frontends=1,
                cache_blocks=4,
                replication=replication,
                declustering=declustering,
                fault_plan=FaultPlan.kill_node(1, at_time=at_time),
            )
        )

    def test_replicated_kill_loses_nothing(self):
        mssg = self._deploy(replication=2)
        try:
            report = mssg.ingest(_FT_EDGES)
            assert report.degraded
            assert report.failed_backends == (0,)
            # Every shard bound for the dead back-end reached the surviving
            # member of its chain.
            assert report.lost_entries == 0
        finally:
            mssg.close()

    def test_replicated_kill_preserves_query_answer(self):
        _, healthy = _ft_query(replication=2)
        mssg = self._deploy(replication=2)
        try:
            mssg.ingest(_FT_EDGES)
            faulted = mssg.query_bfs(_FT_SOURCE, _FT_DEST)
            assert faulted.result == healthy.result
            assert not faulted.partial
        finally:
            mssg.close()

    def test_unreplicated_kill_counts_losses(self):
        # Kill early enough to land between window deliveries: compressed
        # adjacency (the default) stores windows faster, and a death after
        # the last delivery degrades the flush without losing entries.
        mssg = self._deploy(replication=1, at_time=0.002)
        try:
            report = mssg.ingest(_FT_EDGES)
            assert report.degraded
            assert report.failed_backends == (0,)
            assert report.lost_entries > 0
        finally:
            mssg.close()

    def test_whole_chain_dead_drops_shards(self):
        # Both holders of partition 0's chain die: its shards are lost
        # even with replication.
        mssg = MSSG(
            MSSGConfig(
                num_backends=3,
                num_frontends=1,
                cache_blocks=4,
                replication=2,
                fault_plan=FaultPlan(
                    [DiskFault(node=1, at_time=0.0), DiskFault(node=2, at_time=0.0)]
                ),
            )
        )
        try:
            report = mssg.ingest(_FT_EDGES)
            assert report.degraded
            assert set(report.failed_backends) == {0, 1}
            assert report.lost_entries > 0
        finally:
            mssg.close()


class TestRebalance:
    """Tentpole: MSSG.rebalance() restores effective replication to k and
    post-rebalance queries pay zero failover rounds."""

    @pytest.mark.parametrize("declustering", ["vertex-rr", "vertex-hash", "window-greedy"])
    def test_restores_replication_and_failover_free_queries(self, declustering):
        _, healthy = _ft_query(replication=2, declustering=declustering)
        mssg = MSSG(
            MSSGConfig(
                num_backends=3,
                num_frontends=1,
                cache_blocks=4,
                replication=2,
                declustering=declustering,
                fault_plan=FaultPlan.kill_node(1, at_time=0.01),
            )
        )
        try:
            report = mssg.ingest(_FT_EDGES)
            assert report.degraded and report.lost_entries == 0
            rb = mssg.rebalance()
            assert rb.dead_backends == (0,)
            assert rb.replication == 2
            assert rb.copies_restored >= 1
            assert rb.entries_copied > 0
            assert not rb.unrecoverable_partitions
            for pipelined in (False, True):
                q = mssg.query_bfs(_FT_SOURCE, _FT_DEST, pipelined=pipelined)
                assert q.result == healthy.result
                assert q.failovers == 0
                assert q.device_failures == 0
                assert not q.partial
        finally:
            mssg.close()

    def test_noop_when_healthy(self):
        mssg = MSSG(MSSGConfig(num_backends=3, num_frontends=1, replication=2))
        try:
            mssg.ingest(_FT_EDGES)
            rb = mssg.rebalance()
            assert rb.dead_backends == ()
            assert rb.copies_restored == 0 and rb.entries_copied == 0
            assert rb.replication == 2
        finally:
            mssg.close()

    def test_owner_unknown_declustering_rejected(self):
        mssg = MSSG(
            MSSGConfig(
                num_backends=3,
                num_frontends=1,
                cache_blocks=4,
                replication=2,
                declustering="edge-rr",
                fault_plan=FaultPlan.kill_node(1, at_time=0.0),
            )
        )
        try:
            mssg.ingest(_FT_EDGES)
            with pytest.raises(ConfigError, match="owner-unknown"):
                mssg.rebalance()
        finally:
            mssg.close()

    def test_unreplicated_death_is_unrecoverable(self):
        mssg = MSSG(
            MSSGConfig(
                num_backends=3,
                num_frontends=1,
                cache_blocks=4,
                replication=1,
                fault_plan=FaultPlan.kill_node(1, at_time=0.0),
            )
        )
        try:
            mssg.ingest(_FT_EDGES)
            rb = mssg.rebalance()
            assert rb.unrecoverable_partitions == (0,)
            assert rb.copies_restored == 0
            # Queries keep working, degraded, with the death pre-recorded.
            q = mssg.query_bfs(_FT_SOURCE, _FT_DEST)
            assert q.partial
        finally:
            mssg.close()

    def test_fault_summary_tracks_repair(self):
        from repro.experiments import fault_summary

        mssg = MSSG(
            MSSGConfig(
                num_backends=3,
                num_frontends=1,
                cache_blocks=4,
                replication=2,
                fault_plan=FaultPlan.kill_node(1, at_time=0.01),
            )
        )
        try:
            mssg.ingest(_FT_EDGES)
            before = fault_summary(mssg)
            assert before.dead_backends == (0,)
            assert before.degraded_ingest
            assert before.effective_replication == 2  # chains not yet edited
            mssg.rebalance()
            after = fault_summary(mssg)
            assert after.effective_replication == 2
            assert after.faults_fired >= 1
        finally:
            mssg.close()


class TestWindowGreedyOwnerLookup:
    def _prepared(self):
        from repro.services.declustering import WindowGreedy

        edges = pubmed_like(100, seed=9)
        wg = WindowGreedy(3)
        wg.reset()
        wg.prepare(edges, 32)
        return wg, edges

    def test_vectorized_lookup_matches_table(self):
        wg, edges = self._prepared()
        verts = np.unique(edges)
        got = wg.owner_of(verts)
        assert got.tolist() == [wg._owner[int(v)] for v in verts]

    def test_unknown_vertex_clean_error(self):
        wg, _ = self._prepared()
        with pytest.raises(ConfigError, match="vertex 999999 was never ingested"):
            wg.owner_of(np.array([999999], dtype=np.int64))

    def test_empty_table_clean_error(self):
        from repro.services.declustering import WindowGreedy

        with pytest.raises(ConfigError, match="vertex 5 was never ingested"):
            WindowGreedy(2).owner_of(np.array([5], dtype=np.int64))
