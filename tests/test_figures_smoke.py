"""Tiny-scale smoke tests for the figure reproductions.

The benchmarks run the figures at full benchmark scale with shape
assertions; these tests only verify that every figure function executes
end-to-end and emits structurally complete series, so `pytest tests/`
covers ``repro.experiments.figures`` without the benchmark runtime.
"""

import pytest

from repro.experiments import figures

SCALE = 0.08


def test_fig_5_1_structure():
    series, text = figures.fig_5_1(scale=SCALE, num_queries=3, num_backends=4)
    assert set(series) == {"Array", "HashMap"}
    assert all(v > 0 for s in series.values() for v in s.values())
    assert "Figure 5.1" in text


def test_fig_5_2_structure():
    series = figures.fig_5_2(scale=SCALE, num_queries=3, num_backends=4, render=False)
    assert set(series) == {
        "BerkeleyDB", "BerkeleyDB (no cache)", "grDB", "grDB (no cache)",
    }


def test_fig_5_3_structure():
    series = figures.fig_5_3(scale=SCALE, num_backends=4, render=False)
    assert set(series) == set(figures.FIVE_BACKENDS)
    for by_f in series.values():
        assert set(by_f) == {1, 4}


def test_fig_5_6_and_5_7_share_runs():
    s6 = figures.fig_5_6(scale=SCALE, num_queries=2, backend_counts=(2, 4), render=False)
    s7 = figures.fig_5_7(scale=SCALE, num_queries=2, backend_counts=(2, 4), render=False)
    assert set(s6) == set(s7)
    for backend in s6:
        assert set(s6[backend]) == {2, 4}
        assert all(v > 0 for v in s7[backend].values())


def test_fig_5_8_and_5_9_share_runs():
    s8 = figures.fig_5_8(scale=SCALE, num_queries=2, backend_counts=(2,), render=False)
    s9 = figures.fig_5_9(scale=SCALE, num_queries=2, backend_counts=(2,), render=False)
    assert set(s8) == {"in-memory visited", "external visited"}
    assert set(s9) == set(s8)


def test_table_5_1_render_modes():
    stats = figures.table_5_1(scale=SCALE, render=False)
    assert [s.name for s in stats] == ["PubMed-S", "PubMed-L", "Syn-2B"]
