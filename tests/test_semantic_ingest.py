"""Tests for typed ingestion, the ER generator, and MiniSQL LIMIT."""

import numpy as np
import pytest

from repro import MSSG, MSSGConfig
from repro.graphgen import erdos_renyi_edges, graph_stats, pubmed_semantic_graph
from repro.ontology import SemanticGraph
from repro.util import ConfigError


class TestSemanticIngest:
    def test_ingest_typed_graph(self):
        g = pubmed_semantic_graph(num_articles=60, num_authors=20, seed=9)
        with MSSG(MSSGConfig(num_backends=2, backend="HashMap")) as mssg:
            report, codes = mssg.ingest_semantic(g)
            assert report.edges_ingested == g.num_edges
            assert set(codes) == {"Article", "Author", "Journal", "MeSHTerm"}
            # Typed BFS is immediately usable.
            answer = mssg.query(
                "typed-bfs", source=0, dest=30, allowed_codes=list(codes.values())
            )
            assert answer.result == mssg.query_bfs(0, 30).result

    def test_invalid_graph_rejected(self):
        from repro.graphgen import pubmed_ontology

        bad = SemanticGraph()  # untyped container, validated at ingest
        bad.add_vertex(0, "Article")
        bad.add_vertex(1, "Klingon")
        bad.add_edge(0, 1, "cites")
        bad.ontology = pubmed_ontology()
        with MSSG(MSSGConfig(num_backends=2, backend="HashMap")) as mssg:
            with pytest.raises(ConfigError):
                mssg.ingest_semantic(bad)

    def test_untyped_ontology_free_graph(self):
        g = SemanticGraph(name="plain")
        g.add_vertex(0, "X")
        g.add_vertex(1, "X")
        g.add_edge(0, 1)
        with MSSG(MSSGConfig(num_backends=2, backend="HashMap")) as mssg:
            report, codes = mssg.ingest_semantic(g)
            assert report.edges_ingested == 1
            assert codes == {"X": 0}


class TestErdosRenyi:
    def test_exact_edge_count(self):
        edges = erdos_renyi_edges(500, 2000, seed=1)
        assert len(edges) == 2000
        stats = graph_stats(edges)
        assert stats.undirected_edges == 2000

    def test_no_hubs(self):
        """The ch. 2 contrast: ER degree distribution has no heavy tail."""
        n = 2000
        er = erdos_renyi_edges(n, 8 * n, seed=2)
        stats = graph_stats(er)
        # Max degree stays within a few multiples of the mean.
        assert stats.max_degree < 4 * stats.avg_degree

    def test_deterministic(self):
        assert np.array_equal(
            erdos_renyi_edges(100, 300, seed=5), erdos_renyi_edges(100, 300, seed=5)
        )

    def test_bad_params(self):
        with pytest.raises(ConfigError):
            erdos_renyi_edges(1, 1)
        with pytest.raises(ConfigError):
            erdos_renyi_edges(10, 0)
        with pytest.raises(ConfigError):
            erdos_renyi_edges(10, 44)  # denser than rejection sampling allows


class TestSqlLimit:
    def make_db(self):
        from repro.simcluster import BlockDevice
        from repro.storage import MiniSQL

        devices = {}
        db = MiniSQL(lambda n: devices.setdefault(n, BlockDevice()))
        db.execute("CREATE TABLE t (a BIGINT)")
        for i in range(10):
            db.execute("INSERT INTO t VALUES (?)", (i,))
        return db

    def test_limit(self):
        db = self.make_db()
        assert db.execute("SELECT a FROM t ORDER BY a LIMIT 3") == [(0,), (1,), (2,)]
        assert db.execute("SELECT a FROM t ORDER BY a DESC LIMIT 1") == [(9,)]
        assert db.execute("SELECT COUNT(*) FROM t LIMIT 2") == [(2,)]

    def test_limit_zero_and_oversized(self):
        db = self.make_db()
        assert db.execute("SELECT a FROM t LIMIT 0") == []
        assert len(db.execute("SELECT a FROM t LIMIT 100")) == 10

    def test_limit_parse_errors(self):
        from repro.storage import parse_sql
        from repro.util import SqlError

        with pytest.raises(SqlError):
            parse_sql("SELECT a FROM t LIMIT x")
        with pytest.raises(SqlError):
            parse_sql("SELECT a FROM t LIMIT")
