"""Tests for declustering, the ingestion service, and the query service."""

import numpy as np
import pytest

from repro.graphdb import make_graphdb
from repro.graphgen import dedupe_edges, preferential_attachment
from repro.services import (
    EdgeRoundRobin,
    IngestionService,
    QueryService,
    VertexHash,
    VertexRoundRobin,
    WindowGreedy,
)
from repro.simcluster import SimCluster
from repro.util import ConfigError

EDGES = dedupe_edges(preferential_attachment(200, 3, seed=4))


class TestDeclusterers:
    @pytest.mark.parametrize("cls", [VertexRoundRobin, VertexHash, WindowGreedy])
    def test_vertex_granularity_invariant(self, cls):
        """All of a vertex's adjacency entries land on one node."""
        d = cls(4)
        parts = d.assign(EDGES)
        assert sum(len(p) for p in parts) == 2 * len(EDGES)
        seen_owner = {}
        for q, part in enumerate(parts):
            for src in np.unique(part[:, 0]):
                assert seen_owner.setdefault(int(src), q) == q

    @pytest.mark.parametrize("cls", [VertexRoundRobin, VertexHash, WindowGreedy])
    def test_owner_map_matches_assignment(self, cls):
        d = cls(4)
        parts = d.assign(EDGES)
        for q, part in enumerate(parts):
            if len(part):
                assert (d.owner_of(part[:, 0]) == q).all()

    def test_edge_rr_scatters_and_balances(self):
        d = EdgeRoundRobin(4)
        parts = d.assign(EDGES)
        sizes = [len(p) for p in parts]
        assert sum(sizes) == 2 * len(EDGES)
        assert max(sizes) - min(sizes) <= 2
        assert not d.owner_known
        with pytest.raises(NotImplementedError):
            d.owner_of(np.array([1]))

    def test_edge_rr_counter_spans_windows(self):
        d = EdgeRoundRobin(3)
        first = d.assign(EDGES[:4])
        second = d.assign(EDGES[4:8])
        # Round robin continues where the previous window stopped.
        sizes = [len(f) + len(s) for f, s in zip(first, second)]
        assert max(sizes) - min(sizes) <= 2

    def test_window_greedy_balances_load(self):
        d = WindowGreedy(4)
        d.assign(EDGES)
        sizes = d._load
        assert max(sizes) - min(sizes) <= 0.3 * max(sizes) + 8

    def test_bad_backend_count(self):
        with pytest.raises(ConfigError):
            VertexRoundRobin(0)


def make_service(nfront=1, nback=3, backend="HashMap", decluster=VertexRoundRobin, **kw):
    cluster = SimCluster(nranks=nfront + nback)
    dbs = [
        make_graphdb(backend, cluster.nodes[nfront + q]) for q in range(nback)
    ]
    declusterer = decluster(nback)
    svc = IngestionService(
        cluster, dbs, declusterer, num_frontends=nfront, window_size=32, **kw
    )
    return svc, cluster, dbs, declusterer


class TestIngestionService:
    def test_ingest_stores_everything(self):
        svc, _, dbs, _ = make_service()
        report = svc.ingest(EDGES)
        assert report.edges_ingested == len(EDGES)
        assert report.entries_stored == 2 * len(EDGES)
        assert sum(report.per_backend_entries) == 2 * len(EDGES)
        assert report.windows == (len(EDGES) + 31) // 32
        assert report.seconds > 0
        assert report.edges_per_second > 0
        # Adjacency must be reconstructable from the union of back-ends.
        u, v = map(int, EDGES[0])
        assert any(v in db.get_adjacency(u).tolist() for db in dbs)

    def test_multiple_frontends_ingest_same_data(self):
        svc1, _, dbs1, _ = make_service(nfront=1)
        svc4, _, dbs4, _ = make_service(nfront=4)
        svc1.ingest(EDGES)
        svc4.ingest(EDGES)
        for q in range(3):
            for vertex in range(0, 200, 17):
                assert sorted(dbs1[q].get_adjacency(vertex).tolist()) == sorted(
                    dbs4[q].get_adjacency(vertex).tolist()
                )

    def test_more_frontends_not_slower(self):
        svc1, c1, _, _ = make_service(nfront=1)
        svc4, c4, _, _ = make_service(nfront=4)
        t1 = svc1.ingest(EDGES).seconds
        t4 = svc4.ingest(EDGES).seconds
        assert t4 <= t1 * 1.05

    def test_config_validation(self):
        cluster = SimCluster(nranks=2)
        dbs = [make_graphdb("HashMap", cluster.nodes[1])]
        with pytest.raises(ConfigError):
            IngestionService(cluster, dbs, VertexRoundRobin(2), num_frontends=1)
        with pytest.raises(ConfigError):
            IngestionService(cluster, dbs, VertexRoundRobin(1), num_frontends=0)
        with pytest.raises(ConfigError):
            IngestionService(
                SimCluster(nranks=1), dbs, VertexRoundRobin(1), num_frontends=1
            )

    def test_binary_input_cheaper_than_ascii(self):
        svc_a, _, _, _ = make_service(ascii_input=True)
        svc_b, _, _, _ = make_service(ascii_input=False)
        ta = svc_a.ingest(EDGES).seconds
        tb = svc_b.ingest(EDGES).seconds
        assert tb <= ta


class TestQueryService:
    def build(self, decluster=VertexRoundRobin, backend="HashMap", nfront=1, nback=3):
        svc, cluster, dbs, declusterer = make_service(
            nfront=nfront, nback=nback, backend=backend, decluster=decluster
        )
        svc.ingest(EDGES)
        return QueryService(cluster, dbs, declusterer, num_frontends=nfront)

    def test_bfs_query_correct(self):
        from repro.bfs import bfs_distance
        from repro.graphgen import CSRGraph

        qs = self.build()
        g = CSRGraph.from_edges(EDGES, num_vertices=200)
        for s, d in [(0, 150), (3, 77), (10, 11)]:
            expected = bfs_distance(g, s, d)
            report = qs.query("bfs", source=s, dest=d)
            assert report.result == (expected if expected != -1 else None)
            assert report.seconds > 0

    def test_pipelined_bfs_matches(self):
        qs = self.build()
        a = qs.query("bfs", source=0, dest=150)
        b = qs.query("pipelined-bfs", source=0, dest=150, threshold=16)
        assert a.result == b.result

    @pytest.mark.parametrize("decluster", [EdgeRoundRobin, VertexHash, WindowGreedy])
    def test_bfs_under_other_declusterings(self, decluster):
        from repro.bfs import bfs_distance
        from repro.graphgen import CSRGraph

        qs = self.build(decluster=decluster)
        g = CSRGraph.from_edges(EDGES, num_vertices=200)
        expected = bfs_distance(g, 0, 150)
        report = qs.query("bfs", source=0, dest=150)
        assert report.result == (expected if expected != -1 else None)

    def test_degree_analysis(self):
        from repro.graphgen import CSRGraph

        qs = self.build()
        g = CSRGraph.from_edges(EDGES, num_vertices=200)
        report = qs.query("degree", vertices=[0, 5, 199])
        for v in [0, 5, 199]:
            assert report.result[v] == g.degree(v)

    def test_neighborhood_analysis(self):
        from repro.bfs import bfs_levels
        from repro.graphgen import CSRGraph

        qs = self.build()
        g = CSRGraph.from_edges(EDGES, num_vertices=200)
        levels = bfs_levels(g, 0)
        expected = int(((levels >= 0) & (levels <= 2)).sum())
        report = qs.query("neighborhood", source=0, hops=2)
        assert report.result == expected

    def test_neighborhood_broadcast_mode(self):
        from repro.bfs import bfs_levels
        from repro.graphgen import CSRGraph

        qs = self.build(decluster=EdgeRoundRobin)
        g = CSRGraph.from_edges(EDGES, num_vertices=200)
        levels = bfs_levels(g, 0)
        expected = int(((levels >= 0) & (levels <= 2)).sum())
        assert qs.query("neighborhood", source=0, hops=2).result == expected

    def test_unknown_analysis(self):
        qs = self.build()
        with pytest.raises(ConfigError):
            qs.query("page-rank")

    def test_custom_analysis_registration(self):
        qs = self.build()

        def tiny(**params):
            from repro.services.query import QueryReport

            return QueryReport(analysis="tiny", seconds=0.0, result=params["x"] * 2)

        qs.register("tiny", tiny)
        assert "tiny" in qs.analyses()
        assert qs.query("tiny", x=21).result == 42

    def test_external_visited_query(self):
        qs = self.build()
        a = qs.query("bfs", source=0, dest=150, visited="memory")
        b = qs.query("bfs", source=0, dest=150, visited="external")
        assert a.result == b.result
        assert b.seconds >= a.seconds  # paying disk I/O for visited state
