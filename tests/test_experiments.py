"""Smoke/shape tests for the experiment harness at tiny scale.

Benchmarks run the figures at full benchmark scale; these tests exercise
the same code paths quickly (scale ~0.1) and assert structural sanity so
the harness itself is covered by ``pytest tests/``.
"""

import numpy as np
import pytest

from repro.experiments import (
    PUBMED_L,
    PUBMED_S,
    SYN_2B,
    WORKLOADS,
    Deployment,
    load_edges,
    run_ingest_experiment,
    run_search_experiment,
    scaled_grdb_format,
    table_5_1,
)
from repro.experiments.harness import default_cache_blocks, queries_for
from repro.experiments.report import format_rows, format_series_table
from repro.experiments.workloads import workload_stats

SCALE = 0.12


class TestWorkloads:
    def test_load_edges_memoized_and_cached(self):
        a = load_edges(PUBMED_S, SCALE)
        b = load_edges(PUBMED_S, SCALE)
        assert a is b  # in-process memo

    def test_all_workloads_generate(self):
        for w in WORKLOADS.values():
            edges = load_edges(w, SCALE)
            assert len(edges) > 100
            stats = workload_stats(w, SCALE)
            assert stats.min_degree >= 1

    def test_scaling_grows_graphs(self):
        small = load_edges(PUBMED_S, 0.1)
        large = load_edges(PUBMED_S, 0.3)
        assert len(large) > len(small)

    def test_table_5_1(self):
        stats, text = table_5_1(scale=SCALE)
        assert len(stats) == 3
        assert "PubMed-S" in text


class TestHarness:
    def test_default_cache_blocks(self):
        assert default_cache_blocks("grDB", 64 << 10) == 128
        assert default_cache_blocks("BerkeleyDB", 64 << 10) == 16
        assert default_cache_blocks("Array") == 0

    def test_scaled_grdb_format_valid(self):
        fmt = scaled_grdb_format()
        assert fmt.capacities == (2, 4, 16, 256, 4096, 16384)

    def test_queries_are_valid_and_memoized(self):
        q1 = queries_for(PUBMED_S, SCALE, 4, seed=1)
        q2 = queries_for(PUBMED_S, SCALE, 4, seed=1)
        assert q1 is q2
        assert all(dist >= 1 for _, _, dist in q1)

    def test_ingest_experiment(self):
        res = run_ingest_experiment(
            PUBMED_S, Deployment(backend="HashMap", num_backends=2), scale=SCALE
        )
        assert res.seconds > 0
        assert res.edges == len(load_edges(PUBMED_S, SCALE))
        assert res.edges_per_second > 0

    @pytest.mark.parametrize("backend", ["HashMap", "grDB"])
    def test_search_experiment(self, backend):
        res = run_search_experiment(
            PUBMED_S,
            Deployment(backend=backend, num_backends=2),
            scale=SCALE,
            num_queries=3,
            warmup_queries=1,
        )
        assert res.num_queries == 3
        assert res.seconds_by_distance
        assert res.total_edges_scanned > 0
        assert res.aggregate_eps > 0
        assert set(res.eps_by_distance) == set(res.seconds_by_distance)

    def test_search_experiment_reuses_prebuilt_mssg(self):
        from repro.experiments.harness import build_and_ingest

        dep = Deployment(backend="HashMap", num_backends=2)
        mssg, _, _ = build_and_ingest(PUBMED_S, dep, SCALE)
        try:
            r1 = run_search_experiment(PUBMED_S, dep, scale=SCALE, num_queries=2, mssg=mssg)
            r2 = run_search_experiment(PUBMED_S, dep, scale=SCALE, num_queries=2, mssg=mssg)
            assert r1.num_queries == r2.num_queries == 2
        finally:
            mssg.close()

    def test_cache_disabled_deployment(self):
        res = run_search_experiment(
            PUBMED_S,
            Deployment(backend="grDB", num_backends=2, cache_enabled=False),
            scale=SCALE,
            num_queries=2,
        )
        assert res.mean_seconds > 0


class TestReport:
    def test_series_table_rendering(self):
        text = format_series_table(
            "A title", "x", {"s1": {1: 0.5, 2: 1.0}, "s2": {2: 2.0}}
        )
        assert "A title" in text
        assert "s1" in text and "s2" in text
        lines = text.splitlines()
        row_1 = next(line for line in lines if line.startswith("1"))
        assert row_1.rstrip().endswith("-")  # missing cell for s2 at x=1

    def test_format_rows(self):
        text = format_rows("T", "h1 h2", ["a b", "c d"])
        assert text.count("\n") >= 4
