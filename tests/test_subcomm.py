"""Tests for sub-communicators and the OS page cache disk model."""

import pytest

from repro.simcluster import (
    ANY,
    BlockDevice,
    DiskProfile,
    MemoryBacking,
    NodeSpec,
    SimCluster,
    SubComm,
    VirtualClock,
)
from repro.simcluster.disk import OSPageCache
from repro.util import CommError


class TestSubComm:
    def test_collectives_within_group(self):
        cluster = SimCluster(nranks=5)
        group = [1, 3, 4]

        def program(ctx):
            if ctx.rank not in group:
                return None
            sub = SubComm(ctx.comm, group)
            total = yield from sub.allreduce(sub.rank, lambda a, b: a + b)
            return (sub.rank, sub.size, total)

        results = cluster.run(program)
        assert results[0] is None and results[2] is None
        assert results[1] == (0, 3, 3)
        assert results[3] == (1, 3, 3)
        assert results[4] == (2, 3, 3)

    def test_point_to_point_translation(self):
        cluster = SimCluster(nranks=4)
        group = [2, 0]

        def program(ctx):
            if ctx.rank not in group:
                return None
            sub = SubComm(ctx.comm, group)
            if sub.rank == 0:  # global rank 2
                sub.send(1, "hello", tag=5)
                return "sent"
            msg = yield from sub.recv(source=0, tag=5)
            return (msg.source, msg.dest, msg.payload)

        results = cluster.run(program)
        # Global rank 0 is local rank 1 in the group [2, 0].
        assert results[0] == (0, 1, "hello")
        assert results[2] == "sent"

    def test_any_source_localized(self):
        cluster = SimCluster(nranks=3)
        group = [0, 2]

        def program(ctx):
            if ctx.rank not in group:
                return None
            sub = SubComm(ctx.comm, group)
            if sub.rank == 1:
                sub.send(0, sub.rank * 10)
                return None
            msg = yield from sub.recv(source=ANY)
            return msg.source

        results = cluster.run(program)
        assert results[0] == 1  # localized source rank

    def test_try_recv_consumes(self):
        cluster = SimCluster(nranks=2)

        def program(ctx):
            sub = SubComm(ctx.comm, [0, 1])
            if sub.rank == 0:
                sub.send(1, "x", tag=9)
                return None
            ctx.compute(1.0)
            first = yield from sub.try_recv(tag=9)
            second = yield from sub.try_recv(tag=9)
            return (first.payload if first else None, second)

        assert cluster.run(program)[1] == ("x", None)

    def test_membership_required(self):
        cluster = SimCluster(nranks=3)

        def program(ctx):
            if ctx.rank == 0:
                with pytest.raises(CommError):
                    SubComm(ctx.comm, [1, 2])
            yield from ctx.comm.barrier()

        cluster.run(program)

    def test_invalid_groups(self):
        cluster = SimCluster(nranks=3)

        def program(ctx):
            if ctx.rank == 0:
                with pytest.raises(CommError):
                    SubComm(ctx.comm, [0, 0, 1])
                with pytest.raises(CommError):
                    SubComm(ctx.comm, [0, 7])
                sub = SubComm(ctx.comm, [0, 1])
                with pytest.raises(CommError):
                    sub.send(5, "x")
            yield from ctx.comm.barrier()

        cluster.run(program)


class TestOSPageCache:
    def make_device(self, cache_pages=4, **profile_kw):
        prof = DiskProfile(
            seek_seconds=0.01,
            read_bandwidth=1e6,
            os_cache_bytes=cache_pages * 4096,
            os_read_hit_seconds=1e-6,
            **profile_kw,
        )
        clock = VirtualClock()
        return BlockDevice(MemoryBacking(), prof, clock), clock

    def test_repeat_read_hits_cache(self):
        dev, clock = self.make_device()
        dev.write(0, b"x" * 4096)
        t0 = clock.now
        dev.read(0, 4096)  # write-through populated the cache: hit
        first = clock.now - t0
        assert first < 1e-4  # syscall cost, not seek+transfer

    def test_cold_read_pays_physical(self):
        dev, clock = self.make_device()
        dev.backing.write(0, b"y" * 4096)  # bytes exist, never accessed
        t0 = clock.now
        dev.read(0, 4096)
        assert clock.now - t0 >= 0.01  # seek at least

    def test_lru_eviction(self):
        dev, clock = self.make_device(cache_pages=2)
        for page in range(3):  # touch 3 pages through a 2-page cache
            dev.read(page * 4096, 4096)
        t0 = clock.now
        dev.read(0, 4096)  # page 0 was evicted: physical again
        assert clock.now - t0 >= 0.01

    def test_shared_cache_across_devices(self):
        cache = OSPageCache(capacity_pages=2)
        prof = DiskProfile(
            seek_seconds=0.01, read_bandwidth=1e6,
            os_cache_bytes=1 << 20, os_read_hit_seconds=1e-6,
        )
        clock = VirtualClock()
        a = BlockDevice(MemoryBacking(), prof, clock, name="a", os_cache=cache)
        b = BlockDevice(MemoryBacking(), prof, clock, name="b", os_cache=cache)
        a.read(0, 4096)
        b.read(0, 4096)
        # Two devices, two distinct pages in the shared cache.
        assert cache.misses == 2
        b.read(4096, 4096)  # evicts device a's page from the shared pool
        t0 = clock.now
        a.read(0, 4096)
        assert clock.now - t0 >= 0.01

    def test_node_shares_cache(self):
        spec = NodeSpec(disk=DiskProfile(os_cache_bytes=1 << 20))
        from repro.simcluster import SimNode

        node = SimNode(0, spec)
        d1, d2 = node.disk("one"), node.disk("two")
        assert d1._os_cache is d2._os_cache is node.os_cache

    def test_fragmented_read_charges_one_seek_per_miss_run(self):
        """Pages [0..4] with 1 and 3 already cached leave three separated
        miss runs -- [0], [2], [4] -- and each must pay its own seek.
        (Regression: at most one seek per call was charged, and a miss
        after an interleaved hit was costed as sequential.)"""
        dev, clock = self.make_device(cache_pages=8)
        dev.backing.write(0, b"z" * (5 * 4096))  # bytes exist, never read
        dev.read(1 * 4096, 4096)  # cache page 1
        dev.read(3 * 4096, 4096)  # cache page 3
        dev.stats.seeks = 0
        t0 = clock.now
        dev.read(0, 5 * 4096)
        assert dev.stats.seeks == 3
        # Three full physical seeks' worth of time, not one.
        assert clock.now - t0 >= 3 * 0.01

    def test_contiguous_miss_run_still_one_seek(self):
        dev, clock = self.make_device(cache_pages=8)
        dev.backing.write(0, b"z" * (4 * 4096))
        dev.stats.seeks = 0
        dev.read(0, 4 * 4096)  # all four pages miss, one contiguous run
        assert dev.stats.seeks == 1
