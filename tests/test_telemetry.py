"""Tests for cluster telemetry and load-balance reporting."""

import numpy as np

from repro import MSSG, MSSGConfig
from repro.experiments import cluster_utilization, format_utilization, load_imbalance
from repro.graphgen import dedupe_edges, preferential_attachment

EDGES = dedupe_edges(preferential_attachment(400, 4, seed=3))


def deploy(**kw):
    defaults = dict(num_backends=4, num_frontends=2, backend="grDB")
    defaults.update(kw)
    mssg = MSSG(MSSGConfig(**defaults))
    mssg.ingest(EDGES)
    return mssg


def test_roles_and_counters():
    with deploy() as mssg:
        rows = cluster_utilization(mssg)
        assert len(rows) == 6
        assert [r.role for r in rows] == ["front-end"] * 2 + ["back-end"] * 4
        # Back-ends did the disk writes; front-ends did none.
        for r in rows:
            if r.role == "front-end":
                assert r.disk_writes == 0
                assert r.messages_sent > 0  # they shipped edge blocks
            else:
                assert r.bytes_written > 0
        assert all(r.clock_seconds >= 0 for r in rows)


def test_queries_add_read_traffic():
    with deploy() as mssg:
        before = sum(r.disk_reads for r in cluster_utilization(mssg))
        mssg.query_bfs(0, 399)
        after = sum(r.disk_reads for r in cluster_utilization(mssg))
        assert after >= before


def test_load_imbalance_near_one_for_round_robin():
    with deploy() as mssg:
        rows = cluster_utilization(mssg)
        # GID % p declustering spreads a scale-free graph quite evenly
        # (the hub's adjacency is one list, but every other vertex's list
        # lands round-robin).
        assert 1.0 <= load_imbalance(rows) < 1.8


def test_format_renders():
    with deploy(num_backends=2, num_frontends=1, backend="HashMap") as mssg:
        text = format_utilization(cluster_utilization(mssg))
        assert "front-end" in text and "back-end" in text
        assert len(text.splitlines()) == 2 + 3


def test_disk_utilization_property():
    with deploy() as mssg:
        rows = cluster_utilization(mssg)
        for r in rows:
            assert 0.0 <= r.disk_utilization <= 1.0 + 1e-9


def test_imbalance_degenerate_cases():
    assert load_imbalance([]) == 1.0
