"""Package-quality meta-tests: exports resolve, public API is documented."""

import importlib
import pkgutil

import pytest

import repro

PUBLIC_MODULES = [
    "repro",
    "repro.bfs",
    "repro.datacutter",
    "repro.experiments",
    "repro.graphdb",
    "repro.graphdb.grdb",
    "repro.graphgen",
    "repro.ontology",
    "repro.services",
    "repro.simcluster",
    "repro.storage",
    "repro.util",
]


def iter_all_modules():
    for mod_info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if mod_info.name.endswith("__main__"):
            continue  # importing it would run the CLI
        yield mod_info.name


@pytest.mark.parametrize("name", PUBLIC_MODULES)
def test_all_exports_resolve(name):
    mod = importlib.import_module(name)
    assert hasattr(mod, "__all__"), f"{name} lacks __all__"
    for symbol in mod.__all__:
        assert hasattr(mod, symbol), f"{name}.__all__ lists missing {symbol!r}"


def test_every_module_importable_and_documented():
    for name in iter_all_modules():
        mod = importlib.import_module(name)
        assert mod.__doc__ and mod.__doc__.strip(), f"{name} has no module docstring"


def test_public_classes_documented():
    for name in PUBLIC_MODULES:
        mod = importlib.import_module(name)
        for symbol in getattr(mod, "__all__", []):
            obj = getattr(mod, symbol)
            if isinstance(obj, type):
                assert obj.__doc__, f"{name}.{symbol} has no docstring"


def test_version_exposed():
    assert repro.__version__


def test_backend_names_match_paper_figures():
    from repro.graphdb import BACKENDS

    assert set(BACKENDS) == {
        "Array", "HashMap", "MySQL", "BerkeleyDB", "StreamDB", "grDB"
    }
