"""End-to-end block integrity: checksums, corruption faults, read-repair,
scrub, and crash recovery.

The threat model here is disks that *lie* rather than disks that stop:
bit rot flips stored bytes in place, and a power loss mid-flush leaves a
torn write behind.  These tests drive the whole chain — the CRC32 frame
layer, the ``corrupt``/``crash`` fault kinds, BFS rerouting around a
``CorruptBlockError``, the façade's read-repair and scrub, and the grDB
WAL / StreamDB commit-record crash recovery.
"""

import numpy as np
import pytest

from repro import MSSG, MSSGConfig
from repro.framework import ScrubReport
from repro.graphdb import GrDB, GrDBFormat, make_graphdb
from repro.graphdb.registry import BACKENDS, IN_MEMORY_BACKENDS
from repro.graphdb.stream_db import StreamGraphDB
from repro.graphgen import pubmed_like
from repro.simcluster import (
    BlockDevice,
    DiskFault,
    FaultPlan,
    NodeSpec,
    SimCluster,
    SimNode,
)
from repro.storage.integrity import (
    FRAME_PAYLOAD,
    FRAME_STRIDE,
    ChecksummedDevice,
    wrap_device,
)
from repro.util import (
    ConfigError,
    CorruptBlockError,
    DeviceFailedError,
    GraphStorageException,
)


class TestChecksummedDevice:
    def _dev(self):
        return ChecksummedDevice(BlockDevice())

    def test_roundtrip_aligned(self):
        dev = self._dev()
        data = bytes(range(256)) * 32  # two full frames
        dev.write(0, data)
        assert dev.read(0, len(data)) == data
        assert dev.size() == len(data)

    def test_roundtrip_unaligned(self):
        dev = self._dev()
        dev.write(0, b"a" * FRAME_PAYLOAD)
        dev.write(100, b"hello")  # RMW inside frame 0
        dev.write(FRAME_PAYLOAD - 3, b"spans-two-frames")  # RMW across frames
        got = dev.read(0, 2 * FRAME_PAYLOAD)
        want = bytearray(b"a" * FRAME_PAYLOAD + b"\x00" * FRAME_PAYLOAD)
        want[100:105] = b"hello"
        want[FRAME_PAYLOAD - 3 : FRAME_PAYLOAD - 3 + 16] = b"spans-two-frames"
        assert got == bytes(want)

    def test_logical_offsets_hide_trailers(self):
        raw = BlockDevice()
        dev = ChecksummedDevice(raw)
        dev.write(0, b"x" * (FRAME_PAYLOAD + 10))
        # Physically two frames with trailers; logically contiguous bytes.
        assert raw.size() == 2 * FRAME_STRIDE
        assert dev.read(FRAME_PAYLOAD, 10) == b"x" * 10

    def test_detects_payload_corruption(self):
        raw = BlockDevice()
        dev = ChecksummedDevice(raw)
        dev.write(0, b"y" * FRAME_PAYLOAD)
        raw.backing.write(50, b"\x00")  # silent bit flip under the CRC
        with pytest.raises(CorruptBlockError) as e:
            dev.read(0, FRAME_PAYLOAD)
        assert e.value.device == raw.name
        assert e.value.offset == 0
        assert e.value.length == FRAME_STRIDE

    def test_detects_trailer_corruption(self):
        raw = BlockDevice()
        dev = ChecksummedDevice(raw)
        dev.write(0, b"y" * FRAME_PAYLOAD)
        raw.backing.write(FRAME_PAYLOAD, b"\xde\xad\xbe\xef")
        with pytest.raises(CorruptBlockError):
            dev.read(0, 1)

    def test_never_written_frames_read_as_zeros(self):
        dev = self._dev()
        dev.write(3 * FRAME_PAYLOAD, b"far")  # frames 0-2 never written
        assert dev.read(0, FRAME_PAYLOAD) == b"\x00" * FRAME_PAYLOAD
        assert dev.read(3 * FRAME_PAYLOAD, 3) == b"far"

    def test_written_zero_frame_is_distinguishable(self):
        # A legitimately written all-zero frame carries a non-zero CRC, so
        # zeroing the payload of a written frame IS detectable...
        raw = BlockDevice()
        dev = ChecksummedDevice(raw)
        dev.write(0, b"\x00" * FRAME_PAYLOAD)
        assert dev.read(0, FRAME_PAYLOAD) == b"\x00" * FRAME_PAYLOAD
        dev.write(0, b"data" * (FRAME_PAYLOAD // 4))
        raw.backing.write(0, b"\x00" * FRAME_PAYLOAD)  # zero payload only
        with pytest.raises(CorruptBlockError):
            dev.read(0, 1)

    def test_readv_verifies_every_frame(self):
        raw = BlockDevice()
        dev = ChecksummedDevice(raw)
        dev.write(0, b"A" * FRAME_PAYLOAD * 3)
        got = dev.readv([(10, 20), (FRAME_PAYLOAD + 5, 8)])
        assert got == [b"A" * 20, b"A" * 8]
        raw.backing.write(FRAME_STRIDE + 7, b"\xff")  # damage frame 1
        assert dev.readv([(10, 20)]) == [b"A" * 20]  # frame 0 still clean
        with pytest.raises(CorruptBlockError):
            dev.readv([(FRAME_PAYLOAD + 5, 8)])

    def test_truncate_requires_frame_alignment(self):
        dev = self._dev()
        dev.write(0, b"t" * 2 * FRAME_PAYLOAD)
        with pytest.raises(ValueError):
            dev.truncate(100)
        dev.truncate(FRAME_PAYLOAD)
        assert dev.size() == FRAME_PAYLOAD

    def test_scrub_frames_reports_bad_offsets(self):
        raw = BlockDevice()
        dev = ChecksummedDevice(raw)
        dev.write(0, b"s" * 4 * FRAME_PAYLOAD)
        raw.backing.write(2 * FRAME_STRIDE + 1, b"\x99")  # frame 2
        assert dev.frame_count() == 4
        assert list(dev.scrub_frames()) == [2 * FRAME_STRIDE]

    def test_wrap_device_idempotent(self):
        raw = BlockDevice()
        w1 = wrap_device(raw)
        w2 = wrap_device(raw)
        assert w1 is w2
        assert raw._integrity is w1


class TestCorruptAndCrashFaults:
    def test_corrupt_fault_flips_scoped_bytes_once(self):
        plan = FaultPlan(
            [DiskFault(node=0, kind="corrupt", after_ops=1, offset=4, length=2)]
        )
        dev = SimNode(0, NodeSpec(), fault_plan=plan).disk()
        dev.write(0, bytes(range(16)))
        got = dev.read(0, 16)  # trigger fires on this op
        want = bytearray(range(16))
        want[4] ^= 0xFF
        want[5] ^= 0xFF
        assert got == bytes(want)
        assert dev.stats.corrupted_bytes == 2
        assert not dev.failed  # the device keeps serving — it just lies
        assert dev.read(0, 16) == bytes(want)  # one-shot: no further damage
        assert dev.stats.corrupted_bytes == 2

    def test_corrupt_fault_unscoped_covers_extent(self):
        plan = FaultPlan([DiskFault(node=0, kind="corrupt", after_ops=1)])
        dev = SimNode(0, NodeSpec(), fault_plan=plan).disk()
        dev.write(0, b"\x00" * 64)
        assert dev.read(0, 64) == b"\xff" * 64
        assert dev.stats.corrupted_bytes == 64

    def test_crash_fault_tears_write_and_sticks(self):
        plan = FaultPlan([DiskFault(node=0, kind="crash", after_ops=1)])
        dev = SimNode(0, NodeSpec(), fault_plan=plan).disk()
        dev.write(0, b"durable!")
        with pytest.raises(DeviceFailedError, match="mid-write"):
            dev.write(8, b"ABCDEFGH")
        assert dev.failed
        assert dev.stats.torn_writes == 1
        dev.revive()
        # Half the payload persisted; the earlier write is intact.
        assert dev.read(0, 16) == b"durable!ABCD\x00\x00\x00\x00"

    def test_crash_fault_on_read_fails_without_tearing(self):
        plan = FaultPlan([DiskFault(node=0, kind="crash", at_time=0.0)])
        dev = SimNode(0, NodeSpec(), fault_plan=plan).disk()
        with pytest.raises(DeviceFailedError):
            dev.read(0, 8)
        assert dev.failed
        assert dev.stats.torn_writes == 0

    def test_fault_scope_validation(self):
        with pytest.raises(ConfigError):
            DiskFault(node=0, at_time=0.0, offset=10)  # scope on a kill
        with pytest.raises(ConfigError):
            DiskFault(node=0, kind="corrupt", at_time=0.0, offset=-1)
        with pytest.raises(ConfigError):
            DiskFault(node=0, kind="corrupt", at_time=0.0, length=0)

    def test_plan_validation_at_install(self):
        bad_node = FaultPlan([DiskFault(node=9, at_time=0.0)])
        with pytest.raises(ConfigError, match="ranks 0..1"):
            SimCluster(nranks=2, fault_plan=bad_node)
        cluster = SimCluster(nranks=2)
        with pytest.raises(ConfigError, match="ranks 0..1"):
            cluster.install_fault_plan(bad_node)
        # An unknown kind is rejected at construction *and* at install
        # (plans can be built from untyped config data via __new__-style
        # paths; validate() must not trust __post_init__ ran).
        sneaky = FaultPlan([DiskFault(node=0, at_time=0.0)])
        object.__setattr__(sneaky.faults[0], "kind", "melt")
        with pytest.raises(ConfigError, match="fault kind"):
            cluster.install_fault_plan(sneaky)


class TestShortReadGuards:
    """Satellite: silently zero-padded short reads must raise, not fabricate."""

    def test_grdb_written_block_past_extent(self):
        fmt = GrDBFormat(
            capacities=(2, 4), block_sizes=(256, 256), max_file_bytes=4096
        )
        node = SimNode(0, NodeSpec())
        db = GrDB(node.disk, fmt=fmt, clock=node.clock, cache_blocks=0)
        db.store_edges([(v, v + 10) for v in range(8)])
        db.flush()
        # Chop the level-0 file: its written blocks now extend past the end.
        node.disk("grdb_L0_F0").truncate(16)
        with pytest.raises(CorruptBlockError, match="truncated"):
            db.get_adjacency(7)

    def test_grdb_restore_detects_truncated_level_file(self):
        fmt = GrDBFormat(
            capacities=(2, 4), block_sizes=(256, 256), max_file_bytes=4096
        )
        node = SimNode(0, NodeSpec())
        db = GrDB(node.disk, fmt=fmt, clock=node.clock)
        db.store_edges([(v, v + 10) for v in range(8)])
        db.flush()
        node.disk("grdb_L0_F0").truncate(16)
        with pytest.raises(GraphStorageException, match="holds only 16 bytes"):
            GrDB(node.disk, fmt=fmt, clock=node.clock)

    def test_streamdb_truncated_log(self):
        dev = BlockDevice()
        db = StreamGraphDB(dev)
        db.store_edges(np.array([(0, 1), (0, 2), (1, 3)], dtype=np.int64))
        db.flush()
        dev.truncate(16)  # drop two committed edges
        with pytest.raises(CorruptBlockError, match="truncated log"):
            db.get_adjacency(0)


FMT = GrDBFormat(
    capacities=(2, 4, 16, 64),
    block_sizes=(256, 256, 256, 1024),
    max_file_bytes=4096,
)


def _ingested_grdb(node, integrity=True, cache_blocks=64):
    db = make_graphdb(
        "grDB",
        node,
        grdb_format=FMT,
        cache_blocks=cache_blocks,
        checksums=integrity,
    )
    rng = np.random.default_rng(11)
    edges = np.column_stack(
        [rng.integers(0, 30, 200), rng.integers(0, 400, 200)]
    ).astype(np.int64)
    db.store_edges(edges)
    return db, edges


class TestGrDBCrashRecovery:
    def _adjacency_image(self, db):
        return {v: sorted(db.get_adjacency(v).tolist()) for v in range(30)}

    def test_reopen_after_clean_flush(self):
        node = SimNode(0, NodeSpec())
        db, _ = _ingested_grdb(node)
        db.flush()
        want = self._adjacency_image(db)
        db2 = make_graphdb("grDB", node, grdb_format=FMT, checksums=True)
        assert db2.restored
        assert self._adjacency_image(db2) == want

    def _crash_mid_flush(self, crash_after_ops):
        """Ingest + flush + more edges, then crash the node's devices after
        ``crash_after_ops`` further operations during the second flush.
        Returns (node, published adjacency image) — the image the recovered
        database must still serve."""
        node = SimNode(0, NodeSpec())
        db, _ = _ingested_grdb(node)
        db.flush()
        published = self._adjacency_image(db)
        db.store_edges([(v, 9000 + v) for v in range(30)])
        plan = FaultPlan(
            [DiskFault(node=0, kind="crash", after_ops=crash_after_ops)]
        )
        node.install_fault_plan(plan)
        try:
            db.flush()
            flushed = True
        except DeviceFailedError:
            flushed = False
        node.install_fault_plan(None)
        for dev in node._disks.values():
            dev.revive()
        return node, published, flushed, db

    @pytest.mark.parametrize("crash_after_ops", [0, 1, 2, 3, 5, 8, 13, 40])
    def test_recovery_adopts_published_image(self, crash_after_ops):
        node, published, flushed, old = self._crash_mid_flush(crash_after_ops)
        db2 = make_graphdb("grDB", node, grdb_format=FMT, checksums=True)
        assert db2.restored
        got = self._adjacency_image(db2)
        if flushed:
            # The crash hit after the flush completed (or never fired):
            # the second batch is part of the published image now.
            assert got == self._adjacency_image(old)
        else:
            # All-or-nothing: either the WAL committed and recovery rolled
            # the whole second flush forward, or it discards the torn flush
            # and the first published image stands unchanged.
            second = {
                v: sorted(published[v] + [9000 + v]) for v in published
            }
            assert got in (published, second)
        # After recovery, a scrub of the node's devices finds zero corrupt
        # frames: the WAL replay healed (or discarded) every torn frame.
        for dev in node._disks.values():
            wrapper = getattr(dev, "_integrity", None)
            if wrapper is not None:
                assert list(wrapper.scrub_frames()) == []

    def test_recovered_instance_can_keep_ingesting(self):
        node, _, _, _ = self._crash_mid_flush(2)
        db2 = make_graphdb("grDB", node, grdb_format=FMT, checksums=True)
        db2.store_edges([(0, 77777)])
        assert 77777 in db2.get_adjacency(0).tolist()
        db2.flush()
        db3 = make_graphdb("grDB", node, grdb_format=FMT, checksums=True)
        assert 77777 in db3.get_adjacency(0).tolist()


class TestStreamDBCrashRecovery:
    def _mk(self, node):
        return make_graphdb("StreamDB", node, checksums=True)

    def test_durable_commit_and_reopen(self):
        node = SimNode(0, NodeSpec())
        db = self._mk(node)
        edges = np.array([(0, 1), (0, 2), (1, 3)], dtype=np.int64)
        db.store_edges(edges)
        db.flush()
        db2 = self._mk(node)
        assert db2.restored
        assert sorted(db2.get_adjacency(0).tolist()) == [1, 2]

    @pytest.mark.parametrize("crash_after_ops", [0, 1, 2, 3, 4, 6])
    def test_crash_mid_flush_keeps_committed_edges(self, crash_after_ops):
        node = SimNode(0, NodeSpec())
        db = self._mk(node)
        first = np.array([(0, v) for v in range(1, 101)], dtype=np.int64)
        db.store_edges(first)
        db.flush()  # commit #1: an unaligned tail (1600 bytes)
        db.store_edges(np.array([(0, 500)], dtype=np.int64))
        plan = FaultPlan(
            [DiskFault(node=0, kind="crash", after_ops=crash_after_ops)]
        )
        node.install_fault_plan(plan)
        try:
            db.flush()
            flushed = True
        except DeviceFailedError:
            flushed = False
        node.install_fault_plan(None)
        for dev in node._disks.values():
            dev.revive()
        db2 = self._mk(node)
        assert db2.restored
        got = sorted(db2.get_adjacency(0).tolist())
        if flushed:
            assert got == list(range(1, 101)) + [500]
        else:
            # Commit #1 must survive even though the torn append may have
            # destroyed the committed tail frame (the guard restores it).
            assert got in (list(range(1, 101)), list(range(1, 101)) + [500])
        for dev in node._disks.values():
            wrapper = getattr(dev, "_integrity", None)
            if wrapper is not None:
                assert list(wrapper.scrub_frames()) == []

    def test_unchecksummed_streamdb_has_no_meta_device(self):
        node = SimNode(0, NodeSpec())
        db = make_graphdb("StreamDB", node, checksums=False)
        assert db.meta_device is None
        assert "stream_meta" not in node._disks


# --- End-to-end: the acceptance scenario of the integrity PR.  Graph and
# query mirror the fault-tolerance suite; cache_blocks is tiny so queries
# actually touch the (checksummed) devices.
_EDGES = pubmed_like(600, seed=7)
_SRC, _DST = 3, 450


def _deploy(backend, replication=2, checksums=True, cache_blocks=4):
    return MSSG(
        MSSGConfig(
            num_backends=3,
            num_frontends=1,
            backend=backend,
            replication=replication,
            checksums=checksums,
            cache_blocks=cache_blocks,
        )
    )


def _corrupt_plan(q):
    # Rot every stored byte of back-end q (node 1 + q) at the start of the
    # next device operation window.
    return FaultPlan([DiskFault(node=1 + q, kind="corrupt", at_time=0.0)])


class TestEndToEndReadRepair:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_corrupt_replica_answers_match_healthy(self, backend):
        with _deploy(backend) as healthy:
            healthy.ingest(_EDGES)
            want = healthy.query_bfs(_SRC, _DST)
        assert want.result is not None
        with _deploy(backend) as mssg:
            mssg.ingest(_EDGES)
            mssg.set_fault_plan(_corrupt_plan(0))
            got = mssg.query_bfs(_SRC, _DST)
            assert got.result == want.result
            assert not got.partial
            if backend in IN_MEMORY_BACKENDS:
                # No devices: the fault has nothing to rot.
                assert got.corrupt_backends == ()
            else:
                assert got.corrupt_backends == (0,)
                assert got.repairs >= 1
                # Read-repair healed the backend: a follow-up scrub is clean
                # and the same query runs corruption-free.
                sr = mssg.scrub()
                assert sr.corrupt_frames == 0
                again = mssg.query_bfs(_SRC, _DST)
                assert again.result == want.result
                assert again.corrupt_backends == ()

    def test_unreplicated_corruption_degrades_to_partial(self):
        # Cache disabled so the query must read the rotted device bytes:
        # with compressed adjacency (the default) this tiny graph is
        # otherwise fully cache-resident and the rot goes unnoticed.
        with _deploy("grDB", replication=1, cache_blocks=0) as mssg:
            mssg.ingest(_EDGES)
            mssg.set_fault_plan(_corrupt_plan(0))
            report = mssg.query_bfs(_SRC, _DST)
            assert report.partial
            assert report.corrupt_backends == (0,)
            assert report.repairs == 0  # nowhere to repair from

    def test_scrub_detects_and_repairs_idle_corruption(self):
        # Corruption that no query has touched yet: only the scrub finds it.
        with _deploy("grDB") as mssg:
            mssg.ingest(_EDGES)
            mssg.set_fault_plan(_corrupt_plan(1))
            # Fire the fault with a harmless read on each of back-end 1's
            # devices (the trigger is per device).
            node = mssg.cluster.nodes[2]
            for dev in list(node._disks.values()):
                dev.read(0, 1)
            mssg.set_fault_plan(None)
            sr = mssg.scrub()
            assert isinstance(sr, ScrubReport)
            assert sr.frames_scanned > 0
            assert sr.corrupt_backends == (1,)
            assert sr.corrupt_frames > 0
            assert sr.repaired_frames == sr.corrupt_frames
            assert sr.unrecoverable_frames == 0
            assert sr.seconds > 0
            assert mssg.scrub().corrupt_frames == 0  # second pass: clean
            want = None
            with _deploy("grDB") as ref:
                ref.ingest(_EDGES)
                want = ref.query_bfs(_SRC, _DST).result
            assert mssg.query_bfs(_SRC, _DST).result == want

    def test_scrub_healthy_is_clean_and_counts_frames(self):
        with _deploy("grDB") as mssg:
            mssg.ingest(_EDGES)
            sr = mssg.scrub()
            assert sr.corrupt_frames == 0
            assert sr.repaired_frames == 0
            assert sr.frames_scanned > 0

    def test_unreplicated_scrub_reports_unrecoverable(self):
        with _deploy("grDB", replication=1) as mssg:
            mssg.ingest(_EDGES)
            mssg.set_fault_plan(_corrupt_plan(0))
            node = mssg.cluster.nodes[1]
            for dev in list(node._disks.values()):
                dev.read(0, 1)
            mssg.set_fault_plan(None)
            sr = mssg.scrub()
            assert sr.corrupt_frames > 0
            assert sr.repaired_frames == 0
            assert sr.unrecoverable_frames == sr.corrupt_frames

    def test_repair_updates_node_counter(self):
        from repro.experiments import fault_summary

        with _deploy("grDB") as mssg:
            mssg.ingest(_EDGES)
            mssg.set_fault_plan(_corrupt_plan(0))
            report = mssg.query_bfs(_SRC, _DST)
            assert report.repairs >= 1
            summary = fault_summary(mssg)
            assert summary.repaired_frames == report.repairs
            assert summary.corrupted_bytes > 0

    def test_checksums_off_leaves_devices_raw(self):
        with _deploy("grDB", checksums=False) as mssg:
            mssg.ingest(_EDGES)
            for node in mssg.cluster.nodes:
                for dev in node._disks.values():
                    assert not hasattr(dev, "_integrity")
            sr = mssg.scrub()
            assert sr.frames_scanned == 0  # nothing checksummed to verify
