"""Edge-case tests for LRUBlockCache and the coalesced grDB read path.

Complements ``test_pagedfile_cache.py`` with the behaviors the batched
fringe I/O path leans on: multi-block eviction order, flush idempotence
under interleaved dirtying, capacity-0 pass-through with dirty puts, and
the hit/miss/prefetched accounting of ``GrDBStorage.read_block_batch`` /
``prefetch_blocks``.
"""

import pytest

from repro.graphdb.grdb import GrDBFormat
from repro.graphdb.grdb.storage import GrDBStorage
from repro.simcluster import NodeSpec, SimNode
from repro.storage import LRUBlockCache

FMT = GrDBFormat(
    capacities=(2, 4),
    block_sizes=(256, 256),
    max_file_bytes=1024,  # 4 blocks per file: block 4+ spills to file 1
)


def make_storage(cache_blocks: int = 64) -> GrDBStorage:
    node = SimNode(0, NodeSpec())
    return GrDBStorage(FMT, node.disk, cache_blocks=cache_blocks)


def filled_subblock(fill: int) -> bytes:
    return bytes([fill]) * FMT.subblock_bytes(0)


class TestLRUEdgeCases:
    def test_eviction_writes_back_in_lru_order(self):
        written = []
        c = LRUBlockCache(2, writer=lambda k, v: written.append(k))
        c.put("a", b"1", dirty=True)
        c.put("b", b"2", dirty=True)
        c.put("c", b"3")  # evicts a
        c.put("d", b"4")  # evicts b
        assert written == ["a", "b"]
        assert c.stats.evictions == 2 and c.stats.writebacks == 2

    def test_flush_idempotent_until_redirtied(self):
        written = []
        c = LRUBlockCache(4, writer=lambda k, v: written.append((k, v)))
        c.put("a", b"1", dirty=True)
        c.flush()
        c.flush()
        assert written == [("a", b"1")]
        c.put("a", b"2", dirty=True)
        c.flush()
        assert written == [("a", b"1"), ("a", b"2")]

    def test_zero_capacity_every_dirty_put_passes_through(self):
        written = []
        c = LRUBlockCache(0, writer=lambda k, v: written.append((k, v)))
        for i in range(3):
            c.put("k", bytes([i]), dirty=True)
        assert written == [("k", b"\x00"), ("k", b"\x01"), ("k", b"\x02")]
        assert c.get("k") is None and len(c) == 0
        c.flush()  # nothing retained, nothing to flush
        assert len(written) == 3

    def test_refresh_on_overwrite_protects_from_eviction(self):
        c = LRUBlockCache(2)
        c.put("a", b"1")
        c.put("b", b"2")
        c.put("a", b"3")  # overwrite refreshes recency; b is now LRU
        c.put("c", b"4")
        assert "a" in c and "b" not in c

    def test_clean_overwrite_clears_stale_dirty_bit(self):
        """A clean put over a dirty block must not leave the block dirty:
        the clean bytes are the device's truth, and writing them back (or
        worse, treating them as unsynced changes) is wrong."""
        written = []
        c = LRUBlockCache(4, writer=lambda k, v: written.append((k, v)))
        c.put("a", b"old", dirty=True)
        c.put("a", b"fresh-from-device")  # clean overwrite, e.g. re-read
        c.flush()
        assert written == []  # nothing dirty remains
        c.put("b", b"1")
        c.put("c", b"2")
        c.put("d", b"3")
        c.put("e", b"4")  # evicts "a" -- must not write it back either
        assert "a" not in c and written == []

    def test_drop_discards_dirty_blocks_without_writeback(self):
        written = []
        c = LRUBlockCache(4, writer=lambda k, v: written.append(k))
        c.put("a", b"1", dirty=True)
        c.put("b", b"2")
        c.drop()
        assert len(c) == 0 and written == []
        c.flush()  # nothing left to flush
        assert written == []


class TestCoalescedReads:
    def _write_blocks(self, st: GrDBStorage, blocks) -> None:
        k = FMT.subblocks_per_block(0)
        for b in blocks:
            st.write_subblock(0, b * k, filled_subblock(b + 1))

    def test_batch_counts_one_miss_per_cold_block(self):
        st = make_storage()
        self._write_blocks(st, [0, 1, 2])
        st.flush()
        st.cache.clear()
        before = st.cache.stats.misses
        out = st.read_block_batch(0, [0, 1, 2])
        assert sorted(out) == [0, 1, 2]
        assert st.cache.stats.misses - before == 3

    def test_batch_hits_on_second_pass(self):
        st = make_storage()
        self._write_blocks(st, [0, 1])
        st.read_block_batch(0, [0, 1])
        before_hits, before_misses = st.cache.stats.hits, st.cache.stats.misses
        st.read_block_batch(0, [0, 1])
        assert st.cache.stats.hits - before_hits == 2
        assert st.cache.stats.misses == before_misses

    def test_adjacent_cold_blocks_fetch_as_one_device_read(self):
        st = make_storage()
        self._write_blocks(st, [0, 1, 2, 3])
        st.flush()
        st.cache.clear()
        dev = st._device(0, 0)
        before = dev.stats.reads
        st.read_block_batch(0, [0, 1, 2, 3])
        assert dev.stats.reads - before == 1  # one coalesced run, not four

    def test_gap_splits_runs(self):
        st = make_storage()
        self._write_blocks(st, [0, 1, 3])
        st.flush()
        st.cache.clear()
        dev = st._device(0, 0)
        before = dev.stats.reads
        st.read_block_batch(0, [0, 1, 3])
        assert dev.stats.reads - before == 2  # run [0,1] and run [3]

    def test_batch_spans_files(self):
        st = make_storage()
        self._write_blocks(st, [3, 4])  # block 4 lives in file 1
        st.flush()
        st.cache.clear()
        out = st.read_block_batch(0, [3, 4])
        k = FMT.subblocks_per_block(0)
        assert out[3][: FMT.subblock_bytes(0)] == filled_subblock(4)
        assert out[4][: FMT.subblock_bytes(0)] == filled_subblock(5)
        assert len(st._files) >= 2

    def test_never_written_blocks_skip_the_device(self):
        st = make_storage()
        dev = st._device(0, 0)
        before = dev.stats.reads
        out = st.read_block_batch(0, [0, 1])
        assert all(data == FMT.empty_block(0) for data in out.values())
        assert dev.stats.reads == before

    def test_batch_matches_single_reads(self):
        st = make_storage()
        self._write_blocks(st, [0, 2, 3])
        st.flush()
        st.cache.clear()
        batch = st.read_block_batch(0, [3, 0, 2, 1])
        st2 = make_storage()
        self._write_blocks(st2, [0, 2, 3])
        st2.flush()
        st2.cache.clear()
        for b in (0, 1, 2, 3):
            assert batch[b] == st2._read_block(0, b)


class TestPrefetchAccounting:
    def test_prefetch_counts_cold_blocks_only(self):
        st = make_storage()
        k = FMT.subblocks_per_block(0)
        for b in range(3):
            st.write_subblock(0, b * k, filled_subblock(b + 1))
        st.flush()
        st.cache.clear()
        st._read_block(0, 1)  # warm one block by demand
        n = st.prefetch_blocks(0, [0, 1, 2])
        assert n == 3  # the plan covers all three blocks...
        assert st.cache.stats.prefetched == 2  # ...but only two were cold

    def test_prefetch_idempotent(self):
        st = make_storage()
        k = FMT.subblocks_per_block(0)
        st.write_subblock(0, 0, filled_subblock(1))
        st.write_subblock(0, k, filled_subblock(2))
        st.flush()
        st.cache.clear()
        assert st.prefetch_blocks(0, [0, 1]) == 2
        assert st.cache.stats.prefetched == 2
        assert st.prefetch_blocks(0, [0, 1]) == 2  # plan unchanged
        assert st.cache.stats.prefetched == 2  # nothing new fetched

    def test_prefetch_empty_plan(self):
        st = make_storage()
        assert st.prefetch_blocks(0, []) == 0
        assert st.cache.stats.prefetched == 0

    def test_prefetched_blocks_hit_on_demand(self):
        st = make_storage()
        k = FMT.subblocks_per_block(0)
        st.write_subblock(0, 0, filled_subblock(7))
        st.flush()
        st.cache.clear()
        st.prefetch_blocks(0, [0])
        hits_before = st.cache.stats.hits
        st.read_subblock(0, 0)
        assert st.cache.stats.hits == hits_before + 1


class TestBatchCapacityCap:
    """A plan larger than the cache must not thrash the cache against
    itself: later inserts of the same batch would evict its earlier blocks
    (forcing mid-read write-backs) with nothing surviving to be reused."""

    def _filled(self, st: GrDBStorage, blocks) -> None:
        k = FMT.subblocks_per_block(0)
        for b in blocks:
            st.write_subblock(0, b * k, filled_subblock(b + 1))

    def test_oversized_batch_does_not_self_evict(self):
        st = make_storage(cache_blocks=2)
        self._filled(st, range(5))
        st.flush()
        st.cache.drop()
        evictions_before = st.cache.stats.evictions
        out = st.read_block_batch(0, range(5))
        assert sorted(out) == [0, 1, 2, 3, 4]  # data still complete
        assert len(st.cache) <= 2
        assert st.cache.stats.evictions == evictions_before

    def test_oversized_batch_returns_correct_bytes(self):
        st = make_storage(cache_blocks=2)
        self._filled(st, range(5))
        st.flush()
        st.cache.drop()
        out = st.read_block_batch(0, range(5))
        for b in range(5):
            assert out[b][: FMT.subblock_bytes(0)] == filled_subblock(b + 1)

    def test_prefetch_plan_capped_at_capacity(self):
        st = make_storage(cache_blocks=2)
        self._filled(st, range(5))
        st.flush()
        st.cache.drop()
        n = st.prefetch_blocks(0, range(5))
        assert n == 5  # the request covered five distinct blocks...
        assert st.cache.stats.prefetched == 2  # ...but only capacity warmed
        # Every block counted as prefetched is actually resident.
        assert len(st.cache) == 2

    def test_prefetch_counts_only_resident_blocks(self):
        st = make_storage(cache_blocks=3)
        self._filled(st, range(3))
        st.flush()
        st.cache.drop()
        st.prefetch_blocks(0, [0, 1, 2])
        assert st.cache.stats.prefetched == 3
        assert all((0, b) in st.cache for b in range(3))


class TestAllocatorGuards:
    def test_free_then_reallocate_roundtrip(self):
        st = make_storage()
        sb = st.allocate_subblock(1)
        st.free_subblock(1, sb)
        assert st.allocate_subblock(1) == sb

    def test_double_free_rejected(self):
        from repro.util import GraphStorageException

        st = make_storage()
        sb = st.allocate_subblock(1)
        st.free_subblock(1, sb)
        with pytest.raises(GraphStorageException, match="double free"):
            st.free_subblock(1, sb)

    def test_free_never_allocated_rejected(self):
        from repro.util import GraphStorageException

        st = make_storage()
        st.allocate_subblock(1)
        with pytest.raises(GraphStorageException, match="never-allocated"):
            st.free_subblock(1, 99)

    def test_free_level_zero_rejected(self):
        from repro.util import GraphStorageException

        st = make_storage()
        with pytest.raises(GraphStorageException, match="id-addressed"):
            st.free_subblock(0, 0)

    def test_free_out_of_range_level_rejected(self):
        from repro.util import GraphStorageException

        st = make_storage()
        with pytest.raises(GraphStorageException):
            st.free_subblock(FMT.num_levels, 0)


if __name__ == "__main__":
    pytest.main([__file__, "-v"])
