"""Tests for PagedFile and LRUBlockCache."""

import pytest

from repro.simcluster import BlockDevice, DiskProfile, MemoryBacking, VirtualClock
from repro.storage import LRUBlockCache, PagedFile
from repro.util import StorageEngineError


class TestPagedFile:
    def test_allocate_and_roundtrip(self):
        pf = PagedFile(BlockDevice(), page_size=64)
        assert pf.npages == 0
        p0 = pf.allocate_page()
        p1 = pf.allocate_page()
        assert (p0, p1) == (0, 1)
        pf.write_page(1, b"b" * 64)
        assert pf.read_page(1) == b"b" * 64
        assert pf.read_page(0) == b"\x00" * 64

    def test_write_grows_by_one(self):
        pf = PagedFile(BlockDevice(), page_size=32)
        pf.write_page(0, b"x" * 32)
        assert pf.npages == 1
        with pytest.raises(StorageEngineError):
            pf.write_page(5, b"x" * 32)  # hole

    def test_read_out_of_bounds(self):
        pf = PagedFile(BlockDevice(), page_size=32)
        with pytest.raises(StorageEngineError):
            pf.read_page(0)

    def test_wrong_size_write(self):
        pf = PagedFile(BlockDevice(), page_size=32)
        with pytest.raises(StorageEngineError):
            pf.write_page(0, b"short")

    def test_bad_page_size(self):
        with pytest.raises(StorageEngineError):
            PagedFile(BlockDevice(), page_size=0)

    def test_adopts_existing_content(self):
        dev = BlockDevice()
        pf = PagedFile(dev, page_size=16)
        pf.write_page(0, b"a" * 16)
        pf.write_page(1, b"b" * 16)
        reopened = PagedFile(dev, page_size=16)
        assert reopened.npages == 2
        assert reopened.read_page(1) == b"b" * 16

    def test_io_charges_virtual_time(self):
        clock = VirtualClock()
        prof = DiskProfile(seek_seconds=0.001, read_bandwidth=1e6, write_bandwidth=1e6)
        pf = PagedFile(BlockDevice(MemoryBacking(), prof, clock), page_size=1000)
        pf.allocate_page()
        assert clock.now > 0


class TestLRUBlockCache:
    def test_hit_miss_accounting(self):
        c = LRUBlockCache(2)
        assert c.get("a") is None
        c.put("a", b"1")
        assert c.get("a") == b"1"
        assert c.stats.hits == 1 and c.stats.misses == 1
        assert c.stats.hit_rate == 0.5

    def test_lru_eviction_order(self):
        written = []
        c = LRUBlockCache(2, writer=lambda k, v: written.append(k))
        c.put("a", b"1")
        c.put("b", b"2")
        c.get("a")  # refresh a; b becomes LRU
        c.put("c", b"3")
        assert "b" not in c and "a" in c and "c" in c
        assert written == []  # clean eviction: no write-back

    def test_dirty_eviction_writes_back(self):
        written = {}
        c = LRUBlockCache(1, writer=lambda k, v: written.__setitem__(k, v))
        c.put("a", b"1", dirty=True)
        c.put("b", b"2")
        assert written == {"a": b"1"}
        assert c.stats.writebacks == 1

    def test_flush_writes_all_dirty(self):
        written = {}
        c = LRUBlockCache(10, writer=lambda k, v: written.__setitem__(k, v))
        c.put("a", b"1", dirty=True)
        c.put("b", b"2")
        c.put("c", b"3", dirty=True)
        c.flush()
        assert written == {"a": b"1", "c": b"3"}
        c.flush()  # idempotent
        assert c.stats.writebacks == 2

    def test_zero_capacity_passthrough(self):
        written = {}
        c = LRUBlockCache(0, writer=lambda k, v: written.__setitem__(k, v))
        c.put("a", b"1", dirty=True)
        assert written == {"a": b"1"}
        assert c.get("a") is None
        assert c.stats.misses == 1

    def test_dirty_without_writer_raises(self):
        c = LRUBlockCache(1)
        c.put("a", b"1", dirty=True)
        with pytest.raises(StorageEngineError):
            c.put("b", b"2")  # evicts dirty "a" with nowhere to go

    def test_invalidate_drops_dirty_silently(self):
        c = LRUBlockCache(2, writer=lambda k, v: pytest.fail("should not write"))
        c.put("a", b"1", dirty=True)
        c.invalidate("a")
        c.flush()

    def test_overwrite_marks_dirty(self):
        written = {}
        c = LRUBlockCache(1, writer=lambda k, v: written.__setitem__(k, v))
        c.put("a", b"1")
        c.put("a", b"2", dirty=True)
        c.flush()
        assert written == {"a": b"2"}

    def test_clear(self):
        written = {}
        c = LRUBlockCache(4, writer=lambda k, v: written.__setitem__(k, v))
        c.put("a", b"1", dirty=True)
        c.clear()
        assert len(c) == 0
        assert written == {"a": b"1"}

    def test_negative_capacity(self):
        with pytest.raises(StorageEngineError):
            LRUBlockCache(-1)
