"""Tests for the discrete-event scheduler and MPI-like communicator."""

import pytest

from repro.simcluster import ANY, NetworkProfile, NodeSpec, SimCluster
from repro.util import CommError, ConfigError, DeadlockError


def make_cluster(n, **net_kwargs):
    spec = NodeSpec(network=NetworkProfile(**net_kwargs)) if net_kwargs else NodeSpec()
    return SimCluster(nranks=n, spec=spec)


class TestPointToPoint:
    def test_send_recv_pair(self):
        cluster = make_cluster(2)

        def program(ctx):
            if ctx.rank == 0:
                ctx.comm.send(1, {"x": 42}, tag=5)
                return "sent"
            msg = yield from ctx.comm.recv(source=0, tag=5)
            return msg.payload["x"]

        assert cluster.run(program) == ["sent", 42]

    def test_recv_advances_receiver_clock_past_arrival(self):
        cluster = make_cluster(2, latency=1e-3, bandwidth=1e6)

        def program(ctx):
            if ctx.rank == 0:
                ctx.compute(0.5)
                ctx.comm.send(1, b"x" * 1000)
                return ctx.clock.now
            msg = yield from ctx.comm.recv()
            return ctx.clock.now

        t_send, t_recv = cluster.run(program)
        # arrival >= send time + latency + transfer of ~1KB at 1MB/s (~1ms)
        assert t_recv >= 0.5 + 1e-3 + 1e-3

    def test_messages_fifo_per_pair(self):
        cluster = make_cluster(2)

        def program(ctx):
            if ctx.rank == 0:
                for i in range(10):
                    ctx.comm.send(1, i, tag=1)
                return None
            got = []
            for _ in range(10):
                msg = yield from ctx.comm.recv(source=0, tag=1)
                got.append(msg.payload)
            return got

        assert cluster.run(program)[1] == list(range(10))

    def test_tag_selectivity(self):
        cluster = make_cluster(2)

        def program(ctx):
            if ctx.rank == 0:
                ctx.comm.send(1, "a", tag=1)
                ctx.comm.send(1, "b", tag=2)
                return None
            m2 = yield from ctx.comm.recv(tag=2)
            m1 = yield from ctx.comm.recv(tag=1)
            return (m2.payload, m1.payload)

        assert cluster.run(program)[1] == ("b", "a")

    def test_any_source(self):
        cluster = make_cluster(3)

        def program(ctx):
            if ctx.rank != 0:
                ctx.compute(ctx.rank * 1e-3)  # rank 1 sends earlier than rank 2
                ctx.comm.send(0, ctx.rank, tag=9)
                return None
            first = yield from ctx.comm.recv(source=ANY, tag=9)
            second = yield from ctx.comm.recv(source=ANY, tag=9)
            return (first.payload, second.payload)

        assert cluster.run(program)[0] == (1, 2)

    def test_send_to_self(self):
        cluster = make_cluster(1)

        def program(ctx):
            ctx.comm.send(0, "loop", tag=3)
            msg = yield from ctx.comm.recv(source=0, tag=3)
            return msg.payload

        assert cluster.run(program) == ["loop"]

    def test_numpy_payload_is_isolated(self):
        import numpy as np

        cluster = make_cluster(2)

        def program(ctx):
            if ctx.rank == 0:
                arr = np.array([1, 2, 3])
                ctx.comm.send(1, arr)
                arr[0] = 99  # mutation after send must not leak
                return None
            msg = yield from ctx.comm.recv()
            return msg.payload.tolist()

        assert cluster.run(program)[1] == [1, 2, 3]

    def test_invalid_dest_and_tag(self):
        cluster = make_cluster(2)

        def program(ctx):
            if ctx.rank == 0:
                with pytest.raises(CommError):
                    ctx.comm.send(5, "x")
                with pytest.raises(CommError):
                    ctx.comm.send(1, "x", tag=-2)
            yield from ctx.comm.barrier()

        cluster.run(program)


class TestProbe:
    def test_probe_miss_then_hit(self):
        cluster = make_cluster(2)

        def program(ctx):
            if ctx.rank == 0:
                ctx.compute(1.0)
                ctx.comm.send(1, "late", tag=7)
                return None
            early = yield from ctx.comm.probe(tag=7)  # nothing arrived at t~0
            ctx.compute(2.0)  # move past the arrival
            late = yield from ctx.comm.probe(tag=7)
            msg = yield from ctx.comm.recv(tag=7)
            return (early is None, late is not None, msg.payload)

        assert cluster.run(program)[1] == (True, True, "late")

    def test_try_recv_consumes(self):
        cluster = make_cluster(2)

        def program(ctx):
            if ctx.rank == 0:
                ctx.comm.send(1, "only", tag=4)
                return None
            ctx.compute(1.0)
            first = yield from ctx.comm.try_recv(tag=4)
            second = yield from ctx.comm.try_recv(tag=4)
            return (first.payload if first else None, second)

        assert cluster.run(program)[1] == ("only", None)


class TestCollectives:
    @pytest.mark.parametrize("n", [1, 2, 3, 4, 7, 8])
    def test_bcast(self, n):
        cluster = make_cluster(n)

        def program(ctx):
            value = "payload" if ctx.rank == 0 else None
            value = yield from ctx.comm.bcast(value, root=0)
            return value

        assert cluster.run(program) == ["payload"] * n

    @pytest.mark.parametrize("root", [0, 1, 2])
    def test_bcast_nonzero_root(self, root):
        cluster = make_cluster(3)

        def program(ctx):
            value = ctx.rank * 10 if ctx.rank == root else None
            value = yield from ctx.comm.bcast(value, root=root)
            return value

        assert cluster.run(program) == [root * 10] * 3

    @pytest.mark.parametrize("n", [1, 2, 5])
    def test_gather(self, n):
        cluster = make_cluster(n)

        def program(ctx):
            out = yield from ctx.comm.gather(ctx.rank * ctx.rank, root=0)
            return out

        results = cluster.run(program)
        assert results[0] == [i * i for i in range(n)]
        assert all(r is None for r in results[1:])

    def test_allgather(self):
        cluster = make_cluster(4)

        def program(ctx):
            out = yield from ctx.comm.allgather(chr(ord("a") + ctx.rank))
            return "".join(out)

        assert cluster.run(program) == ["abcd"] * 4

    def test_allreduce_sum(self):
        cluster = make_cluster(6)

        def program(ctx):
            total = yield from ctx.comm.allreduce(ctx.rank, lambda a, b: a + b)
            return total

        assert cluster.run(program) == [15] * 6

    def test_barrier_synchronizes_clocks(self):
        cluster = make_cluster(3)

        def program(ctx):
            ctx.compute(float(ctx.rank))  # rank 2 is 2 seconds "behind"
            yield from ctx.comm.barrier()
            return ctx.clock.now

        times = cluster.run(program)
        assert all(t >= 2.0 for t in times)

    def test_alltoall(self):
        cluster = make_cluster(3)

        def program(ctx):
            values = [f"{ctx.rank}->{d}" for d in range(3)]
            out = yield from ctx.comm.alltoall(values)
            return out

        results = cluster.run(program)
        assert results[1] == ["0->1", "1->1", "2->1"]

    def test_alltoall_wrong_arity(self):
        cluster = make_cluster(2)

        def program(ctx):
            if ctx.rank == 0:
                with pytest.raises(CommError):
                    yield from ctx.comm.alltoall([1, 2, 3])
            yield from ctx.comm.barrier()

        cluster.run(program)


class TestSchedulerSafety:
    def test_deadlock_detection(self):
        cluster = make_cluster(2)

        def program(ctx):
            msg = yield from ctx.comm.recv()  # nobody ever sends
            return msg

        with pytest.raises(DeadlockError):
            cluster.run(program)

    def test_determinism(self):
        """The same program yields bit-identical timings across runs."""

        def program(ctx):
            ctx.compute(1e-4 * (ctx.rank + 1))
            vals = yield from ctx.comm.allgather(ctx.rank)
            ctx.charge_edges(1000)
            total = yield from ctx.comm.allreduce(sum(vals), lambda a, b: a + b)
            return (total, ctx.clock.now)

        r1 = make_cluster(5).run(program)
        r2 = make_cluster(5).run(program)
        assert r1 == r2

    def test_mpmd_programs(self):
        cluster = make_cluster(2)

        def producer(ctx):
            ctx.comm.send(1, "work")
            return "done"
            yield  # pragma: no cover - makes this a generator function

        def consumer(ctx):
            msg = yield from ctx.comm.recv()
            return msg.payload

        assert cluster.run([producer, consumer]) == ["done", "work"]

    def test_wrong_program_count(self):
        cluster = make_cluster(3)

        def program(ctx):
            yield from ctx.comm.barrier()

        with pytest.raises(ConfigError):
            cluster.run([program, program])

    def test_non_generator_program_rejected(self):
        cluster = make_cluster(1)

        def not_a_generator(ctx):
            return 42

        with pytest.raises(ConfigError):
            cluster.run(not_a_generator)

    def test_makespan_recorded(self):
        cluster = make_cluster(2)

        def program(ctx):
            ctx.compute(3.0 if ctx.rank == 1 else 1.0)
            yield from ctx.comm.barrier()

        cluster.run(program)
        assert cluster.makespan >= 3.0

    def test_cluster_requires_positive_ranks(self):
        with pytest.raises(ConfigError):
            SimCluster(nranks=0)

    def test_clocks_reset_between_runs(self):
        cluster = make_cluster(2)

        def program(ctx):
            ctx.compute(1.0)
            yield from ctx.comm.barrier()
            return ctx.clock.now

        first = cluster.run(program)
        second = cluster.run(program)
        assert first == second
