"""Tests for graph generators, CSR, streams, and Table 5.1 statistics."""

import io

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphgen import (
    CSRGraph,
    add_super_hub,
    dedupe_edges,
    edge_windows,
    graph_stats,
    preferential_attachment,
    pubmed_like,
    pubmed_semantic_graph,
    read_ascii_edges,
    read_binary_edges,
    rmat_edges,
    split_for_ingesters,
    write_ascii_edges,
    write_binary_edges,
)
from repro.ontology import validate_graph
from repro.util import ConfigError


class TestCSR:
    def test_from_edges(self):
        g = CSRGraph.from_edges(np.array([[0, 1], [1, 2], [0, 2]]))
        assert g.num_vertices == 3
        assert g.num_undirected_edges == 3
        assert sorted(g.neighbors(0).tolist()) == [1, 2]
        assert g.degree(1) == 2
        assert g.degrees().tolist() == [2, 2, 2]

    def test_isolated_trailing_vertex(self):
        g = CSRGraph.from_edges(np.array([[0, 1]]), num_vertices=4)
        assert g.num_vertices == 4
        assert g.degree(3) == 0
        assert g.neighbors(3).tolist() == []

    def test_edge_list_roundtrip(self):
        edges = dedupe_edges(np.array([[0, 1], [2, 1], [3, 0]]))
        g = CSRGraph.from_edges(edges)
        back = g.edge_list()
        assert sorted(map(tuple, back.tolist())) == sorted(map(tuple, edges.tolist()))

    def test_empty(self):
        g = CSRGraph.from_edges(np.zeros((0, 2)))
        assert g.num_vertices == 0

    def test_invalid_xadj(self):
        with pytest.raises(ValueError):
            CSRGraph(np.array([1, 2]), np.array([0, 0]))


class TestDedupe:
    def test_removes_self_loops_and_dups(self):
        edges = np.array([[1, 1], [0, 1], [1, 0], [0, 1]])
        out = dedupe_edges(edges)
        assert out.tolist() == [[0, 1]]

    @given(st.lists(st.tuples(st.integers(0, 20), st.integers(0, 20)), max_size=200))
    def test_matches_set_model(self, pairs):
        edges = np.array(pairs, dtype=np.int64).reshape(-1, 2)
        model = {(min(u, v), max(u, v)) for u, v in pairs if u != v}
        out = dedupe_edges(edges)
        assert {tuple(e) for e in out.tolist()} == model


class TestPreferentialAttachment:
    def test_power_law_shape(self):
        edges = preferential_attachment(5000, 4, seed=42)
        stats = graph_stats(edges)
        assert stats.min_degree >= 1
        # Hubs should dwarf the average: scale-free signature.
        assert stats.max_degree > 10 * stats.avg_degree
        assert 4 < stats.avg_degree <= 8

    def test_deterministic(self):
        e1 = preferential_attachment(500, 3, seed=7)
        e2 = preferential_attachment(500, 3, seed=7)
        assert np.array_equal(e1, e2)
        e3 = preferential_attachment(500, 3, seed=8)
        assert not np.array_equal(e1, e3)

    def test_connected_ids_within_range(self):
        edges = preferential_attachment(300, 2, seed=1)
        assert edges.min() >= 0 and edges.max() < 300

    def test_bad_params(self):
        with pytest.raises(ConfigError):
            preferential_attachment(1, 1)
        with pytest.raises(ConfigError):
            preferential_attachment(10, 0)
        with pytest.raises(ConfigError):
            preferential_attachment(5, 5)

    def test_super_hub(self):
        edges = preferential_attachment(2000, 3, seed=0)
        boosted = add_super_hub(edges, 2000, hub_vertex=0, hub_fraction=0.2)
        stats = graph_stats(boosted)
        assert stats.max_degree >= 0.18 * 2000

    def test_super_hub_bad_params(self):
        edges = np.array([[0, 1]])
        with pytest.raises(ConfigError):
            add_super_hub(edges, 10, 0, 0.0)
        with pytest.raises(ConfigError):
            add_super_hub(edges, 10, 99, 0.5)


class TestRMAT:
    def test_shape_and_range(self):
        edges = rmat_edges(10, 5000, seed=3)
        assert edges.min() >= 0 and edges.max() < 1024
        stats = graph_stats(edges)
        assert stats.max_degree > 3 * stats.avg_degree  # skewed

    def test_deterministic(self):
        assert np.array_equal(rmat_edges(8, 1000, seed=5), rmat_edges(8, 1000, seed=5))

    def test_bad_params(self):
        with pytest.raises(ConfigError):
            rmat_edges(0, 10)
        with pytest.raises(ConfigError):
            rmat_edges(5, 0)
        with pytest.raises(ConfigError):
            rmat_edges(5, 10, a=0.9, b=0.9, c=0.1, d=0.1)


class TestPubMedLike:
    def test_matches_paper_shape(self):
        n = 5000
        edges = pubmed_like(n, avg_degree=14.84, hub_fraction=0.19, seed=0)
        stats = graph_stats(edges)
        assert stats.min_degree >= 1
        # Hub adjacent to ~19% of vertices, as in PubMed-S.
        assert stats.max_degree >= 0.15 * n
        assert 10 < stats.avg_degree < 20

    def test_semantic_graph_is_valid(self):
        g = pubmed_semantic_graph(num_articles=50, num_authors=20, seed=1)
        assert validate_graph(g) == []
        assert g.type_histogram()["Article"] == 50
        assert g.num_edges > 50


class TestStreams:
    def test_ascii_roundtrip(self):
        edges = np.array([[0, 1], [5, 9]], dtype=np.int64)
        buf = io.StringIO()
        write_ascii_edges(buf, edges)
        buf.seek(0)
        assert np.array_equal(read_ascii_edges(buf), edges)

    def test_ascii_skips_comments_and_blanks(self):
        buf = io.StringIO("# header\n\n1 2\n")
        assert read_ascii_edges(buf).tolist() == [[1, 2]]

    def test_binary_roundtrip(self):
        edges = np.array([[0, 1], [2**40, 7]], dtype=np.int64)
        buf = io.BytesIO()
        write_binary_edges(buf, edges)
        buf.seek(0)
        assert np.array_equal(read_binary_edges(buf), edges)

    def test_edge_windows(self):
        edges = np.arange(20).reshape(10, 2)
        wins = list(edge_windows(edges, 4))
        assert [len(w) for w in wins] == [4, 4, 2]
        assert np.array_equal(np.vstack(wins), edges)
        with pytest.raises(ValueError):
            list(edge_windows(edges, 0))

    def test_split_for_ingesters(self):
        edges = np.arange(14).reshape(7, 2)
        parts = split_for_ingesters(edges, 3)
        assert len(parts) == 3
        assert sum(len(p) for p in parts) == 7
        with pytest.raises(ValueError):
            split_for_ingesters(edges, 0)


class TestStats:
    def test_simple_graph(self):
        edges = np.array([[0, 1], [0, 2], [0, 3]])
        s = graph_stats(edges, name="star")
        assert s.vertices == 4
        assert s.undirected_edges == 3
        assert (s.min_degree, s.max_degree) == (1, 3)
        assert s.avg_degree == pytest.approx(1.5)

    def test_forced_vertex_count(self):
        edges = np.array([[0, 1]])
        s = graph_stats(edges, num_vertices=5)
        assert s.vertices == 5
        assert s.min_degree == 0

    def test_empty(self):
        s = graph_stats(np.zeros((0, 2)))
        assert s.vertices == 0 and s.avg_degree == 0.0

    def test_row_formatting(self):
        edges = np.array([[0, 1]])
        s = graph_stats(edges, name="tiny")
        assert "tiny" in s.row()
        assert "Vertices" in s.header()
