"""Tests for virtual clocks, cost models, and the block device."""

import os

import pytest

from repro.simcluster import (
    BlockDevice,
    DiskProfile,
    FileBacking,
    MemoryBacking,
    VirtualClock,
)
from repro.util import payload_nbytes


class TestVirtualClock:
    def test_advance(self):
        c = VirtualClock()
        assert c.now == 0.0
        c.advance(1.5)
        assert c.now == 1.5
        c.advance(0.0)
        assert c.now == 1.5

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            VirtualClock().advance(-1.0)

    def test_advance_to_is_monotone(self):
        c = VirtualClock(10.0)
        c.advance_to(5.0)
        assert c.now == 10.0
        c.advance_to(12.0)
        assert c.now == 12.0

    def test_reset(self):
        c = VirtualClock(3.0)
        c.reset()
        assert c.now == 0.0


class TestMemoryBacking:
    def test_roundtrip(self):
        m = MemoryBacking()
        m.write(10, b"hello")
        assert m.read(10, 5) == b"hello"
        assert m.size() == 15

    def test_sparse_read_zero_fill(self):
        m = MemoryBacking()
        m.write(0, b"ab")
        assert m.read(0, 6) == b"ab\x00\x00\x00\x00"
        assert m.read(100, 3) == b"\x00\x00\x00"


class TestFileBacking:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "dir" / "dev0"
        f = FileBacking(path)
        f.write(4096, b"xyz")
        assert f.read(4096, 3) == b"xyz"
        assert f.read(5000, 4) == b"\x00" * 4
        f.close()
        assert os.path.exists(path)
        # Reopen: contents persist.
        g = FileBacking(path)
        assert g.read(4096, 3) == b"xyz"
        g.close()


class TestBlockDevice:
    def test_charges_seek_and_transfer(self):
        prof = DiskProfile(seek_seconds=0.01, read_bandwidth=1e6, write_bandwidth=1e6)
        clock = VirtualClock()
        dev = BlockDevice(MemoryBacking(), prof, clock)
        dev.write(0, b"\x01" * 10_000)  # first op: seek + 10ms transfer
        assert clock.now == pytest.approx(0.01 + 0.01)
        dev.write(10_000, b"\x02" * 10_000)  # sequential: no seek
        assert clock.now == pytest.approx(0.03)
        dev.read(0, 100)  # random read: seek again
        assert clock.now == pytest.approx(0.03 + 0.01 + 1e-4)
        assert dev.stats.seeks == 2
        assert dev.stats.reads == 1
        assert dev.stats.writes == 2
        assert dev.stats.bytes_written == 20_000

    def test_no_profile_counts_but_charges_nothing(self):
        dev = BlockDevice()
        dev.write(0, b"abc")
        assert dev.read(0, 3) == b"abc"
        assert dev.clock.now == 0.0
        assert dev.stats.busy_seconds == 0.0
        assert dev.stats.reads == 1

    def test_negative_args_rejected(self):
        dev = BlockDevice()
        with pytest.raises(ValueError):
            dev.read(-1, 4)
        with pytest.raises(ValueError):
            dev.read(0, -4)
        with pytest.raises(ValueError):
            dev.write(-1, b"x")

    def test_sequential_detection_interleaved(self):
        prof = DiskProfile(seek_seconds=1.0, read_bandwidth=1e9, write_bandwidth=1e9)
        clock = VirtualClock()
        dev = BlockDevice(MemoryBacking(), prof, clock)
        dev.write(0, b"a" * 100)
        dev.read(100, 100)  # continues where write ended: sequential
        assert dev.stats.seeks == 1  # only the initial positioning


class TestPayloadNbytes:
    def test_scalars_and_arrays(self):
        import numpy as np

        from repro.util import LongArray

        assert payload_nbytes(None) == 0
        assert payload_nbytes(7) == 8
        assert payload_nbytes(3.14) == 8
        assert payload_nbytes(np.zeros(10, dtype=np.int64)) == 80
        assert payload_nbytes(LongArray([1, 2, 3])) == 24
        assert payload_nbytes(b"abcd") == 4
        assert payload_nbytes("ab") == 2
        assert payload_nbytes([1, 2, 3]) == 24
        assert payload_nbytes({"a": 1}) == 9
        assert payload_nbytes((1, [2, 3])) == 24

    def test_fallback_pickle(self):
        # complex has no fast path, so it goes through the pickle fallback
        assert payload_nbytes(complex(1, 2)) > 0
