"""Tests for grDB persistence (superblock + reopen) and fringe prefetch."""

import numpy as np
import pytest

from repro.graphdb import GrDB, GrDBFormat, ModuloMap
from repro.simcluster import NodeSpec, SimNode
from repro.util import GraphStorageException

FMT = GrDBFormat(
    capacities=(2, 4, 16, 64),
    block_sizes=(256, 256, 256, 1024),
    max_file_bytes=4096,
)


def make_node():
    return SimNode(0, NodeSpec())


class TestPersistence:
    def test_reopen_preserves_adjacency(self):
        node = make_node()
        db = GrDB(node.disk, fmt=FMT, clock=node.clock, cpu=node.spec.cpu)
        rng = np.random.default_rng(3)
        edges = np.column_stack(
            [rng.integers(0, 30, 300), rng.integers(0, 500, 300)]
        ).astype(np.int64)
        db.store_edges(edges)
        db.flush()

        # Reopen on the same devices: a brand-new GrDB object.
        db2 = GrDB(node.disk, fmt=FMT, clock=node.clock, cpu=node.spec.cpu)
        assert db2.restored
        for v in range(30):
            assert sorted(db2.get_adjacency(v).tolist()) == sorted(
                db.get_adjacency(v).tolist()
            )

    def test_reopen_preserves_allocator_state(self):
        node = make_node()
        db = GrDB(node.disk, fmt=FMT, clock=node.clock)
        db.store_edges([(0, x) for x in range(20)])  # spans several levels
        before = [db.storage._next_subblock[lv] for lv in range(FMT.num_levels)]
        db.flush()
        db2 = GrDB(node.disk, fmt=FMT, clock=node.clock)
        assert [db2.storage._next_subblock[lv] for lv in range(FMT.num_levels)] == before

    def test_reopen_can_continue_ingesting(self):
        node = make_node()
        db = GrDB(node.disk, fmt=FMT, clock=node.clock)
        db.store_edges([(5, x) for x in range(10)])
        db.flush()
        db2 = GrDB(node.disk, fmt=FMT, clock=node.clock)
        db2.store_edges([(5, 99), (6, 1)])
        got = db2.get_adjacency(5).tolist()
        assert sorted(got) == sorted(list(range(10)) + [99])
        assert db2.get_adjacency(6).tolist() == [1]

    def test_reopen_rebuilds_known_vertices(self):
        node = make_node()
        db = GrDB(node.disk, fmt=FMT, clock=node.clock)
        db.store_edges([(3, 1), (7, 2), (12, 3)])
        db.flush()
        db2 = GrDB(node.disk, fmt=FMT, clock=node.clock)
        assert db2.known_vertices() == [3, 7, 12]

    def test_reopen_with_id_map(self):
        node = make_node()
        id_map = ModuloMap(4, 1)
        db = GrDB(node.disk, fmt=FMT, clock=node.clock, id_map=id_map)
        db.store_edges([(1, 10), (5, 20)])
        db.flush()
        db2 = GrDB(node.disk, fmt=FMT, clock=node.clock, id_map=ModuloMap(4, 1))
        assert db2.known_vertices() == [1, 5]
        assert db2.get_adjacency(5).tolist() == [20]

    def test_format_mismatch_rejected(self):
        node = make_node()
        db = GrDB(node.disk, fmt=FMT, clock=node.clock)
        db.store_edges([(0, 1)])
        db.flush()
        other = GrDBFormat(
            capacities=(4, 8), block_sizes=(256, 256), max_file_bytes=4096
        )
        with pytest.raises(GraphStorageException):
            GrDB(node.disk, fmt=other, clock=node.clock)

    def test_fresh_instance_not_restored(self):
        db = GrDB(make_node().disk, fmt=FMT)
        assert not db.restored

    def test_corrupt_superblock_detected(self):
        node = make_node()
        db = GrDB(node.disk, fmt=FMT, clock=node.clock)
        db.store_edges([(0, 1)])
        db.flush()
        super_dev = node.disk("grdb_super")
        super_dev.write(10, b"\xde\xad")  # flip bytes inside the body
        with pytest.raises(GraphStorageException):
            GrDB(node.disk, fmt=FMT, clock=node.clock)

    def test_restore_discards_cached_blocks(self):
        """``restore()`` rewinds the storage to the persisted image; blocks
        cached since the flush (dirty ones especially) describe the
        pre-restore state and must be dropped, not served or flushed."""
        from repro.graphdb.grdb.storage import GrDBStorage

        node = make_node()
        st = GrDBStorage(FMT, node.disk, cache_blocks=64)
        sub = FMT.subblock_bytes(0)
        st.write_subblock(0, 0, b"\x01" * sub)
        st.flush()  # persists the block and the superblock
        st.write_subblock(0, 0, b"\x02" * sub)  # dirty, cache-only
        assert st.restore()
        # The cached post-flush bytes must be gone: reads see the image...
        assert st.read_subblock(0, 0) == b"\x01" * sub
        # ...and a later flush must not resurrect the discarded write.
        st.flush()
        st.cache.drop()
        assert st.read_subblock(0, 0) == b"\x01" * sub


class TestPrefetch:
    def test_prefetch_counts_blocks(self):
        node = make_node()
        db = GrDB(node.disk, fmt=FMT, clock=node.clock)
        db.store_edges([(v, v + 100) for v in range(40)])
        n = db.prefetch_fringe(np.arange(40))
        # 40 vertices over 16-subblock level-0 blocks -> 3 distinct blocks.
        assert n == 3

    def test_prefetch_skips_unowned(self):
        node = make_node()
        db = GrDB(node.disk, fmt=FMT, clock=node.clock, id_map=ModuloMap(2, 0))
        db.store_edges([(0, 5), (2, 7)])
        assert db.prefetch_fringe(np.array([0, 1, 2, 3])) == 1  # locals 0,1 share a block

    def test_prefetch_warms_cache_for_expansion(self):
        node = make_node()
        db = GrDB(node.disk, fmt=FMT, clock=node.clock, cache_blocks=64)
        db.store_edges([(v, v + 100) for v in range(40)])
        db.flush()
        db.storage.cache.clear()
        db.prefetch_fringe(np.arange(40))
        hits_before = db.cache_stats.hits
        for v in range(40):
            db.get_adjacency(v)
        # Level-0 lookups all hit the warmed cache.
        assert db.cache_stats.hits - hits_before >= 3

    def test_prefetched_bfs_same_answer(self):
        from repro import MSSG, MSSGConfig
        from repro.graphgen import dedupe_edges, preferential_attachment

        edges = dedupe_edges(preferential_attachment(150, 3, seed=2))
        with MSSG(MSSGConfig(num_backends=2, backend="grDB", grdb_format=FMT)) as mssg:
            mssg.ingest(edges)
            plain = mssg.query_bfs(0, 140)
            prefetched = mssg.query_bfs(0, 140, prefetch=True)
            assert plain.result == prefetched.result

    def test_prefetch_reduces_cold_seeks(self):
        """Offset-sorted prefetch turns scattered level-0 reads into runs."""
        spec = NodeSpec()
        rng = np.random.default_rng(1)
        vertices = rng.permutation(200)[:80]

        def cold_seeks(prefetch: bool) -> int:
            node = SimNode(0, spec)
            db = GrDB(node.disk, fmt=FMT, clock=node.clock, cache_blocks=512)
            db.store_edges([(int(v), int(v) + 1000) for v in range(200)])
            db.flush()
            db.storage.cache.clear()
            for dev in node._disks.values():
                dev.stats.seeks = 0
            if prefetch:
                db.prefetch_fringe(vertices)
            for v in vertices:
                db.get_adjacency(int(v))
            return sum(dev.stats.seeks for dev in node._disks.values())

        assert cold_seeks(True) <= cold_seeks(False)
