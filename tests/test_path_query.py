"""Tests for the path-reconstructing BFS analysis."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import MSSG, MSSGConfig
from repro.bfs import bfs_distance
from repro.graphgen import CSRGraph, dedupe_edges, preferential_attachment


def valid_path(path, edges, s, d):
    """A path is valid iff endpoints match and every hop is an edge."""
    if path[0] != s or path[-1] != d:
        return False
    edge_set = {(int(a), int(b)) for a, b in edges} | {
        (int(b), int(a)) for a, b in edges
    }
    return all((u, v) in edge_set for u, v in zip(path, path[1:]))


class TestPathQuery:
    EDGES = dedupe_edges(preferential_attachment(120, 2, seed=6))

    def run(self, s, d, **cfg):
        defaults = dict(num_backends=3, backend="HashMap")
        defaults.update(cfg)
        with MSSG(MSSGConfig(**defaults)) as mssg:
            mssg.ingest(self.EDGES)
            return mssg.query("path", source=s, dest=d).result

    def test_path_is_shortest_and_valid(self):
        g = CSRGraph.from_edges(self.EDGES, num_vertices=120)
        rng = np.random.default_rng(2)
        for _ in range(5):
            s, d = int(rng.integers(0, 120)), int(rng.integers(0, 120))
            expected = bfs_distance(g, s, d)
            path = self.run(s, d)
            if expected == -1:
                assert path is None
            elif expected == 0:
                assert path == [s]
            else:
                assert valid_path(path, self.EDGES, s, d)
                assert len(path) - 1 == expected

    def test_source_equals_dest(self):
        assert self.run(9, 9) == [9]

    def test_adjacent_pair(self):
        u, v = map(int, self.EDGES[0])
        assert self.run(u, v) == [u, v]

    def test_unreachable(self):
        edges = np.array([[0, 1], [5, 6]])
        with MSSG(MSSGConfig(num_backends=2, backend="HashMap")) as mssg:
            mssg.ingest(edges)
            assert mssg.query("path", source=0, dest=6).result is None

    @pytest.mark.parametrize("declustering", ["vertex-rr", "edge-rr", "vertex-hash"])
    def test_all_declusterings(self, declustering):
        g = CSRGraph.from_edges(self.EDGES, num_vertices=120)
        expected = bfs_distance(g, 0, 99)
        path = self.run(0, 99, declustering=declustering)
        assert len(path) - 1 == expected
        assert valid_path(path, self.EDGES, 0, 99)

    def test_grdb_backend(self):
        g = CSRGraph.from_edges(self.EDGES, num_vertices=120)
        expected = bfs_distance(g, 2, 88)
        path = self.run(2, 88, backend="grDB")
        assert len(path) - 1 == expected


@settings(max_examples=12, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    edges=st.lists(
        st.tuples(st.integers(0, 25), st.integers(0, 25)), min_size=2, max_size=60
    ),
    endpoints=st.tuples(st.integers(0, 25), st.integers(0, 25)),
)
def test_property_paths_are_shortest(edges, endpoints):
    clean = dedupe_edges(np.array(edges, dtype=np.int64))
    if len(clean) == 0:
        return
    s, d = endpoints
    graph = CSRGraph.from_edges(clean, num_vertices=26)
    expected = bfs_distance(graph, s, d)
    with MSSG(MSSGConfig(num_backends=2, backend="HashMap")) as mssg:
        mssg.ingest(clean)
        path = mssg.query("path", source=s, dest=d).result
    if expected == -1:
        assert path is None
    elif expected == 0:
        assert path == [s]
    else:
        assert len(path) - 1 == expected
        assert valid_path(path, clean, s, d)
