"""Tests for the DataCutter-style filter/stream middleware."""

import numpy as np
import pytest

from repro.datacutter import (
    DataCutterRuntime,
    END_OF_STREAM,
    Filter,
    FilterGraph,
)
from repro.simcluster import SimCluster
from repro.util import ConfigError


class Source(Filter):
    outputs = ("out",)

    def __init__(self, items=None):
        self.items = items if items is not None else list(range(10))

    def process(self, ctx):
        for item in self.items:
            ctx.write("out", item)
        ctx.close_output("out")


class Doubler(Filter):
    inputs = ("in",)
    outputs = ("out",)

    def process(self, ctx):
        while True:
            item = yield from ctx.read("in")
            if item is END_OF_STREAM:
                break
            ctx.compute(1e-6)
            ctx.write("out", item * 2)
        ctx.close_output("out")


class Collector(Filter):
    inputs = ("in",)

    def process(self, ctx):
        got = []
        while True:
            item = yield from ctx.read("in")
            if item is END_OF_STREAM:
                return got
            got.append(item)


def build_pipeline(nranks=3, items=None):
    g = FilterGraph()
    g.add_filter("src", lambda: Source(items), placement=[0])
    g.add_filter("double", Doubler, placement=[1])
    g.add_filter("sink", Collector, placement=[2])
    g.connect("src", "out", "double", "in")
    g.connect("double", "out", "sink", "in")
    return g


class TestPipeline:
    def test_three_stage_pipeline(self):
        cluster = SimCluster(nranks=3)
        results = DataCutterRuntime(build_pipeline(), cluster).run()
        assert results["sink"][0] == [i * 2 for i in range(10)]
        assert results["src"] == [None]

    def test_virtual_time_advances(self):
        cluster = SimCluster(nranks=3)
        DataCutterRuntime(build_pipeline(), cluster).run()
        assert cluster.makespan > 0

    def test_empty_source(self):
        cluster = SimCluster(nranks=3)
        results = DataCutterRuntime(build_pipeline(items=[]), cluster).run()
        assert results["sink"][0] == []


class TestDistributionPolicies:
    def run_fanout(self, policy, key_fn=None, copies=3, items=12):
        g = FilterGraph()
        g.add_filter("src", lambda: Source(list(range(items))), placement=[0])
        g.add_filter("sink", Collector, placement=list(range(1, 1 + copies)))
        g.connect("src", "out", "sink", "in", policy=policy, key_fn=key_fn)
        cluster = SimCluster(nranks=1 + copies)
        return DataCutterRuntime(g, cluster).run()["sink"]

    def test_round_robin_balances(self):
        parts = self.run_fanout("round_robin")
        assert [len(p) for p in parts] == [4, 4, 4]
        assert sorted(sum(parts, [])) == list(range(12))

    def test_broadcast_duplicates(self):
        parts = self.run_fanout("broadcast")
        for p in parts:
            assert p == list(range(12))

    def test_keyed_routes_by_owner(self):
        parts = self.run_fanout("keyed", key_fn=lambda item: item)
        for copy, part in enumerate(parts):
            assert all(item % 3 == copy for item in part)

    def test_multiple_producers_eos(self):
        """Consumer sees END only after all producer copies close."""
        g = FilterGraph()
        g.add_filter("src", lambda: Source(list(range(5))), placement=[0, 1])
        g.add_filter("sink", Collector, placement=[2])
        g.connect("src", "out", "sink", "in")
        cluster = SimCluster(nranks=3)
        results = DataCutterRuntime(g, cluster).run()
        assert sorted(results["sink"][0]) == sorted(list(range(5)) * 2)


class TestCoLocation:
    """Task parallelism: multiple filter copies share a rank."""

    def test_whole_pipeline_on_one_rank(self):
        g = FilterGraph()
        g.add_filter("src", lambda: Source(list(range(8))), placement=[0])
        g.add_filter("double", Doubler, placement=[0])
        g.add_filter("sink", Collector, placement=[0])
        g.connect("src", "out", "double", "in")
        g.connect("double", "out", "sink", "in")
        results = DataCutterRuntime(g, SimCluster(nranks=1)).run()
        assert results["sink"][0] == [i * 2 for i in range(8)]

    def test_mixed_local_and_remote_stages(self):
        g = FilterGraph()
        g.add_filter("src", lambda: Source(list(range(10))), placement=[0])
        g.add_filter("double", Doubler, placement=[0])  # co-located with src
        g.add_filter("sink", Collector, placement=[1])
        g.connect("src", "out", "double", "in")
        g.connect("double", "out", "sink", "in")
        results = DataCutterRuntime(g, SimCluster(nranks=2)).run()
        assert results["sink"][0] == [i * 2 for i in range(10)]

    def test_two_independent_pipelines_share_ranks(self):
        g = FilterGraph()
        g.add_filter("srcA", lambda: Source([1, 2, 3]), placement=[0])
        g.add_filter("srcB", lambda: Source([10, 20]), placement=[0])
        g.add_filter("sinkA", Collector, placement=[1])
        g.add_filter("sinkB", Collector, placement=[1])
        g.connect("srcA", "out", "sinkA", "in")
        g.connect("srcB", "out", "sinkB", "in")
        results = DataCutterRuntime(g, SimCluster(nranks=2)).run()
        assert results["sinkA"][0] == [1, 2, 3]
        assert results["sinkB"][0] == [10, 20]

    def test_fan_in_to_colocated_consumers(self):
        g = FilterGraph()
        g.add_filter("src", lambda: Source(list(range(9))), placement=[0, 1])
        g.add_filter("sink", Collector, placement=[2, 2, 2])
        g.connect("src", "out", "sink", "in", policy="round_robin")
        results = DataCutterRuntime(g, SimCluster(nranks=3)).run()
        items = sorted(sum(results["sink"], []))
        assert items == sorted(list(range(9)) * 2)


class TestValidation:
    def test_duplicate_filter_name(self):
        g = FilterGraph()
        g.add_filter("a", Source, [0])
        with pytest.raises(ConfigError):
            g.add_filter("a", Source, [1])

    def test_unknown_filter_in_stream(self):
        g = FilterGraph()
        g.add_filter("a", Source, [0])
        with pytest.raises(ConfigError):
            g.connect("a", "out", "missing", "in")

    def test_keyed_requires_key_fn(self):
        g = FilterGraph()
        g.add_filter("a", Source, [0])
        g.add_filter("b", Collector, [1])
        with pytest.raises(ConfigError):
            g.connect("a", "out", "b", "in", policy="keyed")

    def test_placement_out_of_range(self):
        g = FilterGraph()
        g.add_filter("a", Source, [5])
        with pytest.raises(ConfigError):
            DataCutterRuntime(g, SimCluster(nranks=2))

    def test_port_declaration_checked(self):
        g = FilterGraph()
        g.add_filter("a", Source, [0])
        g.add_filter("b", Collector, [1])
        with pytest.raises(ConfigError):
            g.connect("a", "bogus_port", "b", "in")
            DataCutterRuntime(g, SimCluster(nranks=2))

    def test_double_feed_port_rejected(self):
        g = FilterGraph()
        g.add_filter("a", Source, [0])
        g.add_filter("b", Source, [1])
        g.add_filter("c", Collector, [2])
        g.connect("a", "out", "c", "in")
        with pytest.raises(ConfigError):
            g.connect("b", "out", "c", "in")

    def test_empty_placement(self):
        g = FilterGraph()
        with pytest.raises(ConfigError):
            g.add_filter("a", Source, [])
