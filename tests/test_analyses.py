"""Tests for the extension analyses: connected components and typed BFS."""

import numpy as np
import pytest

from repro import MSSG, MSSGConfig
from repro.graphgen import (
    dedupe_edges,
    preferential_attachment,
    pubmed_like,
    pubmed_semantic_graph,
)
from repro.simcluster.faults import DiskFault, FaultPlan
from repro.util.errors import ConfigError

ALL_BACKENDS = ["Array", "HashMap", "MySQL", "BerkeleyDB", "StreamDB", "grDB"]


def two_component_edges():
    """Two disjoint scale-free blobs plus an isolated pair."""
    a = dedupe_edges(preferential_attachment(60, 2, seed=1))
    b = dedupe_edges(preferential_attachment(40, 2, seed=2)) + 100
    c = np.array([[200, 201]])
    return np.vstack([a, b, c])


class TestComponents:
    @pytest.mark.parametrize("decluster", ["vertex-rr", "edge-rr"])
    def test_counts_components(self, decluster):
        edges = two_component_edges()
        with MSSG(
            MSSGConfig(num_backends=3, backend="HashMap", declustering=decluster)
        ) as mssg:
            mssg.ingest(edges)
            report = mssg.query("components")
            assert report.result["num_components"] == 3
            assert sum(report.result["sizes"]) == len(
                np.unique(edges)
            )
            assert report.result["sizes"][-1] == 2  # the isolated pair

    def test_labels_are_component_minima(self):
        edges = two_component_edges()
        with MSSG(MSSGConfig(num_backends=2, backend="HashMap")) as mssg:
            mssg.ingest(edges)
            labels = mssg.query("components", return_labels=True).result["labels"]
            # Every member of the second blob carries its minimum id (100).
            assert labels[200] == 200 and labels[201] == 200
            blob_b = {v: lab for v, lab in labels.items() if 100 <= v < 200}
            assert blob_b and all(lab == 100 for lab in blob_b.values())

    @pytest.mark.parametrize("analysis", ["components", "components-dict"])
    def test_labels_gated_behind_parameter(self, analysis):
        # The per-vertex label table is an unbounded payload at scale:
        # absent by default, present on request, counts always present.
        edges = two_component_edges()
        with MSSG(MSSGConfig(num_backends=2, backend="HashMap")) as mssg:
            mssg.ingest(edges)
            bare = mssg.query(analysis).result
            assert "labels" not in bare
            assert bare["num_components"] == 3
            assert bare["sizes"][-1] == 2
            full = mssg.query(analysis, return_labels=True).result
            assert full["labels"][201] == 200

    def test_dict_baseline_agrees_with_runtime(self):
        edges = two_component_edges()
        with MSSG(MSSGConfig(num_backends=3, backend="HashMap")) as mssg:
            mssg.ingest(edges)
            runtime = mssg.query("components", return_labels=True).result
            naive = mssg.query("components-dict", return_labels=True).result
            assert runtime["num_components"] == naive["num_components"]
            assert runtime["sizes"] == naive["sizes"]
            assert runtime["labels"] == naive["labels"]

    def test_single_component_graph(self):
        edges = dedupe_edges(preferential_attachment(80, 2, seed=5))
        with MSSG(MSSGConfig(num_backends=4, backend="grDB")) as mssg:
            mssg.ingest(edges)
            report = mssg.query("components")
            assert report.result["num_components"] == 1
            assert report.levels >= 1

    def test_matches_networkx(self):
        nx = pytest.importorskip("networkx")
        rng = np.random.default_rng(7)
        edges = dedupe_edges(
            np.column_stack([rng.integers(0, 120, 150), rng.integers(0, 120, 150)])
        )
        g = nx.Graph()
        g.add_edges_from(map(tuple, edges.tolist()))
        expected = nx.number_connected_components(g)
        with MSSG(MSSGConfig(num_backends=3, backend="HashMap")) as mssg:
            mssg.ingest(edges)
            assert mssg.query("components").result["num_components"] == expected


class TestRegisterGuard:
    def test_duplicate_registration_rejected(self):
        with MSSG(MSSGConfig(num_backends=2, backend="HashMap")) as mssg:
            with pytest.raises(ConfigError, match="already registered"):
                mssg.queries.register("bfs", lambda **kw: None)
            # Nothing was clobbered: the built-in still answers.
            mssg.ingest(np.array([[0, 1], [1, 2]]))
            assert mssg.query_bfs(0, 2).result == 2

    def test_explicit_override_allowed(self):
        with MSSG(MSSGConfig(num_backends=2, backend="HashMap")) as mssg:
            sentinel = object()
            mssg.queries.register("degree", lambda **kw: sentinel, override=True)
            assert mssg.query("degree") is sentinel


class TestTypedBFS:
    def build(self):
        """Star of Articles around a Journal hub, plus a direct cite path.

        Path A: 0 -cites- 1 -cites- 2            (all Articles)
        Path B: 0 -published_in- 9 (Journal) -published_in- 2
        Types:  0,1,2 = Article(code 0), 9 = Journal(code 1)
        """
        edges = np.array([[0, 1], [1, 2], [0, 9], [9, 2]])
        mssg = MSSG(MSSGConfig(num_backends=2, backend="HashMap"))
        mssg.ingest(edges)
        types = {0: 0, 1: 0, 2: 0, 9: 1}
        assert mssg.query("load-vertex-types", type_codes=types).result == 4
        return mssg

    def test_unrestricted_uses_hub_shortcut(self):
        mssg = self.build()
        try:
            # Plain BFS may go through the Journal: distance 2 either way.
            assert mssg.query_bfs(0, 2).result == 2
            # Typed BFS allowing both codes agrees.
            assert mssg.query("typed-bfs", source=0, dest=2, allowed_codes=[0, 1]).result == 2
        finally:
            mssg.close()

    def test_restricting_types_changes_paths(self):
        mssg = self.build()
        try:
            # Only Article-typed vertices may be traversed: the citation
            # path 0-1-2 still works (distance 2)...
            assert mssg.query("typed-bfs", source=0, dest=2, allowed_codes=[0]).result == 2
            # ...but Articles are unreachable through a Journals-only lens.
            assert mssg.query("typed-bfs", source=0, dest=2, allowed_codes=[1]).result is None
        finally:
            mssg.close()

    def test_longer_detour_when_direct_type_excluded(self):
        # 0 -a- 5(typeX) -a- 9 ; 0 -b- 1 -b- 2 -b- 9 with allowed only type b.
        edges = np.array([[0, 5], [5, 9], [0, 1], [1, 2], [2, 9]])
        types = {0: 2, 5: 7, 9: 2, 1: 2, 2: 2}
        with MSSG(MSSGConfig(num_backends=2, backend="HashMap")) as mssg:
            mssg.ingest(edges)
            mssg.query("load-vertex-types", type_codes=types)
            assert mssg.query("typed-bfs", source=0, dest=9, allowed_codes=[2, 7]).result == 2
            assert mssg.query("typed-bfs", source=0, dest=9, allowed_codes=[2]).result == 3

    def test_source_equals_dest_is_zero_hops(self):
        # Regression: the trivial relationship must answer 0 before any
        # expansion — even with no metadata loaded and no traversable type.
        edges = np.array([[0, 1], [1, 2], [0, 9], [9, 2]])
        with MSSG(MSSGConfig(num_backends=2, backend="HashMap")) as mssg:
            mssg.ingest(edges)
            assert mssg.query("typed-bfs", source=5, dest=5, allowed_codes=[]).result == 0
            mssg.query("load-vertex-types", type_codes={0: 0, 1: 0, 2: 0, 9: 1})
            assert mssg.query("typed-bfs", source=0, dest=0, allowed_codes=[1]).result == 0
            before = sum(s["adjacency_requests"] for s in mssg.backend_stats())
            assert mssg.query("typed-bfs", source=9, dest=9, allowed_codes=[0]).result == 0
            after = sum(s["adjacency_requests"] for s in mssg.backend_stats())
            assert after == before  # decided with zero expansions

    def test_on_generated_semantic_graph(self):
        g = pubmed_semantic_graph(num_articles=60, num_authors=25, seed=4)
        code_of = {"Article": 0, "Author": 1, "Journal": 2, "MeSHTerm": 3, "Date": 4}
        types = {gid: code_of[t] for gid, t in g.vertices()}
        with MSSG(MSSGConfig(num_backends=3, backend="grDB")) as mssg:
            mssg.ingest(g.edge_list())
            mssg.query("load-vertex-types", type_codes=types)
            unrestricted = mssg.query(
                "typed-bfs", source=0, dest=30, allowed_codes=list(code_of.values())
            ).result
            assert unrestricted == mssg.query_bfs(0, 30).result
            articles_only = mssg.query(
                "typed-bfs", source=0, dest=30, allowed_codes=[0]
            ).result
            # Constraining the lens can only lengthen (or sever) paths.
            assert articles_only is None or articles_only >= unrestricted


# Big enough that queries are forced onto the simulated devices (a graph
# that fits in the 4-block cache never touches a disk and faults can't fire).
_FO_EDGES = pubmed_like(600, seed=11)


def _extension_mssg(backend, replication, kill=False):
    """Three back-ends + one front-end; back-end q lives on node 1 + q."""
    mssg = MSSG(
        MSSGConfig(
            num_backends=3,
            num_frontends=1,
            backend=backend,
            declustering="vertex-rr",
            replication=replication,
            cache_blocks=4,
        )
    )
    mssg.ingest(_FO_EDGES)
    mssg.query(
        "load-vertex-types", type_codes={int(v): 0 for v in np.unique(_FO_EDGES)}
    )
    if kill:
        mssg.set_fault_plan(FaultPlan([DiskFault(node=1, at_time=0.0)]))
    return mssg


class TestExtensionCoverage:
    """Extension analyses across every backend and replication factor."""

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    @pytest.mark.parametrize("replication", [1, 2])
    def test_components_and_typed_bfs(self, backend, replication):
        with _extension_mssg(backend, replication) as mssg:
            comp = mssg.query("components")
            assert comp.result["num_components"] >= 1
            assert sum(comp.result["sizes"]) == len(np.unique(_FO_EDGES))
            typed = mssg.query("typed-bfs", source=0, dest=100, allowed_codes=[0])
            plain = mssg.query_bfs(0, 100)
            assert typed.result == plain.result
            assert not typed.partial


class TestExtensionFailover:
    """Mid-query device deaths through the extension analyses."""

    @pytest.mark.parametrize("backend", ["grDB", "BerkeleyDB", "StreamDB"])
    def test_replicated_kill_preserves_answers(self, backend):
        with _extension_mssg(backend, replication=2) as healthy:
            comp_h = healthy.query("components").result
            typed_h = healthy.query(
                "typed-bfs", source=0, dest=100, allowed_codes=[0]
            ).result
        with _extension_mssg(backend, replication=2, kill=True) as faulted:
            comp_f = faulted.query("components")
            typed_f = faulted.query("typed-bfs", source=0, dest=100, allowed_codes=[0])
        assert comp_f.result == comp_h
        assert not comp_f.partial
        assert comp_f.device_failures >= 1
        # Broadcast expansion: the survivor's union covers the dead holder.
        assert typed_f.result == typed_h
        assert not typed_f.partial

    def test_unreplicated_kill_degrades_to_partial(self):
        with _extension_mssg("grDB", replication=1, kill=True) as mssg:
            comp = mssg.query("components")
            assert comp.partial
            assert comp.device_failures >= 1
            typed = mssg.query("typed-bfs", source=0, dest=100, allowed_codes=[0])
            assert typed.partial


class TestLocalVertices:
    @pytest.mark.parametrize(
        "backend", ["Array", "HashMap", "MySQL", "BerkeleyDB", "StreamDB", "grDB"]
    )
    def test_enumeration_matches_stored(self, backend):
        from repro.graphdb import make_graphdb
        from repro.simcluster import NodeSpec, SimNode

        node = SimNode(0, NodeSpec())
        db = make_graphdb(backend, node)
        db.store_edges([(3, 1), (7, 2), (3, 9), (100, 4)])
        db.finalize_ingest()
        assert db.local_vertices().tolist() == [3, 7, 100]
