"""Tests for the extension analyses: connected components and typed BFS."""

import numpy as np
import pytest

from repro import MSSG, MSSGConfig
from repro.graphgen import dedupe_edges, preferential_attachment, pubmed_semantic_graph


def two_component_edges():
    """Two disjoint scale-free blobs plus an isolated pair."""
    a = dedupe_edges(preferential_attachment(60, 2, seed=1))
    b = dedupe_edges(preferential_attachment(40, 2, seed=2)) + 100
    c = np.array([[200, 201]])
    return np.vstack([a, b, c])


class TestComponents:
    @pytest.mark.parametrize("decluster", ["vertex-rr", "edge-rr"])
    def test_counts_components(self, decluster):
        edges = two_component_edges()
        with MSSG(
            MSSGConfig(num_backends=3, backend="HashMap", declustering=decluster)
        ) as mssg:
            mssg.ingest(edges)
            report = mssg.query("components")
            assert report.result["num_components"] == 3
            assert sum(report.result["sizes"]) == len(
                np.unique(edges)
            )
            assert report.result["sizes"][-1] == 2  # the isolated pair

    def test_labels_are_component_minima(self):
        edges = two_component_edges()
        with MSSG(MSSGConfig(num_backends=2, backend="HashMap")) as mssg:
            mssg.ingest(edges)
            labels = mssg.query("components").result["labels"]
            # Every member of the second blob carries its minimum id (100).
            assert labels[200] == 200 and labels[201] == 200
            blob_b = {v: lab for v, lab in labels.items() if 100 <= v < 200}
            assert blob_b and all(lab == 100 for lab in blob_b.values())

    def test_single_component_graph(self):
        edges = dedupe_edges(preferential_attachment(80, 2, seed=5))
        with MSSG(MSSGConfig(num_backends=4, backend="grDB")) as mssg:
            mssg.ingest(edges)
            report = mssg.query("components")
            assert report.result["num_components"] == 1
            assert report.levels >= 1

    def test_matches_networkx(self):
        nx = pytest.importorskip("networkx")
        rng = np.random.default_rng(7)
        edges = dedupe_edges(
            np.column_stack([rng.integers(0, 120, 150), rng.integers(0, 120, 150)])
        )
        g = nx.Graph()
        g.add_edges_from(map(tuple, edges.tolist()))
        expected = nx.number_connected_components(g)
        with MSSG(MSSGConfig(num_backends=3, backend="HashMap")) as mssg:
            mssg.ingest(edges)
            assert mssg.query("components").result["num_components"] == expected


class TestTypedBFS:
    def build(self):
        """Star of Articles around a Journal hub, plus a direct cite path.

        Path A: 0 -cites- 1 -cites- 2            (all Articles)
        Path B: 0 -published_in- 9 (Journal) -published_in- 2
        Types:  0,1,2 = Article(code 0), 9 = Journal(code 1)
        """
        edges = np.array([[0, 1], [1, 2], [0, 9], [9, 2]])
        mssg = MSSG(MSSGConfig(num_backends=2, backend="HashMap"))
        mssg.ingest(edges)
        types = {0: 0, 1: 0, 2: 0, 9: 1}
        assert mssg.query("load-vertex-types", type_codes=types).result == 4
        return mssg

    def test_unrestricted_uses_hub_shortcut(self):
        mssg = self.build()
        try:
            # Plain BFS may go through the Journal: distance 2 either way.
            assert mssg.query_bfs(0, 2).result == 2
            # Typed BFS allowing both codes agrees.
            assert mssg.query("typed-bfs", source=0, dest=2, allowed_codes=[0, 1]).result == 2
        finally:
            mssg.close()

    def test_restricting_types_changes_paths(self):
        mssg = self.build()
        try:
            # Only Article-typed vertices may be traversed: the citation
            # path 0-1-2 still works (distance 2)...
            assert mssg.query("typed-bfs", source=0, dest=2, allowed_codes=[0]).result == 2
            # ...but Articles are unreachable through a Journals-only lens.
            assert mssg.query("typed-bfs", source=0, dest=2, allowed_codes=[1]).result is None
        finally:
            mssg.close()

    def test_longer_detour_when_direct_type_excluded(self):
        # 0 -a- 5(typeX) -a- 9 ; 0 -b- 1 -b- 2 -b- 9 with allowed only type b.
        edges = np.array([[0, 5], [5, 9], [0, 1], [1, 2], [2, 9]])
        types = {0: 2, 5: 7, 9: 2, 1: 2, 2: 2}
        with MSSG(MSSGConfig(num_backends=2, backend="HashMap")) as mssg:
            mssg.ingest(edges)
            mssg.query("load-vertex-types", type_codes=types)
            assert mssg.query("typed-bfs", source=0, dest=9, allowed_codes=[2, 7]).result == 2
            assert mssg.query("typed-bfs", source=0, dest=9, allowed_codes=[2]).result == 3

    def test_on_generated_semantic_graph(self):
        g = pubmed_semantic_graph(num_articles=60, num_authors=25, seed=4)
        code_of = {"Article": 0, "Author": 1, "Journal": 2, "MeSHTerm": 3, "Date": 4}
        types = {gid: code_of[t] for gid, t in g.vertices()}
        with MSSG(MSSGConfig(num_backends=3, backend="grDB")) as mssg:
            mssg.ingest(g.edge_list())
            mssg.query("load-vertex-types", type_codes=types)
            unrestricted = mssg.query(
                "typed-bfs", source=0, dest=30, allowed_codes=list(code_of.values())
            ).result
            assert unrestricted == mssg.query_bfs(0, 30).result
            articles_only = mssg.query(
                "typed-bfs", source=0, dest=30, allowed_codes=[0]
            ).result
            # Constraining the lens can only lengthen (or sever) paths.
            assert articles_only is None or articles_only >= unrestricted


class TestLocalVertices:
    @pytest.mark.parametrize(
        "backend", ["Array", "HashMap", "MySQL", "BerkeleyDB", "StreamDB", "grDB"]
    )
    def test_enumeration_matches_stored(self, backend):
        from repro.graphdb import make_graphdb
        from repro.simcluster import NodeSpec, SimNode

        node = SimNode(0, NodeSpec())
        db = make_graphdb(backend, node)
        db.store_edges([(3, 1), (7, 2), (3, 9), (100, 4)])
        db.finalize_ingest()
        assert db.local_vertices().tolist() == [3, 7, 100]
