"""Unit and property tests for the on-disk B+tree."""

import struct

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.simcluster import BlockDevice
from repro.storage import BTree, PagedFile
from repro.util import KeyNotFound, StorageEngineError


def make_tree(page_size=512, cache_pages=16, **kw):
    return BTree(PagedFile(BlockDevice(), page_size), cache_pages=cache_pages, **kw)


def k(i: int) -> bytes:
    return struct.pack(">Q", i)


class TestBasics:
    def test_empty(self):
        t = make_tree()
        assert len(t) == 0
        assert t.get_or_none(b"missing") is None
        with pytest.raises(KeyNotFound):
            t.get(b"missing")
        assert list(t.items()) == []

    def test_put_get_single(self):
        t = make_tree()
        t.put(b"hello", b"world")
        assert t.get(b"hello") == b"world"
        assert t.contains(b"hello")
        assert len(t) == 1

    def test_overwrite(self):
        t = make_tree()
        t.put(b"k", b"v1")
        t.put(b"k", b"v2")
        assert t.get(b"k") == b"v2"
        assert len(t) == 1

    def test_delete(self):
        t = make_tree()
        t.put(b"k", b"v")
        t.delete(b"k")
        assert len(t) == 0
        assert not t.contains(b"k")
        with pytest.raises(KeyNotFound):
            t.delete(b"k")

    def test_empty_key_and_value(self):
        t = make_tree()
        t.put(b"", b"")
        assert t.get(b"") == b""

    def test_oversized_key_rejected(self):
        t = make_tree(page_size=256)
        with pytest.raises(StorageEngineError):
            t.put(b"x" * 100, b"v")


class TestSplits:
    def test_many_sequential_inserts(self):
        t = make_tree(page_size=256)
        n = 500
        for i in range(n):
            t.put(k(i), b"v%d" % i)
        assert len(t) == n
        for i in range(0, n, 17):
            assert t.get(k(i)) == b"v%d" % i
        assert [key for key, _ in t.items()] == [k(i) for i in range(n)]

    def test_many_reverse_inserts(self):
        t = make_tree(page_size=256)
        for i in reversed(range(300)):
            t.put(k(i), k(i * 2))
        assert [key for key, _ in t.items()] == [k(i) for i in range(300)]

    def test_interleaved_insert_delete(self):
        t = make_tree(page_size=256)
        for i in range(200):
            t.put(k(i), b"x" * (i % 30))
        for i in range(0, 200, 2):
            t.delete(k(i))
        assert len(t) == 100
        assert [key for key, _ in t.items()] == [k(i) for i in range(1, 200, 2)]
        # Reinsert into the holes.
        for i in range(0, 200, 2):
            t.put(k(i), b"back")
        assert len(t) == 200
        assert t.get(k(100)) == b"back"


class TestOverflow:
    def test_large_value_roundtrip(self):
        t = make_tree(page_size=512)
        big = bytes(range(256)) * 40  # 10240 bytes >> page
        t.put(b"big", big)
        assert t.get(b"big") == big

    def test_overflow_pages_recycled(self):
        t = make_tree(page_size=512)
        t.put(b"big", b"a" * 5000)
        pages_after_first = t.pages.npages
        t.put(b"big", b"b" * 5000)  # old chain freed, new chain allocated
        t.put(b"big2", b"c" * 5000)
        # Recycling keeps growth bounded: the second+third chains largely
        # reuse the freed pages of the first.
        assert t.pages.npages <= pages_after_first + 12
        assert t.get(b"big") == b"b" * 5000
        assert t.get(b"big2") == b"c" * 5000

    def test_delete_overflow_value(self):
        t = make_tree(page_size=512)
        t.put(b"big", b"z" * 4000)
        t.delete(b"big")
        assert t.get_or_none(b"big") is None

    def test_mixed_inline_and_overflow(self):
        t = make_tree(page_size=512)
        for i in range(50):
            size = 10 if i % 2 else 2000
            t.put(k(i), bytes([i]) * size)
        for i in range(50):
            size = 10 if i % 2 else 2000
            assert t.get(k(i)) == bytes([i]) * size


class TestScans:
    def test_range_scan(self):
        t = make_tree(page_size=256)
        for i in range(100):
            t.put(k(i), k(i))
        got = [key for key, _ in t.items(start=k(10), end=k(20))]
        assert got == [k(i) for i in range(10, 20)]

    def test_scan_from_missing_start(self):
        t = make_tree()
        t.put(k(5), b"a")
        t.put(k(9), b"b")
        assert [key for key, _ in t.items(start=k(6))] == [k(9)]

    def test_keys_iterator(self):
        t = make_tree()
        for i in [3, 1, 2]:
            t.put(k(i), b"")
        assert list(t.keys()) == [k(1), k(2), k(3)]


class TestPersistence:
    def test_reopen_from_same_device(self):
        dev = BlockDevice()
        t = BTree(PagedFile(dev, 512), cache_pages=8)
        for i in range(100):
            t.put(k(i), b"val%d" % i)
        t.flush()
        t2 = BTree(PagedFile(dev, 512), cache_pages=8)
        assert len(t2) == 100
        assert t2.get(k(42)) == b"val42"

    def test_cache_disabled_still_correct(self):
        t = make_tree(cache_pages=0)
        for i in range(100):
            t.put(k(i), b"v")
        assert len(list(t.items())) == 100

    def test_cache_reduces_device_reads(self):
        devc, devn = BlockDevice(), BlockDevice()
        cached = BTree(PagedFile(devc, 512), cache_pages=64)
        uncached = BTree(PagedFile(devn, 512), cache_pages=0)
        for t in (cached, uncached):
            for i in range(200):
                t.put(k(i), b"v" * 20)
            for i in range(200):
                t.get(k(i))
        assert devc.stats.reads < devn.stats.reads


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    st.lists(
        st.tuples(
            st.sampled_from(["put", "delete"]),
            st.binary(min_size=1, max_size=12),
            st.binary(max_size=300),
        ),
        max_size=120,
    )
)
def test_btree_matches_dict_model(ops):
    """Property: a B-tree behaves exactly like a dict under put/delete."""
    t = make_tree(page_size=256)
    model: dict[bytes, bytes] = {}
    for op, key, value in ops:
        if op == "put":
            t.put(key, value)
            model[key] = value
        elif key in model:
            t.delete(key)
            del model[key]
    assert len(t) == len(model)
    assert {key: val for key, val in t.items()} == model
    for key, val in model.items():
        assert t.get(key) == val
