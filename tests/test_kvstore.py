"""Tests for the BerkeleyDB-like KV store."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simcluster import BlockDevice
from repro.storage import KVStore, decode_u64, encode_key_u64_u32, encode_u64
from repro.util import KeyNotFound


def make_store(**kw):
    return KVStore(BlockDevice(), **kw)


def test_put_get_delete():
    s = make_store()
    s.put(b"a", b"1")
    assert s.get(b"a") == b"1"
    assert s.get_or_none(b"zz") is None
    s.delete(b"a")
    with pytest.raises(KeyNotFound):
        s.get(b"a")


def test_len_and_contains():
    s = make_store()
    for i in range(50):
        s.put(encode_u64(i), bytes([i]))
    assert len(s) == 50
    assert s.contains(encode_u64(10))
    assert not s.contains(encode_u64(99))


def test_cursor_order():
    s = make_store()
    for i in [5, 3, 9, 1]:
        s.put(encode_u64(i), b"x")
    assert [decode_u64(key) for key, _ in s.cursor()] == [1, 3, 5, 9]
    assert [decode_u64(key) for key, _ in s.cursor(start=encode_u64(3), end=encode_u64(9))] == [3, 5]


def test_prefix_scan_chunked_keys():
    """The (vertex, chunk) composite key used by the graph backends."""
    s = make_store()
    for vertex in [7, 8]:
        for chunk in range(3):
            s.put(encode_key_u64_u32(vertex, chunk), b"data%d-%d" % (vertex, chunk))
    got = list(s.prefix(encode_u64(7)))
    assert [v for _, v in got] == [b"data7-0", b"data7-1", b"data7-2"]


def test_chunked_8kb_values():
    s = make_store()
    chunk = bytes(range(256)) * 32  # 8 KB, like the paper's blocking
    s.put(encode_key_u64_u32(1, 0), chunk)
    assert s.get(encode_key_u64_u32(1, 0)) == chunk


def test_cache_stats_exposed():
    s = make_store(cache_pages=8)
    s.put(b"k", b"v")
    s.get(b"k")
    assert s.cache_stats.accesses > 0


def test_flush_then_reopen():
    dev = BlockDevice()
    s = KVStore(dev)
    s.put(b"persist", b"me")
    s.flush()
    s2 = KVStore(dev)
    assert s2.get(b"persist") == b"me"


def test_encode_u64_order_preserving():
    values = [0, 1, 255, 256, 2**32, 2**63, 2**64 - 1]
    encoded = [encode_u64(v) for v in values]
    assert encoded == sorted(encoded)
    assert [decode_u64(e) for e in encoded] == values


def test_composite_key_ordering():
    keys = [
        encode_key_u64_u32(1, 5),
        encode_key_u64_u32(2, 0),
        encode_key_u64_u32(1, 6),
        encode_key_u64_u32(0, 99),
    ]
    assert sorted(keys) == [
        encode_key_u64_u32(0, 99),
        encode_key_u64_u32(1, 5),
        encode_key_u64_u32(1, 6),
        encode_key_u64_u32(2, 0),
    ]


@settings(max_examples=20, deadline=None)
@given(st.dictionaries(st.binary(min_size=1, max_size=16), st.binary(max_size=200), max_size=60))
def test_kvstore_is_a_map(d):
    s = make_store()
    for key, val in d.items():
        s.put(key, val)
    assert len(s) == len(d)
    assert dict(s.cursor()) == d
