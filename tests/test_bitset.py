"""Unit and property tests for repro.util.bitset."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util import Bitset


def test_set_get_clear():
    b = Bitset(130)
    assert not b.get(0)
    b.set(0)
    b.set(64)
    b.set(129)
    assert b.get(0) and b.get(64) and b.get(129)
    assert not b.get(1)
    b.clear(64)
    assert not b.get(64)


def test_bounds():
    b = Bitset(10)
    with pytest.raises(IndexError):
        b.set(10)
    with pytest.raises(IndexError):
        b.get(-1)
    with pytest.raises(ValueError):
        Bitset(-1)


def test_set_many_and_get_many():
    b = Bitset(1000)
    idxs = np.array([0, 63, 64, 65, 500, 999])
    b.set_many(idxs)
    assert b.get_many(idxs).all()
    assert not b.get_many([1, 2, 66]).any()
    assert b.count() == len(idxs)


def test_set_many_duplicate_indices():
    b = Bitset(100)
    b.set_many([5, 5, 5, 6])
    assert b.count() == 2


def test_set_many_empty():
    b = Bitset(10)
    b.set_many([])
    assert b.count() == 0
    assert b.get_many([]).shape == (0,)


def test_set_many_bounds():
    b = Bitset(10)
    with pytest.raises(IndexError):
        b.set_many([3, 11])


def test_to_indices_and_clear_all():
    b = Bitset(200)
    b.set_many([3, 100, 199])
    assert b.to_indices().tolist() == [3, 100, 199]
    b.clear_all()
    assert b.count() == 0


def test_zero_size():
    b = Bitset(0)
    assert len(b) == 0
    assert b.count() == 0


@given(st.sets(st.integers(min_value=0, max_value=499)))
def test_matches_python_set(idxs):
    b = Bitset(500)
    for i in idxs:
        b.set(i)
    assert b.count() == len(idxs)
    assert set(b.to_indices().tolist()) == idxs
    mask = b.get_many(np.arange(500))
    assert set(np.nonzero(mask)[0].tolist()) == idxs


@given(
    st.sets(st.integers(min_value=0, max_value=299)),
    st.sets(st.integers(min_value=0, max_value=299)),
)
def test_set_then_clear(to_set, to_clear):
    b = Bitset(300)
    b.set_many(sorted(to_set))
    for i in to_clear:
        b.clear(i)
    assert set(b.to_indices().tolist()) == to_set - to_clear
