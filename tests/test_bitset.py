"""Unit and property tests for repro.util.bitset."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util import Bitset


def test_set_get_clear():
    b = Bitset(130)
    assert not b.get(0)
    b.set(0)
    b.set(64)
    b.set(129)
    assert b.get(0) and b.get(64) and b.get(129)
    assert not b.get(1)
    b.clear(64)
    assert not b.get(64)


def test_bounds():
    b = Bitset(10)
    with pytest.raises(IndexError):
        b.set(10)
    with pytest.raises(IndexError):
        b.get(-1)
    with pytest.raises(ValueError):
        Bitset(-1)


def test_set_many_and_get_many():
    b = Bitset(1000)
    idxs = np.array([0, 63, 64, 65, 500, 999])
    b.set_many(idxs)
    assert b.get_many(idxs).all()
    assert not b.get_many([1, 2, 66]).any()
    assert b.count() == len(idxs)


def test_set_many_duplicate_indices():
    b = Bitset(100)
    b.set_many([5, 5, 5, 6])
    assert b.count() == 2


def test_set_many_empty():
    b = Bitset(10)
    b.set_many([])
    assert b.count() == 0
    assert b.get_many([]).shape == (0,)


def test_set_many_bounds():
    b = Bitset(10)
    with pytest.raises(IndexError):
        b.set_many([3, 11])


def test_to_indices_and_clear_all():
    b = Bitset(200)
    b.set_many([3, 100, 199])
    assert b.to_indices().tolist() == [3, 100, 199]
    b.clear_all()
    assert b.count() == 0


def test_zero_size():
    b = Bitset(0)
    assert len(b) == 0
    assert b.count() == 0


@given(st.sets(st.integers(min_value=0, max_value=499)))
def test_matches_python_set(idxs):
    b = Bitset(500)
    for i in idxs:
        b.set(i)
    assert b.count() == len(idxs)
    assert set(b.to_indices().tolist()) == idxs
    mask = b.get_many(np.arange(500))
    assert set(np.nonzero(mask)[0].tolist()) == idxs


@given(
    st.sets(st.integers(min_value=0, max_value=299)),
    st.sets(st.integers(min_value=0, max_value=299)),
)
def test_set_then_clear(to_set, to_clear):
    b = Bitset(300)
    b.set_many(sorted(to_set))
    for i in to_clear:
        b.clear(i)
    assert set(b.to_indices().tolist()) == to_set - to_clear


# --- raw-word API (bitmap fringe exchange) ---------------------------------


def _reference_indices(words, nbits):
    """Bit positions via numpy's own unpackbits, as an oracle."""
    bits = np.unpackbits(words.view(np.uint8), bitorder="little")[:nbits]
    return np.nonzero(bits)[0]


@given(st.sets(st.integers(min_value=0, max_value=1022)))
def test_count_and_indices_match_unpackbits(idxs):
    b = Bitset(1023)  # deliberately not a multiple of 64
    b.set_many(sorted(idxs))
    ref = _reference_indices(b.words, 1023)
    assert b.count() == len(ref)
    assert b.to_indices().tolist() == ref.tolist()


def test_words_is_live_view():
    b = Bitset(128)
    w = b.words
    b.set(70)
    assert w[1] == np.uint64(1) << np.uint64(6)


def test_or_words_merges():
    a, b = Bitset(200), Bitset(200)
    a.set_many([0, 64, 150])
    b.set_many([64, 65, 199])
    a.or_words(b.words)
    assert set(a.to_indices().tolist()) == {0, 64, 65, 150, 199}
    assert set(b.to_indices().tolist()) == {64, 65, 199}  # source untouched


def test_or_words_rejects_wrong_length():
    a = Bitset(200)
    with pytest.raises(ValueError):
        a.or_words(np.zeros(1, dtype=np.uint64))


def test_from_words_round_trip():
    a = Bitset(130)
    a.set_many([0, 63, 64, 129])
    c = Bitset.from_words(a.words.copy(), 130)
    assert c.to_indices().tolist() == a.to_indices().tolist()
    assert len(c) == 130


def test_from_words_is_zero_copy():
    words = np.zeros(2, dtype=np.uint64)
    b = Bitset.from_words(words, 128)
    words[0] = np.uint64(1)
    assert b.get(0)


def test_from_words_rejects_wrong_length():
    with pytest.raises(ValueError):
        Bitset.from_words(np.zeros(1, dtype=np.uint64), 200)
