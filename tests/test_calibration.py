"""The cost-model constants must stay inside their paper-anchored bands."""

from repro.experiments.calibration import calibration_points, verify_calibration
from repro.simcluster import CpuProfile, DiskProfile


def test_all_calibration_points_hold():
    failures = verify_calibration()
    assert not failures, "\n".join(
        f"{p.name}: modeled {p.modeled:.4g} outside [{p.low:.4g}, {p.high:.4g}] "
        f"(anchor: {p.anchor})"
        for p in failures
    )


def test_points_carry_anchors():
    for p in calibration_points():
        assert p.anchor
        assert p.low < p.high


def test_detects_drift():
    """A deliberately broken profile trips the verifier."""
    silly = CpuProfile(edge_visit_seconds=1.0)  # 1 second per edge
    failures = verify_calibration(cpu=silly)
    assert any(p.name == "array-edge-rate-per-node" for p in failures)

    slow_disk = DiskProfile(seek_seconds=1.0)
    failures = verify_calibration(disk=slow_disk)
    assert any(p.name == "disk-seek" for p in failures)
