"""Direction-optimizing (push/pull hybrid) BFS tests.

The hybrid must be an *access-plan* change only: for every backend, batch
mode, replication factor, and forced direction schedule, reported BFS
levels must be bit-identical to the sequential reference and to the pure
top-down search.  The controller itself is tested as a unit (it is
rank-uniform by construction, so one instance models every rank).
"""

import numpy as np
import pytest

from repro import MSSG, MSSGConfig
from repro.bfs import (
    BOTTOM_UP,
    TOP_DOWN,
    DirectionConfig,
    DirectionController,
    InMemoryVisited,
    bfs_distance,
    sample_queries_by_distance,
)
from repro.bfs.direction import merge_level_stats
from repro.experiments import Deployment
from repro.graphgen import CSRGraph, pubmed_like
from repro.simcluster import FaultPlan

BACKENDS = ("Array", "HashMap", "MySQL", "BerkeleyDB", "StreamDB", "grDB")

EDGES = pubmed_like(900, seed=7)
GRAPH = CSRGraph.from_edges(EDGES)
#: Long-path queries: scale-free mid-BFS fringes cover most of the graph,
#: so the heuristic actually goes bottom-up on these.
QUERIES = sample_queries_by_distance(GRAPH, 3, seed=0, min_distance=3)


def make_mssg(backend="grDB", num_backends=4, replication=1, **kw):
    mssg = MSSG(
        MSSGConfig(
            num_backends=num_backends,
            backend=backend,
            replication=replication,
            **kw,
        )
    )
    mssg.ingest(EDGES)
    return mssg


class TestDirectionConfig:
    def test_rejects_nonpositive_vertex_count(self):
        with pytest.raises(ValueError):
            DirectionConfig(num_vertices=0)

    def test_rejects_unknown_schedule_entry(self):
        with pytest.raises(ValueError):
            DirectionConfig(num_vertices=10, schedule=("sideways",))


class TestDirectionController:
    def test_bootstrap_is_top_down(self):
        ctl = DirectionController(DirectionConfig(num_vertices=1000))
        assert ctl.decide(1) == TOP_DOWN

    def test_switches_bottom_up_when_fringe_outweighs_unvisited(self):
        cfg = DirectionConfig(num_vertices=1000, alpha=1.0 / 14.0)
        ctl = DirectionController(cfg)
        assert ctl.decide(1) == TOP_DOWN
        # 10k stored edges; the new fringe's out-degree sum (800) exceeds
        # alpha * remaining (9200 / 14 ~ 657) -> pull next level.
        ctl.observe(total_new=100, fringe_degree=800, edges_stored=10_000)
        assert ctl.decide(2) == BOTTOM_UP

    def test_stays_top_down_on_small_fringe(self):
        ctl = DirectionController(DirectionConfig(num_vertices=1000))
        ctl.decide(1)
        ctl.observe(total_new=3, fringe_degree=10, edges_stored=10_000)
        assert ctl.decide(2) == TOP_DOWN

    def test_switches_back_when_fringe_shrinks(self):
        cfg = DirectionConfig(num_vertices=2400, beta=24.0)
        ctl = DirectionController(cfg)
        ctl.decide(1)
        ctl.observe(total_new=500, fringe_degree=9000, edges_stored=20_000)
        assert ctl.decide(2) == BOTTOM_UP
        # Fringe of 500 >= 2400/24 = 100: hysteresis keeps pulling.
        ctl.observe(total_new=500, fringe_degree=5000)
        assert ctl.decide(3) == BOTTOM_UP
        # Fringe collapses below n/beta: push again.
        ctl.observe(total_new=40, fringe_degree=200)
        assert ctl.decide(4) == TOP_DOWN

    def test_unvisited_estimate_never_negative(self):
        ctl = DirectionController(DirectionConfig(num_vertices=100))
        ctl.decide(1)
        ctl.observe(total_new=50, fringe_degree=500, edges_stored=300)
        ctl.observe(total_new=10, fringe_degree=400)
        assert ctl._m_u == 0

    def test_forced_schedule_overrides_heuristic(self):
        cfg = DirectionConfig(
            num_vertices=100, schedule=(TOP_DOWN, TOP_DOWN, BOTTOM_UP)
        )
        ctl = DirectionController(cfg)
        got = [ctl.decide(level) for level in (1, 2, 3, 4, 5)]
        # Levels past the schedule's end repeat its last entry.
        assert got == [TOP_DOWN, TOP_DOWN, BOTTOM_UP, BOTTOM_UP, BOTTOM_UP]
        assert ctl.history == got

    def test_merge_level_stats_elementwise(self):
        assert merge_level_stats((False, 1, 10, 100), (True, 2, 20, 200)) == (
            True,
            3,
            30,
            300,
        )


class TestUnvisitedLocal:
    def test_shrinks_monotonically_and_calls_source_once(self):
        visited = InMemoryVisited()
        calls = []

        def local_vertices():
            calls.append(1)
            return np.arange(10, dtype=np.int64)

        assert visited.unvisited_local(local_vertices).tolist() == list(range(10))
        visited.mark_many([2, 5], 1)
        assert visited.unvisited_local(local_vertices).tolist() == [
            0, 1, 3, 4, 6, 7, 8, 9,
        ]
        visited.mark_many([0, 9], 2)
        assert visited.unvisited_local(local_vertices).tolist() == [1, 3, 4, 6, 7, 8]
        assert len(calls) == 1  # later levels re-filter the remainder


class TestHybridMatchesTopDown:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_backends_identical_results(self, backend):
        with make_mssg(backend=backend) as mssg:
            for s, d, expect in QUERIES:
                on = mssg.query_bfs(s, d)
                off = mssg.query_bfs(s, d, direction_opt=False)
                assert on.result == expect
                assert off.result == expect
                # The hybrid really ran (telemetry) and pure top-down
                # really did not.
                assert BOTTOM_UP in on.directions
                assert off.directions == ()
                assert off.edges_examined == 0

    @pytest.mark.parametrize("batch_io", [False, True])
    @pytest.mark.parametrize("pipelined", [False, True])
    def test_drivers_and_batch_modes(self, pipelined, batch_io):
        with make_mssg(backend="grDB", batch_io=batch_io) as mssg:
            for s, d, expect in QUERIES:
                on = mssg.query_bfs(s, d, pipelined=pipelined)
                off = mssg.query_bfs(s, d, pipelined=pipelined, direction_opt=False)
                assert on.result == expect == off.result
                assert BOTTOM_UP in on.directions

    @pytest.mark.parametrize("backend", ["grDB", "StreamDB", "BerkeleyDB"])
    def test_replicated_deployments(self, backend):
        with make_mssg(backend=backend, replication=2) as mssg:
            for s, d, expect in QUERIES:
                report = mssg.query_bfs(s, d)
                assert report.result == expect
                assert BOTTOM_UP in report.directions
                assert not report.partial

    def test_short_queries_stay_top_down(self):
        u, v = map(int, EDGES[0])
        with make_mssg(backend="HashMap") as mssg:
            report = mssg.query_bfs(u, v)
            assert report.result == 1
            # Level 1 always pushes (m_u unknown until the first allreduce).
            assert report.directions[:1] == (TOP_DOWN,)

    def test_unreachable_vertex(self):
        iso = int(EDGES.max()) + 0  # highest id; make a truly isolated one
        edges = np.vstack([EDGES, [[iso + 1, iso + 2]]])
        with MSSG(MSSGConfig(num_backends=4, backend="HashMap")) as mssg:
            mssg.ingest(edges)
            report = mssg.query_bfs(int(EDGES[0, 0]), iso + 2)
            assert report.result is None

    def test_early_exit_accounting(self):
        """Bottom-up examines fewer entries than it would without early
        exit, and the split is reported."""
        with make_mssg(backend="HashMap") as mssg:
            s, d, expect = QUERIES[0]
            report = mssg.query_bfs(s, d)
            assert report.result == expect
            assert report.edges_examined > 0
            assert report.edges_skipped > 0


class TestForcedSchedules:
    def test_always_bottom_up(self):
        with make_mssg(backend="HashMap") as mssg:
            for s, d, expect in QUERIES:
                report = mssg.query_bfs(s, d, direction_schedule=(BOTTOM_UP,))
                assert report.result == expect
                assert set(report.directions) == {BOTTOM_UP}

    @pytest.mark.parametrize("switch_level", [2, 3])
    def test_switch_at_level_k(self, switch_level):
        schedule = (TOP_DOWN,) * (switch_level - 1) + (BOTTOM_UP,)
        with make_mssg(backend="StreamDB") as mssg:
            for s, d, expect in QUERIES:
                report = mssg.query_bfs(s, d, direction_schedule=schedule)
                assert report.result == expect
                got = report.directions
                assert got[: switch_level - 1] == (TOP_DOWN,) * (switch_level - 1)
                assert all(x == BOTTOM_UP for x in got[switch_level - 1 :])

    def test_forced_bottom_up_pipelined(self):
        with make_mssg(backend="grDB") as mssg:
            s, d, expect = QUERIES[0]
            report = mssg.query_bfs(
                s, d, pipelined=True, direction_schedule=(BOTTOM_UP,)
            )
            assert report.result == expect
            assert set(report.directions) == {BOTTOM_UP}


class TestFailoverComposition:
    KILL = FaultPlan.kill_node(1 + 2, at_time=0.0005)  # back-end 2 of 4

    @pytest.mark.parametrize("backend", ["grDB", "StreamDB", "MySQL"])
    def test_mid_query_death_converges(self, backend):
        with make_mssg(backend=backend, replication=2) as mssg:
            mssg.set_fault_plan(self.KILL)
            for s, d, expect in QUERIES:
                report = mssg.query_bfs(s, d)
                assert report.result == expect, f"{backend} {s}->{d}"
                assert not report.partial

    def test_mid_query_death_forced_bottom_up(self):
        """Claim-exchange rounds re-assign a dead rank's scan shard."""
        with make_mssg(backend="StreamDB", replication=2) as mssg:
            mssg.set_fault_plan(self.KILL)
            s, d, expect = QUERIES[0]
            report = mssg.query_bfs(s, d, direction_schedule=(BOTTOM_UP,))
            assert report.result == expect
            assert not report.partial
            assert report.device_failures >= 1

    def test_unreplicated_death_reports_partial_not_wrong(self):
        with make_mssg(backend="StreamDB", replication=1) as mssg:
            mssg.set_fault_plan(self.KILL)  # installing a plan arms failover
            s, d, expect = QUERIES[0]
            report = mssg.query_bfs(s, d)
            # With the only copy gone the search may fail to find the
            # destination, but it must say so rather than answer wrong.
            if report.result is not None and not report.partial:
                assert report.result == expect


class TestPaperModeUnchanged:
    def test_deployment_defaults_off(self):
        assert Deployment(backend="grDB", num_backends=4).direction_opt is False

    def test_library_default_on(self):
        assert MSSGConfig().direction_opt is True

    def test_off_timing_independent_of_library_default(self):
        """direction_opt=False must be byte-identical to a deployment that
        never heard of the hybrid (paper figures stay reproducible)."""
        s, d, expect = QUERIES[0]
        with make_mssg(backend="grDB", direction_opt=True) as mssg:
            a = mssg.query_bfs(s, d, direction_opt=False)
        with make_mssg(backend="grDB", direction_opt=False) as mssg:
            b = mssg.query_bfs(s, d)
        assert a.result == b.result == expect
        assert a.seconds == b.seconds
        assert a.edges_scanned == b.edges_scanned

    def test_path_query_unaffected(self):
        s, d, expect = QUERIES[0]
        with make_mssg(backend="HashMap") as mssg:
            path = mssg.query("path", source=s, dest=d).result
            assert path is not None
            assert len(path) == expect + 1
            assert path[0] == s and path[-1] == d
            pairs = {tuple(e) for e in np.vstack([EDGES, EDGES[:, ::-1]]).tolist()}
            for u, v in zip(path, path[1:]):
                assert (u, v) in pairs


class TestSequentialReference:
    def test_queries_match_reference(self):
        for s, d, expect in QUERIES:
            assert bfs_distance(GRAPH, s, d) == expect
