"""Integration tests with real file-backed storage and misc edge cases."""

import os

import numpy as np
import pytest

from repro import MSSG, MSSGConfig
from repro.bfs import bfs_distance
from repro.graphgen import CSRGraph, dedupe_edges, preferential_attachment
from repro.simcluster import SimCluster

EDGES = dedupe_edges(preferential_attachment(120, 3, seed=12))
GRAPH = CSRGraph.from_edges(EDGES, num_vertices=120)


class TestFileBackedDeployment:
    def test_grdb_on_real_files(self, tmp_path):
        """End-to-end with FileBacking: grDB writes genuine level files."""
        with MSSG(
            MSSGConfig(
                num_backends=2, backend="grDB", storage_dir=str(tmp_path)
            )
        ) as mssg:
            mssg.ingest(EDGES)
            expected = bfs_distance(GRAPH, 0, 110)
            assert mssg.query_bfs(0, 110).result == (
                expected if expected != -1 else None
            )
        # Real files exist per node, per level.
        files = []
        for root, _, names in os.walk(tmp_path):
            files.extend(os.path.join(root, n) for n in names)
        level_files = [f for f in files if "grdb_L" in f]
        assert level_files, f"no grDB level files under {tmp_path}"
        assert any(os.path.getsize(f) > 0 for f in level_files)
        assert any(f.endswith("grdb_super") for f in files)

    def test_bdb_on_real_files(self, tmp_path):
        with MSSG(
            MSSGConfig(num_backends=2, backend="BerkeleyDB", storage_dir=str(tmp_path))
        ) as mssg:
            mssg.ingest(EDGES)
            expected = bfs_distance(GRAPH, 1, 100)
            assert mssg.query_bfs(1, 100).result == (
                expected if expected != -1 else None
            )
        found = any(
            "bdb" in name
            for _, _, names in os.walk(tmp_path)
            for name in names
        )
        assert found


class TestCommEdgeCases:
    def test_gather_nonzero_root(self):
        cluster = SimCluster(nranks=4)

        def program(ctx):
            out = yield from ctx.comm.gather(ctx.rank + 100, root=2)
            return out

        results = cluster.run(program)
        assert results[2] == [100, 101, 102, 103]
        assert results[0] is None

    def test_reduce_is_rank_ordered(self):
        cluster = SimCluster(nranks=3)

        def program(ctx):
            # Non-commutative op: string concatenation.
            out = yield from ctx.comm.reduce(str(ctx.rank), lambda a, b: a + b, root=0)
            return out

        assert cluster.run(program)[0] == "012"

    def test_explicit_size_overrides_estimate(self):
        from repro.simcluster import NetworkProfile, NodeSpec

        spec = NodeSpec(network=NetworkProfile(bandwidth=1e3, latency=1e-6))
        cluster = SimCluster(nranks=2, spec=spec)

        def program(ctx):
            if ctx.rank == 0:
                ctx.comm.send(1, "tiny", size=10_000)  # claim 10 KB on the wire
                return None
            msg = yield from ctx.comm.recv()
            return ctx.clock.now

        t = cluster.run(program)[1]
        assert t > 10_000 / 1e3 * 0.9  # transfer time dominated by the claim

    def test_probe_does_not_consume(self):
        cluster = SimCluster(nranks=2)

        def program(ctx):
            if ctx.rank == 0:
                ctx.comm.send(1, "keep", tag=3)
                return None
            ctx.compute(1.0)
            peek1 = yield from ctx.comm.probe(tag=3)
            peek2 = yield from ctx.comm.probe(tag=3)
            msg = yield from ctx.comm.recv(tag=3)
            return (peek1.payload, peek2.payload, msg.payload)

        assert cluster.run(program)[1] == ("keep", "keep", "keep")


class TestBFSEdgeCases:
    def test_max_levels_caps_search(self):
        # A long path graph; cap the levels below the true distance.
        edges = np.array([[i, i + 1] for i in range(30)])
        with MSSG(MSSGConfig(num_backends=2, backend="HashMap")) as mssg:
            mssg.ingest(edges)
            assert mssg.query_bfs(0, 30, max_levels=5).result is None
            assert mssg.query_bfs(0, 30).result == 30

    def test_query_nonexistent_vertices(self):
        with MSSG(MSSGConfig(num_backends=2, backend="HashMap")) as mssg:
            mssg.ingest(EDGES)
            assert mssg.query_bfs(5000, 6000).result is None


class TestMiniSQLExtras:
    def make_db(self):
        from repro.simcluster import BlockDevice
        from repro.storage import MiniSQL

        devices = {}
        return MiniSQL(lambda n: devices.setdefault(n, BlockDevice()))

    def test_update_changes_row_length(self):
        db = self.make_db()
        db.execute("CREATE TABLE t (a BIGINT, s TEXT)")
        db.execute("CREATE INDEX ON t (a)")
        db.execute("INSERT INTO t VALUES (1, 'x')")
        db.execute("UPDATE t SET s = ? WHERE a = 1", ("a much longer string",))
        db.execute("UPDATE t SET s = ? WHERE a = 1", ("z",))
        assert db.execute("SELECT s FROM t WHERE a = 1") == [("z",)]
        assert db.execute("SELECT COUNT(*) FROM t") == [(1,)]

    def test_order_by_multiple_columns(self):
        db = self.make_db()
        db.execute("CREATE TABLE t (a BIGINT, b BIGINT)")
        for a, b in [(1, 2), (0, 9), (1, 1), (0, 3)]:
            db.execute("INSERT INTO t VALUES (?, ?)", (a, b))
        rows = db.execute("SELECT a, b FROM t ORDER BY a, b DESC")
        assert rows == [(0, 9), (0, 3), (1, 2), (1, 1)]

    def test_text_roundtrip_unicode(self):
        db = self.make_db()
        db.execute("CREATE TABLE t (s TEXT)")
        db.execute("INSERT INTO t VALUES (?)", ("héllo wörld ✓",))
        assert db.execute("SELECT s FROM t") == [("héllo wörld ✓",)]
