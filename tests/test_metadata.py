"""Tests for the in-memory and external (out-of-core) metadata stores."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphdb import ExternalMetadata, InMemoryMetadata, UNSET
from repro.simcluster import BlockDevice, DiskProfile, MemoryBacking, VirtualClock


class TestInMemory:
    def test_default_unset(self):
        m = InMemoryMetadata()
        assert m.get(42) == UNSET

    def test_set_get(self):
        m = InMemoryMetadata()
        m.set(1, 5)
        m.set(2, -3)
        assert m.get(1) == 5
        assert m.get(2) == -3
        assert len(m) == 2

    def test_get_many(self):
        m = InMemoryMetadata()
        m.set(0, 1)
        m.set(5, 2)
        out = m.get_many(np.array([0, 3, 5]))
        assert out.tolist() == [1, UNSET, 2]

    def test_clear(self):
        m = InMemoryMetadata()
        m.set(0, 1)
        m.clear()
        assert m.get(0) == UNSET


class TestExternal:
    def make(self, cache_pages=4):
        return ExternalMetadata(BlockDevice(), cache_pages=cache_pages)

    def test_default_unset(self):
        m = self.make()
        assert m.get(0) == UNSET
        assert m.get(10_000_000) == UNSET

    def test_set_get_across_pages(self):
        m = self.make()
        # Straddle several 1024-value pages.
        for v in [0, 1023, 1024, 5000, 123_456]:
            m.set(v, v % 97)
        for v in [0, 1023, 1024, 5000, 123_456]:
            assert m.get(v) == v % 97
        assert m.get(2) == UNSET

    def test_negative_values(self):
        m = self.make()
        m.set(7, -5)
        assert m.get(7) == -5

    def test_get_many_groups_pages(self):
        m = self.make()
        m.set(10, 1)
        m.set(2000, 2)
        out = m.get_many(np.array([2000, 10, 11]))
        assert out.tolist() == [2, 1, UNSET]

    def test_eviction_persists_through_flush(self):
        dev = BlockDevice()
        m = ExternalMetadata(dev, cache_pages=1)
        m.set(0, 7)  # page 0
        m.set(5000, 9)  # page 4: evicts dirty page 0 to the device
        m.flush()
        assert m.get(0) == 7
        assert m.get(5000) == 9

    def test_charges_disk_time(self):
        clock = VirtualClock()
        prof = DiskProfile(seek_seconds=0.001, read_bandwidth=1e6, write_bandwidth=1e6)
        m = ExternalMetadata(BlockDevice(MemoryBacking(), prof, clock), cache_pages=1)
        m.set(0, 1)
        m.set(100_000, 2)  # far page: dirty eviction writes page 0
        m.flush()
        assert clock.now > 0


@settings(max_examples=20, deadline=None)
@given(st.dictionaries(st.integers(0, 5000), st.integers(-(2**31), 2**31 - 2), max_size=60))
def test_external_matches_in_memory(assignments):
    ext = ExternalMetadata(BlockDevice(), cache_pages=2)
    mem = InMemoryMetadata()
    for v, x in assignments.items():
        ext.set(v, x)
        mem.set(v, x)
    probe = np.array(sorted(set(list(assignments) + [0, 999, 4999])), dtype=np.int64)
    assert ext.get_many(probe).tolist() == mem.get_many(probe).tolist()
