"""Cross-backend contract tests: all six GraphDBs implement Listing 3.1
identically (same answers, different costs)."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.graphdb import (
    BACKENDS,
    OP_ALL,
    OP_EQ,
    OP_GT,
    OP_LT,
    OP_NEQ,
    UNSET,
    make_graphdb,
)
from repro.simcluster import NodeSpec, SimNode
from repro.util import GraphStorageException, LongArray


def build(backend, **kw):
    node = SimNode(0, NodeSpec())
    return make_graphdb(backend, node, **kw), node


def store_and_finalize(db, edges):
    db.store_edges(np.asarray(edges, dtype=np.int64))
    db.finalize_ingest()


@pytest.fixture(params=BACKENDS)
def backend(request):
    return request.param


SAMPLE_EDGES = [
    (0, 1), (0, 2), (0, 3),
    (1, 0), (1, 2),
    (2, 0), (2, 1),
    (3, 0),
    (7, 9),
]


class TestContract:
    def test_adjacency_roundtrip(self, backend):
        db, _ = build(backend)
        store_and_finalize(db, SAMPLE_EDGES)
        assert sorted(db.get_adjacency(0).tolist()) == [1, 2, 3]
        assert sorted(db.get_adjacency(1).tolist()) == [0, 2]
        assert db.get_adjacency(3).tolist() == [0]
        assert db.get_adjacency(7).tolist() == [9]

    def test_missing_vertex_returns_empty(self, backend):
        """The algorithmic keystone: non-local vertices yield the empty set."""
        db, _ = build(backend)
        store_and_finalize(db, SAMPLE_EDGES)
        assert db.get_adjacency(999).tolist() == []
        assert db.get_adjacency(4).tolist() == []

    def test_empty_store_call(self, backend):
        db, _ = build(backend)
        db.store_edges(np.zeros((0, 2), dtype=np.int64))
        db.finalize_ingest()
        assert db.get_adjacency(0).tolist() == []

    def test_incremental_batches(self, backend):
        if backend == "Array":
            pytest.skip("Array does not support dynamic growth (paper §4.1.1)")
        db, _ = build(backend)
        db.store_edges([(5, 1)])
        db.store_edges([(5, 2), (5, 3)])
        db.store_edges([(6, 5), (5, 4)])
        db.finalize_ingest()
        assert sorted(db.get_adjacency(5).tolist()) == [1, 2, 3, 4]
        assert db.get_adjacency(6).tolist() == [5]

    def test_metadata_roundtrip(self, backend):
        db, _ = build(backend)
        store_and_finalize(db, SAMPLE_EDGES)
        assert db.get_metadata(0) == UNSET
        db.set_metadata(0, 3)
        db.set_metadata(2, -1)
        assert db.get_metadata(0) == 3
        assert db.get_metadata(2) == -1

    def test_metadata_filtered_adjacency(self, backend):
        db, _ = build(backend)
        store_and_finalize(db, SAMPLE_EDGES)
        db.set_metadata(1, 5)
        db.set_metadata(2, 7)
        # neighbor 3 stays UNSET
        out = LongArray()
        db.get_adjacency_list_using_metadata(0, out, 0, OP_ALL)
        assert sorted(out.tolist()) == [1, 2, 3]

        out = LongArray()
        db.get_adjacency_list_using_metadata(0, out, 5, OP_EQ)
        assert out.tolist() == [1]

        out = LongArray()
        db.get_adjacency_list_using_metadata(0, out, 5, OP_NEQ)
        assert sorted(out.tolist()) == [2, 3]

        out = LongArray()
        db.get_adjacency_list_using_metadata(0, out, 5, OP_GT)
        assert sorted(out.tolist()) == [2, 3]  # 7 and UNSET are > 5

        out = LongArray()
        db.get_adjacency_list_using_metadata(0, out, 6, OP_LT)
        assert out.tolist() == [1]

    def test_invalid_operation_rejected(self, backend):
        db, _ = build(backend)
        store_and_finalize(db, SAMPLE_EDGES)
        with pytest.raises(GraphStorageException):
            db.get_adjacency_list_using_metadata(0, LongArray(), 0, 42)

    def test_negative_vertex_rejected(self, backend):
        db, _ = build(backend)
        with pytest.raises(GraphStorageException):
            db.store_edges([(0, -1)])

    def test_expand_fringe_matches_individual(self, backend):
        db, _ = build(backend)
        store_and_finalize(db, SAMPLE_EDGES)
        batch = LongArray()
        db.expand_fringe([0, 1, 7], batch)
        assert sorted(batch.tolist()) == sorted([1, 2, 3, 0, 2, 9])

    def test_expand_empty_fringe(self, backend):
        db, _ = build(backend)
        store_and_finalize(db, SAMPLE_EDGES)
        batch = LongArray()
        db.expand_fringe(np.empty(0, dtype=np.int64), batch)
        assert len(batch) == 0

    def test_stats_counting(self, backend):
        db, _ = build(backend)
        store_and_finalize(db, SAMPLE_EDGES)
        db.get_adjacency(0)
        assert db.stats.edges_stored == len(SAMPLE_EDGES)
        assert db.stats.adjacency_requests >= 1
        assert db.stats.edges_scanned >= 3

    def test_clock_charged_on_access(self, backend):
        db, node = build(backend)
        store_and_finalize(db, SAMPLE_EDGES)
        before = node.clock.now
        db.get_adjacency(0)
        assert node.clock.now > before

    def test_duplicate_edges_preserved(self, backend):
        """GraphDBs store what they are given; dedup is the generator's job."""
        db, _ = build(backend)
        store_and_finalize(db, [(1, 2), (1, 2)])
        assert db.get_adjacency(1).tolist() == [2, 2]

    def test_flush_is_safe(self, backend):
        db, _ = build(backend)
        store_and_finalize(db, SAMPLE_EDGES)
        db.flush()
        db.close()
        assert sorted(db.get_adjacency(0).tolist()) == [1, 2, 3]


class TestHighDegree:
    """Hubs exercise chunking (BDB/MySQL) and multi-level chains (grDB)."""

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_hub_vertex(self, backend):
        db, _ = build(backend)
        n = 2500  # > 2 chunks of 1024, > several grDB levels
        edges = np.column_stack([np.zeros(n, dtype=np.int64), np.arange(1, n + 1)])
        # Feed in uneven batches to exercise tail appends.
        store_and_finalize(db, edges[:700])
        if backend != "Array":
            db.store_edges(edges[700:1500])
            db.store_edges(edges[1500:])
        else:
            db, _ = build(backend)
            store_and_finalize(db, edges)
        got = db.get_adjacency(0)
        assert len(got) == n
        assert sorted(got.tolist()) == list(range(1, n + 1))


@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    edges=st.lists(
        st.tuples(st.integers(0, 30), st.integers(0, 30)), min_size=1, max_size=150
    ),
    backend_name=st.sampled_from(BACKENDS),
)
def test_property_all_backends_agree_with_dict_model(edges, backend_name):
    """Property: every backend returns exactly the stored multiset per vertex."""
    db, _ = build(backend_name)
    store_and_finalize(db, edges)
    model: dict[int, list[int]] = {}
    for u, v in edges:
        model.setdefault(u, []).append(v)
    for u in range(31):
        assert sorted(db.get_adjacency(u).tolist()) == sorted(model.get(u, []))
