"""Unit and property tests for repro.util.longarray."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util import LongArray


def test_empty():
    a = LongArray()
    assert len(a) == 0
    assert a.tolist() == []
    assert a.view().dtype == np.int64


def test_append_and_index():
    a = LongArray()
    for i in range(100):
        a.append(i * 7)
    assert len(a) == 100
    assert a[0] == 0
    assert a[99] == 693
    assert a[-1] == 693
    with pytest.raises(IndexError):
        _ = a[100]


def test_extend_various_inputs():
    a = LongArray([1, 2])
    a.extend([3, 4])
    a.extend(np.array([5, 6], dtype=np.int32))
    b = LongArray([7])
    a.extend(b)
    assert a.tolist() == [1, 2, 3, 4, 5, 6, 7]


def test_extend_rejects_2d():
    a = LongArray()
    with pytest.raises(ValueError):
        a.extend(np.zeros((2, 2)))


def test_clear_keeps_capacity():
    a = LongArray(range(1000))
    cap = a.capacity
    a.clear()
    assert len(a) == 0
    assert a.capacity == cap


def test_view_is_zero_copy():
    a = LongArray([1, 2, 3])
    v = a.view()
    v[0] = 42
    assert a[0] == 42


def test_to_numpy_is_copy():
    a = LongArray([1, 2, 3])
    c = a.to_numpy()
    c[0] = 42
    assert a[0] == 1


def test_slice_and_eq():
    a = LongArray([5, 6, 7, 8])
    assert list(a[1:3]) == [6, 7]
    assert a == [5, 6, 7, 8]
    assert a == LongArray([5, 6, 7, 8])
    assert not (a == [5, 6])


def test_sort():
    a = LongArray([3, 1, 2])
    a.sort()
    assert a.tolist() == [1, 2, 3]


def test_iter():
    assert list(LongArray([9, 8])) == [9, 8]


@given(st.lists(st.integers(min_value=-(2**62), max_value=2**62)))
def test_roundtrip_matches_list(xs):
    a = LongArray()
    for x in xs:
        a.append(x)
    assert a.tolist() == xs


@given(
    st.lists(st.integers(min_value=-(2**40), max_value=2**40)),
    st.lists(st.integers(min_value=-(2**40), max_value=2**40)),
)
def test_extend_is_concat(xs, ys):
    a = LongArray(xs)
    a.extend(ys)
    assert a.tolist() == xs + ys
