"""Tests for MiniSQL: parser, heap file, and executor."""

import pytest

from repro.simcluster import BlockDevice, CpuProfile, VirtualClock
from repro.storage import HeapFile, MiniSQL, PagedFile, parse_sql
from repro.storage.sqlparser import Condition, Insert, Literal, Param, Select
from repro.util import SqlError, StorageEngineError


def make_db(**kw):
    devices = {}

    def provider(name):
        return devices.setdefault(name, BlockDevice())

    return MiniSQL(provider, **kw)


class TestHeapFile:
    def make(self, page_size=256):
        return HeapFile(PagedFile(BlockDevice(), page_size))

    def test_insert_read(self):
        h = self.make()
        rid = h.insert(b"hello")
        assert h.read(rid) == b"hello"

    def test_rows_span_pages(self):
        h = self.make(page_size=128)
        rids = [h.insert(b"x" * 50) for _ in range(10)]
        assert len({r[0] for r in rids}) > 1  # multiple pages used
        assert all(h.read(r) == b"x" * 50 for r in rids)

    def test_oversized_row(self):
        h = self.make(page_size=128)
        with pytest.raises(StorageEngineError):
            h.insert(b"y" * 500)

    def test_delete_and_scan(self):
        h = self.make()
        r1 = h.insert(b"a")
        r2 = h.insert(b"b")
        h.delete(r1)
        assert [payload for _, payload in h.scan()] == [b"b"]
        assert h.count() == 1
        with pytest.raises(StorageEngineError):
            h.read(r1)
        with pytest.raises(StorageEngineError):
            h.delete(r1)

    def test_update_in_place_same_length(self):
        h = self.make()
        rid = h.insert(b"aaaa")
        assert h.update_in_place(rid, b"bbbb")
        assert h.read(rid) == b"bbbb"
        assert not h.update_in_place(rid, b"longer-now")
        assert h.read(rid) == b"bbbb"


class TestParser:
    def test_create_table(self):
        stmt = parse_sql("CREATE TABLE edges (src BIGINT, chunk INT, adj BLOB)")
        assert stmt.table == "edges"
        assert [c.type for c in stmt.columns] == ["INT64", "INT32", "BLOB"]

    def test_insert_params(self):
        stmt = parse_sql("INSERT INTO t VALUES (?, 5, 'text')")
        assert isinstance(stmt, Insert)
        assert stmt.values == (Param(0), Literal(5), Literal("text"))

    def test_select_where_and(self):
        stmt = parse_sql("SELECT a, b FROM t WHERE a = ? AND b >= 3 ORDER BY b DESC")
        assert isinstance(stmt, Select)
        assert stmt.columns == ("a", "b")
        assert stmt.where == (Condition("a", "=", Param(0)), Condition("b", ">=", Literal(3)))
        assert stmt.order_by == (("b", False),)

    def test_select_star_and_count(self):
        assert parse_sql("SELECT * FROM t").columns == ("*",)
        assert parse_sql("SELECT COUNT(*) FROM t").columns == ("COUNT(*)",)

    def test_string_escaping(self):
        stmt = parse_sql("INSERT INTO t VALUES ('it''s')")
        assert stmt.values[0].value == "it's"

    def test_errors(self):
        for bad in [
            "DROP TABLE t",
            "SELECT FROM t",
            "INSERT INTO t (1)",
            "CREATE TABLE t (a FLOAT)",
            "SELECT * FROM t WHERE a LIKE 'x'",
            "SELECT * FROM t; SELECT * FROM u",
            "",
        ]:
            with pytest.raises(SqlError):
                parse_sql(bad)

    def test_varchar_length_suffix(self):
        stmt = parse_sql("CREATE TABLE t (name VARCHAR(255))")
        assert stmt.columns[0].type == "TEXT"


class TestExecutor:
    def test_create_insert_select(self):
        db = make_db()
        db.execute("CREATE TABLE t (a BIGINT, b TEXT)")
        db.execute("INSERT INTO t VALUES (?, ?)", (1, "one"))
        db.execute("INSERT INTO t VALUES (2, 'two')")
        rows = db.execute("SELECT * FROM t WHERE a = 2")
        assert rows == [(2, "two")]
        assert db.execute("SELECT b FROM t ORDER BY a") == [("one",), ("two",)]
        assert db.execute("SELECT COUNT(*) FROM t") == [(2,)]

    def test_blob_roundtrip(self):
        db = make_db()
        db.execute("CREATE TABLE c (id BIGINT, data BLOB)")
        blob = bytes(range(256)) * 8
        db.execute("INSERT INTO c VALUES (?, ?)", (7, blob))
        assert db.execute("SELECT data FROM c WHERE id = 7") == [(blob,)]

    def test_index_used_for_lookup(self):
        db = make_db()
        db.execute("CREATE TABLE t (a BIGINT, b BIGINT)")
        db.execute("CREATE INDEX ON t (a)")
        for i in range(200):
            db.execute("INSERT INTO t VALUES (?, ?)", (i, i * i))
        # Count heap page reads for an indexed point query.
        heap_dev = db.tables["t"].heap.pages.device
        before = heap_dev.stats.reads
        assert db.execute("SELECT b FROM t WHERE a = 150") == [(22500,)]
        assert heap_dev.stats.reads - before <= 2  # index probe, not a scan

    def test_composite_index_prefix(self):
        db = make_db()
        db.execute("CREATE TABLE chunks (src BIGINT, chunk INT, data BLOB)")
        db.execute("CREATE INDEX ON chunks (src, chunk)")
        for v in range(10):
            for c in range(3):
                db.execute("INSERT INTO chunks VALUES (?, ?, ?)", (v, c, b"d%d%d" % (v, c)))
        rows = db.execute("SELECT data FROM chunks WHERE src = 4 ORDER BY chunk")
        assert rows == [(b"d40",), (b"d41",), (b"d42",)]
        rows = db.execute("SELECT data FROM chunks WHERE src = 4 AND chunk = 1")
        assert rows == [(b"d41",)]

    def test_index_backfill(self):
        db = make_db()
        db.execute("CREATE TABLE t (a BIGINT)")
        db.execute("INSERT INTO t VALUES (3)")
        db.execute("CREATE INDEX ON t (a)")  # backfills existing rows
        assert db.execute("SELECT * FROM t WHERE a = 3") == [(3,)]

    def test_update(self):
        db = make_db()
        db.execute("CREATE TABLE t (a BIGINT, b TEXT)")
        db.execute("CREATE INDEX ON t (a)")
        db.execute("INSERT INTO t VALUES (1, 'x')")
        n = db.execute("UPDATE t SET b = ? WHERE a = 1", ("hello world",))
        assert n == 1
        assert db.execute("SELECT b FROM t WHERE a = 1") == [("hello world",)]

    def test_update_indexed_column(self):
        db = make_db()
        db.execute("CREATE TABLE t (a BIGINT)")
        db.execute("CREATE INDEX ON t (a)")
        db.execute("INSERT INTO t VALUES (1)")
        db.execute("UPDATE t SET a = 2 WHERE a = 1")
        assert db.execute("SELECT * FROM t WHERE a = 1") == []
        assert db.execute("SELECT * FROM t WHERE a = 2") == [(2,)]

    def test_delete(self):
        db = make_db()
        db.execute("CREATE TABLE t (a BIGINT)")
        for i in range(10):
            db.execute("INSERT INTO t VALUES (?)", (i,))
        assert db.execute("DELETE FROM t WHERE a < 5") == 5
        assert db.execute("SELECT COUNT(*) FROM t") == [(5,)]

    def test_negative_ints_ordered_in_index(self):
        db = make_db()
        db.execute("CREATE TABLE t (a BIGINT)")
        db.execute("CREATE INDEX ON t (a)")
        for v in [5, -3, 0, -100]:
            db.execute("INSERT INTO t VALUES (?)", (v,))
        assert db.execute("SELECT a FROM t WHERE a = -3") == [(-3,)]

    def test_range_predicates_without_index(self):
        db = make_db()
        db.execute("CREATE TABLE t (a BIGINT)")
        for i in range(10):
            db.execute("INSERT INTO t VALUES (?)", (i,))
        assert db.execute("SELECT COUNT(*) FROM t WHERE a >= 3 AND a < 6") == [(3,)]
        assert db.execute("SELECT COUNT(*) FROM t WHERE a != 0") == [(9,)]

    def test_statement_overhead_charged(self):
        clock = VirtualClock()
        cpu = CpuProfile(sql_statement_seconds=0.001)
        devices = {}
        db = MiniSQL(lambda n: devices.setdefault(n, BlockDevice()), clock=clock, cpu=cpu)
        db.execute("CREATE TABLE t (a BIGINT)")
        db.execute("INSERT INTO t VALUES (1)")
        assert clock.now >= 0.002

    def test_errors(self):
        db = make_db()
        with pytest.raises(SqlError):
            db.execute("SELECT * FROM missing")
        db.execute("CREATE TABLE t (a BIGINT)")
        with pytest.raises(SqlError):
            db.execute("CREATE TABLE t (a BIGINT)")
        with pytest.raises(SqlError):
            db.execute("INSERT INTO t VALUES (1, 2)")
        with pytest.raises(SqlError):
            db.execute("SELECT nope FROM t")
        with pytest.raises(SqlError):
            db.execute("SELECT * FROM t WHERE nope = 1")
        with pytest.raises(SqlError):
            db.execute("INSERT INTO t VALUES (?)")  # missing parameter
        with pytest.raises(SqlError):
            db.execute("CREATE INDEX ON t (nope)")
