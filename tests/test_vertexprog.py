"""Tests for the scatter/gather vertex-program runtime and its plug-ins.

The acceptance bar of the vertex-program PR: PageRank and WCC produce
identical results on all six backends, a mid-run backend kill at
replication=2 matches the healthy answer, and a mixed BFS+PageRank
``query_many`` drain matches sequential execution bit-identically.
"""

import numpy as np
import pytest

from repro import MSSG, MSSGConfig
from repro.graphgen import dedupe_edges, preferential_attachment, pubmed_like
from repro.simcluster.faults import DiskFault, FaultPlan
from repro.util.errors import ConfigError

ALL_BACKENDS = ["Array", "HashMap", "MySQL", "BerkeleyDB", "StreamDB", "grDB"]

_EDGES = dedupe_edges(preferential_attachment(150, 2, seed=3))
_TWO_BLOBS = np.vstack(
    [
        dedupe_edges(preferential_attachment(60, 2, seed=1)),
        dedupe_edges(preferential_attachment(40, 2, seed=2)) + 100,
        np.array([[200, 201]]),
    ]
)


def _mssg(backend="HashMap", num_backends=3, **kw):
    return MSSG(MSSGConfig(num_backends=num_backends, backend=backend, **kw))


class TestBackendAgreement:
    """One answer per analysis, regardless of which backend stores the graph."""

    def _all_backend_results(self, analysis, **params):
        results = []
        for backend in ALL_BACKENDS:
            with _mssg(backend) as mssg:
                mssg.ingest(_EDGES)
                results.append(mssg.query(analysis, **params).result)
        return results

    def test_pagerank_identical_on_all_backends(self):
        results = self._all_backend_results("pagerank", return_ranks=True)
        assert all(r == results[0] for r in results[1:])
        assert results[0]["iterations"] >= 2
        # A probability distribution over the present vertices.
        assert np.isclose(sum(results[0]["ranks"].values()), 1.0, atol=1e-6)

    def test_components_identical_on_all_backends(self):
        results = self._all_backend_results("components", return_labels=True)
        assert all(r == results[0] for r in results[1:])

    def test_triangles_identical_on_all_backends(self):
        results = self._all_backend_results("triangles")
        assert all(r == results[0] for r in results[1:])
        assert results[0]["wedges"] >= results[0]["triangles"] * 3

    def test_egonet_identical_on_all_backends(self):
        results = self._all_backend_results("ego-net", source=0, hops=2)
        assert all(r == results[0] for r in results[1:])
        assert results[0]["per_level"][0] == 1  # the source itself


class TestCorrectness:
    def test_components_counts_two_blobs_and_pair(self):
        with _mssg() as mssg:
            mssg.ingest(_TWO_BLOBS)
            result = mssg.query("components", return_labels=True).result
            assert result["num_components"] == 3
            assert result["sizes"][-1] == 2
            assert sum(result["sizes"]) == len(np.unique(_TWO_BLOBS))
            assert result["labels"][201] == 200
            assert all(
                lab == 100 for v, lab in result["labels"].items() if 100 <= v < 200
            )

    def test_matches_networkx(self):
        nx = pytest.importorskip("networkx")
        g = nx.Graph()
        g.add_edges_from(map(tuple, _EDGES.tolist()))
        with _mssg() as mssg:
            mssg.ingest(_EDGES)
            tri = mssg.query("triangles").result
            assert tri["triangles"] == sum(nx.triangles(g).values()) // 3
            comp = mssg.query("components").result
            assert comp["num_components"] == nx.number_connected_components(g)
            pr = mssg.query("pagerank", return_ranks=True).result
            expected = nx.pagerank(g, alpha=0.85, tol=1e-12)
            for v, rank in pr["ranks"].items():
                assert rank == pytest.approx(expected[v], abs=1e-6)

    def test_pagerank_agrees_with_dict_baseline(self):
        with _mssg() as mssg:
            mssg.ingest(_EDGES)
            runtime = mssg.query("pagerank").result
            naive = mssg.query("pagerank-dict").result
            assert runtime["iterations"] == naive["iterations"]
            assert [v for v, _ in runtime["top"]] == [v for v, _ in naive["top"]]
            assert np.allclose(
                [x for _, x in runtime["top"]], [x for _, x in naive["top"]]
            )

    def test_egonet_matches_neighborhood_analysis(self):
        with _mssg() as mssg:
            mssg.ingest(_EDGES)
            ego = mssg.query("ego-net", source=3, hops=2).result
            assert ego["num_vertices"] == mssg.query("neighborhood", source=3, hops=2).result
            assert sum(ego["per_level"]) == ego["num_vertices"]
            assert len(ego["vertices"]) == ego["num_vertices"]

    def test_result_payload_gates(self):
        with _mssg() as mssg:
            mssg.ingest(_EDGES)
            assert "ranks" not in mssg.query("pagerank").result
            assert "labels" not in mssg.query("components").result
            assert "vertices" not in mssg.query(
                "ego-net", source=0, hops=2, return_vertices=False
            ).result

    def test_forced_schedules_agree(self):
        # The access plan (per-vertex fetches vs storage sweeps) must not
        # change the answer — only the cost.
        with _mssg(backend="grDB") as mssg:
            mssg.ingest(_EDGES)
            auto = mssg.query("components", return_labels=True)
            sparse = mssg.query(
                "components", return_labels=True, schedule=["sparse"]
            )
            dense = mssg.query("components", return_labels=True, schedule=["dense"])
            assert sparse.result == auto.result == dense.result

    def test_edge_granularity_declustering(self):
        # No owner map: every rank scans its own slice of each vertex's
        # adjacency.  min-combine analyses run fine (additive ones refuse
        # only when that would double-count replicated slices).
        with _mssg(declustering="edge-rr") as mssg:
            mssg.ingest(_TWO_BLOBS)
            assert mssg.query("components").result["num_components"] == 3

    def test_analytics_need_sized_id_space(self):
        with _mssg() as mssg:
            with pytest.raises(ConfigError, match="id space"):
                mssg.query("pagerank")


# --- Failover: mid-run device kills through the runtime. -------------------

_FO_EDGES = pubmed_like(600, seed=7)


def _fo_mssg(replication, kill=False, backend="grDB"):
    mssg = MSSG(
        MSSGConfig(
            num_backends=3,
            num_frontends=1,
            backend=backend,
            declustering="vertex-rr",
            replication=replication,
            cache_blocks=4,
        )
    )
    mssg.ingest(_FO_EDGES)
    if kill:
        mssg.set_fault_plan(FaultPlan([DiskFault(node=1, at_time=0.0)]))
    return mssg


class TestFailover:
    @pytest.mark.parametrize("analysis,params", [
        ("pagerank", {}),
        ("components", {}),
        ("triangles", {}),
        ("ego-net", {"source": 3, "hops": 2}),
    ])
    def test_replicated_kill_matches_healthy_answer(self, analysis, params):
        with _fo_mssg(replication=2) as healthy:
            want = healthy.query(analysis, **params).result
        with _fo_mssg(replication=2, kill=True) as faulted:
            report = faulted.query(analysis, **params)
        assert report.result == want
        assert report.device_failures == 1
        assert report.failovers >= 1
        assert not report.partial

    def test_unreplicated_kill_degrades_to_partial(self):
        with _fo_mssg(replication=1, kill=True) as mssg:
            report = mssg.query("pagerank")
            assert report.partial
            assert report.device_failures == 1
            assert report.dropped_vertices > 0

    def test_known_dead_seeding_skips_failover_rounds(self):
        # A backend recorded dead before the query routes around from
        # superstep one: same answer, no failover rounds burned.
        with _fo_mssg(replication=2) as healthy:
            want = healthy.query("components").result
        with _fo_mssg(replication=2) as mssg:
            mssg.queries.known_dead.add(0)
            report = mssg.query("components")
            assert report.result == want
            assert report.failovers == 0


# --- Concurrent drains: analytics through query_many. ----------------------


class TestConcurrentAnalytics:
    def test_mixed_drain_matches_sequential_bit_identically(self):
        pairs = [(0, 7), (3, 11)]
        with _mssg() as mssg:
            mssg.ingest(_EDGES)
            seq = [mssg.query_bfs(s, d).result for s, d in pairs]
            seq_pr = mssg.query("pagerank", return_ranks=True).result
            seq_wcc = mssg.query("components", return_labels=True).result
        with _mssg() as mssg:
            mssg.ingest(_EDGES)
            drain = mssg.query_many(
                pairs,
                analytics=[
                    ("pagerank", {"return_ranks": True}),
                    ("components", {"return_labels": True}),
                ],
            )
        assert [r.analysis for r in drain.queries] == [
            "bfs", "bfs", "pagerank", "components",
        ]
        assert [drain.queries[0].result, drain.queries[1].result] == seq
        assert drain.queries[2].result == seq_pr
        assert drain.queries[3].result == seq_wcc

    def test_shared_scans_do_not_change_answers(self):
        with _mssg(backend="grDB") as mssg:
            mssg.ingest(_EDGES)
            shared = mssg.query_many(
                [(0, 7)], analytics=["pagerank", "components"], shared_scans=True
            )
        with _mssg(backend="grDB") as mssg:
            mssg.ingest(_EDGES)
            solo = mssg.query_many(
                [(0, 7)], analytics=["pagerank", "components"], shared_scans=False
            )
        assert [r.result for r in shared.queries] == [r.result for r in solo.queries]

    def test_analytics_attribution_and_queueing(self):
        with _mssg() as mssg:
            mssg.ingest(_EDGES)
            drain = mssg.query_many(
                [(0, 7)], analytics=["pagerank"], max_inflight=1
            )
            pr = drain.queries[1]
            assert pr.edges_scanned > 0
            assert pr.seconds > 0
            # Admission cap 1: PageRank waited for the BFS to finish.
            assert pr.queue_seconds > 0

    def test_unknown_analysis_rejected_at_submit(self):
        with _mssg() as mssg:
            mssg.ingest(_EDGES)
            with pytest.raises(ConfigError, match="drained concurrently"):
                mssg.queries.submit(analysis="degree")


class TestRegistry:
    def test_runtime_suite_registered(self):
        with _mssg() as mssg:
            names = mssg.queries.analyses()
            for name in ("pagerank", "components", "ego-net", "triangles",
                         "pagerank-dict", "components-dict"):
                assert name in names

    def test_custom_program_plugs_in(self):
        # The VertexProgram contract is public: a max-label propagation
        # program (components' mirror image) registered like any plug-in.
        from repro.services.vertexprog import (
            VertexProgram,
            make_vp_generator,
            vp_report,
        )

        class MaxLabel(VertexProgram):
            name = "max-label"
            combine = "max"

            def init(self, n):
                self.labels = np.arange(n, dtype=np.float64)
                return np.arange(n, dtype=np.int64)

            def edge_messages(self, v, neighbors, superstep):
                vals = np.full(len(neighbors), self.labels[v])
                srcs = np.full(len(neighbors), v, dtype=np.int64)
                return neighbors.astype(np.int64), srcs, vals

            def apply(self, combined, has_msg, superstep):
                improved = has_msg & (combined > self.labels)
                self.labels[improved] = combined[improved]
                return np.flatnonzero(improved).astype(np.int64), not improved.any()

            def finalize(self):
                return {"max_label": float(self.labels.max())}

        with _mssg() as mssg:
            mssg.ingest(_TWO_BLOBS)
            from repro.services.vertexprog import PROGRAM_FACTORIES

            PROGRAM_FACTORIES["max-label"] = lambda params: lambda: MaxLabel()
            from repro.services.vertexprog import RESULT_SHAPERS

            RESULT_SHAPERS["max-label"] = lambda params: None
            try:
                service = mssg.queries

                def runner(**params):
                    gen = make_vp_generator(service, "max-label", params, False)

                    def make(q):
                        def program(ctx):
                            res = yield from gen(ctx, q)
                            return res

                        return program

                    results = service._run_on_backends(make)
                    return vp_report(
                        "max-label", params, results, seconds=service.cluster.makespan
                    )

                service.register("max-label", runner)
                assert mssg.query("max-label").result["max_label"] == 201.0
                with pytest.raises(ConfigError, match="already registered"):
                    service.register("max-label", runner)
            finally:
                PROGRAM_FACTORIES.pop("max-label", None)
                RESULT_SHAPERS.pop("max-label", None)
