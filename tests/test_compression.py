"""Delta+varint compressed adjacency (``repro.util.varint`` and friends).

Covers the codec itself (property round-trips, corruption detection), the
compressed grDB sub-block format and StreamDB log records, crash recovery
of compressed stores, and deployment-level equivalence: every backend must
answer queries bit-identically with ``compress_adjacency`` on and off,
across the batch-I/O / direction-opt / replication / shared-scan knobs.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import MSSG, MSSGConfig
from repro.graphdb import GrDB, GrDBFormat, make_graphdb
from repro.graphdb.grdb.defrag import chain_length, defragment
from repro.graphdb.registry import BACKENDS
from repro.graphdb.stream_db import StreamGraphDB
from repro.simcluster import BlockDevice, DiskFault, FaultPlan, NodeSpec, SimNode
from repro.util.errors import (
    CorruptBlockError,
    DeviceFailedError,
    GraphStorageException,
)
from repro.util.longarray import LongArray
from repro.util.varint import (
    MAX_ENCODABLE,
    decode_edge_block,
    decode_sorted,
    decode_varints,
    edge_block_bytes,
    encode_edge_block,
    encode_sorted,
    encode_varints,
    sorted_encoded_size,
    split_sorted_fit,
    varint_lengths,
)

# Tiny geometry so multi-level chains and multi-file layouts occur at test
# scale (same shape the persistence/integrity tests use).
FMT = GrDBFormat(
    capacities=(2, 4, 16, 64),
    block_sizes=(256, 256, 256, 1024),
    max_file_bytes=4096,
)
FMT_C = GrDBFormat(
    capacities=(2, 4, 16, 64),
    block_sizes=(256, 256, 256, 1024),
    max_file_bytes=4096,
    compress=True,
)

ids = st.integers(min_value=0, max_value=MAX_ENCODABLE)


# -- codec properties --------------------------------------------------------


class TestVarintCodec:
    @given(st.lists(ids, max_size=200))
    @settings(deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_varints_round_trip(self, values):
        buf = encode_varints(values)
        assert len(buf) == int(varint_lengths(values).sum()) if values else buf == b""
        decoded, consumed = decode_varints(buf, len(values))
        assert consumed == len(buf)
        assert decoded.tolist() == values

    @given(st.sets(ids, max_size=200))
    @settings(deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_sorted_round_trip(self, values):
        values = sorted(values)
        buf = encode_sorted(np.array(values, dtype=np.uint64))
        assert len(buf) == sorted_encoded_size(np.array(values, dtype=np.uint64))
        decoded, consumed = decode_sorted(buf, len(values))
        assert consumed == len(buf)
        assert decoded.tolist() == values

    def test_empty_and_single(self):
        assert encode_sorted(np.empty(0, dtype=np.uint64)) == b""
        assert decode_sorted(b"", 0)[0].tolist() == []
        for v in (0, 1, 127, 128, MAX_ENCODABLE):
            buf = encode_sorted(np.array([v], dtype=np.uint64))
            assert decode_sorted(buf, 1)[0].tolist() == [v]

    def test_huge_ids(self):
        values = [MAX_ENCODABLE - 2, MAX_ENCODABLE - 1, MAX_ENCODABLE]
        buf = encode_sorted(np.array(values, dtype=np.uint64))
        assert decode_sorted(buf, 3)[0].tolist() == values

    def test_out_of_range_rejected(self):
        with pytest.raises(GraphStorageException, match="63-bit"):
            encode_varints(np.array([MAX_ENCODABLE + 1], dtype=np.uint64))

    def test_duplicates_rejected(self):
        with pytest.raises(GraphStorageException, match="strictly increasing"):
            encode_sorted(np.array([3, 3], dtype=np.uint64))

    def test_unsorted_rejected(self):
        with pytest.raises(GraphStorageException, match="strictly increasing"):
            encode_sorted(np.array([5, 2], dtype=np.uint64))

    def test_truncated_stream_raises(self):
        buf = encode_sorted(np.array([1, 300, 70000], dtype=np.uint64))
        with pytest.raises(GraphStorageException, match="truncated"):
            decode_sorted(buf[:-1], 3)
        with pytest.raises(GraphStorageException, match="truncated"):
            decode_varints(b"\x80\x80", 1)

    def test_zero_gap_raises(self):
        # encode_sorted can never produce a zero gap; a hand-built one is
        # proof of on-disk damage and must not decode to a duplicate.
        buf = encode_varints(np.array([7, 0], dtype=np.uint64))
        with pytest.raises(GraphStorageException, match="zero gap"):
            decode_sorted(buf, 2)

    def test_overlong_varint_raises(self):
        with pytest.raises(GraphStorageException, match="canonical"):
            decode_varints(b"\x80" * 9 + b"\x01", 1)

    def test_wraparound_raises(self):
        # first value + gap overflows 64 bits -> cumsum wraps -> corrupt.
        buf = encode_varints(
            np.array([MAX_ENCODABLE, MAX_ENCODABLE], dtype=np.uint64)
        )
        with pytest.raises(GraphStorageException, match="non-monotone|63-bit"):
            decode_sorted(buf, 2)

    @given(
        st.lists(st.tuples(ids, ids), min_size=0, max_size=120),
    )
    @settings(deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_edge_block_round_trip(self, pairs):
        # Duplicate edges are legal in a log record and must survive.
        pairs = pairs + pairs[:3]
        edges = np.array(pairs, dtype=np.uint64).reshape(-1, 2)
        buf = encode_edge_block(edges)
        assert len(buf) == edge_block_bytes(edges)
        decoded, consumed = decode_edge_block(buf, len(edges))
        assert consumed == len(buf)
        want = sorted(map(tuple, edges.astype(np.int64).tolist()))
        assert sorted(map(tuple, decoded.tolist())) == want

    def test_edge_block_truncation_raises(self):
        edges = np.array([(1, 2), (1, 3), (4, 5)], dtype=np.uint64)
        buf = encode_edge_block(edges)
        with pytest.raises(GraphStorageException, match="truncated"):
            decode_edge_block(buf[:-1], 3)

    @given(
        st.lists(ids, min_size=1, max_size=150),
        st.integers(min_value=1, max_value=64),
    )
    @settings(deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_split_sorted_fit_invariants(self, values, budget):
        pending = np.sort(np.array(values, dtype=np.uint64))
        fit, spill = split_sorted_fit(pending, budget, 0xFFFE)
        # The fit is strictly sorted and its encoding honors the budget.
        assert len(encode_sorted(fit)) <= budget
        # Nothing is lost: fit + spill is the original multiset.
        merged = np.sort(np.concatenate([fit, spill]))
        assert merged.tolist() == pending.tolist()
        # The spill stays sorted, ready for the next sub-block.
        assert np.all(spill[1:] >= spill[:-1]) if len(spill) > 1 else True


# -- grDB compressed sub-blocks ----------------------------------------------


def _random_edges(rng, nverts, nedges, dup_every=10):
    srcs = rng.integers(0, nverts, nedges)
    dsts = rng.integers(0, 1 << 40, nedges)
    if nedges > 2 * dup_every:
        dsts[:dup_every] = dsts[dup_every : 2 * dup_every]  # duplicate edges
    return np.column_stack([srcs, dsts]).astype(np.int64)


class TestGrDBCompressed:
    @pytest.mark.parametrize("policy", ["link", "move"])
    def test_matches_raw_format(self, policy):
        rng = np.random.default_rng(7)
        node_r, node_c = SimNode(0, NodeSpec()), SimNode(1, NodeSpec())
        raw = GrDB(node_r.disk, fmt=FMT, clock=node_r.clock, growth_policy=policy)
        comp = GrDB(node_c.disk, fmt=FMT_C, clock=node_c.clock, growth_policy=policy)
        for _ in range(4):
            edges = _random_edges(rng, 12, 150)
            raw.store_edges(edges)
            comp.store_edges(edges)
        for v in range(12):
            assert sorted(raw.get_adjacency(v).tolist()) == sorted(
                comp.get_adjacency(v).tolist()
            )
        out_r, out_c = LongArray(), LongArray()
        raw.expand_fringe(list(range(12)), out_r)
        comp.expand_fringe(list(range(12)), out_c)
        assert sorted(out_r.to_numpy().tolist()) == sorted(out_c.to_numpy().tolist())
        scan_r = {v: sorted(a.tolist()) for v, a in raw.scan_adjacency()}
        scan_c = {v: sorted(a.tolist()) for v, a in comp.scan_adjacency()}
        assert scan_r == scan_c

    def test_duplicate_edges_preserved(self):
        node = SimNode(0, NodeSpec())
        db = GrDB(node.disk, fmt=FMT_C, clock=node.clock)
        db.store_edges(np.array([(1, 9), (1, 9), (1, 9), (1, 4)], dtype=np.int64))
        assert sorted(db.get_adjacency(1).tolist()) == [4, 9, 9, 9]

    def test_chains_are_shorter(self):
        rng = np.random.default_rng(9)
        node_r, node_c = SimNode(0, NodeSpec()), SimNode(1, NodeSpec())
        raw = GrDB(node_r.disk, fmt=FMT, clock=node_r.clock)
        comp = GrDB(node_c.disk, fmt=FMT_C, clock=node_c.clock)
        edges = np.column_stack(
            [np.zeros(300, dtype=np.int64), rng.choice(1 << 30, 300, replace=False)]
        ).astype(np.int64)
        raw.store_edges(edges)
        comp.store_edges(edges)
        assert chain_length(comp, 0) < chain_length(raw, 0)

    def test_reopen_preserves_adjacency(self):
        node = SimNode(0, NodeSpec())
        db = GrDB(node.disk, fmt=FMT_C, clock=node.clock)
        edges = _random_edges(np.random.default_rng(5), 10, 200)
        db.store_edges(edges)
        db.flush()
        want = {v: sorted(db.get_adjacency(v).tolist()) for v in range(10)}
        db2 = GrDB(node.disk, fmt=FMT_C, clock=node.clock)
        assert db2.restored
        assert {v: sorted(db2.get_adjacency(v).tolist()) for v in range(10)} == want
        assert db2.known_vertices() == db.known_vertices()

    def test_format_mode_mismatch_rejected(self):
        node = SimNode(0, NodeSpec())
        db = GrDB(node.disk, fmt=FMT_C, clock=node.clock)
        db.store_edges(np.array([(0, 1)], dtype=np.int64))
        db.flush()
        with pytest.raises(GraphStorageException, match="format differs"):
            GrDB(node.disk, fmt=FMT, clock=node.clock)

    def test_defragment_compressed_chains(self):
        rng = np.random.default_rng(13)
        node = SimNode(0, NodeSpec())
        db = GrDB(node.disk, fmt=FMT_C, clock=node.clock, growth_policy="link")
        for _ in range(6):
            db.store_edges(_random_edges(rng, 6, 120))
        before = {v: sorted(db.get_adjacency(v).tolist()) for v in range(6)}
        chains = [chain_length(db, v) for v in range(6)]
        defragment(db)
        for v in range(6):
            assert sorted(db.get_adjacency(v).tolist()) == before[v]
            assert chain_length(db, v) <= chains[v]
        assert sum(chain_length(db, v) for v in range(6)) < sum(chains)

    def test_corrupt_subblock_interior_raises(self):
        fmt = FMT_C
        good = fmt.encode_subblock(
            2, np.array([5, 9, 17], dtype=np.uint64), (1 << 64) - 1
        )
        # A zero gap in the delta stream decodes to a duplicate neighbor.
        bad = bytes(good[:2]) + encode_varints(
            np.array([5, 0, 8], dtype=np.uint64)
        )
        bad = bad + b"\x00" * (len(good) - len(bad) - 8) + good[-8:]
        with pytest.raises(GraphStorageException, match="zero gap"):
            fmt.decode_subblock(bad)

    def test_encode_subblock_budget_enforced(self):
        too_many = np.arange(0, 10_000_000, 17, dtype=np.uint64)[:3000]
        with pytest.raises(GraphStorageException, match="overflows"):
            FMT_C.encode_subblock(0, too_many[:50], (1 << 64) - 1)


# -- StreamDB compressed log -------------------------------------------------


class TestStreamDBCompressed:
    def _pair(self):
        node = SimNode(0, NodeSpec())
        raw = StreamGraphDB(node.disk("raw_log"), clock=node.clock)
        comp = StreamGraphDB(node.disk("comp_log"), compress=True, clock=node.clock)
        return node, raw, comp

    def test_matches_raw_log(self):
        rng = np.random.default_rng(2)
        _, raw, comp = self._pair()
        for _ in range(3):
            edges = _random_edges(rng, 20, 4000)
            raw.store_edges(edges)
            comp.store_edges(edges)
        for v in range(20):
            assert sorted(raw.get_adjacency(v).tolist()) == sorted(
                comp.get_adjacency(v).tolist()
            )
        out_r, out_c = LongArray(), LongArray()
        raw.expand_fringe(list(range(20)), out_r)
        comp.expand_fringe(list(range(20)), out_c)
        assert sorted(out_r.to_numpy().tolist()) == sorted(out_c.to_numpy().tolist())

    def test_log_is_smaller(self):
        rng = np.random.default_rng(4)
        _, raw, comp = self._pair()
        edges = _random_edges(rng, 50, 6000)
        raw.store_edges(edges)
        comp.store_edges(edges)
        raw.flush()
        comp.flush()
        assert comp.device.size() < raw.device.size() / 2

    def test_restore_compressed_commits(self):
        node = SimNode(0, NodeSpec())
        dev, meta = node.disk("log"), node.disk("log_meta")
        db = StreamGraphDB(dev, meta_device=meta, compress=True, clock=node.clock)
        edges = _random_edges(np.random.default_rng(6), 8, 900)
        db.store_edges(edges)
        db.flush()
        want = {v: sorted(db.get_adjacency(v).tolist()) for v in range(8)}
        db2 = StreamGraphDB(dev, meta_device=meta, compress=True, clock=node.clock)
        assert db2.restored
        assert {v: sorted(db2.get_adjacency(v).tolist()) for v in range(8)} == want
        assert db2.num_edges_logged == db.num_edges_logged

    def test_restore_truncates_uncommitted_debris(self):
        node = SimNode(0, NodeSpec())
        dev, meta = node.disk("log"), node.disk("log_meta")
        db = StreamGraphDB(dev, meta_device=meta, compress=True, clock=node.clock)
        edges = _random_edges(np.random.default_rng(8), 5, 400)
        db.store_edges(edges)
        db.flush()
        want = {v: sorted(db.get_adjacency(v).tolist()) for v in range(5)}
        # A crash mid-append leaves torn record bytes past the commit.
        dev.write(db._cbytes, b"\xde\xad" * 64)
        db2 = StreamGraphDB(dev, meta_device=meta, compress=True, clock=node.clock)
        assert db2.restored
        assert {v: sorted(db2.get_adjacency(v).tolist()) for v in range(5)} == want

    def test_mode_mismatch_rejected_both_ways(self):
        node = SimNode(0, NodeSpec())
        for compress in (True, False):
            dev = node.disk(f"log{compress}")
            meta = node.disk(f"log{compress}_meta")
            db = StreamGraphDB(
                dev, meta_device=meta, compress=compress, clock=node.clock
            )
            db.store_edges(np.array([(0, 1)], dtype=np.int64))
            db.flush()
            with pytest.raises(GraphStorageException, match="mode mismatch"):
                StreamGraphDB(
                    dev, meta_device=meta, compress=not compress, clock=node.clock
                )

    def test_truncated_log_raises(self):
        dev = BlockDevice()
        db = StreamGraphDB(dev, compress=True)
        db.store_edges(np.array([(0, 1), (0, 2), (1, 3)], dtype=np.int64))
        db.flush()
        dev.truncate(8)
        with pytest.raises(CorruptBlockError, match="truncated log"):
            db.get_adjacency(0)

    def test_bad_record_magic_raises(self):
        dev = BlockDevice()
        db = StreamGraphDB(dev, compress=True)
        db.store_edges(np.array([(0, 1), (0, 2)], dtype=np.int64))
        db.flush()
        dev.write(0, b"\x00\x00\x00\x00")
        with pytest.raises(CorruptBlockError, match="magic"):
            db.get_adjacency(0)


# -- deployment-level equivalence -------------------------------------------


def _workload(seed=17, nverts=160, nedges=1400):
    rng = np.random.default_rng(seed)
    # A connected-ish core plus random chords, so BFS has real distances.
    spine = np.column_stack([np.arange(nverts - 1), np.arange(1, nverts)])
    chords = np.column_stack(
        [rng.integers(0, nverts, nedges), rng.integers(0, nverts, nedges)]
    )
    return np.vstack([spine, chords]).astype(np.int64)


_QUERIES = [(0, 150), (3, 77), (10, 11), (42, 139), (5, 5)]


def _answers(compress, backend, **cfg_kw):
    mssg = MSSG(
        MSSGConfig(
            num_backends=3,
            num_frontends=1,
            backend=backend,
            cache_blocks=8,
            compress_adjacency=compress,
            **cfg_kw,
        )
    )
    try:
        mssg.ingest(_workload())
        # Compare answers, not execution statistics: direction-opt may
        # legitimately pick different scan directions when compressed reads
        # are cheaper, changing edges_scanned without changing any result.
        return [
            (r.result, r.levels)
            for r in (mssg.query_bfs(s, d) for s, d in _QUERIES)
        ]
    finally:
        mssg.close()


class TestDeploymentEquivalence:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_all_backends_bit_identical(self, backend):
        assert _answers(True, backend) == _answers(False, backend)

    @pytest.mark.parametrize("backend", ["grDB", "StreamDB"])
    @pytest.mark.parametrize(
        "knobs",
        [
            {"batch_io": False},
            {"direction_opt": False},
            {"replication": 2},
            {"shared_scans": False},
            {"batch_io": False, "direction_opt": False, "replication": 2},
        ],
        ids=lambda k: "+".join(f"{n}={v}" for n, v in k.items()),
    )
    def test_knob_sweep_bit_identical(self, backend, knobs):
        assert _answers(True, backend, **knobs) == _answers(False, backend, **knobs)

    def test_compression_moves_fewer_device_bytes(self):
        def bytes_read(compress):
            mssg = MSSG(
                MSSGConfig(
                    num_backends=3,
                    backend="grDB",
                    cache_blocks=0,
                    checksums=False,
                    compress_adjacency=compress,
                )
            )
            try:
                mssg.ingest(_workload())
                for s, d in _QUERIES:
                    mssg.query_bfs(s, d)
                return sum(
                    db.storage.total_device_stats()["bytes_read"] for db in mssg.dbs
                )
            finally:
                mssg.close()

        assert bytes_read(True) < bytes_read(False)


# -- crash recovery of compressed stores -------------------------------------


class TestCompressedCrashRecovery:
    def _adjacency_image(self, db):
        return {v: sorted(db.get_adjacency(v).tolist()) for v in range(30)}

    def _ingested(self, node):
        db = make_graphdb(
            "grDB",
            node,
            grdb_format=FMT,
            cache_blocks=64,
            checksums=True,
            compress_adjacency=True,
        )
        rng = np.random.default_rng(11)
        edges = np.column_stack(
            [rng.integers(0, 30, 200), rng.integers(0, 400, 200)]
        ).astype(np.int64)
        db.store_edges(edges)
        return db

    @pytest.mark.parametrize("crash_after_ops", [0, 1, 2, 3, 5, 8, 13, 40])
    def test_wal_replay_of_compressed_flush(self, crash_after_ops):
        node = SimNode(0, NodeSpec())
        db = self._ingested(node)
        db.flush()
        published = self._adjacency_image(db)
        db.store_edges([(v, 9000 + v) for v in range(30)])
        node.install_fault_plan(
            FaultPlan([DiskFault(node=0, kind="crash", after_ops=crash_after_ops)])
        )
        try:
            db.flush()
            flushed = True
        except DeviceFailedError:
            flushed = False
        node.install_fault_plan(None)
        for dev in node._disks.values():
            dev.revive()
        db2 = make_graphdb(
            "grDB",
            node,
            grdb_format=FMT,
            cache_blocks=64,
            checksums=True,
            compress_adjacency=True,
        )
        assert db2.restored
        assert db2.fmt.compress
        got = self._adjacency_image(db2)
        if flushed:
            assert got == self._adjacency_image(db)
        else:
            # All-or-nothing: the WAL either rolled the whole second flush
            # forward or discarded it; no torn compressed sub-blocks.
            second = {v: sorted(published[v] + [9000 + v]) for v in published}
            assert got in (published, second)

    @pytest.mark.parametrize("crash_after_ops", [0, 1, 2, 4])
    def test_streamdb_compressed_crash_mid_flush(self, crash_after_ops):
        node = SimNode(0, NodeSpec())
        db = make_graphdb(
            "StreamDB", node, checksums=True, compress_adjacency=True
        )
        edges = _random_edges(np.random.default_rng(3), 10, 600)
        db.store_edges(edges)
        db.flush()
        published = {v: sorted(db.get_adjacency(v).tolist()) for v in range(10)}
        db.store_edges(np.array([(v, 7000 + v) for v in range(10)], dtype=np.int64))
        node.install_fault_plan(
            FaultPlan([DiskFault(node=0, kind="crash", after_ops=crash_after_ops)])
        )
        try:
            db.flush()
            flushed = True
        except DeviceFailedError:
            flushed = False
        node.install_fault_plan(None)
        for dev in node._disks.values():
            dev.revive()
        db2 = make_graphdb(
            "StreamDB", node, checksums=True, compress_adjacency=True
        )
        got = {v: sorted(db2.get_adjacency(v).tolist()) for v in range(10)}
        if flushed:
            assert got == {v: sorted(db.get_adjacency(v).tolist()) for v in range(10)}
        else:
            second = {v: sorted(published[v] + [7000 + v]) for v in published}
            assert got in (published, second)
