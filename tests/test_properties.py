"""Cross-cutting property-based tests (hypothesis).

These target whole-subsystem invariants rather than single functions:
grDB's on-disk chains against a dict model under arbitrary batch patterns
and growth policies, the end-to-end framework against reference BFS, and
the discrete-event scheduler's determinism/causality under random
communication patterns.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.bfs import NOT_FOUND, bfs_distance
from repro.graphdb import GrDB, GrDBFormat
from repro.graphdb.grdb import defragment
from repro.graphgen import CSRGraph, dedupe_edges
from repro.simcluster import NodeSpec, SimCluster, SimNode

TINY_FMT = GrDBFormat(
    capacities=(2, 4, 8, 16),
    block_sizes=(128, 256, 256, 512),
    max_file_bytes=2048,
)


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    batches=st.lists(
        st.lists(
            st.tuples(st.integers(0, 12), st.integers(0, 400)),
            min_size=1,
            max_size=40,
        ),
        min_size=1,
        max_size=6,
    ),
    policy=st.sampled_from(["link", "move"]),
    cache_blocks=st.sampled_from([0, 4, 64]),
    defrag=st.booleans(),
)
def test_grdb_matches_dict_model(batches, policy, cache_blocks, defrag):
    """grDB under arbitrary batch arrival orders == a dict of lists."""
    node = SimNode(0, NodeSpec())
    db = GrDB(
        node.disk,
        fmt=TINY_FMT,
        clock=node.clock,
        growth_policy=policy,
        cache_blocks=cache_blocks,
    )
    model: dict[int, list[int]] = {}
    for batch in batches:
        db.store_edges(np.array(batch, dtype=np.int64))
        for u, v in batch:
            model.setdefault(u, []).append(v)
    if defrag:
        defragment(db)
    for u in range(13):
        assert sorted(db.get_adjacency(u).tolist()) == sorted(model.get(u, []))
    assert db.known_vertices() == sorted(model)


@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    edges=st.lists(
        st.tuples(st.integers(0, 40), st.integers(0, 40)), min_size=3, max_size=80
    ),
    backend=st.sampled_from(["HashMap", "grDB", "StreamDB"]),
    nbackends=st.integers(1, 4),
    declustering=st.sampled_from(["vertex-rr", "edge-rr", "vertex-hash"]),
    query_seed=st.integers(0, 1000),
)
def test_framework_bfs_matches_reference(edges, backend, nbackends, declustering, query_seed):
    """End-to-end: any deployment answers BFS like the reference CSR BFS."""
    from repro import MSSG, MSSGConfig

    clean = dedupe_edges(np.array(edges, dtype=np.int64))
    if len(clean) == 0:
        return
    graph = CSRGraph.from_edges(clean, num_vertices=41)
    rng = np.random.default_rng(query_seed)
    s, d = int(rng.integers(0, 41)), int(rng.integers(0, 41))
    expected = bfs_distance(graph, s, d)
    with MSSG(
        MSSGConfig(
            num_backends=nbackends,
            backend=backend,
            declustering=declustering,
            grdb_format=TINY_FMT,
        )
    ) as mssg:
        mssg.ingest(clean)
        answer = mssg.query_bfs(s, d)
        assert answer.result == (expected if expected != -1 else None)


@settings(max_examples=20, deadline=None)
@given(
    nranks=st.integers(2, 5),
    plan=st.lists(
        st.tuples(
            st.integers(0, 4),  # sender
            st.integers(0, 4),  # receiver
            st.floats(0, 0.01),  # compute before send
        ),
        min_size=1,
        max_size=12,
    ),
)
def test_scheduler_delivers_everything_deterministically(nranks, plan):
    """Random send plans: all messages arrive, in causal order, twice alike."""
    plan = [(s % nranks, r % nranks, c) for s, r, c in plan]

    def run():
        cluster = SimCluster(nranks=nranks)
        sends = {}
        recvs = {}
        for s, r, _ in plan:
            sends.setdefault(s, []).append(r)
            recvs[r] = recvs.get(r, 0) + 1

        def program(ctx):
            for s, r, c in plan:
                if s == ctx.rank:
                    ctx.compute(c)
                    ctx.comm.send(r, (s, ctx.clock.now), tag=1)
            got = []
            for _ in range(recvs.get(ctx.rank, 0)):
                msg = yield from ctx.comm.recv(tag=1)
                # Causality: messages arrive after they were sent.
                assert msg.payload[1] <= ctx.clock.now
                got.append((msg.source, msg.payload))
            return got

        results = cluster.run(program)
        return results, cluster.makespan

    r1, m1 = run()
    r2, m2 = run()
    assert r1 == r2
    assert m1 == m2
    delivered = sum(len(g) for g in r1)
    assert delivered == len(plan)
