"""grDB-specific tests: slot encoding, addressing math, chains, policies,
defragmentation, caching, and declustered id maps."""

import numpy as np
import pytest

from repro.graphdb import GrDB, GrDBFormat, ModuloMap
from repro.graphdb.grdb import (
    EMPTY_SLOT,
    MAX_VERTEX_ID,
    chain_length,
    decode_pointer,
    defragment,
    defragment_vertex,
    encode_pointer,
    is_empty,
    is_pointer,
)
from repro.graphdb.grdb.storage import GrDBStorage
from repro.simcluster import BlockDevice, NodeSpec, SimNode
from repro.util import ConfigError, GraphStorageException

SMALL_FMT = GrDBFormat(
    capacities=(2, 4, 16, 64),
    block_sizes=(256, 256, 256, 1024),
    max_file_bytes=4096,
)


def make_db(fmt=SMALL_FMT, **kw):
    node = SimNode(0, NodeSpec())
    return GrDB(node.disk, fmt=fmt, clock=node.clock, cpu=node.spec.cpu, **kw), node


class TestSlotEncoding:
    def test_pointer_roundtrip(self):
        for level, sb in [(0, 0), (5, 12345), (31, (1 << 56) - 1)]:
            slot = encode_pointer(level, sb)
            assert is_pointer(slot)
            assert not is_empty(slot)
            assert decode_pointer(slot) == (level, sb)

    def test_plain_vertex_not_pointer(self):
        assert not is_pointer(0)
        assert not is_pointer(MAX_VERTEX_ID)

    def test_empty_slot_distinct(self):
        assert is_empty(EMPTY_SLOT)
        assert not is_pointer(EMPTY_SLOT)

    def test_out_of_range(self):
        with pytest.raises(ConfigError):
            encode_pointer(32, 0)
        with pytest.raises(ConfigError):
            encode_pointer(0, 1 << 56)
        with pytest.raises(ConfigError):
            decode_pointer(42)


class TestFormat:
    def test_paper_default_geometry(self):
        fmt = GrDBFormat()
        assert fmt.capacities == (2, 4, 16, 256, 4096, 16384)
        assert fmt.subblocks_per_block(0) == 256  # 4096 / (2*8)
        assert fmt.subblocks_per_block(3) == 2  # 4096 / (256*8)
        assert fmt.subblocks_per_block(4) == 1  # 32768 / (4096*8)
        assert fmt.blocks_per_file(0) == (256 << 20) // 4096

    def test_locate_formula(self):
        fmt = SMALL_FMT
        # Level 0: sub-block 16 bytes, block 256 B -> k=16; file 4096 B -> N=16.
        k, N, B = 16, 16, 256
        s = 300
        file_idx, offset, block, slot_off = fmt.locate(0, s)
        assert block == s // k
        assert file_idx == (s // k) // N
        assert offset == B * ((s // k) % N) + 16 * (s % k)

    def test_validation(self):
        with pytest.raises(ConfigError):
            GrDBFormat(capacities=(2, 3), block_sizes=(4096, 4096))  # d1 < 2*d0
        with pytest.raises(ConfigError):
            GrDBFormat(capacities=(2,), block_sizes=(100,))  # not multiple
        with pytest.raises(ConfigError):
            GrDBFormat(capacities=(2, 4), block_sizes=(4096,))
        with pytest.raises(ConfigError):
            GrDBFormat(capacities=(), block_sizes=())
        with pytest.raises(ConfigError):
            GrDBFormat(capacities=(1,), block_sizes=(4096,))
        with pytest.raises(ConfigError):
            GrDBFormat(capacities=(2,), block_sizes=(4096,), max_file_bytes=100)

    def test_total_chain_capacity(self):
        assert SMALL_FMT.total_chain_capacity() == (2 - 1) + (4 - 1) + (16 - 1) + 64


class TestStorageComponent:
    def test_unwritten_subblock_reads_empty(self):
        node = SimNode(0, NodeSpec())
        st = GrDBStorage(SMALL_FMT, node.disk)
        data = st.read_subblock(0, 123)
        assert data == b"\xff" * 16

    def test_subblock_roundtrip_and_isolation(self):
        node = SimNode(0, NodeSpec())
        st = GrDBStorage(SMALL_FMT, node.disk)
        st.write_subblock(1, 5, b"A" * 32)
        st.write_subblock(1, 6, b"B" * 32)
        assert st.read_subblock(1, 5) == b"A" * 32
        assert st.read_subblock(1, 6) == b"B" * 32
        # Neighbor in the same block untouched:
        assert st.read_subblock(1, 4) == b"\xff" * 32

    def test_multi_file_spill(self):
        node = SimNode(0, NodeSpec())
        st = GrDBStorage(SMALL_FMT, node.disk)
        # Level 3: block 1024 B = one 512 B sub-block...  k = 2, N = 4.
        many = SMALL_FMT.blocks_per_file(3) * SMALL_FMT.subblocks_per_block(3) + 3
        for s in range(many):
            st.write_subblock(3, s, bytes([s % 251]) * 512)
        st.flush()
        stats = st.total_device_stats()
        assert stats["files"] >= 2  # spilled into a second storage file
        for s in range(many):
            assert st.read_subblock(3, s) == bytes([s % 251]) * 512

    def test_allocator_and_freelist(self):
        node = SimNode(0, NodeSpec())
        st = GrDBStorage(SMALL_FMT, node.disk)
        a = st.allocate_subblock(1)
        b = st.allocate_subblock(1)
        assert (a, b) == (0, 1)
        st.free_subblock(1, a)
        assert st.allocate_subblock(1) == a  # recycled
        assert st.allocated_subblocks(1) == 2
        with pytest.raises(ConfigError):
            st.allocate_subblock(0)

    def test_bad_writes(self):
        node = SimNode(0, NodeSpec())
        st = GrDBStorage(SMALL_FMT, node.disk)
        with pytest.raises(GraphStorageException):
            st.write_subblock(0, 0, b"wrong size")
        with pytest.raises(GraphStorageException):
            st.read_subblock(99, 0)
        with pytest.raises(GraphStorageException):
            st.read_subblock(0, -1)


class TestChains:
    def test_degree_within_level0(self):
        db, _ = make_db()
        db.store_edges([(5, 10), (5, 11)])  # d0 = 2, exactly fits
        assert db.get_adjacency(5).tolist() == [10, 11]
        assert chain_length(db, 5) == 1

    def test_chain_grows_level_by_level(self):
        db, _ = make_db(growth_policy="link")
        # Degree 3 spills to level 1: L0 holds 1 entry + pointer.
        db.store_edges([(5, 10), (5, 11), (5, 12)])
        assert sorted(db.get_adjacency(5).tolist()) == [10, 11, 12]
        chain = db.chain_of(5)
        assert [lvl for lvl, _ in chain] == [0, 1]
        # Grow through level 2.
        db.store_edges([(5, x) for x in range(13, 23)])
        assert len(db.get_adjacency(5)) == 13
        assert [lvl for lvl, _ in chain_path(db, 5)] == [0, 1, 2]

    def test_link_policy_chains_at_top(self):
        db, _ = make_db(growth_policy="link")
        n = 200  # beyond total chain capacity (83): chains extra top blocks
        db.store_edges([(1, x + 100) for x in range(n)])
        got = db.get_adjacency(1)
        assert sorted(got.tolist()) == list(range(100, 100 + n))
        levels = [lvl for lvl, _ in chain_path(db, 1)]
        assert levels[:4] == [0, 1, 2, 3]
        assert all(lv == 3 for lv in levels[3:])

    def test_move_policy_keeps_chain_short(self):
        db, _ = make_db(growth_policy="move")
        db.store_edges([(7, x) for x in range(30)])  # within level 3
        assert sorted(db.get_adjacency(7).tolist()) == list(range(30))
        assert chain_length(db, 7) == 2  # L0 -> tail, always

    def test_move_policy_frees_subblocks(self):
        db, _ = make_db(growth_policy="move")
        db.store_edges([(7, x) for x in range(30)])
        # Levels 1 and 2 sub-blocks were moved out of and recycled.
        assert db.storage.allocated_subblocks(1) == 0
        assert db.storage.allocated_subblocks(2) == 0

    def test_policies_agree_on_contents(self):
        rng = np.random.default_rng(0)
        edges = np.column_stack(
            [rng.integers(0, 20, 400), rng.integers(0, 1000, 400)]
        ).astype(np.int64)
        dbl, _ = make_db(growth_policy="link")
        dbm, _ = make_db(growth_policy="move")
        for db in (dbl, dbm):
            for i in range(0, 400, 37):  # uneven batches
                db.store_edges(edges[i : i + 37])
        for v in range(20):
            assert sorted(dbl.get_adjacency(v).tolist()) == sorted(
                dbm.get_adjacency(v).tolist()
            )

    def test_memo_invalidation_rewalks_disk(self):
        db, _ = make_db()
        db.store_edges([(3, x) for x in range(10)])
        db.invalidate_tail_memo(3)
        db.store_edges([(3, 99)])
        assert 99 in db.get_adjacency(3).tolist()
        db.invalidate_tail_memo()
        assert len(db.get_adjacency(3)) == 11

    def test_id_too_large(self):
        db, _ = make_db()
        with pytest.raises(GraphStorageException):
            db.store_edges([(0, MAX_VERTEX_ID + 1)])

    def test_bad_policy(self):
        node = SimNode(0, NodeSpec())
        with pytest.raises(ConfigError):
            GrDB(node.disk, fmt=SMALL_FMT, growth_policy="bogus")


def chain_path(db, vertex):
    return db.chain_of(vertex)


class TestDefrag:
    def test_defrag_preserves_contents(self):
        db, _ = make_db(growth_policy="link")
        db.store_edges([(1, x) for x in range(40)])
        before = sorted(db.get_adjacency(1).tolist())
        assert chain_length(db, 1) > 2
        assert defragment_vertex(db, 1)
        assert sorted(db.get_adjacency(1).tolist()) == before
        assert chain_length(db, 1) == 2

    def test_defrag_small_vertex_noop(self):
        db, _ = make_db()
        db.store_edges([(1, 2)])
        assert not defragment_vertex(db, 1)

    def test_defrag_all_known(self):
        db, _ = make_db(growth_policy="link")
        for v in range(5):
            db.store_edges([(v, x) for x in range(10)])
        rewritten = defragment(db)
        assert rewritten == 5
        for v in range(5):
            assert len(db.get_adjacency(v)) == 10
            assert chain_length(db, v) <= 2

    def test_defrag_hub_chains_top_level(self):
        db, _ = make_db(growth_policy="link")
        n = 300  # > top capacity 64: stays a chain, but all at top level
        db.store_edges([(1, x) for x in range(n)])
        defragment_vertex(db, 1)
        assert sorted(db.get_adjacency(1).tolist()) == list(range(n))
        levels = [lvl for lvl, _ in db.chain_of(1)]
        assert levels[0] == 0 and all(lv == 3 for lv in levels[1:])

    def test_defrag_then_append(self):
        db, _ = make_db(growth_policy="link")
        db.store_edges([(1, x) for x in range(40)])
        defragment_vertex(db, 1)
        db.store_edges([(1, 1000)])
        assert 1000 in db.get_adjacency(1).tolist()
        assert len(db.get_adjacency(1)) == 41

    def test_defrag_reads_cheaper(self):
        """Compacted chains need fewer sub-block hops (fewer block reads)."""
        db, node = make_db(growth_policy="link", cache_blocks=0)
        db.store_edges([(1, x) for x in range(60)])
        hops_before = chain_length(db, 1)
        defragment_vertex(db, 1)
        assert chain_length(db, 1) < hops_before


class TestCacheAndCosts:
    def test_cache_disabled_rereads_device(self):
        db0, node0 = make_db(cache_blocks=0)
        dbc, nodec = make_db(cache_blocks=64)
        edges = [(v, x) for v in range(8) for x in range(6)]
        db0.store_edges(edges)
        dbc.store_edges(edges)
        db0.flush()
        dbc.flush()
        t0, tc = node0.clock.now, nodec.clock.now
        for _ in range(5):
            for v in range(8):
                db0.get_adjacency(v)
                dbc.get_adjacency(v)
        uncached_time = node0.clock.now - t0
        cached_time = nodec.clock.now - tc
        assert cached_time < uncached_time

    def test_cache_stats_surface(self):
        db, _ = make_db(cache_blocks=16)
        db.store_edges([(0, 1)])
        db.get_adjacency(0)
        assert db.cache_stats.accesses > 0


class TestModuloIdMap:
    def test_local_dense_layout(self):
        m = ModuloMap(4, 1)
        assert m.to_local(1) == 0
        assert m.to_local(5) == 1
        assert m.to_global(2) == 9
        assert m.owns(5) and not m.owns(4)
        with pytest.raises(ConfigError):
            m.to_local(2)
        with pytest.raises(ConfigError):
            ModuloMap(0, 0)
        with pytest.raises(ConfigError):
            ModuloMap(4, 4)

    def test_grdb_with_modulo_map(self):
        db, _ = make_db(id_map=ModuloMap(4, 1))
        db.store_edges([(1, 100), (5, 200), (9, 300), (1, 101)])
        assert sorted(db.get_adjacency(1).tolist()) == [100, 101]
        assert db.get_adjacency(5).tolist() == [200]
        # Vertices not owned by this partition: empty set, not an error.
        assert db.get_adjacency(2).tolist() == []
        assert db.known_vertices() == [1, 5, 9]

    def test_grdb_rejects_storing_unowned(self):
        db, _ = make_db(id_map=ModuloMap(4, 1))
        with pytest.raises(ConfigError):
            db.store_edges([(2, 7)])
