"""End-to-end tests of the MSSG façade across backends and declusterings."""

import numpy as np
import pytest

from repro import MSSG, MSSGConfig
from repro.bfs import bfs_distance
from repro.graphdb import GrDBFormat
from repro.graphgen import CSRGraph, dedupe_edges, preferential_attachment
from repro.util import ConfigError

EDGES = dedupe_edges(preferential_attachment(150, 3, seed=8))
GRAPH = CSRGraph.from_edges(EDGES, num_vertices=150)

SMALL_GRDB = GrDBFormat(
    capacities=(2, 4, 16, 256),
    block_sizes=(1024, 1024, 1024, 4096),
    max_file_bytes=1 << 20,
)


class TestConfig:
    def test_defaults(self):
        cfg = MSSGConfig()
        assert cfg.backend == "grDB"
        assert cfg.declustering == "vertex-rr"

    def test_invalid(self):
        with pytest.raises(ConfigError):
            MSSGConfig(backend="Oracle")
        with pytest.raises(ConfigError):
            MSSGConfig(declustering="magic")
        with pytest.raises(ConfigError):
            MSSGConfig(num_backends=0)
        with pytest.raises(ConfigError):
            MSSGConfig(num_frontends=0)


class TestEndToEnd:
    @pytest.mark.parametrize("backend", ["Array", "HashMap", "grDB", "BerkeleyDB", "StreamDB", "MySQL"])
    def test_ingest_then_query(self, backend):
        with MSSG(
            MSSGConfig(
                num_backends=3,
                num_frontends=2,
                backend=backend,
                grdb_format=SMALL_GRDB,
                window_size=64,
            )
        ) as mssg:
            report = mssg.ingest(EDGES)
            assert report.entries_stored == 2 * len(EDGES)
            for s, d in [(0, 140), (2, 3)]:
                expected = bfs_distance(GRAPH, s, d)
                answer = mssg.query_bfs(s, d)
                assert answer.result == (expected if expected != -1 else None)

    def test_pipelined_query(self):
        with MSSG(MSSGConfig(num_backends=2, backend="HashMap")) as mssg:
            mssg.ingest(EDGES)
            expected = bfs_distance(GRAPH, 1, 120)
            answer = mssg.query_bfs(1, 120, pipelined=True, threshold=16)
            assert answer.result == (expected if expected != -1 else None)

    def test_edge_declustering_end_to_end(self):
        with MSSG(
            MSSGConfig(
                num_backends=3, backend="grDB", declustering="edge-rr",
                grdb_format=SMALL_GRDB,
            )
        ) as mssg:
            mssg.ingest(EDGES)
            expected = bfs_distance(GRAPH, 0, 100)
            assert mssg.query_bfs(0, 100).result == (
                expected if expected != -1 else None
            )

    def test_query_timing_and_stats(self):
        with MSSG(MSSGConfig(num_backends=2, backend="grDB", grdb_format=SMALL_GRDB)) as mssg:
            mssg.ingest(EDGES)
            answer = mssg.query_bfs(0, 149)
            assert answer.seconds > 0
            assert answer.edges_scanned > 0
            stats = mssg.backend_stats()
            assert len(stats) == 2
            assert sum(s["edges_stored"] for s in stats) == 2 * len(EDGES)

    def test_grdb_beats_mysql_on_search_time(self):
        """The headline comparison, end-to-end at miniature scale."""

        def search_time(backend):
            with MSSG(
                MSSGConfig(
                    num_backends=2, backend=backend, grdb_format=SMALL_GRDB,
                    cache_blocks=64,
                )
            ) as mssg:
                mssg.ingest(EDGES)
                total = 0.0
                for s, d in [(0, 140), (1, 77), (5, 60)]:
                    total += mssg.query_bfs(s, d).seconds
                return total

        assert search_time("grDB") < search_time("MySQL")

    def test_external_visited_option(self):
        with MSSG(MSSGConfig(num_backends=2, backend="HashMap")) as mssg:
            mssg.ingest(EDGES)
            a = mssg.query_bfs(0, 100, visited="memory")
            b = mssg.query_bfs(0, 100, visited="external")
            assert a.result == b.result

    def test_repeated_queries_reuse_storage(self):
        with MSSG(MSSGConfig(num_backends=2, backend="grDB", grdb_format=SMALL_GRDB)) as mssg:
            mssg.ingest(EDGES)
            r1 = mssg.query_bfs(0, 100)
            r2 = mssg.query_bfs(0, 100)
            assert r1.result == r2.result
            # Second run benefits from a warm block cache.
            assert r2.seconds <= r1.seconds
