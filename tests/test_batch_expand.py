"""Batched fringe expansion is byte-identical to the per-vertex loop.

The tentpole guarantee of the batched I/O path: for every backend and every
fringe — duplicates, hubs, non-local and never-stored ids, empty — the
batched plan appends exactly the same adjacency entries in exactly the same
order as the paper-prototype per-vertex loop, with identical operation
counters.  Plus unit tests for the vectored device read primitive
(``BlockDevice.readv``) and the device-visible coalescing it buys.
"""

import numpy as np
import pytest

from repro.graphdb import GrDBFormat, ModuloMap, make_graphdb
from repro.graphdb.bdb_db import BerkeleyGraphDB
from repro.graphgen import dedupe_edges, preferential_attachment
from repro.simcluster import BlockDevice, MemoryBacking, NodeSpec, SimNode
from repro.util import LongArray

FMT = GrDBFormat(
    capacities=(2, 4, 16, 64),
    block_sizes=(256, 256, 256, 1024),
    max_file_bytes=4096,
)

BACKENDS = ("grDB", "BerkeleyDB", "MySQL", "StreamDB")

#: A seeded scale-free shard: hubs, leaves, and ids the shard never stores.
EDGES = dedupe_edges(preferential_attachment(300, 3, seed=11))


def build(backend: str, batch_io: bool, id_map=None):
    node = SimNode(0, NodeSpec())
    db = make_graphdb(
        backend, node, id_map=id_map, grdb_format=FMT, batch_io=batch_io
    )
    edges = EDGES
    if id_map is not None:
        edges = edges[edges[:, 0] % id_map.nparts == id_map.rank]
    db.store_edges(edges)
    db.finalize_ingest()
    return db


def expand(db, fringe) -> tuple[np.ndarray, int, int]:
    out = LongArray()
    req0, scan0 = db.stats.adjacency_requests, db.stats.edges_scanned
    db.expand_fringe(np.asarray(fringe, dtype=np.int64), out)
    return (
        out.to_numpy(),
        db.stats.adjacency_requests - req0,
        db.stats.edges_scanned - scan0,
    )


FRINGES = [
    [],
    [0],  # the biggest hub of a preferential-attachment graph
    [5, 3, 8, 3, 5],  # duplicates, unsorted
    [299, 0, 150],  # extremes
    [100000, 424242],  # never stored
    list(range(60)),  # dense: above BerkeleyDB's range-scan threshold
    np.random.default_rng(7).permutation(300)[:90].tolist(),
]


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("fringe_idx", range(len(FRINGES)))
def test_batched_matches_pervertex(backend, fringe_idx):
    fringe = FRINGES[fringe_idx]
    plain = build(backend, batch_io=False)
    batched = build(backend, batch_io=True)
    got_plain, req_p, scan_p = expand(plain, fringe)
    got_batch, req_b, scan_b = expand(batched, fringe)
    assert got_plain.tolist() == got_batch.tolist()
    assert (req_p, scan_p) == (req_b, scan_b)


@pytest.mark.parametrize("backend", BACKENDS)
def test_batched_matches_get_adjacency(backend):
    """The batched path also agrees with the public one-vertex API.

    grDB/BerkeleyDB/MySQL emit per fringe entry in fringe order, so the
    comparison is exact; StreamDB answers the fringe with one log scan and
    has never promised per-entry order, so it is compared as a multiset
    over a duplicate-free fringe (the seed contract).
    """
    db = build(backend, batch_io=True)
    fringe = [0, 17, 555, 42] if backend == "StreamDB" else [0, 17, 17, 555, 42]
    got, _, _ = expand(db, fringe)
    expected = np.concatenate(
        [db.get_adjacency(int(v)) for v in fringe] or [np.empty(0, dtype=np.int64)]
    )
    if backend == "StreamDB":
        assert sorted(got.tolist()) == sorted(expected.tolist())
    else:
        assert got.tolist() == expected.tolist()


def test_grdb_batched_with_modulo_map():
    id_map = ModuloMap(4, 1)
    plain = build("grDB", batch_io=False, id_map=id_map)
    batched = build("grDB", batch_io=True, id_map=id_map)
    # Owned, unowned, and never-stored ids interleaved.
    fringe = [1, 2, 5, 9, 9, 0, 13, 99997]
    got_plain, req_p, _ = expand(plain, fringe)
    got_batch, req_b, _ = expand(batched, fringe)
    assert got_plain.tolist() == got_batch.tolist()
    assert req_p == req_b == len(fringe)


def test_bdb_range_scan_and_point_lookup_agree():
    """Both sides of the BATCH_SCAN_MIN threshold produce identical output."""
    db = build("BerkeleyDB", batch_io=True)
    dense = list(range(BerkeleyGraphDB.BATCH_SCAN_MIN + 8))
    sparse = dense[:4]
    got_dense, _, _ = expand(db, dense)
    plain = build("BerkeleyDB", batch_io=False)
    exp_dense, _, _ = expand(plain, dense)
    assert got_dense.tolist() == exp_dense.tolist()
    got_sparse, _, _ = expand(db, sparse)
    exp_sparse, _, _ = expand(plain, sparse)
    assert got_sparse.tolist() == exp_sparse.tolist()


def test_grdb_batched_charges_no_more_virtual_time():
    plain = build("grDB", batch_io=False)
    batched = build("grDB", batch_io=True)
    fringe = list(range(120))
    t0 = plain.clock.now
    expand(plain, fringe)
    plain_cost = plain.clock.now - t0
    t0 = batched.clock.now
    expand(batched, fringe)
    batched_cost = batched.clock.now - t0
    assert batched_cost < plain_cost


def test_grdb_batched_coalesces_device_reads():
    """Cold-cache batched expansion issues fewer, larger device reads."""

    def cold_read_stats(batch_io: bool):
        db = build("grDB", batch_io=batch_io)
        db.flush()
        db.storage.cache.clear()
        expand(db, list(range(0, 300, 2)))
        s = db.storage.total_device_stats()
        return s["reads"], s["bytes_read"]

    reads_plain, bytes_plain = cold_read_stats(False)
    reads_batch, bytes_batch = cold_read_stats(True)
    assert reads_batch < reads_plain
    assert bytes_batch / reads_batch > bytes_plain / reads_plain


def test_grdb_prefetch_fringe_counts_and_warms():
    db = build("grDB", batch_io=True)
    db.flush()
    db.storage.cache.clear()
    fringe = np.arange(64)
    planned = db.prefetch_fringe(fringe)
    k = db.fmt.subblocks_per_block(0)
    assert planned == len(np.unique(fringe // k))
    assert db.cache_stats.prefetched == planned  # all cold after clear()
    # Prefetching again fetches nothing new but reports the same plan.
    assert db.prefetch_fringe(fringe) == planned
    assert db.cache_stats.prefetched == planned


class TestReadv:
    def make_device(self) -> BlockDevice:
        dev = BlockDevice(MemoryBacking())
        dev.write(0, bytes(range(256)) * 4)
        return dev

    def test_results_match_single_reads(self):
        dev = self.make_device()
        requests = [(100, 10), (0, 4), (512, 32), (101, 3)]
        got = dev.readv(requests)
        assert got == [dev.read(off, n) for off, n in requests]

    def test_empty(self):
        assert self.make_device().readv([]) == []

    def test_adjacent_requests_coalesce(self):
        dev = self.make_device()
        before = dev.stats.reads
        dev.readv([(0, 64), (64, 64), (128, 64)])
        assert dev.stats.reads - before == 1

    def test_gap_splits_run(self):
        dev = self.make_device()
        before = dev.stats.reads
        dev.readv([(0, 64), (256, 64)])
        assert dev.stats.reads - before == 2

    def test_overlap_coalesces(self):
        dev = self.make_device()
        before = dev.stats.reads
        got = dev.readv([(0, 100), (50, 100)])
        assert dev.stats.reads - before == 1
        assert got[1] == dev.read(50, 100)

    def test_unsorted_input_returns_in_request_order(self):
        dev = self.make_device()
        got = dev.readv([(512, 8), (0, 8)])
        assert got[0] == dev.read(512, 8)
        assert got[1] == dev.read(0, 8)

    def test_negative_rejected(self):
        dev = self.make_device()
        with pytest.raises(ValueError):
            dev.readv([(-1, 8)])
        with pytest.raises(ValueError):
            dev.readv([(0, -8)])

    def test_charges_one_seek_per_run(self):
        dev = self.make_device()
        dev.read(900, 1)  # park the head away from the runs
        seeks_before = dev.stats.seeks
        dev.readv([(0, 64), (64, 64), (300, 64)])
        assert dev.stats.seeks - seeks_before == 2
