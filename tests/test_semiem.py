"""Semi-external-memory mode (``MSSGConfig.semi_external``).

Covers the three layers of the semi-EM design — the pinned vertex state
(resident degree census, metadata, visited levels), the selective
adjacency I/O directories of StreamDB and grDB, and the pinned segment of
the block caches with its scan-budget accounting — plus the centralized
cache-policy validation and deployment-level equivalence: every backend
answers bit-identically with ``semi_external`` on and off across the
batch-I/O / direction-opt / replication / shared-scan knobs, while the
out-of-core backends read fewer device blocks on sparse frontiers.
"""

import numpy as np
import pytest

from repro import MSSG, MSSGConfig
from repro.bfs import INFINITY, PinnedVisited
from repro.graphdb import GrDBFormat, make_graphdb
from repro.graphdb.metadata import UNSET, PinnedMetadata
from repro.graphdb.registry import BACKENDS, OUT_OF_CORE_BACKENDS, shared_cache_for
from repro.graphdb.stream_db import StreamGraphDB
from repro.simcluster import NodeSpec, SimNode
from repro.storage.blockcache import (
    CachePartition,
    LRUBlockCache,
    SharedBlockCache,
    make_block_cache,
    validate_cache_policy,
)
from repro.util.errors import ConfigError, StorageEngineError


def _random_edges(rng, nverts, nedges):
    return rng.integers(0, nverts, size=(nedges, 2), dtype=np.int64)


# -- cache-policy validation (the one helper, everywhere) --------------------


class TestCachePolicyValidation:
    def test_helper_accepts_known_policies(self):
        assert validate_cache_policy("lru") == "lru"
        assert validate_cache_policy("2q") == "2q"

    def test_helper_rejects_unknown(self):
        with pytest.raises(ConfigError, match="unknown cache_policy 'clock'"):
            validate_cache_policy("clock")

    def test_config_and_pool_use_the_same_wording(self):
        with pytest.raises(ConfigError) as from_config:
            MSSGConfig(cache_policy="mru")
        with pytest.raises(ConfigError) as from_pool:
            SharedBlockCache(8, policy="mru")
        with pytest.raises(ConfigError) as from_registry:
            shared_cache_for(SimNode(0, NodeSpec()), 8, "mru")
        assert str(from_config.value) == str(from_pool.value) == str(from_registry.value)

    def test_registry_rejects_policy_mismatch_on_existing_pool(self):
        node = SimNode(0, NodeSpec())
        pool = shared_cache_for(node, 8, "2q")
        assert pool is node.shared_block_cache
        # Same policy re-attaches to the same pool; "lru" means private
        # caches, not a pool at all.
        assert shared_cache_for(node, 8, "2q") is pool
        assert shared_cache_for(node, 8, "lru") is None
        # A pool built with a different (valid) policy — e.g. installed
        # explicitly by an embedding application — must be rejected, not
        # silently rebuilt.
        node2 = SimNode(1, NodeSpec())
        node2.shared_block_cache = SharedBlockCache(8, policy="lru")
        with pytest.raises(ConfigError, match="already has a 'lru' shared block cache"):
            make_graphdb("grDB", node2, cache_blocks=8, cache_policy="2q")

    def test_registry_mismatch_does_not_rebuild_pool(self):
        node = SimNode(0, NodeSpec())
        node.shared_block_cache = pool = SharedBlockCache(8, policy="lru")
        keeper = pool.partition("keeper")
        keeper.put("hot", b"x")
        with pytest.raises(ConfigError):
            shared_cache_for(node, 8, "2q")
        assert node.shared_block_cache is pool
        assert keeper.get("hot") == b"x"  # pool untouched


# -- pinned segment of the block caches --------------------------------------


class TestLRUPinning:
    def test_pinned_blocks_survive_a_sweep(self):
        cache = LRUBlockCache(4)
        cache.pin("dir", b"D")
        for i in range(50):
            cache.put(i, b"x")
        assert cache.get("dir") == b"D"
        assert cache.pinned_blocks == 1
        assert len(cache) <= 4

    def test_pin_evicts_overflow_and_writes_back_dirty(self):
        written = {}
        cache = LRUBlockCache(2, writer=written.__setitem__)
        cache.put("a", b"A", dirty=True)
        cache.put("b", b"B", dirty=True)
        cache.pin("dir", b"D")
        assert written == {"a": b"A"}  # LRU victim flushed, not lost
        assert cache.get("b") == b"B"

    def test_pin_beyond_capacity_raises(self):
        cache = LRUBlockCache(1)
        cache.pin("a", b"A")
        with pytest.raises(StorageEngineError, match="cannot pin"):
            cache.pin("b", b"B")
        cache.pin("a", b"A2")  # re-pin of a pinned key is an update
        assert cache.get("a") == b"A2"

    def test_pinned_key_cannot_be_dirtied(self):
        cache = LRUBlockCache(2)
        cache.pin("dir", b"D")
        with pytest.raises(StorageEngineError, match="cannot be dirtied"):
            cache.put("dir", b"D2", dirty=True)
        cache.put("dir", b"D3")  # clean overwrite updates in place
        assert cache.get("dir") == b"D3"

    def test_unpin_demotes_to_evictable(self):
        cache = LRUBlockCache(2)
        cache.pin("dir", b"D")
        cache.unpin("dir")
        assert cache.pinned_blocks == 0
        for i in range(3):
            cache.put(i, b"x")
        assert cache.get("dir") is None  # evicted like any other block

    def test_invalidate_and_drop_clear_pinned(self):
        cache = LRUBlockCache(2)
        cache.pin("dir", b"D")
        cache.invalidate("dir")
        assert "dir" not in cache
        cache.pin("dir", b"D")
        cache.drop()
        assert cache.pinned_blocks == 0


class TestSharedPinning:
    def _pool(self, capacity, policy="2q"):
        pool = SharedBlockCache(capacity, policy=policy)
        return pool, pool.partition("eng")

    def test_pinned_blocks_survive_a_sweep(self):
        pool, part = self._pool(4)
        part.pin("dir", b"D")
        for i in range(50):
            part.put(i, bytes([i]))
        assert part.get("dir") == b"D"
        assert pool.pinned_blocks == 1
        assert len(pool) <= 4

    def test_pin_beyond_capacity_raises(self):
        pool, part = self._pool(1)
        part.pin("a", b"A")
        with pytest.raises(StorageEngineError, match="cannot pin"):
            part.pin("b", b"B")

    def test_pinned_key_cannot_be_dirtied(self):
        pool, part = self._pool(4)
        part.pin("dir", b"D")
        with pytest.raises(StorageEngineError, match="cannot be dirtied"):
            part.put("dir", b"D2", dirty=True)

    def test_unpin_then_eviction(self):
        pool, part = self._pool(2, policy="lru")
        part.pin("dir", b"D")
        part.unpin("dir")
        assert pool.pinned_blocks == 0
        for i in range(3):
            part.put(i, b"x")
        assert part.get("dir") is None

    def test_pin_is_namespaced_by_owner(self):
        pool = SharedBlockCache(4)
        a, b = pool.partition("a"), pool.partition("b")
        a.pin("dir", b"A")
        b.pin("dir", b"B")
        assert a.get("dir") == b"A"
        assert b.get("dir") == b"B"
        pool.drop_owner("a")
        assert a.get("dir") is None
        assert b.get("dir") == b"B"

    def test_clear_flushes_then_drops_pinned(self):
        written = {}
        pool = SharedBlockCache(4)
        part = pool.partition("eng", writer=written.__setitem__)
        part.put("blk", b"B", dirty=True)
        part.pin("dir", b"D")
        part.clear()
        assert written == {"blk": b"B"}
        assert len(pool) == 0


class TestScanBudget:
    def test_private_lru_budget_is_free_capacity(self):
        cache = LRUBlockCache(8)
        assert cache.scan_budget() == 8
        cache.pin("dir", b"D")
        assert cache.scan_budget() == 7

    def test_capacity_smaller_than_one_scan_batch(self):
        # A tiny pool still grants a positive budget so a streaming pass can
        # make progress one block at a time instead of livelocking.
        assert LRUBlockCache(1).scan_budget() == 1
        assert SharedBlockCache(1, policy="2q").scan_budget() == 1
        assert SharedBlockCache(0, policy="2q").scan_budget() == 0

    def test_2q_budget_is_probation_share(self):
        pool = SharedBlockCache(16, policy="2q")
        # protected cap = 12, so a scan may churn the 4 probation slots.
        assert pool.scan_budget() == 4
        assert pool.partition("eng").scan_budget() == 4

    def test_2q_with_empty_protected_segment(self):
        # Whether protected is populated is irrelevant: the budget reserves
        # the protected *cap*, so it is identical before and after promotion.
        pool = SharedBlockCache(16, policy="2q")
        part = pool.partition("eng")
        empty_budget = pool.scan_budget()
        part.put("hot", b"H")
        part.get("hot")  # promote into protected
        assert pool.scan_budget() == empty_budget == 4

    def test_2q_all_capacity_reserved_grants_minimum_one(self):
        # 4 blocks -> protected cap 3 -> naive budget 1; shrink to 2 blocks
        # -> protected cap 1 -> budget 1 as well.  Never 0 while free > 0.
        for cap in (2, 3, 4):
            assert SharedBlockCache(cap, policy="2q").scan_budget() >= 1

    def test_fully_pinned_pool_has_zero_budget(self):
        pool = SharedBlockCache(2, policy="2q")
        part = pool.partition("eng")
        part.pin("d0", b"0")
        part.pin("d1", b"1")
        assert pool.scan_budget() == 0
        assert part.scan_budget() == 0
        # Pass-through puts neither cache nor evict the pinned blocks.
        part.put("x", b"X")
        assert part.get("x") is None
        assert part.get("d0") == b"0"

    def test_lru_policy_pool_budget_shrinks_with_pinning(self):
        pool = SharedBlockCache(8, policy="lru")
        part = pool.partition("eng")
        assert pool.scan_budget() == 8
        part.pin("dir", b"D")
        assert pool.scan_budget() == 7

    def test_partition_of_factory_exposes_budget(self):
        pool = SharedBlockCache(16, policy="2q")
        part = make_block_cache(0, shared=pool, owner="eng")
        assert isinstance(part, CachePartition)
        assert part.scan_budget() == pool.scan_budget()


# -- pinned vertex state / metadata / visited --------------------------------


class TestPinnedMetadata:
    def test_defaults_and_bounds(self):
        meta = PinnedMetadata(8)
        assert meta.get(3) == UNSET
        assert meta.get(-1) == UNSET and meta.get(99) == UNSET
        meta.set(3, 7)
        assert meta.get(3) == 7
        assert meta.get_many([2, 3, 99]).tolist() == [UNSET, 7, UNSET]
        meta.set_many([0, 1], 2)
        assert meta.get_many([0, 1]).tolist() == [2, 2]
        meta.clear()
        assert meta.get(3) == UNSET

    def test_resident_bytes_and_negative_size(self):
        assert PinnedMetadata(1000).resident_bytes == 4000
        with pytest.raises(ValueError):
            PinnedMetadata(-1)


class TestPinnedVisited:
    def test_level_semantics_match_visited_contract(self):
        vis = PinnedVisited(10)
        assert not vis.is_visited(4)
        assert vis.level(4) == INFINITY
        vis.mark_many([4, 5], 2)
        assert vis.is_visited(4) and vis.level(5) == 2
        assert vis.unvisited(np.arange(10)).tolist() == [0, 1, 2, 3, 6, 7, 8, 9]
        assert vis.resident_bytes == 40
        vis.flush()  # no-op, kept for ExternalVisited parity


class TestPinnedVertexState:
    def _db(self, backend, semi=True, **kw):
        node = SimNode(0, NodeSpec())
        return make_graphdb(backend, node, cache_blocks=32, semi_external=semi, **kw)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_degree_and_vertices_served_from_pinned_arrays(self, backend):
        db = self._db(backend)
        edges = np.array([[1, 2], [1, 3], [5, 1], [9, 9]], dtype=np.int64)
        db.store_edges(edges)
        db.finalize_ingest()
        state = db.pin_vertex_state()
        assert state.vertices.tolist() == [1, 5, 9]
        assert state.degrees.tolist() == [2, 1, 1]
        assert db.local_vertices().tolist() == [1, 5, 9]
        assert db.degree_many([0, 1, 5, 9, 42]).tolist() == [0, 2, 1, 1, 0]
        assert db.pinned_resident_bytes() >= state.resident_bytes

    def test_degree_many_needs_no_device_after_pinning(self):
        db = self._db("grDB")
        db.store_edges(_random_edges(np.random.default_rng(0), 30, 300))
        db.finalize_ingest()
        db.flush()
        db.pin_vertex_state()
        before = db.storage.total_device_stats()["reads"]
        db.degree_many(np.arange(30))
        db.local_vertices()
        assert db.storage.total_device_stats()["reads"] == before

    def test_store_edges_invalidates_and_repins(self):
        db = self._db("HashMap")
        db.store_edges(np.array([[1, 2]], dtype=np.int64))
        assert db.degree_many([1]).tolist() == [1]
        db.store_edges(np.array([[1, 3], [7, 1]], dtype=np.int64))
        assert db.degree_many([1, 7]).tolist() == [2, 1]
        assert db.local_vertices().tolist() == [1, 7]

    def test_off_by_default_no_pinned_state(self):
        db = self._db("Array", semi=False)
        db.store_edges(np.array([[1, 2]], dtype=np.int64))
        assert db._pinned() is None
        assert db.degree_many([1]).tolist() == [1]


# -- StreamDB selective adjacency I/O ----------------------------------------


class TestStreamDBSelective:
    def _db(self, semi=True, compress=False, nflushes=8, seed=3):
        node = SimNode(0, NodeSpec())
        db = StreamGraphDB(
            node.disk("log"),
            compress=compress,
            clock=node.clock,
            cpu=node.spec.cpu,
            semi_external=semi,
        )
        rng = np.random.default_rng(seed)
        # Each flush covers a narrow source range so record extents are
        # selective (the log is "sorted-ish", as windowed ingest makes it).
        for i in range(nflushes):
            lo = i * 100
            edges = np.column_stack(
                [
                    rng.integers(lo, lo + 100, size=40),
                    rng.integers(0, nflushes * 100, size=40),
                ]
            ).astype(np.int64)
            db.store_edges(edges)
            db.flush()
        return node, db

    @pytest.mark.parametrize("compress", [False, True])
    def test_selective_matches_full_scan(self, compress):
        _, db = self._db(compress=compress)
        for v in (0, 55, 310, 799):
            want = sorted(db.get_adjacency(v).tolist())
            full = db._scan()
            ref = sorted(full[full[:, 0] == v][:, 1].tolist())
            assert want == ref
        assert db.selective_scans > 0
        assert db.records_skipped > 0

    def test_sparse_frontier_reads_fewer_device_bytes(self):
        node_s, sel = self._db(semi=True)
        node_f, full = self._db(semi=False)
        b0_s = node_s._disks["log"].stats.bytes_read
        b0_f = node_f._disks["log"].stats.bytes_read
        got_s = dict(sel.scan_adjacency(np.array([5, 710]), order="storage"))
        got_f = dict(full.scan_adjacency(np.array([5, 710]), order="storage"))
        assert {v: sorted(a.tolist()) for v, a in got_s.items()} == {
            v: sorted(a.tolist()) for v, a in got_f.items()
        }
        read_s = node_s._disks["log"].stats.bytes_read - b0_s
        read_f = node_f._disks["log"].stats.bytes_read - b0_f
        assert read_s < read_f

    def test_dense_frontier_falls_back_to_full_scan(self):
        _, db = self._db()
        cov = db.frontier_block_coverage(np.arange(800))
        assert cov == 1.0
        assert db._scan_selective(np.arange(800, dtype=np.int64)) is None
        assert db.selective_scans == 0

    def test_restore_disables_directory(self):
        node = SimNode(0, NodeSpec())
        dev, meta = node.disk("log"), node.disk("log_meta")
        db = StreamGraphDB(dev, meta_device=meta, clock=node.clock, semi_external=True)
        db.store_edges(np.array([[1, 2], [3, 4]], dtype=np.int64))
        db.flush()
        db2 = StreamGraphDB(dev, meta_device=meta, clock=node.clock, semi_external=True)
        assert db2.restored
        assert db2._records is None
        assert db2.frontier_block_coverage(np.array([1])) is None
        assert db2._scan_selective(np.array([1], dtype=np.int64)) is None
        assert sorted(db2.get_adjacency(1).tolist()) == [2]

    def test_directory_bytes_charged(self):
        _, db = self._db(nflushes=4)
        assert db._directory_bytes() == 4 * 5 * 8
        db.pin_vertex_state()
        assert db.pinned_resident_bytes() >= db._directory_bytes()

    def test_semi_off_never_selective(self):
        _, db = self._db(semi=False)
        assert db._scan_selective(np.array([5], dtype=np.int64)) is None
        assert db.frontier_block_coverage(np.array([5])) is None


# -- grDB block directory ----------------------------------------------------


class TestGrDBDirectory:
    # Tiny geometry so the 40-vertex store spans several level-0 blocks
    # (the default format would put them all in one, making every
    # coverage reading 1.0).
    FMT = GrDBFormat(
        capacities=(2, 4, 16, 64),
        block_sizes=(256, 256, 256, 1024),
        max_file_bytes=4096,
    )

    def _db(self, semi=True, cache_blocks=64):
        node = SimNode(0, NodeSpec())
        db = make_graphdb(
            "grDB",
            node,
            cache_blocks=cache_blocks,
            grdb_format=self.FMT,
            semi_external=semi,
        )
        db.store_edges(_random_edges(np.random.default_rng(7), 40, 400))
        db.finalize_ingest()
        db.flush()
        return db

    def test_directory_built_on_pin(self):
        db = self._db()
        db.pin_vertex_state()
        assert db._block_dir is not None and len(db._block_dir) > 0
        assert db.storage.cache.pinned_blocks > 0
        assert db.pinned_resident_bytes() >= db._block_dir.nbytes

    def test_coverage_sparse_vs_dense(self):
        db = self._db()
        db.pin_vertex_state()
        sparse = db.frontier_block_coverage(np.array([0]))
        dense = db.frontier_block_coverage(np.arange(40))
        assert sparse is not None and dense is not None
        assert 0.0 <= sparse < dense <= 1.0
        assert db.frontier_block_coverage(np.array([], dtype=np.int64)) == 0.0

    def test_tiny_cache_skips_best_effort_pin(self):
        db = self._db(cache_blocks=2)
        db.pin_vertex_state()
        # Directory array still resident and serving coverage; the cache
        # copy is skipped rather than squeezing out the working set.
        assert db._block_dir is not None
        assert db.storage.cache.pinned_blocks == 0
        assert db.frontier_block_coverage(np.array([0])) is not None

    def test_semi_off_reports_no_coverage(self):
        db = self._db(semi=False)
        assert db.frontier_block_coverage(np.array([0])) is None


# -- deployment equivalence and budget ---------------------------------------


def _workload(seed=17, nverts=160, nedges=1400):
    rng = np.random.default_rng(seed)
    return np.column_stack(
        [
            rng.integers(0, nverts, size=nedges),
            rng.integers(0, nverts, size=nedges),
        ]
    ).astype(np.int64)


_QUERIES = [(0, 150), (3, 77), (10, 11), (42, 139), (5, 5)]


def _answers(semi, backend, visited="memory", **cfg_kw):
    mssg = MSSG(
        MSSGConfig(
            num_backends=3,
            num_frontends=1,
            backend=backend,
            cache_blocks=8,
            semi_external=semi,
            **cfg_kw,
        )
    )
    try:
        mssg.ingest(_workload())
        return [
            (r.result, r.levels)
            for r in (mssg.query_bfs(s, d, visited=visited) for s, d in _QUERIES)
        ]
    finally:
        mssg.close()


class TestDeploymentEquivalence:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_all_backends_bit_identical(self, backend):
        assert _answers(True, backend) == _answers(False, backend)

    @pytest.mark.parametrize("backend", ["grDB", "StreamDB"])
    @pytest.mark.parametrize(
        "knobs",
        [
            {"batch_io": False},
            {"direction_opt": False},
            {"replication": 2},
            {"shared_scans": False},
            {"batch_io": False, "direction_opt": False, "replication": 2},
        ],
        ids=lambda k: "+".join(f"{n}={v}" for n, v in k.items()),
    )
    def test_knob_sweep_bit_identical(self, backend, knobs):
        assert _answers(True, backend, **knobs) == _answers(False, backend, **knobs)

    @pytest.mark.parametrize("backend", ["grDB", "StreamDB"])
    def test_external_visited_bit_identical(self, backend):
        assert _answers(True, backend, visited="external") == _answers(
            False, backend, visited="external"
        )

    @pytest.mark.parametrize("backend", OUT_OF_CORE_BACKENDS)
    def test_semi_em_reads_fewer_device_blocks(self, backend):
        def reads(semi):
            mssg = MSSG(
                MSSGConfig(num_backends=3, backend=backend, semi_external=semi)
            )
            try:
                mssg.ingest(_workload())
                for s, d in _QUERIES:
                    mssg.query_bfs(s, d, visited="external")
                return sum(
                    sum(dev.stats.reads for dev in node._disks.values())
                    for node in mssg.cluster.nodes
                )
            finally:
                mssg.close()

        assert reads(True) < reads(False)

    def test_query_many_bit_identical(self):
        def drain(semi):
            mssg = MSSG(
                MSSGConfig(num_backends=3, backend="StreamDB", semi_external=semi)
            )
            try:
                mssg.ingest(_workload())
                report = mssg.query_many(_QUERIES, visited="external")
                return [r.result for r in report.queries]
            finally:
                mssg.close()

        assert drain(True) == drain(False)


class TestBudget:
    def test_over_budget_raises_at_ingest(self):
        mssg = MSSG(
            MSSGConfig(
                num_backends=2,
                backend="HashMap",
                semi_external=True,
                semi_external_budget_bytes=64,
            )
        )
        try:
            with pytest.raises(ConfigError, match="semi_external_budget_bytes"):
                mssg.ingest(_workload())
        finally:
            mssg.close()

    def test_eager_pin_happens_at_ingest(self):
        mssg = MSSG(MSSGConfig(num_backends=2, backend="grDB", semi_external=True))
        try:
            mssg.ingest(_workload())
            for db in mssg.dbs:
                assert db._pinned_state is not None
                assert db.pinned_resident_bytes() > 0
        finally:
            mssg.close()

    def test_budget_must_be_positive_when_armed(self):
        with pytest.raises(ConfigError, match="semi_external_budget_bytes"):
            MSSGConfig(semi_external=True, semi_external_budget_bytes=0)
        MSSGConfig(semi_external=False, semi_external_budget_bytes=0)  # ignored off
