"""Tests for sequential BFS and both parallel out-of-core BFS algorithms."""

import numpy as np
import pytest

from repro.bfs import (
    BFSConfig,
    ExternalVisited,
    InMemoryVisited,
    NOT_FOUND,
    bfs_distance,
    bfs_levels,
    oocbfs_program,
    pipelined_bfs_program,
    sample_queries_by_distance,
)
from repro.graphdb import make_graphdb
from repro.graphgen import CSRGraph, dedupe_edges, preferential_attachment
from repro.simcluster import SimCluster


def partition_edges(edges: np.ndarray, nparts: int) -> list[np.ndarray]:
    """Vertex-granularity declustering: both directions, to the src owner."""
    both = np.vstack([edges, edges[:, ::-1]])
    return [both[both[:, 0] % nparts == q] for q in range(nparts)]


def run_parallel_bfs(
    edges,
    source,
    dest,
    nranks=3,
    backend="HashMap",
    algorithm=oocbfs_program,
    owner_known=True,
    visited_factory=None,
    **alg_kw,
):
    cluster = SimCluster(nranks=nranks)
    parts = partition_edges(np.asarray(edges, dtype=np.int64), nranks)
    dbs = []
    for q, node in enumerate(cluster.nodes):
        db = make_graphdb(backend, node)
        db.store_edges(parts[q])
        db.finalize_ingest()
        dbs.append(db)
    cfg = BFSConfig(source=source, dest=dest, owner_known=owner_known)

    def make_program(q):
        def program(ctx):
            visited = (
                visited_factory(ctx) if visited_factory else InMemoryVisited()
            )
            result = yield from algorithm(ctx, dbs[q], cfg, visited, **alg_kw)
            return result

        return program

    results = cluster.run([make_program(q) for q in range(nranks)])
    levels = {r.found_level for r in results}
    assert len(levels) == 1, f"ranks disagree on found level: {levels}"
    return results[0].found_level, results, cluster


class TestSequentialBFS:
    def test_path_graph(self):
        g = CSRGraph.from_edges(np.array([[0, 1], [1, 2], [2, 3]]))
        assert bfs_levels(g, 0).tolist() == [0, 1, 2, 3]
        assert bfs_distance(g, 0, 3) == 3
        assert bfs_distance(g, 3, 0) == 3

    def test_disconnected(self):
        g = CSRGraph.from_edges(np.array([[0, 1], [2, 3]]))
        assert bfs_distance(g, 0, 3) == -1

    def test_source_out_of_range(self):
        g = CSRGraph.from_edges(np.array([[0, 1]]))
        with pytest.raises(ValueError):
            bfs_levels(g, 5)

    def test_star(self):
        g = CSRGraph.from_edges(np.array([[0, i] for i in range(1, 6)]))
        levels = bfs_levels(g, 1)
        assert levels[0] == 1
        assert all(levels[i] == 2 for i in range(2, 6))

    def test_sample_queries_distances_correct(self):
        edges = preferential_attachment(300, 3, seed=2)
        g = CSRGraph.from_edges(edges)
        queries = sample_queries_by_distance(g, 12, seed=3)
        assert len(queries) == 12
        for s, d, dist in queries:
            assert bfs_distance(g, s, d) == dist
            assert dist >= 1


class TestParallelBFSCorrectness:
    GRAPH = dedupe_edges(preferential_attachment(120, 2, seed=5))

    def reference(self):
        return CSRGraph.from_edges(self.GRAPH, num_vertices=120)

    @pytest.mark.parametrize("owner_known", [True, False])
    @pytest.mark.parametrize("nranks", [1, 2, 4])
    def test_alg1_matches_sequential(self, nranks, owner_known):
        g = self.reference()
        rng = np.random.default_rng(9)
        for _ in range(6):
            s, d = int(rng.integers(0, 120)), int(rng.integers(0, 120))
            expected = bfs_distance(g, s, d)
            found, _, _ = run_parallel_bfs(
                self.GRAPH, s, d, nranks=nranks, owner_known=owner_known
            )
            if expected == -1:
                assert found == NOT_FOUND
            else:
                assert found == expected, f"query {s}->{d}"

    @pytest.mark.parametrize("owner_known", [True, False])
    @pytest.mark.parametrize("nranks", [1, 3])
    def test_alg2_matches_sequential(self, nranks, owner_known):
        g = self.reference()
        rng = np.random.default_rng(11)
        for _ in range(5):
            s, d = int(rng.integers(0, 120)), int(rng.integers(0, 120))
            expected = bfs_distance(g, s, d)
            found, _, _ = run_parallel_bfs(
                self.GRAPH,
                s,
                d,
                nranks=nranks,
                algorithm=pipelined_bfs_program,
                owner_known=owner_known,
                threshold=8,
                poll_batch=4,
            )
            assert found == (expected if expected != -1 else NOT_FOUND)

    def test_source_equals_dest(self):
        found, _, _ = run_parallel_bfs(self.GRAPH, 7, 7)
        assert found == 0

    def test_adjacent_pair_is_level_1(self):
        u, v = map(int, self.GRAPH[0])
        found, _, _ = run_parallel_bfs(self.GRAPH, u, v)
        assert found == 1

    def test_unreachable_returns_not_found(self):
        edges = np.array([[0, 1], [2, 3]])
        found, results, _ = run_parallel_bfs(edges, 0, 3, nranks=2)
        assert found == NOT_FOUND
        assert all(r.levels_expanded <= 3 for r in results)

    @pytest.mark.parametrize("backend", ["Array", "MySQL", "BerkeleyDB", "StreamDB", "grDB"])
    def test_all_backends_same_answer(self, backend):
        g = self.reference()
        s, d = 3, 77
        expected = bfs_distance(g, s, d)
        found, _, _ = run_parallel_bfs(self.GRAPH, s, d, nranks=2, backend=backend)
        assert found == (expected if expected != -1 else NOT_FOUND)

    def test_external_visited_same_answer(self):
        g = self.reference()
        s, d = 3, 77
        expected = bfs_distance(g, s, d)
        found, _, _ = run_parallel_bfs(
            self.GRAPH,
            s,
            d,
            nranks=2,
            visited_factory=lambda ctx: ExternalVisited(ctx.node.disk("visited")),
        )
        assert found == expected

    def test_edges_scanned_reported(self):
        _, results, _ = run_parallel_bfs(self.GRAPH, 0, 119)
        assert sum(r.edges_scanned for r in results) > 0
        assert all(r.seconds >= 0 for r in results)

    def test_deterministic_timing(self):
        _, r1, c1 = run_parallel_bfs(self.GRAPH, 2, 90)
        _, r2, c2 = run_parallel_bfs(self.GRAPH, 2, 90)
        assert [r.seconds for r in r1] == [r.seconds for r in r2]
        assert c1.makespan == c2.makespan


class TestPipelineBehavior:
    def test_pipelined_overlap_reduces_time_on_slow_network(self):
        """With expensive messages, Alg2's eager chunks should not be slower
        than Alg1's end-of-level exchange for fringe-heavy searches."""
        from repro.simcluster import NetworkProfile, NodeSpec

        edges = dedupe_edges(preferential_attachment(400, 4, seed=1))
        slow_net = NodeSpec(network=NetworkProfile(latency=5e-3, bandwidth=2e6))

        def run(algorithm, **kw):
            cluster = SimCluster(nranks=4, spec=slow_net)
            parts = partition_edges(edges, 4)
            dbs = []
            for q, node in enumerate(cluster.nodes):
                db = make_graphdb("HashMap", node)
                db.store_edges(parts[q])
                db.finalize_ingest()
                dbs.append(db)
            cfg = BFSConfig(source=0, dest=399, max_levels=8)

            def mk(q):
                def program(ctx):
                    res = yield from algorithm(ctx, dbs[q], cfg, InMemoryVisited(), **kw)
                    return res

                return program

            cluster.run([mk(q) for q in range(4)])
            return cluster.makespan

        t1 = run(oocbfs_program)
        t2 = run(pipelined_bfs_program, threshold=16, poll_batch=8)
        assert t2 <= t1 * 1.15  # overlap should roughly pay for itself
