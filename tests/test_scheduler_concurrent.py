"""Concurrent multi-query serving: equivalence, fairness, deadlines, faults.

The contract under test is the one ``QueryService.drain`` documents:
interleaving N queries level-by-level through one cluster run returns
answers bit-identical to running the same N queries back-to-back —
across backends, I/O knobs, replication, mid-drain device deaths, and
corrupt frames — while deadlines, admission control, and shared scans
only reshape the virtual timeline.
"""

import re
from pathlib import Path

import pytest

from repro import MSSG, MSSGConfig
from repro.bfs import bfs_distance, bfs_levels
from repro.graphdb import GrDBFormat
from repro.graphdb.registry import BACKENDS, IN_MEMORY_BACKENDS
from repro.graphgen import CSRGraph, pubmed_like
from repro.simcluster import DiskFault, FaultPlan

EDGES = pubmed_like(400, seed=5)
GRAPH = CSRGraph.from_edges(EDGES)
PAIRS = [(0, 350), (1, 200), (2, 77), (3, 300), (5, 150), (7, 340)]

SMALL_GRDB = GrDBFormat(
    capacities=(2, 4, 16, 256),
    block_sizes=(1024, 1024, 1024, 4096),
    max_file_bytes=1 << 20,
)


def _deploy(backend="grDB", **kw):
    cfg = dict(
        num_backends=3,
        num_frontends=1,
        backend=backend,
        cache_blocks=4,
        grdb_format=SMALL_GRDB,
    )
    cfg.update(kw)
    return MSSG(MSSGConfig(**cfg))


def _assert_matches_sequential(mssg, pairs=PAIRS, **drain_kw):
    """Drained answers must be bit-identical to back-to-back queries."""
    seq = [mssg.query_bfs(s, d) for s, d in pairs]
    rep = mssg.query_many(pairs, **drain_kw)
    assert [r.result for r in rep.queries] == [r.result for r in seq]
    assert [r.levels for r in rep.queries] == [r.levels for r in seq]
    assert [r.directions for r in rep.queries] == [r.directions for r in seq]
    assert not any(r.partial for r in rep.queries)
    assert not any(r.deadline_exceeded for r in rep.queries)
    return seq, rep


class TestConcurrentEquivalence:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_matches_sequential_all_backends(self, backend):
        with _deploy(backend) as mssg:
            mssg.ingest(EDGES)
            _assert_matches_sequential(mssg)

    # One knob flipped at a time relative to the base deployment, on the
    # two backends whose sweeps the shared-scan board can batch.
    @pytest.mark.parametrize("backend", ["grDB", "StreamDB"])
    @pytest.mark.parametrize(
        "knobs",
        [
            {"batch_io": True},
            {"direction_opt": False},
            {"replication": 2},
            {"batch_io": True, "direction_opt": False, "replication": 2},
        ],
        ids=["batch_io", "no_direction", "replicated", "all"],
    )
    def test_matches_sequential_knobs(self, backend, knobs):
        with _deploy(backend, **knobs) as mssg:
            mssg.ingest(EDGES)
            _assert_matches_sequential(mssg)

    def test_sharing_off_matches_sharing_on(self):
        with _deploy("StreamDB") as mssg:
            mssg.ingest(EDGES)
            on = mssg.query_many(PAIRS, shared_scans=True)
            off = mssg.query_many(PAIRS, shared_scans=False)
            assert [r.result for r in on.queries] == [r.result for r in off.queries]
            assert on.shared_passes > 0 and on.shared_served > 0
            assert off.shared_passes == 0 and off.shared_served == 0

    def test_single_query_drain_matches_solo(self):
        with _deploy("grDB") as mssg:
            mssg.ingest(EDGES)
            solo = mssg.query_bfs(*PAIRS[0])
            rep = mssg.query_many(PAIRS[:1])
            assert rep.queries[0].result == solo.result
            # A lone query can never share a sweep with anyone.
            assert rep.shared_served == 0

    def test_empty_drain(self):
        with _deploy("HashMap") as mssg:
            mssg.ingest(EDGES)
            rep = mssg.queries.drain()
            assert rep.queries == [] and rep.seconds == 0.0


class TestAdmissionControl:
    def test_inflight_cap_queues_later_queries(self):
        with _deploy("grDB") as mssg:
            mssg.ingest(EDGES)
            seq, rep = _assert_matches_sequential(mssg, max_inflight=1)
            assert rep.queries[0].queue_seconds == 0.0
            assert all(r.queue_seconds > 0 for r in rep.queries[1:])
            # Serial admission means no round ever has two subscribers.
            assert rep.shared_served == 0

    def test_wide_admission_has_no_queueing(self):
        with _deploy("grDB") as mssg:
            mssg.ingest(EDGES)
            rep = mssg.query_many(PAIRS, max_inflight=64)
            assert all(r.queue_seconds == 0.0 for r in rep.queries)

    def test_invalid_inflight_rejected(self):
        from repro.util import ConfigError

        with _deploy("HashMap") as mssg:
            mssg.ingest(EDGES)
            with pytest.raises(ConfigError):
                mssg.query_many(PAIRS, max_inflight=0)
        with pytest.raises(ConfigError):
            MSSGConfig(max_inflight=0)


class TestDeadlines:
    def test_slow_tenant_cut_off_fast_tenant_unharmed(self):
        # The slow tenant runs an exhaustive traversal (unreachable dest);
        # its microscopic deadline expires after the first scheduling
        # round, so it must come back partial at a level boundary while
        # the fast tenant's one-hop query completes exactly as if alone.
        source = 0
        ecc = int(max(bfs_levels(GRAPH, source)))
        assert ecc >= 3, "graph too shallow to observe a mid-search cutoff"
        fast_pair = PAIRS[2]
        want_fast = bfs_distance(GRAPH, *fast_pair)
        with _deploy("grDB") as mssg:
            mssg.ingest(EDGES)
            svc = mssg.queries
            svc.submit(source, -1, tenant="slow", deadline=1e-9)
            svc.submit(*fast_pair, tenant="fast")
            rep = svc.drain()
            slow, fast = rep.queries
            assert slow.tenant == "slow" and fast.tenant == "fast"
            assert slow.deadline_exceeded
            assert slow.partial
            assert slow.result is None
            assert slow.levels < ecc + 1  # cut off before the full traversal
            assert not fast.deadline_exceeded
            assert not fast.partial
            assert fast.result == want_fast

    def test_generous_deadline_changes_nothing(self):
        with _deploy("StreamDB") as mssg:
            mssg.ingest(EDGES)
            _assert_matches_sequential(mssg, deadline=1e9)

    def test_deadline_after_natural_completion_is_clean(self):
        # A query that finishes in its first rounds must not be flagged
        # just because the drain outlived its deadline.
        with _deploy("HashMap") as mssg:
            mssg.ingest(EDGES)
            rep = mssg.query_many(PAIRS, deadline=1e9)
            assert not any(r.deadline_exceeded for r in rep.queries)


class TestFaultsDuringDrain:
    def test_mid_drain_backend_kill_preserves_answers(self):
        with _deploy("grDB", replication=2) as healthy:
            healthy.ingest(EDGES)
            want = [healthy.query_bfs(s, d).result for s, d in PAIRS]
        with _deploy("grDB", replication=2) as mssg:
            mssg.ingest(EDGES)
            # Back-end 0's disks die a moment into the drain — mid-round,
            # with several queries in flight.
            mssg.set_fault_plan(
                FaultPlan([DiskFault(node=1, at_time=1e-4)])
            )
            rep = mssg.query_many(PAIRS)
            assert [r.result for r in rep.queries] == want
            assert not any(r.partial for r in rep.queries)
            assert sum(r.failovers for r in rep.queries) >= 1
            assert any(r.device_failures for r in rep.queries)

    def test_corrupt_frame_in_shared_round_read_repairs_once(self):
        with _deploy("StreamDB", replication=2, checksums=True) as healthy:
            healthy.ingest(EDGES)
            want = [healthy.query_bfs(s, d).result for s, d in PAIRS]
        with _deploy("StreamDB", replication=2, checksums=True) as mssg:
            mssg.ingest(EDGES)
            mssg.set_fault_plan(
                FaultPlan([DiskFault(node=1, kind="corrupt", at_time=0.0)])
            )
            rep = mssg.query_many(PAIRS)
            assert [r.result for r in rep.queries] == want
            assert not any(r.partial for r in rep.queries)
            assert any(0 in r.corrupt_backends for r in rep.queries)
            # The façade read-repairs the damaged back-end once, after the
            # drain — not once per affected query.
            assert rep.repairs >= 1
            assert mssg.scrub().corrupt_frames == 0
            again = mssg.query_many(PAIRS)
            assert [r.result for r in again.queries] == want
            assert not any(r.corrupt_backends for r in again.queries)
            assert again.repairs == 0


class TestSharedScanAccounting:
    def test_streamdb_shares_log_replays(self):
        with _deploy("StreamDB") as mssg:
            mssg.ingest(EDGES)
            rep = mssg.query_many(PAIRS)
            # Each rank pays at most one replay per round; everyone else
            # in the round reads the published pass.
            assert rep.shared_passes >= 1
            assert rep.shared_served >= rep.shared_passes

    def test_pure_top_down_in_memory_has_nothing_to_share(self):
        # In-memory backends replay no log; with the hybrid off they issue
        # no bottom-up sweeps either, so the board never publishes a pass.
        # (With the hybrid *on* they do share bottom-up sweeps — that path
        # is covered by the equivalence tests above.)
        for backend in IN_MEMORY_BACKENDS:
            with _deploy(backend, direction_opt=False) as mssg:
                mssg.ingest(EDGES)
                rep = mssg.query_many(PAIRS)
                assert rep.shared_passes == 0 and rep.shared_served == 0


def test_no_backend_constructs_private_lru_directly():
    """Every block cache must come from ``make_block_cache`` so the
    process-wide pool can interpose; direct ``LRUBlockCache(...)``
    construction outside its home module bypasses the factory."""
    src = Path(__file__).resolve().parents[1] / "src" / "repro"
    offenders = [
        str(path.relative_to(src))
        for path in sorted(src.rglob("*.py"))
        if path.name != "blockcache.py"
        and re.search(r"\bLRUBlockCache\(", path.read_text())
    ]
    assert offenders == []
