"""Streaming ingest suite: delta logs, snapshots, compaction, crash matrix.

Pins down the DESIGN §12 contract:

* a streamed prefix answers queries bit-identically to a from-scratch
  batch ingest of the same prefix, on every backend and knob combination;
* in-drain ingest (``query_many(stream_batches=...)``) gives every query
  the snapshot published at its admission, whatever lands later;
* a crash at ANY injected point — torn delta append, mid-compaction,
  torn publish — recovers all-or-nothing to the last published snapshot,
  with zero residual corrupt frames and no duplicated adjacency;
* fault plans arm at any life-cycle point (satellite: the old
  "install after ingest" guidance is a clock note, not a restriction).
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import MSSG, MSSGConfig
from repro.services.ingestion import IngestReport
from repro.simcluster import DiskFault, FaultPlan
from repro.storage.deltalog import RECORD_START, DeltaLog
from repro.util.errors import ConfigError

ALL_BACKENDS = ["Array", "HashMap", "MySQL", "BerkeleyDB", "StreamDB", "grDB"]
TOKEN_BACKENDS = ["StreamDB", "grDB"]  # durable commit token -> exact intents


def small_graph(seed: int, n: int = 40, m: int = 220) -> np.ndarray:
    rng = np.random.default_rng(seed)
    edges = rng.integers(0, n, size=(m, 2))
    return edges[edges[:, 0] != edges[:, 1]]


def deploy(backend, *, streaming=True, replication=1, storage_dir=None,
           plan=None, num_backends=2, **kw):
    return MSSG(
        MSSGConfig(
            num_backends=num_backends,
            num_frontends=1,
            backend=backend,
            streaming=streaming,
            replication=replication,
            storage_dir=storage_dir,
            fault_plan=plan,
            **kw,
        )
    )


def distances(mssg, pairs):
    return [mssg.query_bfs(s, d).result for s, d in pairs]


# ---------------------------------------------------------------------------
# Streamed prefix == batch ingest of the prefix
# ---------------------------------------------------------------------------


@settings(max_examples=12, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    seed=st.integers(0, 10_000),
    cuts=st.lists(st.integers(10, 200), min_size=1, max_size=3),
    backend=st.sampled_from(ALL_BACKENDS),
    replication=st.sampled_from([1, 2]),
    compress=st.booleans(),
    semi=st.booleans(),
)
def test_streamed_prefix_equals_batch_ingest(seed, cuts, backend, replication,
                                             compress, semi):
    """After each streamed batch, queries == a from-scratch batch ingest."""
    edges = small_graph(seed)
    bounds = sorted(set(min(c, len(edges)) for c in cuts) | {len(edges)})
    pairs = [(0, 39), (1, 38), (3, 36)]
    kw = dict(compress_adjacency=compress, semi_external=semi,
              replication=replication)
    m = deploy(backend, **kw)
    try:
        prev = 0
        for bound in bounds:
            m.ingest_stream(edges[prev:bound])
            prev = bound
            ref = deploy(backend, streaming=False, **kw)
            try:
                ref.ingest(edges[:bound])
                assert distances(m, pairs) == distances(ref, pairs)
            finally:
                ref.close()
        assert m.last_ingest.batches == len(bounds)
    finally:
        m.close()


@pytest.mark.parametrize("backend", ALL_BACKENDS)
def test_compaction_preserves_answers(backend):
    """Queries before and after compact() read identical adjacency."""
    edges = small_graph(7)
    pairs = [(0, 39), (2, 37), (5, 34)]
    m = deploy(backend)
    try:
        m.ingest_stream(edges[:100])
        m.ingest_stream(edges[100:])
        before = distances(m, pairs)
        report = m.compact()
        assert report.batches_folded > 0
        assert distances(m, pairs) == before
        # Idempotent: nothing left to fold.
        assert m.compact().batches_folded == 0
    finally:
        m.close()


def test_ingest_stream_requires_streaming_mode():
    m = deploy("HashMap", streaming=False)
    try:
        with pytest.raises(ConfigError):
            m.ingest_stream(small_graph(0))
        with pytest.raises(ConfigError):
            m.compact()
        with pytest.raises(ConfigError):
            m.query_many([(0, 1)], stream_batches=[small_graph(0)])
    finally:
        m.close()


# ---------------------------------------------------------------------------
# In-drain ingest: snapshot-consistent admission
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("backend", ALL_BACKENDS)
def test_in_drain_snapshot_consistency(backend):
    """Each drained query answers at its admission snapshot exactly."""
    edges = small_graph(11)
    base, b1, b2 = edges[:120], edges[120:170], edges[170:]
    pairs = [(0, 39), (1, 38), (2, 37), (3, 36), (5, 34), (7, 32)]
    m = deploy(backend)
    try:
        m.ingest_stream(base)
        rep = m.query_many(pairs, stream_batches=[b1, b2], stream_every=2,
                           max_inflight=2)
        assert rep.stream_batches == 2
        assert m.last_ingest.batches == 3
        snaps = [q.snapshot_seq for q in rep.queries]
        assert all(s is not None for s in snaps)
        assert snaps == sorted(snaps)  # FIFO admission -> monotone snapshots
        for (s, d), q in zip(pairs, rep.queries):
            ref = deploy(backend)
            try:
                ref.ingest_stream(base)
                for batch in [b1, b2][: q.snapshot_seq - 1]:
                    ref.ingest_stream(batch)
                assert ref.query_bfs(s, d).result == q.result, (s, d)
            finally:
                ref.close()
    finally:
        m.close()


def test_snapshot_seq_none_outside_streaming():
    m = deploy("HashMap", streaming=False)
    try:
        m.ingest(small_graph(3))
        rep = m.query_many([(0, 39), (1, 38)])
        assert all(q.snapshot_seq is None for q in rep.queries)
        assert rep.stream_batches == 0
    finally:
        m.close()


# ---------------------------------------------------------------------------
# Crash matrix: kill points on delta append and compaction
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("backend", TOKEN_BACKENDS)
@pytest.mark.parametrize("ops", [0, 1, 2, 3, 5])
def test_crash_torn_delta_append(tmp_path, backend, ops):
    """A crash mid-append recovers to the last published snapshot."""
    d = str(tmp_path)
    edges = small_graph(17)
    base, nxt = edges[:140], edges[140:]
    pairs = [(0, 39), (1, 38), (4, 35)]
    m = deploy(backend, replication=2, storage_dir=d, num_backends=3)
    m.ingest_stream(base)
    want = {1: distances(m, pairs)}
    m.set_fault_plan(
        FaultPlan([DiskFault(node=3, device="deltalog", kind="crash",
                             after_ops=ops)])
    )
    try:
        m.ingest_stream(nxt)
    except Exception:
        pass
    m.close()

    full = deploy(backend, replication=2, num_backends=3)
    full.ingest_stream(base)
    full.ingest_stream(nxt)
    want[2] = distances(full, pairs)
    full.close()

    m2 = deploy(backend, replication=2, storage_dir=d, num_backends=3)
    try:
        pub = m2.streaming.published
        assert pub in (1, 2)
        got = [m2.query_bfs(s, dd) for s, dd in pairs]
        assert [g.result for g in got] == want[pub]
        assert not any(g.partial for g in got)
        # Zero residual corrupt frames anywhere after recovery.
        assert m2.scrub().corrupt_frames == 0
    finally:
        m2.close()


@pytest.mark.parametrize("backend", TOKEN_BACKENDS)
@pytest.mark.parametrize("ops", [0, 1, 2, 4, 8, 16])
def test_crash_mid_compaction(tmp_path, backend, ops):
    """A crash anywhere in compact() keeps the deltas or adopts the fold."""
    d = str(tmp_path)
    devname = "streamdb" if backend == "StreamDB" else "grdb"
    edges = small_graph(19)
    pairs = [(0, 39), (1, 38), (4, 35)]
    m = deploy(backend, replication=2, storage_dir=d, num_backends=3)
    m.ingest_stream(edges[:140])
    m.ingest_stream(edges[140:])
    want = distances(m, pairs)
    # Total degree over a fixed vertex set: duplicated adjacency (a fold
    # applied twice) would inflate it even where BFS levels cannot see.
    want_deg = m.query("degree", vertices=list(range(40))).result
    m.set_fault_plan(
        FaultPlan([DiskFault(node=3, device=devname, kind="crash",
                             after_ops=ops)])
    )
    try:
        m.compact()
    except Exception:
        pass
    m.close()

    m2 = deploy(backend, replication=2, storage_dir=d, num_backends=3)
    try:
        assert m2.streaming.published == 2
        assert distances(m2, pairs) == want
        assert m2.query("degree", vertices=list(range(40))).result == want_deg
        assert m2.scrub().corrupt_frames == 0
    finally:
        m2.close()


@pytest.mark.parametrize("backend", TOKEN_BACKENDS)
def test_crash_torn_publish_header(tmp_path, backend):
    """A crash on the header write of finish_compaction stays consistent."""
    d = str(tmp_path)
    edges = small_graph(23)
    pairs = [(0, 39), (2, 37)]
    m = deploy(backend, replication=2, storage_dir=d, num_backends=3)
    m.ingest_stream(edges[:140])
    m.ingest_stream(edges[140:])
    want = distances(m, pairs)
    # Fire on the delta log device itself mid-compaction: the kill lands
    # on begin_compaction / finish_compaction header writes.
    for ops in [0, 1, 2]:
        m.set_fault_plan(
            FaultPlan([DiskFault(node=3, device="deltalog", kind="crash",
                                 after_ops=ops)])
        )
        try:
            m.compact()
        except Exception:
            pass
        break
    m.close()
    m2 = deploy(backend, replication=2, storage_dir=d, num_backends=3)
    try:
        assert m2.streaming.published == 2
        assert distances(m2, pairs) == want
        assert m2.scrub().corrupt_frames == 0
    finally:
        m2.close()


def test_recovery_replays_pending_batches(tmp_path):
    """Close + reopen restores the published snapshot from the delta logs."""
    d = str(tmp_path)
    edges = small_graph(29)
    pairs = [(0, 39), (1, 38)]
    m = deploy("grDB", storage_dir=d)
    m.ingest_stream(edges[:100])
    m.ingest_stream(edges[100:])
    want = distances(m, pairs)
    m.close()
    m2 = deploy("grDB", storage_dir=d)
    try:
        assert m2.streaming.published == 2
        assert distances(m2, pairs) == want
    finally:
        m2.close()


def test_deltalog_truncates_torn_tail(tmp_path):
    """Unit-level: garbage after the last commit is truncated at recovery."""
    from repro.simcluster import NodeSpec, SimNode

    node = SimNode(0, NodeSpec(), storage_dir=str(tmp_path))
    try:
        dev = node.disk("deltalog")
        log = DeltaLog(dev)
        log.append(1, np.array([[1, 2], [3, 4]], dtype=np.int64))
        tail = dev.size()
        dev.write(tail, b"\x99" * 37)  # torn next append
        log2 = DeltaLog(dev)
        assert log2.committed == 1
        assert [seq for seq, _ in log2.pending] == [1]
        assert dev.size() == tail  # debris truncated
        assert tail >= RECORD_START
    finally:
        node.close()


# ---------------------------------------------------------------------------
# Satellite: fault plans arm at any life-cycle point
# ---------------------------------------------------------------------------


def test_fault_plan_armed_before_streaming_ingest():
    """A plan installed at deployment fires during streamed batches."""
    plan = FaultPlan([DiskFault(node=2, device="deltalog", kind="fail",
                                after_ops=0)])
    m = deploy("HashMap", replication=2, plan=plan, num_backends=2)
    try:
        edges = small_graph(31)
        m.ingest_stream(edges[:100])
        report = m.ingest_stream(edges[100:])
        assert 1 in report.failed_backends
        assert 1 in m.queries.known_dead
        # Replica holders still answer exactly.
        ref = deploy("HashMap", replication=2, num_backends=2)
        try:
            ref.ingest_stream(edges[:100])
            ref.ingest_stream(edges[100:])
            pairs = [(0, 39), (1, 38)]
            got = [m.query_bfs(s, d) for s, d in pairs]
            assert [g.result for g in got] == distances(ref, pairs)
            assert not any(g.partial for g in got)
        finally:
            ref.close()
    finally:
        m.close()


def test_fault_plan_armed_between_batches():
    """set_fault_plan mid-stream hits only subsequent batches."""
    m = deploy("HashMap", replication=2)
    try:
        edges = small_graph(37)
        first = m.ingest_stream(edges[:100])
        assert first.failed_backends == ()
        m.set_fault_plan(
            FaultPlan([DiskFault(node=2, device="deltalog", kind="fail",
                                 after_ops=0)])
        )
        report = m.ingest_stream(edges[100:])
        assert 1 in report.failed_backends
    finally:
        m.close()


def test_invalid_fault_triggers_raise_config_error():
    with pytest.raises(ConfigError):
        DiskFault(node=0, kind="explode", at_time=0.0)
    with pytest.raises(ConfigError):
        DiskFault(node=0)  # no trigger at all
    with pytest.raises(ConfigError):
        DiskFault(node=0, at_time=-1.0)
    m = deploy("HashMap", streaming=False)
    try:
        with pytest.raises(ConfigError):
            m.set_fault_plan(FaultPlan([DiskFault(node=99, at_time=0.0)]))
    finally:
        m.close()


# ---------------------------------------------------------------------------
# Satellite: IngestReport accumulation
# ---------------------------------------------------------------------------


def test_ingest_report_absorb_sums():
    a = IngestReport(seconds=1.0, edges_ingested=10, entries_stored=20,
                     windows=2, per_backend_entries=[12, 8])
    b = IngestReport(seconds=0.5, edges_ingested=5, entries_stored=10,
                     windows=1, per_backend_entries=[4, 6],
                     lost_entries=3, degraded=True, failed_backends=(1,))
    a.absorb(b)
    assert a.seconds == 1.5
    assert a.edges_ingested == 15
    assert a.entries_stored == 30
    assert a.windows == 3
    assert a.per_backend_entries == [16, 14]
    assert a.lost_entries == 3
    assert a.degraded
    assert a.failed_backends == (1,)
    assert a.batches == 2


def test_last_ingest_accumulates_across_batches():
    m = deploy("Array")
    try:
        edges = small_graph(41)
        m.ingest_stream(edges[:80])
        m.ingest_stream(edges[80:])
        rep = m.last_ingest
        assert rep.batches == 2
        assert rep.edges_ingested == len(edges)
        assert sum(rep.per_backend_entries) == rep.entries_stored
        assert rep.entries_stored == 2 * len(edges)  # both directions
    finally:
        m.close()


# ---------------------------------------------------------------------------
# Satellite: StreamDB record directory rebuild after restore
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("compress", [False, True])
def test_streamdb_records_rebuild_on_first_scan(tmp_path, compress):
    d = str(tmp_path)
    edges = small_graph(43)
    m = deploy("StreamDB", streaming=False, storage_dir=d,
               compress_adjacency=compress)
    m.ingest(edges)
    m.close()
    m2 = deploy("StreamDB", streaming=False, storage_dir=d,
                compress_adjacency=compress)
    try:
        db = m2.dbs[0]
        assert db._records is None and db._rebuild_records
        want = {int(v): sorted(db.get_adjacency(int(v)).tolist())
                for v in db.local_vertices()}
        # One full storage-order pass rebuilds the directory...
        got = {v: sorted(adj.tolist()) for v, adj in db.scan_adjacency(None)}
        assert got == want
        assert db._records is not None and not db._rebuild_records
        # ...and the rebuilt rows serve selective scans correctly.
        some = sorted(want)[:5]
        sel = {v: sorted(adj.tolist())
               for v, adj in db.scan_adjacency(np.array(some))}
        assert sel == {v: want[v] for v in some if want[v]}
    finally:
        m2.close()
