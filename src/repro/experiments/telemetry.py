"""Cluster telemetry: per-node utilization after a run.

The paper argues MSSG "scales well" from end-to-end times; this module
exposes the underlying per-node accounting of the simulation — disk busy
time, bytes moved, seeks, messages — so scaling claims can be inspected
rather than inferred.  Used by examples and by load-balance assertions in
tests.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..framework import MSSG

__all__ = [
    "FaultSummary",
    "NodeUtilization",
    "cluster_utilization",
    "fault_summary",
    "format_utilization",
    "load_imbalance",
]


@dataclass(frozen=True)
class NodeUtilization:
    node: int
    role: str  # "front-end" | "back-end"
    #: Total virtual seconds this node has been live across all runs
    #: (ingestion + every query) — the epoch the disk counters accrue in.
    clock_seconds: float
    disk_busy_seconds: float
    disk_reads: int
    disk_writes: int
    bytes_read: int
    bytes_written: int
    seeks: int
    messages_sent: int
    bytes_sent: int
    #: Injected faults that fired on this node's devices (fail or slow).
    faults_fired: int = 0
    #: Devices of this node currently in the hard-failed state.
    failed_devices: int = 0
    #: Bytes damaged in place by injected bit-rot (``corrupt``) faults.
    corrupted_bytes: int = 0
    #: Writes torn short by injected ``crash`` faults.
    torn_writes: int = 0
    #: Corrupt frames healed on this node by read-repair or scrub.
    repaired_frames: int = 0

    @property
    def disk_utilization(self) -> float:
        return self.disk_busy_seconds / self.clock_seconds if self.clock_seconds else 0.0


def cluster_utilization(mssg: MSSG) -> list[NodeUtilization]:
    """Snapshot per-node utilization counters of an MSSG deployment."""
    out = []
    F = mssg.config.num_frontends
    contexts = {c.rank: c for c in mssg.cluster.last_contexts}
    for node in mssg.cluster.nodes:
        busy = reads = writes = br = bw = seeks = faults = failed = 0
        corrupted = torn = 0
        for dev in node._disks.values():
            busy += dev.stats.busy_seconds
            reads += dev.stats.reads
            writes += dev.stats.writes
            br += dev.stats.bytes_read
            bw += dev.stats.bytes_written
            seeks += dev.stats.seeks
            faults += dev.stats.failures
            failed += dev.failed
            corrupted += dev.stats.corrupted_bytes
            torn += dev.stats.torn_writes
        ctx = contexts.get(node.index)
        live_msgs = ctx.comm.sent_messages if ctx else 0
        live_bytes = ctx.comm.sent_bytes if ctx else 0
        out.append(
            NodeUtilization(
                node=node.index,
                role="front-end" if node.index < F else "back-end",
                clock_seconds=node.total_run_seconds + node.clock.now,
                disk_busy_seconds=busy,
                disk_reads=reads,
                disk_writes=writes,
                bytes_read=br,
                bytes_written=bw,
                seeks=seeks,
                messages_sent=node.total_messages_sent + live_msgs,
                bytes_sent=node.total_bytes_sent + live_bytes,
                faults_fired=faults,
                failed_devices=failed,
                corrupted_bytes=corrupted,
                torn_writes=torn,
                repaired_frames=node.repaired_frames,
            )
        )
    return out


@dataclass(frozen=True)
class FaultSummary:
    """Replication-health snapshot of a deployment after faults."""

    #: Back-end indices whose devices are in the hard-failed state.
    dead_backends: tuple[int, ...]
    #: Injected faults that fired anywhere in the cluster (fail or slow).
    faults_fired: int
    #: Copies configured at deployment time.
    configured_replication: int
    #: Copies of the worst-covered partition under the current chain map
    #: (< configured after a death, == configured again after a rebalance).
    effective_replication: int
    #: The last ingestion ran degraded (a back-end died mid-stream).
    degraded_ingest: bool
    #: Entries the last ingestion could not store on any surviving holder.
    lost_entries: int
    #: Bytes damaged in place by injected ``corrupt`` faults, cluster-wide.
    corrupted_bytes: int = 0
    #: Writes torn short by injected ``crash`` faults, cluster-wide.
    torn_writes: int = 0
    #: Corrupt frames healed by read-repair/scrub, cluster-wide.
    repaired_frames: int = 0


def fault_summary(mssg: MSSG) -> FaultSummary:
    """Aggregate fault/replication health for one MSSG deployment."""
    devs = [dev for node in mssg.cluster.nodes for dev in node._disks.values()]
    faults = sum(dev.stats.failures for dev in devs)
    last = mssg.last_ingest
    return FaultSummary(
        dead_backends=tuple(mssg.dead_backends()),
        faults_fired=faults,
        configured_replication=mssg.config.replication,
        effective_replication=getattr(
            mssg.declusterer, "effective_replication", mssg.config.replication
        ),
        degraded_ingest=bool(last is not None and last.degraded),
        lost_entries=last.lost_entries if last is not None else 0,
        corrupted_bytes=sum(dev.stats.corrupted_bytes for dev in devs),
        torn_writes=sum(dev.stats.torn_writes for dev in devs),
        repaired_frames=sum(node.repaired_frames for node in mssg.cluster.nodes),
    )


def load_imbalance(rows: list[NodeUtilization], role: str = "back-end") -> float:
    """Max/mean ratio of stored bytes across nodes of one role (1.0 = flat)."""
    values = [r.bytes_written for r in rows if r.role == role]
    if not values or sum(values) == 0:
        return 1.0
    mean = sum(values) / len(values)
    return max(values) / mean if mean else 1.0


def format_utilization(rows: list[NodeUtilization]) -> str:
    header = (
        f"{'node':>4} {'role':<10} {'clock[s]':>10} {'disk busy':>10} "
        f"{'reads':>8} {'writes':>8} {'seeks':>7} {'MB rd':>7} {'MB wr':>7} "
        f"{'msgs':>7} {'MB sent':>8} {'faults':>7} {'corrupt':>8} {'repair':>7}"
    )
    lines = [header, "-" * len(header)]
    for r in rows:
        fault_col = f"{r.faults_fired}" + ("!" if r.failed_devices else "")
        lines.append(
            f"{r.node:>4} {r.role:<10} {r.clock_seconds:>10.4f} "
            f"{r.disk_busy_seconds:>10.4f} {r.disk_reads:>8} {r.disk_writes:>8} "
            f"{r.seeks:>7} {r.bytes_read / 1e6:>7.2f} {r.bytes_written / 1e6:>7.2f} "
            f"{r.messages_sent:>7} {r.bytes_sent / 1e6:>8.2f} {fault_col:>7} "
            f"{r.corrupted_bytes:>8} {r.repaired_frames:>7}"
        )
    return "\n".join(lines)
