"""Plain-text rendering of experiment results (table/series printers)."""

from __future__ import annotations

from typing import Iterable, Mapping

__all__ = ["format_series_table", "format_rows", "print_banner"]


def print_banner(title: str) -> str:
    bar = "=" * max(len(title), 8)
    return f"\n{bar}\n{title}\n{bar}"


def format_series_table(
    title: str,
    row_label: str,
    series: Mapping[str, Mapping[int, float]],
    unit: str = "s",
    fmt: str = "{:>12.4f}",
) -> str:
    """Render ``{series name: {x: y}}`` as the rows/columns a figure plots.

    Rows are the union of x values (e.g. path lengths or node counts);
    columns are the series (e.g. the five GraphDB backends).
    """
    names = list(series)
    xs = sorted({x for s in series.values() for x in s})
    lines = [print_banner(f"{title}  [{unit}]")]
    header = f"{row_label:<14}" + "".join(f"{n:>13}" for n in names)
    lines.append(header)
    lines.append("-" * len(header))
    for x in xs:
        cells = []
        for n in names:
            v = series[n].get(x)
            cells.append(fmt.format(v) if v is not None else " " * 11 + "-")
        lines.append(f"{x:<14}" + "".join(f"{c:>13}" for c in cells))
    return "\n".join(lines)


def format_rows(title: str, header: str, rows: Iterable[str]) -> str:
    lines = [print_banner(title), header, "-" * len(header)]
    lines.extend(rows)
    return "\n".join(lines)
