"""Experiment harness: builds MSSG deployments and measures ch. 5 metrics.

Each figure of the paper's evaluation chapter is a sweep over (workload,
backend, node counts, knobs) measuring either ingestion time or BFS search
time bucketed by source→destination path length.  This module provides the
two primitive experiments and their result containers; ``figures.py`` maps
them onto the paper's exact sweeps.

Methodology mirrors ch. 5:

* queries are random (s, d) pairs stratified by true path length;
* a few warm-up queries run first, so measurements see the warm block
  caches a long random-query stream would have (the paper averages 100
  random queries per configuration);
* the visited structure is fixed (in-memory) unless a figure ablates it;
* reported times are virtual seconds from the simulated cluster.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..framework import MSSG, MSSGConfig
from ..graphdb.grdb import GrDBFormat
from ..graphgen import CSRGraph
from ..bfs import sample_queries_by_distance
from ..simcluster import DiskProfile, NodeSpec
from ..util.errors import SimulationError
from .workloads import Workload, load_edges

__all__ = [
    "scaled_grdb_format",
    "Deployment",
    "IngestResult",
    "SearchResult",
    "build_and_ingest",
    "run_ingest_experiment",
    "run_search_experiment",
    "default_cache_blocks",
]

#: Per-node cache budget for out-of-core backends, in bytes.  Scaled from
#: the paper's setup just as the graphs are: big enough that a 16-node
#: deployment runs mostly warm, small enough that a 4-node deployment of
#: the large graph thrashes (the Fig. 5.6 StreamDB crossover regime).
DEFAULT_CACHE_BYTES = 64 << 10

#: The harness node models the paper's 8 GB machines *scaled to the scaled
#: graphs*: a per-node OS page cache that holds a 16-way partition of the
#: large graph comfortably but thrashes on a 4-way partition (the regime
#: behind Fig. 5.6's StreamDB crossover and Fig. 5.8's grDB drop-off), and
#: a physical seek cost shrunk in proportion to the ~3 orders of magnitude
#: of graph downscaling so disk-vs-CPU balance carries over.
EXPERIMENT_NODE_SPEC = NodeSpec(
    disk=DiskProfile(seek_seconds=2e-4, os_cache_bytes=1 << 20)
)


def scaled_grdb_format() -> GrDBFormat:
    """The paper's 6-level geometry with blocks/files scaled to mini graphs.

    Capacities stay (2, 4, 16, 256, 4K, 16K) as in §4.1.6; block sizes
    shrink 8x (512 B base instead of 4 KB) and the max file size shrinks to
    1 MB so multi-file layouts still occur at benchmark scale.
    """
    return GrDBFormat(
        capacities=(2, 4, 16, 256, 4096, 16384),
        block_sizes=(512, 512, 512, 4096, 32768, 262144),
        max_file_bytes=1 << 20,
    )


def default_cache_blocks(backend: str, cache_bytes: int = DEFAULT_CACHE_BYTES) -> int:
    """Translate a per-node cache byte budget into backend cache units."""
    if backend == "grDB":
        return max(1, cache_bytes // 512)  # scaled grDB block
    if backend == "BerkeleyDB":
        return max(1, cache_bytes // 4096)  # B-tree page
    return 0  # in-memory / StreamDB / MySQL(own index cache) take no budget


@dataclass(frozen=True)
class Deployment:
    """One point in a figure's sweep."""

    backend: str
    num_backends: int
    num_frontends: int = 1
    declustering: str = "vertex-rr"
    cache_bytes: int = DEFAULT_CACHE_BYTES
    cache_enabled: bool = True
    window_size: int = 2048
    growth_policy: str = "link"
    #: Batched/coalescing fringe expansion.  Defaults *off* here — the
    #: chapter-5 figures reproduce the paper's prototype, which expanded
    #: the fringe one adjacency request at a time; the batch-I/O ablation
    #: (``bench_ablation_batchio``) flips this on explicitly.
    batch_io: bool = False
    #: Direction-optimizing BFS.  Defaults *off* here for the same reason —
    #: the paper's prototype searched pure top-down; the hybrid ablation
    #: (``bench_ablation_direction``) flips this on explicitly.
    direction_opt: bool = False
    #: CRC32 block integrity.  Defaults *off* here — the paper's prototype
    #: stored raw frames, and checksum framing shifts every device's
    #: offsets/time, so the chapter-5 figures stay bit-identical; the
    #: integrity ablation (``bench_ablation_checksums``) flips this on.
    checksums: bool = False
    #: Block-cache organization.  Pinned to the historical private
    #: per-store LRUs here — the paper's prototype had no process-wide
    #: pool, and the 2q promotion/eviction order shifts cache hits and
    #: therefore every device's timeline.  The concurrent-serving
    #: benchmark (``bench_concurrent_queries``) opts into ``"2q"``
    #: explicitly.
    cache_policy: str = "lru"
    #: Delta+varint compressed adjacency.  Defaults *off* here — the
    #: paper's prototype stored raw 8-byte slot words and 16-byte log
    #: entries, and compression changes every device's byte counts and
    #: timings, so the chapter-5 figures stay bit-identical; the
    #: compression ablation (``bench_ablation_compression``) flips this on
    #: explicitly.
    compress_adjacency: bool = False
    #: Semi-external-memory mode.  Defaults *off* here — the paper's
    #: prototype kept no resident vertex state, and pinning changes which
    #: adjacency blocks each device reads, so the chapter-5 figures stay
    #: bit-identical; the semi-EM ablation (``bench_ablation_semiem``)
    #: flips this on explicitly.
    semi_external: bool = False
    #: Streaming ingest.  Defaults *off* here — the paper's prototype
    #: loaded each graph in one batch, and delta-log appends would add
    #: device operations (and a deltalog device) every figure's timeline
    #: would absorb, so the chapter-5 figures stay bit-identical; the
    #: streaming benchmark (``bench_streaming_ingest``) opts in explicitly.
    streaming: bool = False


@dataclass
class IngestResult:
    workload: str
    deployment: Deployment
    seconds: float
    edges: int

    @property
    def edges_per_second(self) -> float:
        return self.edges / self.seconds if self.seconds else float("inf")


@dataclass
class SearchResult:
    workload: str
    deployment: Deployment
    #: path length -> mean query seconds
    seconds_by_distance: dict[int, float] = field(default_factory=dict)
    #: path length -> mean aggregate edges/second during the query
    eps_by_distance: dict[int, float] = field(default_factory=dict)
    num_queries: int = 0
    total_seconds: float = 0.0
    total_edges_scanned: int = 0

    @property
    def mean_seconds(self) -> float:
        return self.total_seconds / self.num_queries if self.num_queries else 0.0

    @property
    def aggregate_eps(self) -> float:
        return self.total_edges_scanned / self.total_seconds if self.total_seconds else 0.0


def build_and_ingest(
    workload: Workload, deployment: Deployment, scale: float = 1.0
) -> tuple[MSSG, np.ndarray, float]:
    """Deploy MSSG per ``deployment`` and ingest the workload.

    Returns ``(mssg, edges, ingest_seconds)``; callers own closing.
    """
    edges = load_edges(workload, scale)
    cache_blocks = (
        default_cache_blocks(deployment.backend, deployment.cache_bytes)
        if deployment.cache_enabled
        else 0
    )
    mssg = MSSG(
        MSSGConfig(
            num_backends=deployment.num_backends,
            num_frontends=deployment.num_frontends,
            backend=deployment.backend,
            declustering=deployment.declustering,
            window_size=deployment.window_size,
            cache_blocks=cache_blocks,
            grdb_format=scaled_grdb_format(),
            growth_policy=deployment.growth_policy,
            batch_io=deployment.batch_io,
            direction_opt=deployment.direction_opt,
            checksums=deployment.checksums,
            cache_policy=deployment.cache_policy,
            compress_adjacency=deployment.compress_adjacency,
            semi_external=deployment.semi_external,
            streaming=deployment.streaming,
            node_spec=EXPERIMENT_NODE_SPEC,
        )
    )
    report = mssg.ingest(edges)
    return mssg, edges, report.seconds


def run_ingest_experiment(
    workload: Workload, deployment: Deployment, scale: float = 1.0
) -> IngestResult:
    mssg, edges, seconds = build_and_ingest(workload, deployment, scale)
    mssg.close()
    return IngestResult(
        workload=workload.name, deployment=deployment, seconds=seconds, edges=len(edges)
    )


_query_memo: dict = {}


def queries_for(
    workload: Workload,
    scale: float,
    num_queries: int,
    seed: int = 0,
    min_distance: int = 1,
    max_distance: int | None = None,
) -> list[tuple[int, int, int]]:
    """Stratified (source, dest, distance) queries, memoized per workload."""
    key = (workload.name, scale, num_queries, seed, min_distance, max_distance)
    queries = _query_memo.get(key)
    if queries is None:
        edges = load_edges(workload, scale)
        graph = CSRGraph.from_edges(edges)
        queries = sample_queries_by_distance(
            graph, num_queries, seed=seed, min_distance=min_distance, max_distance=max_distance
        )
        _query_memo[key] = queries
    return queries


def run_search_experiment(
    workload: Workload,
    deployment: Deployment,
    scale: float = 1.0,
    num_queries: int = 10,
    warmup_queries: int = 2,
    pipelined: bool = False,
    visited: str = "memory",
    seed: int = 0,
    min_distance: int = 1,
    max_distance: int | None = None,
    mssg: MSSG | None = None,
    **query_kw,
) -> SearchResult:
    """Measure BFS time by path length on one deployment.

    Pass a pre-built ``mssg`` to amortize ingestion across experiments that
    sweep query-side knobs only (the harness will not close it).
    """
    own = mssg is None
    if own:
        mssg, _, _ = build_and_ingest(workload, deployment, scale)
    queries = queries_for(
        workload, scale, num_queries, seed=seed,
        min_distance=min_distance, max_distance=max_distance,
    )
    result = SearchResult(workload=workload.name, deployment=deployment)
    try:
        for s, d, _ in queries[: max(0, warmup_queries)]:
            mssg.query_bfs(s, d, pipelined=pipelined, visited=visited, **query_kw)
        buckets: dict[int, list[tuple[float, float]]] = {}
        for s, d, dist in queries:
            report = mssg.query_bfs(s, d, pipelined=pipelined, visited=visited, **query_kw)
            if report.result != dist:
                # Record the failing query before raising, so a wrong answer
                # in a long sweep names exactly what broke; an assert here
                # would also vanish under ``python -O``.
                result.num_queries += 1
                result.total_seconds += report.seconds
                result.total_edges_scanned += report.edges_scanned
                raise SimulationError(
                    f"BFS on {deployment.backend} x{deployment.num_backends} "
                    f"({workload.name}) returned distance {report.result} for "
                    f"query {s}->{d}, expected {dist}"
                )
            buckets.setdefault(dist, []).append((report.seconds, report.edges_per_second))
            result.num_queries += 1
            result.total_seconds += report.seconds
            result.total_edges_scanned += report.edges_scanned
        for dist, samples in sorted(buckets.items()):
            result.seconds_by_distance[dist] = float(np.mean([t for t, _ in samples]))
            result.eps_by_distance[dist] = float(np.mean([e for _, e in samples]))
    finally:
        if own:
            mssg.close()
    return result
