"""Derivation of the cost-model constants.

Every constant in :mod:`repro.simcluster.costmodel` is either a published
2006 hardware figure or is pinned by one number the paper itself reports.
This module records the derivations machine-checkably: each
:class:`CalibrationPoint` states the anchor, the arithmetic, and the
accepted band, and ``verify_calibration()`` recomputes them from the live
constants (a unit test keeps them honest).

Anchors
-------
* Testbed (ch. 5): dual 2.4 GHz Opteron 250, 8 GB RAM, 2x250 GB SATA
  RAID0, switched gigabit Ethernet.
* Fig. 5.7: Array sustains ~30 M edges/s aggregate on 16 nodes when
  visiting a large portion of PubMed-L -> ~1.9 M edges/s per node ->
  ~0.5 us of end-to-end CPU per edge touched.  We book half of that to
  the raw adjacency scan (``edge_visit_seconds = 0.25 us``); the rest is
  fringe bookkeeping, which the algorithms incur separately.
* Fig. 5.4: grDB is 2.9x Array, 1.7x HashMap; BerkeleyDB is 1.33x grDB.
  With an average PubMed degree ~15, a vertex costs Array ~3.8 us.  grDB
  touches ~2 sub-blocks per average vertex (level-0 + one chained), so
  ``grdb_subblock_seconds = 5.5 us`` lands grDB near the right multiple;
  a B-tree lookup descends ~3 pages, so ``btree_page_seconds = 7.5 us``
  reproduces the 1.33x BDB/grDB ratio.
* Fig. 5.1: the HashMap gap per edge, ``hash_lookup_seconds`` +
  ``hashmap_edge_extra_seconds``, books Java boxed-Long overhead.
* MySQL 4.1 client/server round trips on gigabit LAN cost ~0.1 ms per
  statement (classic mysqlbench numbers): ``sql_statement_seconds = 90 us``.
* 2006 SATA RAID0: ~8 ms average seek, ~100 MB/s streaming reads.
* Gigabit Ethernet + MPI/TCP: ~60 us one-way latency, ~110 MB/s effective.
* A pread + 4 KB copy on a 2.4 GHz Opteron: ~8 us
  (``os_read_hit_seconds``), the cost of a DB-cache miss that the OS page
  cache absorbs.
* Batched sub-block access: when a fringe expansion decodes a block once
  and gathers all wanted sub-blocks from it, each additional sub-block
  pays only a slot gather, not a full locate/decode.  Request-merging
  systems (FlashGraph, GraphMP) report 3-5x lower per-request CPU once
  requests to the same page are merged; ``grdb_batch_subblock_seconds =
  1.2 us`` books a ~4.6x discount against ``grdb_subblock_seconds``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..simcluster.costmodel import CpuProfile, DiskProfile, NetworkProfile

__all__ = ["CalibrationPoint", "calibration_points", "verify_calibration"]


@dataclass(frozen=True)
class CalibrationPoint:
    name: str
    anchor: str  # where the target number comes from
    modeled: float
    low: float
    high: float

    @property
    def ok(self) -> bool:
        return self.low <= self.modeled <= self.high


def calibration_points(
    cpu: CpuProfile | None = None,
    disk: DiskProfile | None = None,
    net: NetworkProfile | None = None,
) -> list[CalibrationPoint]:
    """Recompute the paper-anchored figures from the live constants."""
    cpu = cpu or CpuProfile()
    disk = disk or DiskProfile()
    net = net or NetworkProfile()
    avg_degree = 15.0  # PubMed-class average

    # Per-node edge rate the Array backend can sustain (CPU-bound scan).
    array_eps_per_node = 1.0 / cpu.edge_visit_seconds
    # Per-vertex costs of each backend in the warm regime.
    array_vertex = avg_degree * cpu.edge_visit_seconds
    hashmap_vertex = (
        cpu.hash_lookup_seconds
        + avg_degree * (cpu.edge_visit_seconds + cpu.hashmap_edge_extra_seconds)
    )
    grdb_vertex = 2.0 * cpu.grdb_subblock_seconds + array_vertex
    bdb_vertex = 3.0 * cpu.btree_page_seconds + array_vertex

    return [
        CalibrationPoint(
            "array-edge-rate-per-node",
            "Fig 5.7: ~30M edges/s aggregate / 16 nodes ~= 1.9M/node; raw "
            "scan share modeled as >= 2M/node",
            array_eps_per_node,
            2e6,
            8e6,
        ),
        CalibrationPoint(
            "grdb-over-array",
            "Fig 5.4: grDB ~2.9x Array (band 1.5-4.5 after scaling)",
            grdb_vertex / array_vertex,
            1.5,
            4.5,
        ),
        CalibrationPoint(
            "grdb-over-hashmap",
            "Fig 5.4: grDB ~1.7x HashMap (band 1.2-2.5)",
            grdb_vertex / hashmap_vertex,
            1.2,
            2.5,
        ),
        CalibrationPoint(
            "bdb-over-grdb",
            "Fig 5.4: BerkeleyDB ~1.33x grDB (band 1.1-1.8)",
            bdb_vertex / grdb_vertex,
            1.1,
            1.8,
        ),
        CalibrationPoint(
            "grdb-batch-discount",
            "request merging (FlashGraph/GraphMP): 3-5x lower per-request "
            "CPU for merged same-page accesses; modeled as the "
            "batched/full sub-block cost ratio",
            cpu.grdb_subblock_seconds / cpu.grdb_batch_subblock_seconds,
            2.0,
            8.0,
        ),
        CalibrationPoint(
            "sql-statement-vs-vertex",
            "Fig 5.4: a MySQL vertex fetch is dominated by its statement "
            "round trip (>= 5x the grDB vertex cost)",
            cpu.sql_statement_seconds / grdb_vertex,
            5.0,
            50.0,
        ),
        CalibrationPoint(
            "disk-seek",
            "2006 SATA RAID0 average seek ~8 ms",
            disk.seek_seconds,
            4e-3,
            15e-3,
        ),
        CalibrationPoint(
            "disk-stream",
            "2006 SATA RAID0 streaming ~100 MB/s",
            disk.read_bandwidth,
            50e6,
            200e6,
        ),
        CalibrationPoint(
            "network-latency",
            "gigabit Ethernet + MPI/TCP one-way ~60 us",
            net.latency,
            20e-6,
            200e-6,
        ),
        CalibrationPoint(
            "network-bandwidth",
            "gigabit Ethernet effective ~110 MB/s",
            net.bandwidth,
            80e6,
            125e6,
        ),
    ]


def verify_calibration(**kw) -> list[CalibrationPoint]:
    """Return any calibration points outside their accepted bands."""
    return [p for p in calibration_points(**kw) if not p.ok]
