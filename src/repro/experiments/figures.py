"""One experiment definition per table/figure of chapter 5.

Every function reproduces the corresponding paper artifact at benchmark
scale and returns its data series; ``render=True`` also returns the
plain-text chart the benchmarks print.  The sweeps follow the paper's
setups exactly (node counts, backend sets, knob ablations); only the graph
sizes are scaled (see ``workloads.py``).

Default node counts are the paper's (16 back-ends for the PubMed-S
figures), and the ``scale`` parameter grows the graphs toward paper scale.
"""

from __future__ import annotations

from typing import Mapping

from .harness import (
    Deployment,
    SearchResult,
    build_and_ingest,
    run_ingest_experiment,
    run_search_experiment,
)
from .report import format_rows, format_series_table
from .workloads import PUBMED_L, PUBMED_S, SYN_2B, WORKLOADS, workload_stats

__all__ = [
    "table_5_1",
    "fig_5_1",
    "fig_5_2",
    "fig_5_3",
    "fig_5_4",
    "fig_5_5",
    "fig_5_6",
    "fig_5_7",
    "fig_5_8",
    "fig_5_9",
]

FIVE_BACKENDS = ("Array", "HashMap", "MySQL", "BerkeleyDB", "grDB")
ALL_SIX = FIVE_BACKENDS + ("StreamDB",)


def table_5_1(scale: float = 1.0, render: bool = True):
    """Table 5.1: statistics for the graphs used in experiments."""
    stats = [workload_stats(WORKLOADS[name], scale) for name in ("PubMed-S", "PubMed-L", "Syn-2B")]
    text = format_rows(
        "Table 5.1: Statistics for graphs used in experiments (scaled)",
        stats[0].header(),
        [s.row() for s in stats],
    )
    return (stats, text) if render else stats


def fig_5_1(scale: float = 1.0, num_queries: int = 12, num_backends: int = 16, render: bool = True):
    """Fig 5.1: search time of the in-memory GraphDBs vs path length
    (PubMed-S, 16 nodes, random queries averaged by path length)."""
    series: dict[str, dict[int, float]] = {}
    for backend in ("Array", "HashMap"):
        res = run_search_experiment(
            PUBMED_S, Deployment(backend=backend, num_backends=num_backends),
            scale=scale, num_queries=num_queries,
        )
        series[backend] = res.seconds_by_distance
    text = format_series_table(
        "Figure 5.1: in-memory GraphDB search performance, PubMed-S",
        "path length", series,
    )
    return (series, text) if render else series


def fig_5_2(scale: float = 1.0, num_queries: int = 12, num_backends: int = 16, render: bool = True):
    """Fig 5.2: BerkeleyDB and grDB with/without their block caches."""
    series: dict[str, dict[int, float]] = {}
    for backend in ("BerkeleyDB", "grDB"):
        for cache_enabled in (True, False):
            label = f"{backend}{'' if cache_enabled else ' (no cache)'}"
            res = run_search_experiment(
                PUBMED_S,
                Deployment(
                    backend=backend, num_backends=num_backends, cache_enabled=cache_enabled
                ),
                scale=scale, num_queries=num_queries,
            )
            series[label] = res.seconds_by_distance
    text = format_series_table(
        "Figure 5.2: effect of the block cache, PubMed-S",
        "path length", series,
    )
    return (series, text) if render else series


def fig_5_3(scale: float = 1.0, num_backends: int = 16, render: bool = True):
    """Fig 5.3: ingestion of PubMed-S, 1 vs 4 front-end ingestion nodes."""
    series: dict[str, dict[int, float]] = {}
    for backend in FIVE_BACKENDS:
        series[backend] = {}
        for frontends in (1, 4):
            res = run_ingest_experiment(
                PUBMED_S,
                Deployment(backend=backend, num_backends=num_backends, num_frontends=frontends),
                scale=scale,
            )
            series[backend][frontends] = res.seconds
    text = format_series_table(
        "Figure 5.3: ingestion time of five GraphDBs, PubMed-S (16 back-ends)",
        "front-ends", series,
    )
    return (series, text) if render else series


def fig_5_4(
    scale: float = 1.0,
    num_queries: int = 12,
    num_backends: int = 16,
    render: bool = True,
    batch_io: bool = False,
):
    """Fig 5.4: search time of five GraphDBs vs path length, PubMed-S.

    ``batch_io=True`` reruns the figure with batched/coalescing fringe
    expansion enabled (identical results, different access plan) — the
    configuration the batch-I/O ablation compares against this default.
    """
    series: dict[str, dict[int, float]] = {}
    for backend in FIVE_BACKENDS:
        res = run_search_experiment(
            PUBMED_S,
            Deployment(backend=backend, num_backends=num_backends, batch_io=batch_io),
            scale=scale, num_queries=num_queries,
        )
        series[backend] = res.seconds_by_distance
    text = format_series_table(
        "Figure 5.4: search performance of five GraphDBs, PubMed-S",
        "path length", series,
    )
    return (series, text) if render else series


def fig_5_5(scale: float = 1.0, render: bool = True, backend_counts=(4, 8, 16)):
    """Fig 5.5: ingestion of PubMed-L; 8 front-ends, varying back-ends.

    StreamDB replaces the Array line here, as in the paper's chart (its
    "unrivaled ingestion performance" discussion).
    """
    backends = ("HashMap", "MySQL", "BerkeleyDB", "grDB", "StreamDB")
    series: dict[str, dict[int, float]] = {}
    for backend in backends:
        series[backend] = {}
        for p in backend_counts:
            res = run_ingest_experiment(
                PUBMED_L,
                Deployment(backend=backend, num_backends=p, num_frontends=8),
                scale=scale,
            )
            series[backend][p] = res.seconds
    text = format_series_table(
        "Figure 5.5: ingestion time of five GraphDBs, PubMed-L (8 front-ends)",
        "back-ends", series,
    )
    return (series, text) if render else series


_pubmedl_sweep_memo: dict = {}


def _pubmedl_search_sweep(scale: float, num_queries: int, backend_counts) -> Mapping:
    """Shared runs behind Figs 5.6 and 5.7 (same experiments, two views)."""
    key = (scale, num_queries, tuple(backend_counts))
    cached = _pubmedl_sweep_memo.get(key)
    if cached is not None:
        return cached
    backends = ("Array", "HashMap", "StreamDB", "BerkeleyDB", "grDB")
    results: dict[str, dict[int, SearchResult]] = {}
    for backend in backends:
        results[backend] = {}
        for p in backend_counts:
            results[backend][p] = run_search_experiment(
                PUBMED_L,
                Deployment(backend=backend, num_backends=p, num_frontends=1),
                scale=scale, num_queries=num_queries, min_distance=3,
            )
    _pubmedl_sweep_memo[key] = results
    return results


def fig_5_6(scale: float = 1.0, num_queries: int = 8, backend_counts=(4, 8, 16), render: bool = True):
    """Fig 5.6: search execution time on PubMed-L vs back-end count."""
    sweep = _pubmedl_search_sweep(scale, num_queries, backend_counts)
    series = {
        backend: {p: r.mean_seconds for p, r in by_p.items()}
        for backend, by_p in sweep.items()
    }
    text = format_series_table(
        "Figure 5.6: search execution time of five GraphDBs, PubMed-L",
        "back-ends", series,
    )
    return (series, text) if render else series


def fig_5_7(scale: float = 1.0, num_queries: int = 8, backend_counts=(4, 8, 16), render: bool = True):
    """Fig 5.7: aggregate edges/second during search on PubMed-L."""
    sweep = _pubmedl_search_sweep(scale, num_queries, backend_counts)
    series = {
        backend: {p: r.aggregate_eps for p, r in by_p.items()}
        for backend, by_p in sweep.items()
    }
    text = format_series_table(
        "Figure 5.7: aggregate edges/s during search, PubMed-L",
        "back-ends", series, unit="edges/s", fmt="{:>12.0f}",
    )
    return (series, text) if render else series


_syn2b_sweep_memo: dict = {}


def _syn2b_sweep(scale: float, num_queries: int, backend_counts) -> Mapping:
    """Shared grDB-on-Syn-2B runs behind Figs 5.8 and 5.9, with the
    in-memory vs external visited-structure ablation."""
    key = (scale, num_queries, tuple(backend_counts))
    cached = _syn2b_sweep_memo.get(key)
    if cached is not None:
        return cached
    results: dict[str, dict[int, SearchResult]] = {}
    for visited in ("memory", "external"):
        label = "in-memory visited" if visited == "memory" else "external visited"
        results[label] = {}
        for p in backend_counts:
            results[label][p] = run_search_experiment(
                SYN_2B,
                Deployment(backend="grDB", num_backends=p, num_frontends=1),
                scale=scale, num_queries=num_queries, visited=visited, min_distance=3,
            )
    _syn2b_sweep_memo[key] = results
    return results


def fig_5_8(scale: float = 1.0, num_queries: int = 6, backend_counts=(4, 8, 16), render: bool = True):
    """Fig 5.8: grDB search execution time on Syn-2B (visited ablation)."""
    sweep = _syn2b_sweep(scale, num_queries, backend_counts)
    series = {
        label: {p: r.mean_seconds for p, r in by_p.items()}
        for label, by_p in sweep.items()
    }
    text = format_series_table(
        "Figure 5.8: grDB search execution time, Syn-2B",
        "back-ends", series,
    )
    return (series, text) if render else series


def fig_5_9(scale: float = 1.0, num_queries: int = 6, backend_counts=(4, 8, 16), render: bool = True):
    """Fig 5.9: grDB edges/s on Syn-2B (same runs as Fig 5.8)."""
    sweep = _syn2b_sweep(scale, num_queries, backend_counts)
    series = {
        label: {p: r.aggregate_eps for p, r in by_p.items()}
        for label, by_p in sweep.items()
    }
    text = format_series_table(
        "Figure 5.9: grDB aggregate edges/s, Syn-2B",
        "back-ends", series, unit="edges/s", fmt="{:>12.0f}",
    )
    return (series, text) if render else series
