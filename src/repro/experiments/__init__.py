"""Chapter-5 experiment harness: workloads, sweeps, figure reproductions."""

from .harness import (
    Deployment,
    IngestResult,
    SearchResult,
    build_and_ingest,
    default_cache_blocks,
    run_ingest_experiment,
    run_search_experiment,
    scaled_grdb_format,
)
from .figures import (
    fig_5_1,
    fig_5_2,
    fig_5_3,
    fig_5_4,
    fig_5_5,
    fig_5_6,
    fig_5_7,
    fig_5_8,
    fig_5_9,
    table_5_1,
)
from .telemetry import (
    NodeUtilization,
    cluster_utilization,
    format_utilization,
    load_imbalance,
)
from .workloads import PUBMED_L, PUBMED_S, SYN_2B, WORKLOADS, Workload, load_edges

__all__ = [
    "Deployment",
    "IngestResult",
    "NodeUtilization",
    "cluster_utilization",
    "format_utilization",
    "load_imbalance",
    "PUBMED_L",
    "PUBMED_S",
    "SYN_2B",
    "SearchResult",
    "WORKLOADS",
    "Workload",
    "build_and_ingest",
    "default_cache_blocks",
    "fig_5_1",
    "fig_5_2",
    "fig_5_3",
    "fig_5_4",
    "fig_5_5",
    "fig_5_6",
    "fig_5_7",
    "fig_5_8",
    "fig_5_9",
    "load_edges",
    "run_ingest_experiment",
    "run_search_experiment",
    "scaled_grdb_format",
    "table_5_1",
]
