"""Table 5.1 workloads, scaled.

The paper's graphs:

    Graph      Vertices     Und. Edges   Min  Max.Deg    Avg
    PubMed-S   3,751,921    27,841,339   1    722,692    14.84
    PubMed-L   26,676,177   259,815,339  1    6,114,328  19.48
    Syn-2B     100,000,000  999,999,820  1    42,964     20.00

PubMed extractions are not redistributable and billion-edge graphs are not
tractable for a pure-Python harness, so each workload generates a scaled
synthetic stand-in that preserves the degree *shape* (power law, hub
fraction, average degree — see ``repro.graphgen.pubmed``).  ``scale=1.0``
gives the default benchmark sizes below; larger scales approach the paper.

Generated edge arrays are memoized per (workload, scale) in-process and in
an on-disk cache directory, because every figure reuses them.
"""

from __future__ import annotations

import hashlib
import os
import tempfile
from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..graphgen import graph_stats, pubmed_like, rmat_edges
from ..graphgen.stats import GraphStats

__all__ = ["Workload", "PUBMED_S", "PUBMED_L", "SYN_2B", "WORKLOADS", "load_edges"]


@dataclass(frozen=True)
class Workload:
    name: str
    paper_vertices: int
    paper_edges: int
    paper_max_degree: int
    paper_avg_degree: float
    base_vertices: int  # vertices at scale=1.0
    generator: Callable[[int, int], np.ndarray]  # (num_vertices, seed) -> edges
    seed: int = 0


def _gen_pubmed_s(n: int, seed: int) -> np.ndarray:
    # The PA process's own hub supplies most of the 19%-of-|V| max degree;
    # a small explicit boost lands the scaled graph on the paper's ratio.
    return pubmed_like(n, avg_degree=14.84, hub_fraction=0.01, seed=seed)


def _gen_pubmed_l(n: int, seed: int) -> np.ndarray:
    return pubmed_like(n, avg_degree=19.48, hub_fraction=0.10, seed=seed)


def _gen_syn2b(n: int, seed: int) -> np.ndarray:
    # Syn-2B's max degree is ~4e-4 of |V|: a flat R-MAT, not a hub graph.
    scale = max(2, int(np.ceil(np.log2(n))))
    return rmat_edges(scale, num_edges=10 * n, a=0.45, b=0.2, c=0.2, d=0.15, seed=seed)


PUBMED_S = Workload(
    name="PubMed-S",
    paper_vertices=3_751_921,
    paper_edges=27_841_339,
    paper_max_degree=722_692,
    paper_avg_degree=14.84,
    base_vertices=4000,
    generator=_gen_pubmed_s,
)

PUBMED_L = Workload(
    name="PubMed-L",
    paper_vertices=26_676_177,
    paper_edges=259_815_339,
    paper_max_degree=6_114_328,
    paper_avg_degree=19.48,
    base_vertices=9000,
    generator=_gen_pubmed_l,
)

SYN_2B = Workload(
    name="Syn-2B",
    paper_vertices=100_000_000,
    paper_edges=999_999_820,
    paper_max_degree=42_964,
    paper_avg_degree=20.0,
    base_vertices=16384,
    generator=_gen_syn2b,
)

WORKLOADS = {w.name: w for w in (PUBMED_S, PUBMED_L, SYN_2B)}

_memo: dict[tuple[str, float], np.ndarray] = {}


def _cache_dir() -> str:
    d = os.environ.get("REPRO_CACHE_DIR") or os.path.join(
        tempfile.gettempdir(), "repro-mssg-cache"
    )
    os.makedirs(d, exist_ok=True)
    return d


def load_edges(workload: Workload, scale: float = 1.0) -> np.ndarray:
    """Deduplicated undirected edges for ``workload`` at ``scale``."""
    key = (workload.name, float(scale))
    edges = _memo.get(key)
    if edges is not None:
        return edges
    n = max(64, int(workload.base_vertices * scale))
    token = hashlib.sha1(f"{workload.name}:{n}:{workload.seed}:v1".encode()).hexdigest()[:16]
    path = os.path.join(_cache_dir(), f"{workload.name}-{token}.npy")
    if os.path.exists(path):
        edges = np.load(path)
    else:
        edges = workload.generator(n, workload.seed)
        np.save(path, edges)
    _memo[key] = edges
    return edges


def workload_stats(workload: Workload, scale: float = 1.0) -> GraphStats:
    return graph_stats(load_edges(workload, scale), name=workload.name)
