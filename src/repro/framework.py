"""MSSG framework façade: the one-stop public API.

Wires the whole stack of Figure 3.1 together — a simulated cluster of
front-end and back-end nodes, one GraphDB instance per back-end, the
Ingestion Service, and the Query Service::

    from repro import MSSG, MSSGConfig
    from repro.graphgen import pubmed_like

    mssg = MSSG(MSSGConfig(num_backends=4, num_frontends=2, backend="grDB"))
    report = mssg.ingest(pubmed_like(5000))
    answer = mssg.query_bfs(source=3, dest=4711)
    print(answer.result, answer.seconds)
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .graphdb import GraphDB, GrDBFormat, ModuloMap, make_graphdb
from .graphdb.registry import BACKENDS
from .services import (
    Declusterer,
    DrainReport,
    EdgeRoundRobin,
    IngestionService,
    IngestReport,
    QueryReport,
    QueryService,
    ReplicatedDeclusterer,
    VertexHash,
    VertexRoundRobin,
    WindowGreedy,
)
from .services.streaming import CompactReport, StreamingState
from .storage.blockcache import validate_cache_policy
from .simcluster import FaultPlan, NodeSpec, SimCluster
from .util.errors import ConfigError, DeviceFailedError
from .util.varint import edge_block_bytes

__all__ = ["MSSG", "MSSGConfig", "RebalanceReport", "ScrubReport"]


@dataclass
class RebalanceReport:
    """Outcome of one :meth:`MSSG.rebalance` pass."""

    seconds: float  # virtual makespan of the re-replication run
    dead_backends: tuple[int, ...]
    #: Replica copies re-materialized onto surviving back-ends.
    copies_restored: int
    #: Directed adjacency entries copied between back-ends.
    entries_copied: int
    #: Effective replication factor after the pass (min copies over all
    #: partitions; equals the configured ``k`` when repair fully succeeds).
    replication: int
    #: Primary partitions whose every holder died — their data is gone and
    #: queries over them stay partial until re-ingestion.
    unrecoverable_partitions: tuple[int, ...] = ()


@dataclass
class ScrubReport:
    """Outcome of one :meth:`MSSG.scrub` pass over every back-end device.

    The scrub walks each back-end's checksummed devices at sequential-scan
    rates (devices of different nodes in parallel), verifies every frame's
    CRC32 trailer, and — when replicas exist — rebuilds any back-end
    holding corrupt frames from the clean copies.
    """

    seconds: float  # virtual seconds (max over nodes — they scrub in parallel)
    frames_scanned: int
    corrupt_frames: int
    repaired_frames: int
    #: Corrupt frames with no clean replica to rebuild from (replication=1,
    #: owner-unknown declustering, or every other holder corrupt/dead too).
    unrecoverable_frames: int
    #: Back-end indices where corruption was found.
    corrupt_backends: tuple[int, ...] = ()


_DECLUSTERERS = {
    "vertex-rr": VertexRoundRobin,
    "vertex-hash": VertexHash,
    "edge-rr": EdgeRoundRobin,
    "window-greedy": WindowGreedy,
}


@dataclass
class MSSGConfig:
    """Deployment description of one MSSG installation."""

    num_backends: int = 4
    num_frontends: int = 1
    backend: str = "grDB"
    declustering: str = "vertex-rr"
    window_size: int = 4096
    cache_blocks: int = 256
    grdb_format: GrDBFormat | None = None
    growth_policy: str = "link"
    #: Batched/coalescing fringe expansion (``False`` = the paper
    #: prototype's per-vertex adjacency loop; results are identical).
    batch_io: bool = True
    #: Direction-optimizing BFS: switch to bottom-up (pull) levels with a
    #: dense bitmap fringe when the fringe's out-degree sum says a
    #: sequential storage scan is cheaper than per-vertex expansion
    #: (``False`` = the paper's pure top-down search; reported levels are
    #: identical either way, only the access plan and virtual time differ).
    direction_opt: bool = True
    node_spec: NodeSpec = field(default_factory=NodeSpec)
    storage_dir: str | None = None
    ascii_input: bool = True
    #: Copies of each adjacency partition (rotational declustering): data
    #: whose primary owner is back-end ``u`` is also stored on back-ends
    #: ``u+1 .. u+replication-1`` (mod p), and queries fail over to a
    #: surviving replica when a device dies mid-query.
    replication: int = 1
    #: Injected disk faults (see :class:`repro.simcluster.FaultPlan`);
    #: installed on the cluster at deployment.  Use
    #: :meth:`MSSG.set_fault_plan` instead to arm faults only after
    #: ingestion (virtual clocks restart at 0 for every cluster run).
    fault_plan: FaultPlan | None = None
    #: Failover rounds attempted per BFS level before degrading to a
    #: partial result.
    max_retries: int = 2
    #: Per-attempt expand budget in virtual seconds (``None`` = no limit).
    attempt_timeout: float | None = None
    #: End-to-end block integrity: every out-of-core device is framed into
    #: 4 KiB payloads with CRC32 trailers, verified on every read; grDB's
    #: flush journals through a WAL and StreamDB keeps durable commit
    #: records, so a crash mid-flush recovers to a consistent image.  A
    #: CRC-bad frame raises ``CorruptBlockError``, BFS reroutes the shard
    #: to a replica, and the façade repairs the damaged back-end.  Costs
    #: ~0.1% capacity and the WAL write amplification; the experiment
    #: harness turns it off to keep paper figures bit-identical.
    checksums: bool = True
    #: Block-cache organization of the out-of-core back-ends.  ``"lru"`` —
    #: the historical layout: every store owns a private LRU of
    #: ``cache_blocks`` entries.  ``"2q"`` — all stores on a back-end node
    #: share ONE process-wide pool of ``cache_blocks`` entries, partitioned
    #: by owner and run with scan-resistant two-segment eviction (a
    #: sequential sweep can only churn the probation segment; blocks
    #: re-referenced across queries are promoted and survive).  The
    #: experiment harness pins ``"lru"`` to keep paper figures
    #: bit-identical.
    cache_policy: str = "2q"
    #: Admission cap for :meth:`MSSG.query_many`: queries beyond this many
    #: in flight wait in the FIFO queue.
    max_inflight: int = 64
    #: Share backend sweeps (StreamDB log replays, bottom-up storage
    #: scans) between concurrent queries of one scheduling round: one
    #: device pass, decoded adjacency fanned to every subscriber.  Answers
    #: are unaffected; only device time is.  Off in the experiment harness.
    shared_scans: bool = True
    #: Delta+varint compressed adjacency (:mod:`repro.util.varint`): grDB
    #: sub-block interiors and StreamDB log records store sorted neighbor
    #: gaps as varints instead of raw 8-byte words, and replication
    #: repair/rebalance ships adjacency in the same compact form.  Fewer
    #: device bytes per query at a per-byte vectorized decode CPU cost
    #: (``CpuProfile.varint_decode_seconds``); answers are unaffected.
    #: No-op for the other four backends.  The experiment harness turns it
    #: off to keep paper figures bit-identical.
    compress_adjacency: bool = True
    #: Semi-external-memory mode (FlashGraph/GraphMP-style): keep all
    #: per-vertex state resident in RAM and only the adjacency on device.
    #: Three effects, none of which changes any answer: (1) each
    #: back-end's vertex metadata (degrees, id map) is pinned into
    #: resident arrays at ingest, so ``degree_many`` and fringe sizing
    #: never touch a device; (2) out-of-core back-ends keep a resident
    #: block->vertex-extent directory and fetch only the blocks holding
    #: active fringe sources when the fringe covers a sparse fraction of
    #: the store (full shared scans otherwise); (3) external visited
    #: structures become resident dense arrays, and the shared block
    #: cache grows a pinned segment that sweeps cannot evict.  The
    #: experiment harness pins it off to keep paper figures bit-identical.
    semi_external: bool = False
    #: RAM budget for everything semi-EM pins (vertex state + block
    #: directories across all back-ends, plus a 4-bytes-per-vertex
    #: reserve for one resident visited array).  Deployment exceeding it
    #: raises ``ConfigError`` at ingest rather than silently thrashing.
    semi_external_budget_bytes: int = 64 << 20
    #: Streaming ingest (DESIGN §12): every back-end carries a crash-safe
    #: delta log, :meth:`MSSG.ingest_stream` appends edge batches to it
    #: incrementally (durable + published on return, folded into the base
    #: stores by :meth:`MSSG.compact`), and queries run against the
    #: snapshot published at their admission — an in-flight query never
    #: observes a half-applied batch, and a crash at any point recovers to
    #: the last published snapshot.  ``query_many(stream_batches=...)``
    #: interleaves ingest *with* a drain.  The experiment harness pins
    #: this off to keep paper figures bit-identical.
    streaming: bool = False

    def __post_init__(self):
        if self.backend not in BACKENDS:
            raise ConfigError(f"unknown backend {self.backend!r}; choose from {BACKENDS}")
        if self.declustering not in _DECLUSTERERS:
            raise ConfigError(
                f"unknown declustering {self.declustering!r}; "
                f"choose from {sorted(_DECLUSTERERS)}"
            )
        if self.num_backends < 1 or self.num_frontends < 1:
            raise ConfigError("need at least one back-end and one front-end")
        if not 1 <= self.replication <= self.num_backends:
            raise ConfigError(
                f"replication must be in [1, num_backends={self.num_backends}], "
                f"got {self.replication}"
            )
        validate_cache_policy(self.cache_policy)
        if self.max_inflight < 1:
            raise ConfigError(f"max_inflight must be >= 1, got {self.max_inflight}")
        if self.semi_external and self.semi_external_budget_bytes < 1:
            raise ConfigError(
                f"semi_external_budget_bytes must be >= 1, "
                f"got {self.semi_external_budget_bytes}"
            )


def _adjacency_wire_size(entries, compress: bool) -> int:
    """Bytes one adjacency shipment (rebalance/repair) puts on the wire.

    Compressed deployments move adjacency compressed: the same record
    framing the StreamDB log uses (12-byte header + delta+varint edge
    block).  Raw deployments ship 16-byte pairs.  Either way +8 bytes of
    message header; ``None`` (extraction failed at the source) is a bare
    header.
    """
    if entries is None:
        return 8
    if compress and len(entries):
        return edge_block_bytes(entries) + 12 + 8
    return 16 * len(entries) + 8


class MSSG:
    """A deployed MSSG instance over a simulated cluster."""

    def __init__(self, config: MSSGConfig | None = None):
        self.config = config if config is not None else MSSGConfig()
        cfg = self.config
        self.cluster = SimCluster(
            nranks=cfg.num_frontends + cfg.num_backends,
            spec=cfg.node_spec,
            storage_dir=cfg.storage_dir,
            fault_plan=cfg.fault_plan,
        )
        self.declusterer: Declusterer = _DECLUSTERERS[cfg.declustering](cfg.num_backends)
        if cfg.replication > 1:
            self.declusterer = ReplicatedDeclusterer(self.declusterer, cfg.replication)
        self.dbs: list[GraphDB] = [self._make_db(q) for q in range(cfg.num_backends)]
        self.ingestion = IngestionService(
            self.cluster,
            self.dbs,
            self.declusterer,
            num_frontends=cfg.num_frontends,
            window_size=cfg.window_size,
            ascii_input=cfg.ascii_input,
        )
        self.queries = QueryService(
            self.cluster,
            self.dbs,
            self.declusterer,
            num_frontends=cfg.num_frontends,
            # Replicated deployments always run the failover protocol; an
            # unreplicated one runs it only when faults are expected, so the
            # healthy fast path stays byte-for-byte the original algorithms.
            fault_tolerant=(cfg.replication > 1 or cfg.fault_plan is not None) or None,
            max_retries=cfg.max_retries,
            attempt_timeout=cfg.attempt_timeout,
            direction_opt=cfg.direction_opt,
            checksums=cfg.checksums,
            max_inflight=cfg.max_inflight,
            shared_scans=cfg.shared_scans,
            semi_external=cfg.semi_external,
        )
        self.last_ingest: IngestReport | None = None
        #: Streaming machinery (delta logs + overlays).  Constructing it
        #: doubles as crash recovery: reopening a streaming deployment over
        #: the same ``storage_dir`` replays the delta logs, settles any
        #: interrupted compaction, and restores the last published snapshot.
        self.streaming = StreamingState(self) if cfg.streaming else None

    def _make_db(self, q: int) -> GraphDB:
        """Build back-end ``q``'s GraphDB instance on its node.

        Used at deployment and again by :meth:`repair_backends`, which
        rebuilds a corrupt back-end from scratch on the same devices.
        """
        cfg = self.config
        node = self.cluster.nodes[cfg.num_frontends + q]
        # grDB packs its level-0 file densely when the owner map is the
        # globally known GID % p round robin.  With replication each
        # back-end also stores its neighbours' partitions, so the
        # modulo map no longer covers the local id space — fall back to
        # the generic map.
        id_map = (
            ModuloMap(cfg.num_backends, q)
            if cfg.backend == "grDB"
            and cfg.declustering == "vertex-rr"
            and cfg.replication == 1
            else None
        )
        return make_graphdb(
            cfg.backend,
            node,
            id_map=id_map,
            cache_blocks=cfg.cache_blocks,
            grdb_format=cfg.grdb_format,
            growth_policy=cfg.growth_policy,
            batch_io=cfg.batch_io,
            checksums=cfg.checksums,
            cache_policy=cfg.cache_policy,
            compress_adjacency=cfg.compress_adjacency,
            semi_external=cfg.semi_external,
        )

    # -- public operations ---------------------------------------------------

    def set_fault_plan(self, plan: FaultPlan | None) -> None:
        """Install (or clear, with ``None``) a disk fault plan on the cluster.

        A plan may be armed at any point of the deployment's life — before
        ingestion, between ingestion and queries, or between streamed
        batches.  The only semantics to understand is the clock: virtual
        clocks restart at 0 for every ``cluster.run``, so a time-triggered
        fault fires at virtual times measured within whichever run comes
        *next* (an ``after_ops`` trigger counts that device's operations
        from installation instead and is run-agnostic).  Installing a plan
        between ingestion and a query is therefore the way to model "a
        disk dies mid-search" without also failing the ingestion — not a
        restriction on when plans are allowed.  Enables the query-side
        failover protocol as a side effect.
        """
        self.cluster.install_fault_plan(plan)
        if plan is not None:
            self.queries.fault_tolerant = True

    def ingest(self, edges: np.ndarray) -> IngestReport:
        """Stream an undirected edge list into the back-end GraphDBs."""
        self.last_ingest = self.ingestion.ingest(edges)
        # Back-ends that died during ingestion are known dead *now*; record
        # them (as a rebalance pass would) so queries route their shards to
        # replicas outright.  Leaving rediscovery to the query is unsound:
        # a dead back-end whose few blocks are still cache-resident answers
        # from RAM, never touches its failed device, and silently returns
        # an incomplete non-partial result.
        failed = getattr(self.last_ingest, "failed_backends", ())
        if failed:
            self.queries.known_dead |= set(failed)
            self.queries.fault_tolerant = True
        # The direction-optimizing hybrid sizes its fringe bitmap from the
        # vertex-id space; record it here so queries know it without a
        # cluster round (grows monotonically across multiple ingests).
        edges = np.asarray(edges)
        if edges.size:
            n = int(edges.max()) + 1
            self.queries.num_vertices = max(self.queries.num_vertices or 0, n)
        if self.config.semi_external:
            self._pin_semi_external()
        return self.last_ingest

    def ingest_stream(self, edges: np.ndarray) -> IngestReport:
        """Append one edge batch incrementally (streaming deployments).

        The batch runs through the same ingestion pipeline as
        :meth:`ingest` (same declustering, same windows, same fault
        accounting) but lands on each back-end's crash-safe delta log
        instead of its base files: when this returns, the batch is durable
        and *published* — visible to every subsequently admitted query —
        while the base stores are untouched until :meth:`compact` folds the
        deltas in.  A crash anywhere in between recovers to the last
        published snapshot.  Returns the deployment's accumulated
        :class:`IngestReport` (``batches`` counts the streamed batches).
        """
        if self.streaming is None:
            raise ConfigError(
                "ingest_stream requires MSSGConfig(streaming=True); "
                "use ingest() for one-shot batch loads"
            )
        report = self.streaming.ingest_batch(edges)
        failed = getattr(report, "failed_backends", ())
        if failed:
            self.queries.known_dead |= set(failed)
            self.queries.fault_tolerant = True
        edges = np.asarray(edges)
        if edges.size:
            n = int(edges.max()) + 1
            self.queries.num_vertices = max(self.queries.num_vertices or 0, n)
        if self.last_ingest is None:
            self.last_ingest = report
        else:
            self.last_ingest.absorb(report)
        return self.last_ingest

    def compact(self) -> CompactReport:
        """Fold published stream deltas into the base stores.

        Each back-end folds under the delta log's two-phase intent
        protocol: a crash mid-fold either keeps the deltas or adopts the
        fold, never both and never neither (on the token-bearing backends
        — grDB and StreamDB with checksums; the others conservatively
        replay, see :mod:`repro.storage.deltalog`).  Queries before and
        after a compaction read identical adjacency.
        """
        if self.streaming is None:
            raise ConfigError("compact requires MSSGConfig(streaming=True)")
        report = self.streaming.compact()
        if report.failed_backends:
            self.queries.known_dead |= set(report.failed_backends)
            self.queries.fault_tolerant = True
        # The folded edges are base data now; re-pin the (base-only) vertex
        # census so pinned degrees + (emptied) overlay still sum correctly.
        if self.config.semi_external and report.entries_folded:
            self._pin_semi_external()
        return report

    def _pin_semi_external(self) -> None:
        """Materialize each back-end's pinned vertex state (semi-EM layer 1).

        Done eagerly after every ingest — the moment the degree census is
        complete and free to snapshot — so queries start with everything
        resident and the budget violation surfaces here, not mid-search.
        Charges the sum of all back-ends' pinned bytes plus a
        4-bytes-per-vertex reserve for one resident visited array against
        ``MSSGConfig.semi_external_budget_bytes``.
        """
        resident = 0
        for db in self.dbs:
            try:
                db.pin_vertex_state()
            except DeviceFailedError:
                continue  # dead back-end: queries fail over, nothing to pin
            resident += db.pinned_resident_bytes()
        visited_reserve = 4 * (self.queries.num_vertices or 0)
        budget = self.config.semi_external_budget_bytes
        if resident + visited_reserve > budget:
            raise ConfigError(
                f"semi-external pinned state needs {resident} bytes of vertex "
                f"state plus a {visited_reserve}-byte visited reserve, over "
                f"the semi_external_budget_bytes={budget} budget; raise the "
                f"budget or turn semi_external off"
            )

    def dead_backends(self) -> list[int]:
        """Back-end indices whose block device has failed (sticky)."""
        F = self.config.num_frontends
        out = []
        for q in range(self.config.num_backends):
            node = self.cluster.nodes[F + q]
            if any(dev.failed for dev in node._disks.values()):
                out.append(q)
        return out

    def rebalance(self) -> RebalanceReport:
        """Re-replicate partitions held by dead back-ends onto survivors.

        For every partition with a dead holder, the first surviving chain
        member extracts its copy (``local_vertices`` filtered by the owner
        map, adjacency read back entry by entry) and ships it to the first
        alive back-end not already holding one, until the chain is back to
        ``k`` copies (or the cluster runs out of alive candidates).  The
        repaired chain map is installed on the declusterer and the deaths
        recorded on the Query Service, so subsequent queries route shards
        straight to the new holders with zero failover rounds.

        Owner-unknown declustering (edge round-robin) scatters adjacency
        with no per-partition extraction predicate, so replicated
        deployments of it cannot be rebalanced — that raises ``ConfigError``.
        A partition whose *every* holder died is unrecoverable and reported
        as such; queries over it stay partial until re-ingestion.
        """
        cfg = self.config
        F, P = cfg.num_frontends, cfg.num_backends
        dead = self.dead_backends()
        rep = (
            self.declusterer
            if isinstance(self.declusterer, ReplicatedDeclusterer)
            else None
        )
        if not dead:
            return RebalanceReport(
                seconds=0.0,
                dead_backends=(),
                copies_restored=0,
                entries_copied=0,
                replication=rep.effective_replication if rep else 1,
            )
        if rep is not None and not self.declusterer.owner_known:
            raise ConfigError(
                "cannot rebalance owner-unknown declustering (edge-rr): no "
                "owner map to extract a dead back-end's partitions with"
            )
        deadset = set(dead)
        k = rep.replication if rep else 1
        chains = {
            u: (rep.replica_chain(u) if rep else [u]) for u in range(P)
        }
        moves: list[tuple[int, int, int]] = []  # (partition, source, target)
        new_chains: dict[int, list[int]] = {}
        unrecoverable: list[int] = []
        for u in range(P):
            holders = [t for t in chains[u] if t not in deadset]
            if len(holders) == len(chains[u]):
                new_chains[u] = holders
                continue
            if not holders:
                unrecoverable.append(u)
                new_chains[u] = holders
                continue
            missing = k - len(holders)
            # Refill with the first alive non-holders scanning from u+1, the
            # same direction the rotational chain grew — keeps the repaired
            # layout close to the original placement.
            for step in range(1, P):
                if missing <= 0:
                    break
                cand = (u + step) % P
                if cand in deadset or cand in holders:
                    continue
                moves.append((u, holders[0], cand))
                holders.append(cand)
                missing -= 1
            new_chains[u] = holders

        seconds = 0.0
        stored_all: dict[int, int] = {}
        failed_all: set[int] = set()
        if moves:
            owner_of = self.declusterer.owner_of
            dbs = self.dbs
            TAG = 7700

            def extract(db, u: int) -> np.ndarray:
                verts = db.local_vertices()
                empty = np.zeros((0, 2), dtype=np.int64)
                if not len(verts):
                    return empty
                mine = verts[owner_of(verts) == u]
                rows = []
                for v in mine:
                    adj = db.get_adjacency(int(v))
                    if len(adj):
                        rows.append(
                            np.column_stack([np.full(len(adj), v, np.int64), adj])
                        )
                return np.vstack(rows) if rows else empty

            def program(ctx):
                q = ctx.rank - F
                stored: dict[int, int] = {}
                failed: list[int] = []
                for i, (u, src, dst) in enumerate(moves):
                    if q == src:
                        try:
                            entries = extract(dbs[src], u)
                        except DeviceFailedError:
                            entries = None
                        size = _adjacency_wire_size(
                            entries, self.config.compress_adjacency
                        )
                        # Non-blocking send: move order is shared by all
                        # ranks and a move's source never receives for it,
                        # so processing moves in order cannot deadlock.
                        ctx.comm.send(F + dst, entries, tag=TAG, size=size)
                    if q == dst:
                        msg = yield from ctx.comm.recv(source=F + src, tag=TAG)
                        entries = msg.payload
                        if entries is None:
                            failed.append(i)
                            continue
                        try:
                            if len(entries):
                                dbs[dst].store_edges(entries)
                            stored[i] = len(entries)
                        except DeviceFailedError:
                            failed.append(i)
                if stored:
                    try:
                        dbs[q].finalize_ingest()
                        dbs[q].flush()
                    except DeviceFailedError:
                        # The new holder died before its copies hit disk:
                        # everything it accepted this pass is void.
                        failed.extend(stored)
                        stored.clear()
                return (stored, failed)

            for r in self.cluster.run(program):
                if r is None:
                    continue
                s, f = r
                stored_all.update(s)
                failed_all.update(f)
            seconds = self.cluster.makespan
            for i in failed_all:
                u, _, dst = moves[i]
                if dst in new_chains[u]:
                    new_chains[u].remove(dst)

        if rep is not None:
            rep.set_chains([new_chains[u] for u in range(P)])
        # Targets may have died mid-copy: record the current death set, not
        # the one we started from.
        self.queries.known_dead = set(self.dead_backends())
        self.queries.fault_tolerant = True
        if rep is not None:
            replication = rep.effective_replication
        else:
            replication = 0 if unrecoverable else 1
        return RebalanceReport(
            seconds=seconds,
            dead_backends=tuple(dead),
            copies_restored=len(stored_all),
            entries_copied=sum(stored_all.values()),
            replication=replication,
            unrecoverable_partitions=tuple(unrecoverable),
        )

    # -- integrity: scrub + read-repair ----------------------------------------

    def _count_corrupt_frames(self, q: int) -> tuple[int, int]:
        """``(frames scanned, corrupt frames)`` over back-end ``q``'s
        checksummed devices, charged at sequential-scan rates on its node's
        clock.  Failed (dead) devices are skipped — they cannot be read at
        all, which is the *other* failure mode."""
        node = self.cluster.nodes[self.config.num_frontends + q]
        scanned = corrupt = 0
        for dev in node._disks.values():
            wrapper = getattr(dev, "_integrity", None)
            if wrapper is None or dev.failed:
                continue
            scanned += wrapper.frame_count()
            corrupt += sum(1 for _ in wrapper.scrub_frames())
        return scanned, corrupt

    def _repair_from_replicas(self, bad: dict[int, int]) -> int:
        """Rebuild the back-ends in ``bad`` (rank -> corrupt frame count)
        from clean replica holders; returns frames repaired.

        Physical frame copy between replicas is impossible — copies of a
        partition are not byte-identical (each back-end laid its edges out
        in its own arrival order) — so repair is logical: wipe the
        back-end's devices, recreate its GraphDB, and re-materialize every
        partition it holds from the first clean, alive holder (the same
        extract/ship/store plumbing as :meth:`rebalance`).  A back-end is
        only repaired when *every* partition it holds has such a source;
        otherwise wiping would destroy its surviving clean partitions.
        """
        cfg = self.config
        rep = (
            self.declusterer
            if isinstance(self.declusterer, ReplicatedDeclusterer)
            else None
        )
        if not bad or rep is None or not self.declusterer.owner_known:
            return 0
        F, P = cfg.num_frontends, cfg.num_backends
        deadset = set(self.dead_backends())
        chains = {u: rep.replica_chain(u) for u in range(P)}
        corrupt = set(bad) | deadset

        def clean_source(u: int, q: int) -> int | None:
            for t in chains[u]:
                if t != q and t not in corrupt:
                    return t
            return None

        moves: list[tuple[int, int, int]] = []  # (partition, source, target)
        repairable: list[int] = []
        for q in sorted(set(bad) - deadset):
            held = [u for u in range(P) if q in chains[u]]
            sources = {u: clean_source(u, q) for u in held}
            if any(s is None for s in sources.values()):
                continue  # wiping would lose clean partitions; leave as-is
            repairable.append(q)
            moves.extend((u, sources[u], q) for u in held)
        if not repairable:
            return 0

        for q in repairable:
            node = self.cluster.nodes[F + q]
            for dev in node._disks.values():
                dev.truncate(0)
            self.dbs[q] = self._make_db(q)

        owner_of = self.declusterer.owner_of
        dbs = self.dbs
        TAG = 7701

        def extract(db, u: int) -> np.ndarray:
            verts = db.local_vertices()
            empty = np.zeros((0, 2), dtype=np.int64)
            if not len(verts):
                return empty
            mine = verts[owner_of(verts) == u]
            rows = []
            for v in mine:
                adj = db.get_adjacency(int(v))
                if len(adj):
                    rows.append(np.column_stack([np.full(len(adj), v, np.int64), adj]))
            return np.vstack(rows) if rows else empty

        def program(ctx):
            q = ctx.rank - F
            stored = False
            for u, src, dst in moves:
                if q == src:
                    entries = extract(dbs[src], u)
                    ctx.comm.send(
                        F + dst,
                        entries,
                        tag=TAG,
                        size=_adjacency_wire_size(
                            entries, self.config.compress_adjacency
                        ),
                    )
                if q == dst:
                    msg = yield from ctx.comm.recv(source=F + src, tag=TAG)
                    if len(msg.payload):
                        dbs[dst].store_edges(msg.payload)
                    stored = True
            if stored:
                dbs[q].finalize_ingest()
                dbs[q].flush()
            return None

        self.cluster.run(program)
        repaired = 0
        for q in repairable:
            node = self.cluster.nodes[F + q]
            node.repaired_frames = getattr(node, "repaired_frames", 0) + bad[q]
            repaired += bad[q]
        return repaired

    def repair_backends(self, ranks) -> int:
        """Read-repair: rebuild the given back-ends from replica data.

        Scrubs each named back-end's devices to count the damage, then
        re-materializes it from clean holders (see
        :meth:`_repair_from_replicas`).  Returns corrupt frames repaired —
        0 when nothing was corrupt, replication is 1, or the declustering
        has no owner map to extract partitions with.
        """
        bad: dict[int, int] = {}
        for q in sorted(set(int(r) for r in ranks)):
            _, nbad = self._count_corrupt_frames(q)
            if nbad:
                bad[q] = nbad
        return self._repair_from_replicas(bad)

    def scrub(self, repair: bool = True) -> ScrubReport:
        """Verify every stored frame of every back-end; repair what has
        clean replicas.

        Walks each back-end's checksummed devices end to end at
        sequential-scan rates (nodes scrub in parallel: the reported
        ``seconds`` is the slowest node's scan), recomputing each frame's
        CRC32.  With ``repair=True`` (default) and replicated data, any
        back-end holding corrupt frames is rebuilt from the clean holders;
        frames with no clean copy anywhere are reported unrecoverable.
        """
        before = [node.clock.now for node in self.cluster.nodes]
        scanned = 0
        bad: dict[int, int] = {}
        for q in range(self.config.num_backends):
            s, c = self._count_corrupt_frames(q)
            scanned += s
            if c:
                bad[q] = c
        seconds = max(
            node.clock.now - t0 for node, t0 in zip(self.cluster.nodes, before)
        )
        corrupt = sum(bad.values())
        repaired = self._repair_from_replicas(bad) if repair and bad else 0
        return ScrubReport(
            seconds=seconds,
            frames_scanned=scanned,
            corrupt_frames=corrupt,
            repaired_frames=repaired,
            unrecoverable_frames=corrupt - repaired,
            corrupt_backends=tuple(sorted(bad)),
        )

    def ingest_semantic(self, graph) -> tuple[IngestReport, dict[str, int]]:
        """Ingest a typed :class:`~repro.ontology.SemanticGraph`.

        Validates the instance against its ontology (raising on the first
        violation), streams its edges in, and replicates vertex-type
        metadata to every back-end so ontology-constrained analyses
        ("typed-bfs") work out of the box.  Returns the ingest report and
        the assigned ``type name -> integer code`` table.
        """
        from .ontology import validate_graph

        if graph.ontology is not None:
            violations = validate_graph(graph)
            if violations:
                raise ConfigError(
                    f"semantic graph violates its ontology: {violations[0].detail} "
                    f"(+{len(violations) - 1} more)"
                )
        report = self.ingest(graph.edge_list())
        type_names = sorted({t for _, t in graph.vertices()})
        codes = {name: i for i, name in enumerate(type_names)}
        type_codes = {gid: codes[t] for gid, t in graph.vertices()}
        self.queries.query("load-vertex-types", type_codes=type_codes)
        return report, codes

    def query_bfs(
        self,
        source: int,
        dest: int,
        pipelined: bool = False,
        visited: str = "memory",
        max_levels: int = 64,
        **kw,
    ) -> QueryReport:
        """Relationship query: hop distance from ``source`` to ``dest``.

        When the checksum layer flagged corrupt frames during the search
        (the shard was answered by a replica), the damaged back-ends are
        repaired afterwards — read-repair — and ``report.repairs`` counts
        the frames healed.  With replication=1 there is nothing to repair
        from and the report is flagged partial by the failover protocol.
        """
        analysis = "pipelined-bfs" if pipelined else "bfs"
        report = self.queries.query(
            analysis, source=source, dest=dest, visited=visited, max_levels=max_levels, **kw
        )
        if report.corrupt_backends and self.config.checksums:
            report.repairs = self.repair_backends(report.corrupt_backends)
        return report

    def query_many(
        self,
        pairs,
        tenants=None,
        deadline: float | None = None,
        max_inflight: int | None = None,
        shared_scans: bool | None = None,
        visited: str = "memory",
        max_levels: int = 64,
        analytics=None,
        stream_batches=None,
        stream_every: int = 1,
        **kw,
    ) -> DrainReport:
        """Serve many relationship queries concurrently in one cluster run.

        ``pairs`` is a sequence of ``(source, dest)``; ``tenants`` (optional,
        same length) tags each query for round-robin fairness; ``deadline``
        is a per-query virtual-seconds budget from admission.  ``analytics``
        optionally appends vertex-program queries to the same drain — each
        entry an analysis name ("pagerank", "components", "ego-net",
        "triangles") or an ``(analysis, params)`` pair — so analytics
        interleave with BFS superstep-by-level under the same admission
        control; their reports follow the BFS reports in submission order.
        Queries are interleaved level-by-level under the admission cap, with
        backend sweeps shared between a round's subscribers (see
        :class:`MSSGConfig.max_inflight` / ``shared_scans``).  Answers are
        bit-identical to running each pair through :meth:`query_bfs` (and
        each analytics entry through :meth:`query`) sequentially.  When the
        checksum layer flagged corrupt frames on any back-end during the
        drain, the damaged back-ends are read-repaired once afterwards
        (``report.repairs``).

        ``stream_batches`` (streaming deployments) interleaves ingest with
        the drain: each batch is appended to the delta logs at every
        ``stream_every``-th scheduling round, and every query answers
        against the snapshot published at its own admission
        (``QueryReport.snapshot_seq``) — bit-identical to querying a store
        that stopped ingesting at that snapshot.
        """
        pairs = list(pairs)
        feed = None
        if stream_batches is not None:
            if self.streaming is None:
                raise ConfigError(
                    "stream_batches requires MSSGConfig(streaming=True)"
                )
            feed = self.streaming.make_feed(stream_batches, every=stream_every)
            # Grow the id space *before* the drain: direction-opt bitmaps
            # and pinned visited arrays are sized from it at admission, and
            # mid-drain batches may introduce new vertex ids.
            hi = max(
                (int(np.asarray(b).max()) for b in stream_batches if np.asarray(b).size),
                default=-1,
            )
            if hi >= 0:
                self.queries.num_vertices = max(self.queries.num_vertices or 0, hi + 1)
        if tenants is not None and len(tenants) != len(pairs):
            raise ConfigError(
                f"tenants has {len(tenants)} entries for {len(pairs)} queries"
            )
        for i, (source, dest) in enumerate(pairs):
            self.queries.submit(
                source,
                dest,
                tenant="default" if tenants is None else tenants[i],
                deadline=deadline,
                visited=visited,
                max_levels=max_levels,
                **kw,
            )
        for entry in analytics or ():
            analysis, params = entry if isinstance(entry, tuple) else (entry, None)
            self.queries.submit(
                analysis=analysis, params=params, deadline=deadline
            )
        report = self.queries.drain(
            max_inflight=max_inflight, shared_scans=shared_scans, stream_feed=feed
        )
        if feed is not None:
            self._absorb_feed(feed)
        corrupt = sorted({q for rep in report.queries for q in rep.corrupt_backends})
        if corrupt and self.config.checksums:
            report.repairs = self.repair_backends(corrupt)
        return report

    def _absorb_feed(self, feed) -> None:
        """Fold an in-drain feed's applied batches into the façade state
        (accumulated ingest report, death records) — the same bookkeeping
        :meth:`ingest_stream` does per batch."""
        applied = feed.batches_applied
        if applied:
            inc = IngestReport(
                # Ingest time is inside the drain's makespan, already
                # reported there; double-charging it here would be wrong.
                seconds=0.0,
                edges_ingested=sum(feed.batch_sizes[:applied]),
                entries_stored=sum(feed.applied_entries),
                windows=applied,
                per_backend_entries=list(feed.applied_entries),
                replication=feed.replication,
                degraded=bool(feed.failed),
                failed_backends=tuple(sorted(feed.failed)),
                batches=applied,
            )
            if self.last_ingest is None:
                self.last_ingest = inc
            else:
                self.last_ingest.absorb(inc)
        if feed.failed:
            self.queries.known_dead |= set(feed.failed)
            self.queries.fault_tolerant = True

    def query(self, analysis: str, **params) -> QueryReport:
        return self.queries.query(analysis, **params)

    def backend_stats(self) -> list[dict]:
        """Per-back-end operation counters."""
        return [
            {
                "backend": db.name,
                "edges_stored": db.stats.edges_stored,
                "edges_scanned": db.stats.edges_scanned,
                "adjacency_requests": db.stats.adjacency_requests,
            }
            for db in self.dbs
        ]

    def close(self) -> None:
        for db in self.dbs:
            try:
                db.close()
            except DeviceFailedError:
                # Closing flushes dirty cache blocks; a back-end whose
                # device was killed by an injected fault cannot accept the
                # write-back, and teardown must not die with it.
                pass
        self.cluster.close()

    def __enter__(self) -> "MSSG":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
