"""MSSG reproduction: a framework for massive-scale semantic graphs.

Open-source reproduction of T. D. R. Hartley's MSSG (IEEE Cluster 2006 /
OSU M.S. thesis, 2006): a middleware framework for storing, ingesting and
searching scale-free semantic graphs out-of-core on a cluster, including
the grDB multi-level graph database and parallel out-of-core BFS.

Quick start::

    from repro import MSSG, MSSGConfig
    from repro.graphgen import pubmed_like

    mssg = MSSG(MSSGConfig(num_backends=4, backend="grDB"))
    mssg.ingest(pubmed_like(2000))
    print(mssg.query_bfs(source=1, dest=1234).result)

Subpackages: ``simcluster`` (simulated cluster substrate), ``datacutter``
(filter-stream middleware), ``ontology`` (semantic typing), ``graphgen``
(workload generators), ``storage`` (B-tree / KV / MiniSQL engines),
``graphdb`` (the six GraphDB backends incl. grDB), ``services``
(ingestion/query), ``bfs`` (Algorithms 1-2), ``experiments`` (chapter-5
harness).
"""

from .framework import MSSG, MSSGConfig, RebalanceReport, ScrubReport
from .services import DrainReport, QueryReport

__version__ = "1.0.0"

__all__ = [
    "MSSG",
    "MSSGConfig",
    "DrainReport",
    "QueryReport",
    "RebalanceReport",
    "ScrubReport",
    "__version__",
]
