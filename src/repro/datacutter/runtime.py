"""DataCutter runtime: executes a placed filter graph on a SimCluster.

Logical streams map onto communicator tags.  Writers route items per the
stream policy; readers block on the stream's tag.  Stream termination
follows the DataCutter unit-of-work model: when a producer copy calls
``close_output``, an end-of-stream marker goes to every consumer copy, and
a consumer's ``read`` returns :data:`END_OF_STREAM` once *all* producer
copies have closed.

A rank may host any number of filter copies (DataCutter's task
parallelism): the per-rank program multiplexes its filter coroutines,
advancing each until it needs input, satisfying reads from a shared
pending-message pool, and blocking on the communicator only when every
hosted filter is waiting.  Because writes are non-blocking, only reads
suspend, so co-located pipelines interleave naturally.
"""

from __future__ import annotations

from collections import defaultdict, deque
from typing import Any

from ..simcluster.cluster import RankContext, SimCluster
from ..simcluster.message import ANY
from ..util.errors import ConfigError, SimulationError
from .filter import END_OF_STREAM, Filter, FilterContext
from .layout import FilterGraph, StreamSpec

__all__ = ["DataCutterRuntime"]

_EOS_PAYLOAD = "__datacutter_eos__"
_STREAM_TAG_BASE = 1000


class DataCutterRuntime:
    """Compiles a :class:`FilterGraph` into rank programs and runs it."""

    def __init__(self, graph: FilterGraph, cluster: SimCluster):
        graph.validate(cluster.nranks)
        self.graph = graph
        self.cluster = cluster
        #: Fault board: ``(filter_name, copy_index)`` pairs that announced
        #: death via ``FilterContext.announce_death`` during this run.  The
        #: shared set stands in for DataCutter's out-of-band control
        #: channel; producers poll it (``FilterContext.dead_copies``) to
        #: reroute work away from dead consumers mid-stream.
        self.deaths: set[tuple[str, int]] = set()
        for i, s in enumerate(graph.streams):
            s.tag = _STREAM_TAG_BASE + i

    # -- per-copy wiring -------------------------------------------------

    def _streams_out(self, filter_name: str) -> dict[str, StreamSpec]:
        return {s.src_port: s for s in self.graph.streams if s.src_filter == filter_name}

    def _streams_in(self, filter_name: str) -> dict[str, StreamSpec]:
        return {s.dst_port: s for s in self.graph.streams if s.dst_filter == filter_name}

    def _make_filter_driver(self, spec, copy_index: int, rank_ctx: RankContext):
        """One filter copy as a coroutine yielding ``("want", tag)`` effects."""
        graph = self.graph
        out_streams = self._streams_out(spec.name)
        in_streams = self._streams_in(spec.name)
        filt = spec.factory()
        rr_counters = {port: 0 for port in out_streams}
        eos_seen = {port: 0 for port in in_streams}

        def writer(port: str, item: Any, size: int | None = None) -> None:
            stream = out_streams.get(port)
            if stream is None:
                raise ConfigError(f"{spec.name!r} has no connected output {port!r}")
            consumers = graph.filters[stream.dst_filter].placement
            if stream.policy == "broadcast":
                targets = consumers
            elif stream.policy == "keyed":
                targets = (consumers[stream.key_fn(item) % len(consumers)],)
            else:  # round_robin
                targets = (consumers[rr_counters[port] % len(consumers)],)
                rr_counters[port] += 1
            for dest in targets:
                rank_ctx.comm.send(dest, item, tag=stream.tag, size=size)

        def closer(port: str) -> None:
            stream = out_streams.get(port)
            if stream is None:
                raise ConfigError(f"{spec.name!r} has no connected output {port!r}")
            for dest in graph.filters[stream.dst_filter].placement:
                rank_ctx.comm.send(dest, _EOS_PAYLOAD, tag=stream.tag)

        def reader(port: str):
            stream = in_streams.get(port)
            if stream is None:
                raise ConfigError(f"{spec.name!r} has no connected input {port!r}")
            producers = graph.filters[stream.src_filter].num_copies
            while True:
                if eos_seen[port] >= producers:
                    return END_OF_STREAM
                msg = yield ("want", stream.tag)
                if isinstance(msg.payload, str) and msg.payload == _EOS_PAYLOAD:
                    eos_seen[port] += 1
                    continue
                return msg.payload

        deaths = self.deaths

        def announce() -> None:
            deaths.add((spec.name, copy_index))

        def dead_of(filter_name: str) -> frozenset:
            return frozenset(ci for fn, ci in deaths if fn == filter_name)

        ctx = FilterContext(
            rank_ctx=rank_ctx,
            filter_name=spec.name,
            copy_index=copy_index,
            num_copies=spec.num_copies,
            _reader=reader,
            _writer=writer,
            _closer=closer,
            _announce=announce,
            _dead_of=dead_of,
        )

        def driver():
            result = None
            for hook_index, hook in enumerate((filt.init, filt.process, filt.finalize)):
                ret = hook(ctx)
                if hasattr(ret, "send"):  # generator hook: drive it
                    hook_result = yield from ret
                else:
                    hook_result = ret
                if hook_index == 1:  # process() supplies the copy's result
                    result = hook_result
            return result

        return driver()

    def _make_rank_program(self, assignments: list[tuple[Any, int]]):
        """Multiplex all filter copies placed on one rank."""
        runtime = self

        def program(rank_ctx: RankContext):
            drivers: dict[int, Any] = {}
            wanted: dict[int, int] = {}
            results: dict[int, Any] = {}
            pending: dict[int, deque] = defaultdict(deque)

            def advance(i: int, value) -> None:
                try:
                    effect = drivers[i].send(value)
                except StopIteration as stop:
                    results[i] = stop.value
                    del drivers[i]
                    wanted.pop(i, None)
                    return
                if not (isinstance(effect, tuple) and len(effect) == 2 and effect[0] == "want"):
                    raise SimulationError(
                        f"filter driver yielded invalid effect {effect!r}"
                    )
                wanted[i] = effect[1]

            for i, (spec, copy_index) in enumerate(assignments):
                drivers[i] = runtime._make_filter_driver(spec, copy_index, rank_ctx)
            for i in list(drivers):
                advance(i, None)  # prime: run until first read or completion

            while drivers:
                progressed = False
                for i in list(drivers):
                    tag = wanted.get(i)
                    if tag is not None and pending[tag]:
                        advance(i, pending[tag].popleft())
                        progressed = True
                if drivers and not progressed:
                    # Every hosted filter is waiting: block for any stream
                    # message bound for this rank.
                    msg = yield from rank_ctx.comm.recv(source=ANY, tag=ANY)
                    pending[msg.tag].append(msg)

            leftovers = {t: len(q) for t, q in pending.items() if q}
            if leftovers:
                raise SimulationError(
                    f"rank {rank_ctx.rank} finished with undelivered stream "
                    f"messages: {leftovers}"
                )
            return [results[i] for i in range(len(assignments))]

        return program

    def run(self) -> dict[str, list[Any]]:
        """Execute the graph; returns per-filter lists of copy results."""
        by_rank: dict[int, list[tuple[Any, int]]] = defaultdict(list)
        slots: dict[int, list[tuple[str, int]]] = defaultdict(list)
        for spec in self.graph.filters.values():
            for copy_index, rank in enumerate(spec.placement):
                by_rank[rank].append((spec, copy_index))
                slots[rank].append((spec.name, copy_index))

        programs: list[Any] = []
        for rank in range(self.cluster.nranks):
            if rank in by_rank:
                programs.append(self._make_rank_program(by_rank[rank]))
            else:
                programs.append(_idle_program)
        raw = self.cluster.run(programs)

        results: dict[str, list[Any]] = {
            name: [None] * spec.num_copies for name, spec in self.graph.filters.items()
        }
        for rank, outcomes in enumerate(raw):
            if rank in slots:
                for (name, copy_index), outcome in zip(slots[rank], outcomes):
                    results[name][copy_index] = outcome
        return results


def _idle_program(rank_ctx: RankContext):
    """Placeholder for ranks that host no filter copy."""
    return None
    yield  # pragma: no cover - marks this as a generator function
