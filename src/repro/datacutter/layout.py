"""Filter-graph description and placement.

A :class:`FilterGraph` names a set of filters, how many copies of each run
and on which ranks (placement), and the logical streams wiring output ports
to input ports.  Streams carry a distribution policy for when a producer
writes to a multi-copy consumer:

* ``"round_robin"`` — demand-agnostic cycling across consumer copies,
* ``"broadcast"`` — every consumer copy receives every item,
* ``"keyed"`` — ``key_fn(item) % num_copies`` picks the copy (this is how
  the ingestion service routes edge blocks to the owning back-end node).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..util.errors import ConfigError
from .filter import Filter

__all__ = ["FilterGraph", "FilterSpec", "StreamSpec"]

_POLICIES = ("round_robin", "broadcast", "keyed")


@dataclass
class FilterSpec:
    name: str
    factory: Callable[[], Filter]
    placement: tuple[int, ...]  # rank of each copy

    @property
    def num_copies(self) -> int:
        return len(self.placement)


@dataclass
class StreamSpec:
    name: str
    src_filter: str
    src_port: str
    dst_filter: str
    dst_port: str
    policy: str = "round_robin"
    key_fn: Callable | None = None
    tag: int = -1  # assigned by the runtime


class FilterGraph:
    """A placed dataflow of filters and logical streams."""

    def __init__(self):
        self.filters: dict[str, FilterSpec] = {}
        self.streams: list[StreamSpec] = []

    def add_filter(
        self, name: str, factory: Callable[[], Filter], placement
    ) -> "FilterGraph":
        if name in self.filters:
            raise ConfigError(f"duplicate filter name {name!r}")
        placement = tuple(int(r) for r in placement)
        if not placement:
            raise ConfigError(f"filter {name!r} needs at least one copy")
        self.filters[name] = FilterSpec(name, factory, placement)
        return self

    def connect(
        self,
        src: str,
        src_port: str,
        dst: str,
        dst_port: str,
        policy: str = "round_robin",
        key_fn: Callable | None = None,
    ) -> "FilterGraph":
        for f in (src, dst):
            if f not in self.filters:
                raise ConfigError(f"stream references unknown filter {f!r}")
        if policy not in _POLICIES:
            raise ConfigError(f"unknown stream policy {policy!r}; choose from {_POLICIES}")
        if policy == "keyed" and key_fn is None:
            raise ConfigError("keyed streams need a key_fn")
        for s in self.streams:
            if s.dst_filter == dst and s.dst_port == dst_port:
                raise ConfigError(
                    f"input port {dst}.{dst_port} already fed by stream {s.name!r}"
                )
        name = f"{src}.{src_port}->{dst}.{dst_port}"
        self.streams.append(
            StreamSpec(name, src, src_port, dst, dst_port, policy, key_fn)
        )
        return self

    def validate(self, nranks: int) -> None:
        """Check placements fit the cluster and ports match declarations."""
        for spec in self.filters.values():
            for r in spec.placement:
                if not 0 <= r < nranks:
                    raise ConfigError(f"filter {spec.name!r} placed on invalid rank {r}")
        for s in self.streams:
            proto_src = self.filters[s.src_filter].factory()
            proto_dst = self.filters[s.dst_filter].factory()
            if proto_src.outputs and s.src_port not in proto_src.outputs:
                raise ConfigError(
                    f"{s.src_filter!r} declares outputs {proto_src.outputs}, not {s.src_port!r}"
                )
            if proto_dst.inputs and s.dst_port not in proto_dst.inputs:
                raise ConfigError(
                    f"{s.dst_filter!r} declares inputs {proto_dst.inputs}, not {s.dst_port!r}"
                )
