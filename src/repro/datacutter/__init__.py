"""DataCutter-style component middleware: filters, streams, placement."""

from .filter import END_OF_STREAM, Filter, FilterContext
from .layout import FilterGraph, FilterSpec, StreamSpec
from .runtime import DataCutterRuntime

__all__ = [
    "DataCutterRuntime",
    "END_OF_STREAM",
    "Filter",
    "FilterContext",
    "FilterGraph",
    "FilterSpec",
    "StreamSpec",
]
