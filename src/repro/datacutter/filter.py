"""DataCutter-style filters.

DataCutter (§3.1) structures an application as *filters* exchanging data
through unidirectional *logical streams*.  A filter reads only from its
input streams and writes only to its output streams; the runtime decides
placement and carries data between hosts.

A filter here is a class with ``init/process/finalize`` hooks, written as
generator methods so cross-host stream reads can suspend into the
simulated cluster's scheduler::

    class Doubler(Filter):
        def process(self, ctx):
            while True:
                item = yield from ctx.read("in")
                if item is END_OF_STREAM:
                    break
                ctx.write("out", item * 2)
            ctx.close_output("out")
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

__all__ = ["Filter", "FilterContext", "END_OF_STREAM"]


class _EndOfStream:
    """Sentinel delivered once per producer when a stream closes."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "END_OF_STREAM"


END_OF_STREAM = _EndOfStream()


class Filter:
    """Base class for user-defined processing components.

    Subclasses override any of :meth:`init`, :meth:`process`,
    :meth:`finalize`; each is a generator (use ``yield from`` for stream
    reads, or include an unreachable ``yield`` if it never suspends —
    the runtime also accepts plain methods that return ``None``).
    """

    #: Declared port names; the layout validates stream wiring against these.
    inputs: tuple[str, ...] = ()
    outputs: tuple[str, ...] = ()

    def init(self, ctx: "FilterContext"):
        """One-time setup before processing."""

    def process(self, ctx: "FilterContext"):
        """Main unit-of-work loop."""

    def finalize(self, ctx: "FilterContext"):
        """Cleanup after all input streams have drained."""


@dataclass
class FilterContext:
    """Runtime handle given to a filter instance.

    Created by :mod:`repro.datacutter.runtime`; exposes the rank context
    (clock, CPU charging) plus stream endpoints.
    """

    rank_ctx: Any  # simcluster.RankContext
    filter_name: str
    copy_index: int
    num_copies: int
    _reader: Any = None  # bound by the runtime
    _writer: Any = None
    _closer: Any = None
    _announce: Any = None
    _dead_of: Any = None

    @property
    def clock(self):
        return self.rank_ctx.clock

    def compute(self, seconds: float) -> None:
        self.rank_ctx.compute(seconds)

    def announce_death(self) -> None:
        """Post this copy's death on the runtime's fault board.

        Models the out-of-band control channel a DataCutter deployment
        would use to broadcast a filter failure: peers observe the death
        on their next :meth:`dead_copies` poll (the announcement itself is
        charged no stream bandwidth).
        """
        if self._announce is not None:
            self._announce()

    def dead_copies(self, filter_name: str) -> frozenset:
        """Copy indices of ``filter_name`` that have announced death."""
        if self._dead_of is None:
            return frozenset()
        return self._dead_of(filter_name)

    def read(self, port: str):
        """Generator: next item from ``port`` (or END_OF_STREAM)."""
        item = yield from self._reader(port)
        return item

    def write(self, port: str, item: Any, size: int | None = None) -> None:
        self._writer(port, item, size)

    def close_output(self, port: str) -> None:
        """Signal downstream consumers that this producer is done."""
        self._closer(port)
