"""Shared utilities: errors, growable long arrays, bitsets, size estimation."""

from .bitset import Bitset
from .errors import (
    CommError,
    ConfigError,
    CorruptBlockError,
    DeadlockError,
    DeviceFailedError,
    GraphStorageException,
    KeyNotFound,
    OntologyError,
    PageFormatError,
    ReproError,
    SimulationError,
    SqlError,
    StorageEngineError,
)
from .longarray import LongArray
from .sizes import HEADER_BYTES, payload_nbytes

__all__ = [
    "Bitset",
    "CommError",
    "ConfigError",
    "CorruptBlockError",
    "DeadlockError",
    "DeviceFailedError",
    "GraphStorageException",
    "HEADER_BYTES",
    "KeyNotFound",
    "LongArray",
    "OntologyError",
    "PageFormatError",
    "ReproError",
    "SimulationError",
    "SqlError",
    "StorageEngineError",
    "payload_nbytes",
]
