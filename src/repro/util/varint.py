"""Delta+varint codec for sorted adjacency (vectorized via numpy).

The compressed on-disk/on-wire adjacency representation: a sorted neighbor
list is stored as the varint of its first value followed by the varints of
the gaps to each successor.  Gaps in a strictly sorted list are >= 1, so a
decoded gap of 0 — or a stream that ends mid-varint, or a varint longer
than the canonical 9 bytes — is proof of corruption below the CRC frame
granularity and raises instead of decoding to a garbage neighbor list.

Varints are LEB128-style: 7 payload bits per byte, little-endian groups,
high bit = continuation.  Nine bytes carry 63 payload bits, so the codec
covers exactly the ids ``0 .. 2**63 - 1`` (every non-negative int64) and a
ten-byte group is never canonical.

Both encode and decode are numpy-vectorized: encode computes every value's
byte length with nine threshold compares and scatters the 7-bit groups in
at most nine passes; decode finds group terminators from the continuation
bits, reduces each group with ``np.add.reduceat``, and rebuilds values with
one cumulative sum.  The decode side is what the CPU cost model charges
(``CpuProfile.varint_decode_seconds`` per encoded byte).

For edge *batches* (StreamDB log records, rebalance wire transfers) the
module adds a two-stream layout: edges sorted by ``(src, dst)``, sources
delta-encoded non-strictly (repeats are legal — a vertex has many edges),
and destinations delta-encoded within each source group, restarting raw at
every group boundary (detectable from the source stream's non-zero gaps).
"""

from __future__ import annotations

import numpy as np

from .errors import GraphStorageException

__all__ = [
    "MAX_ENCODABLE",
    "varint_lengths",
    "encode_varints",
    "decode_varints",
    "encode_sorted",
    "decode_sorted",
    "sorted_encoded_size",
    "split_sorted_fit",
    "encode_edge_block",
    "decode_edge_block",
    "edge_block_bytes",
]

#: Largest encodable value: 9 varint bytes * 7 payload bits = 63 bits.
MAX_ENCODABLE = (1 << 63) - 1

#: value >= _THRESHOLDS[k]  <=>  its varint needs more than k+1 bytes.
_THRESHOLDS = np.array([1 << (7 * k) for k in range(1, 10)], dtype=np.uint64)


def _as_u64(values) -> np.ndarray:
    v = np.ascontiguousarray(values, dtype=np.uint64)
    if v.ndim != 1:
        raise GraphStorageException(f"varint codec expects a 1-d array, got shape {v.shape}")
    return v


def varint_lengths(values) -> np.ndarray:
    """Encoded byte length of each value (1..9, vectorized)."""
    v = _as_u64(values)
    if v.size and int(v.max()) > MAX_ENCODABLE:
        raise GraphStorageException(
            f"value {int(v.max())} exceeds the codec's 63-bit range"
        )
    return 1 + (v[:, None] >= _THRESHOLDS[None, :]).sum(axis=1)


def encode_varints(values) -> bytes:
    """Encode a flat sequence of u64 values (each <= ``MAX_ENCODABLE``)."""
    v = _as_u64(values)
    if v.size == 0:
        return b""
    lengths = varint_lengths(v)
    ends = np.cumsum(lengths)
    starts = ends - lengths
    out = np.zeros(int(ends[-1]), dtype=np.uint8)
    for k in range(int(lengths.max())):
        sel = lengths > k
        group = ((v[sel] >> np.uint64(7 * k)) & np.uint64(0x7F)).astype(np.uint8)
        cont = (lengths[sel] > k + 1).astype(np.uint8) << 7
        out[starts[sel] + k] = group | cont
    return out.tobytes()


def decode_varints(buf: bytes, count: int, what: str = "varint stream") -> tuple[np.ndarray, int]:
    """Decode the first ``count`` varints of ``buf``.

    Returns ``(values, consumed_bytes)``; trailing bytes (sub-block
    padding) are ignored.  Raises :class:`GraphStorageException` when the
    stream is truncated or a group is longer than the canonical 9 bytes.
    """
    if count == 0:
        return np.empty(0, dtype=np.uint64), 0
    b = np.frombuffer(buf, dtype=np.uint8)
    terminators = np.flatnonzero((b & 0x80) == 0)
    if len(terminators) < count:
        raise GraphStorageException(
            f"truncated {what}: {count} values promised, "
            f"only {len(terminators)} varints terminate in {len(b)} bytes"
        )
    end = int(terminators[count - 1]) + 1
    b = b[:end]
    ends = terminators[:count]
    starts = np.empty(count, dtype=np.int64)
    starts[0] = 0
    starts[1:] = ends[:-1] + 1
    lengths = ends - starts + 1
    if int(lengths.max()) > 9:
        raise GraphStorageException(
            f"corrupt {what}: varint group of {int(lengths.max())} bytes "
            "(canonical maximum is 9)"
        )
    # Position of every byte within its group, then one reduceat per group.
    pos = np.arange(end, dtype=np.uint64) - np.repeat(starts, lengths).astype(np.uint64)
    groups = (b & np.uint8(0x7F)).astype(np.uint64) << (np.uint64(7) * pos)
    values = np.add.reduceat(groups, starts)
    return values, end


# -- sorted neighbor lists (grDB sub-blocks) --------------------------------


def encode_sorted(values) -> bytes:
    """Encode a strictly increasing neighbor list as first + gap varints.

    Duplicates and unsorted input are rejected — the caller owns keeping
    per-sub-block lists strictly sorted (duplicate edges spill to the next
    sub-block in the chain).
    """
    v = _as_u64(values)
    if v.size == 0:
        return b""
    if v.size > 1 and np.any(v[1:] <= v[:-1]):
        raise GraphStorageException(
            "encode_sorted needs a strictly increasing list "
            "(duplicates rejected; sort and dedupe first)"
        )
    deltas = np.empty(v.size, dtype=np.uint64)
    deltas[0] = v[0]
    deltas[1:] = v[1:] - v[:-1]
    return encode_varints(deltas)


def decode_sorted(buf: bytes, count: int, what: str = "delta stream") -> tuple[np.ndarray, int]:
    """Decode ``count`` strictly increasing values; ``(values, consumed)``.

    A gap of zero (a duplicate — which :func:`encode_sorted` can never
    produce), a wrapped cumulative sum, or a value past the 63-bit range
    all mean the bytes were damaged below the checksum granularity; each
    raises :class:`GraphStorageException` instead of returning garbage.
    """
    deltas, consumed = decode_varints(buf, count, what=what)
    if count == 0:
        return deltas, consumed
    if count > 1 and int(deltas[1:].min()) == 0:
        raise GraphStorageException(
            f"non-monotone {what}: zero gap decodes to a duplicate neighbor"
        )
    values = np.cumsum(deltas, dtype=np.uint64)
    # uint64 cumsum wrap-around shows up as a non-increase.
    if count > 1 and np.any(values[1:] <= values[:-1]):
        raise GraphStorageException(f"non-monotone {what}: decoded ids decrease")
    if int(values[-1]) > MAX_ENCODABLE:
        raise GraphStorageException(
            f"corrupt {what}: decoded id {int(values[-1])} exceeds the 63-bit range"
        )
    return values, consumed


def sorted_encoded_size(values) -> int:
    """Encoded byte size of a strictly increasing list (no validation)."""
    v = _as_u64(values)
    if v.size == 0:
        return 0
    deltas = np.empty(v.size, dtype=np.uint64)
    deltas[0] = v[0]
    deltas[1:] = v[1:] - v[:-1]
    return int(varint_lengths(deltas).sum())


def split_sorted_fit(pending, budget_bytes: int, max_count: int) -> tuple[np.ndarray, np.ndarray]:
    """Split a sorted multiset into (encodable prefix, spill).

    The prefix takes the first occurrence of each value, in order, while
    its delta encoding fits ``budget_bytes`` and at most ``max_count``
    values; everything else (byte overflow *and* duplicate occurrences)
    spills, still sorted, for the next sub-block in the chain.  The prefix
    may be empty when even the first varint overflows the budget — the
    caller then stores only a continuation pointer.
    """
    p = _as_u64(pending)
    if p.size == 0:
        return p, p
    first = np.ones(p.size, dtype=bool)
    first[1:] = p[1:] != p[:-1]
    uniq = p[first]
    dups = p[~first]
    deltas = np.empty(uniq.size, dtype=np.uint64)
    deltas[0] = uniq[0]
    deltas[1:] = uniq[1:] - uniq[:-1]
    sizes = np.cumsum(varint_lengths(deltas))
    take = int(np.searchsorted(sizes, budget_bytes, side="right"))
    take = min(take, max_count)
    fit = uniq[:take]
    if take == uniq.size and dups.size == 0:
        return fit, np.empty(0, dtype=np.uint64)
    spill = np.sort(np.concatenate([uniq[take:], dups]), kind="stable")
    return fit, spill


# -- edge batches (StreamDB records, wire transfers) ------------------------


def encode_edge_block(edges) -> bytes:
    """Encode an ``(E, 2)`` edge batch as two delta streams.

    Edges are sorted by ``(src, dst)``; sources are gap-encoded allowing
    repeats (gap 0 = same source group), destinations restart raw at every
    group boundary and are gap-encoded (repeats legal — a duplicate edge)
    within it.  Decoding recovers the sorted order, not the arrival order.
    """
    e = np.ascontiguousarray(edges, dtype=np.uint64).reshape(-1, 2)
    if e.size == 0:
        return b""
    if int(e.max()) > MAX_ENCODABLE:
        raise GraphStorageException(
            f"vertex id {int(e.max())} exceeds the codec's 63-bit range"
        )
    order = np.lexsort((e[:, 1], e[:, 0]))
    srcs = e[order, 0]
    dsts = e[order, 1]
    sdel = np.empty(len(srcs), dtype=np.uint64)
    sdel[0] = srcs[0]
    sdel[1:] = srcs[1:] - srcs[:-1]
    new_group = np.ones(len(srcs), dtype=bool)
    new_group[1:] = sdel[1:] != 0
    ddel = np.empty(len(dsts), dtype=np.uint64)
    ddel[0] = dsts[0]
    ddel[1:] = np.where(new_group[1:], dsts[1:], dsts[1:] - dsts[:-1])
    return encode_varints(sdel) + encode_varints(ddel)


def decode_edge_block(buf: bytes, nedges: int, what: str = "edge block") -> tuple[np.ndarray, int]:
    """Decode ``nedges`` edges from :func:`encode_edge_block` output.

    Returns ``(edges (E, 2) int64, consumed_bytes)``; raises
    :class:`GraphStorageException` on truncation, decreasing sources,
    decreasing in-group destinations, or out-of-range ids.
    """
    if nedges == 0:
        return np.zeros((0, 2), dtype=np.int64), 0
    sdel, s_used = decode_varints(buf, nedges, what=f"{what} sources")
    ddel, d_used = decode_varints(buf[s_used:], nedges, what=f"{what} destinations")
    srcs = np.cumsum(sdel, dtype=np.uint64)
    if nedges > 1 and np.any(srcs[1:] < srcs[:-1]):
        raise GraphStorageException(f"non-monotone {what}: decoded sources decrease")
    new_group = np.ones(nedges, dtype=bool)
    new_group[1:] = sdel[1:] != 0
    # Segmented cumulative sum: subtract, inside each group, the running
    # total accumulated before the group started.
    csum = np.cumsum(ddel, dtype=np.uint64)
    starts = np.flatnonzero(new_group)
    base = csum[starts] - ddel[starts]
    counts = np.diff(np.append(starts, nedges))
    dsts = csum - np.repeat(base, counts)
    if np.any(dsts[~new_group] < np.roll(dsts, 1)[~new_group]):
        raise GraphStorageException(
            f"non-monotone {what}: in-group destinations decrease"
        )
    hi = max(int(srcs.max()), int(dsts.max()))
    if hi > MAX_ENCODABLE:
        raise GraphStorageException(
            f"corrupt {what}: decoded id {hi} exceeds the 63-bit range"
        )
    out = np.empty((nedges, 2), dtype=np.int64)
    out[:, 0] = srcs.astype(np.int64)
    out[:, 1] = dsts.astype(np.int64)
    return out, s_used + d_used


def edge_block_bytes(edges) -> int:
    """Encoded payload size of an edge batch (for wire-size accounting)."""
    return len(encode_edge_block(edges))
