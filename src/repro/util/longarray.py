"""Growable array of 64-bit integers.

The paper's prototype passes adjacency lists around in a Java helper class
called ``FastLongArrayStorage`` (see Listing 3.1); this is the numpy-backed
equivalent.  It amortizes growth doubling like ``ArrayList`` and exposes the
underlying buffer as a numpy view so hot paths (frontier expansion, metadata
filtering) stay vectorized.
"""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np

__all__ = ["LongArray"]

_MIN_CAPACITY = 8


class LongArray:
    """A growable ``int64`` array used to collect adjacency lists.

    Supports amortized O(1) ``append`` / ``extend``, O(1) ``clear`` and a
    zero-copy :meth:`view` of the live prefix.
    """

    __slots__ = ("_buf", "_n")

    def __init__(self, initial: Iterable[int] | None = None, capacity: int = _MIN_CAPACITY):
        capacity = max(int(capacity), _MIN_CAPACITY)
        self._buf = np.empty(capacity, dtype=np.int64)
        self._n = 0
        if initial is not None:
            self.extend(initial)

    def __len__(self) -> int:
        return self._n

    def __iter__(self) -> Iterator[int]:
        return iter(self.view())

    def __getitem__(self, idx):
        if isinstance(idx, slice):
            return self.view()[idx]
        n = self._n
        if idx < 0:
            idx += n
        if not 0 <= idx < n:
            raise IndexError(f"index {idx} out of range for LongArray of length {n}")
        return int(self._buf[idx])

    def __repr__(self) -> str:
        return f"LongArray({self.view().tolist()!r})"

    def __eq__(self, other) -> bool:
        if isinstance(other, LongArray):
            return bool(np.array_equal(self.view(), other.view()))
        if isinstance(other, (list, tuple)):
            return self.view().tolist() == list(other)
        return NotImplemented

    def __hash__(self):  # pragma: no cover - mutable container
        raise TypeError("LongArray is unhashable")

    @property
    def capacity(self) -> int:
        return len(self._buf)

    def _reserve(self, extra: int) -> None:
        need = self._n + extra
        if need <= len(self._buf):
            return
        cap = max(len(self._buf) * 2, need, _MIN_CAPACITY)
        buf = np.empty(cap, dtype=np.int64)
        buf[: self._n] = self._buf[: self._n]
        self._buf = buf

    def append(self, value: int) -> None:
        self._reserve(1)
        self._buf[self._n] = value
        self._n += 1

    def extend(self, values) -> None:
        arr = np.asarray(values, dtype=np.int64) if not isinstance(values, LongArray) else values.view()
        if arr.ndim != 1:
            raise ValueError("LongArray.extend expects a 1-D sequence")
        self._reserve(len(arr))
        self._buf[self._n : self._n + len(arr)] = arr
        self._n += len(arr)

    def clear(self) -> None:
        self._n = 0

    def view(self) -> np.ndarray:
        """Zero-copy view of the live elements. Invalidated by growth."""
        return self._buf[: self._n]

    def to_numpy(self) -> np.ndarray:
        """A copy of the live elements, safe to keep across mutations."""
        return self.view().copy()

    def tolist(self) -> list[int]:
        return self.view().tolist()

    def sort(self) -> None:
        self._buf[: self._n].sort()
