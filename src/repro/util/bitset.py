"""Dense bitset over 64-bit words, vectorized with numpy.

Used by the BFS visited structures, by grDB's sub-block allocation maps,
and as the wire format for bottom-up BFS fringes: the raw word array is
what ranks allgather (n/8 bytes instead of 8 bytes per fringe vertex), so
``words`` / ``or_words`` / ``from_words`` are deliberately zero-copy.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Bitset"]

_ONE = np.uint64(1)

if hasattr(np, "bitwise_count"):  # numpy >= 2.0

    def _popcount(words: np.ndarray) -> np.ndarray:
        """Per-word population count."""
        return np.bitwise_count(words)

else:  # pragma: no cover - exercised only on older numpy

    _M1 = np.uint64(0x5555555555555555)
    _M2 = np.uint64(0x3333333333333333)
    _M4 = np.uint64(0x0F0F0F0F0F0F0F0F)
    _H01 = np.uint64(0x0101010101010101)

    def _popcount(words: np.ndarray) -> np.ndarray:
        """Per-word population count (SWAR bit-twiddling)."""
        w = words - ((words >> _ONE) & _M1)
        w = (w & _M2) + ((w >> np.uint64(2)) & _M2)
        w = (w + (w >> np.uint64(4))) & _M4
        return (w * _H01) >> np.uint64(56)


class Bitset:
    """Fixed-capacity dense bitset with vectorized batch operations."""

    __slots__ = ("_words", "_nbits")

    def __init__(self, nbits: int):
        if nbits < 0:
            raise ValueError("nbits must be non-negative")
        self._nbits = int(nbits)
        self._words = np.zeros((self._nbits + 63) // 64, dtype=np.uint64)

    def __len__(self) -> int:
        return self._nbits

    def _check(self, idx: int) -> int:
        idx = int(idx)
        if not 0 <= idx < self._nbits:
            raise IndexError(f"bit {idx} out of range for Bitset of size {self._nbits}")
        return idx

    def set(self, idx: int) -> None:
        idx = self._check(idx)
        self._words[idx >> 6] |= np.uint64(1 << (idx & 63))

    def clear(self, idx: int) -> None:
        idx = self._check(idx)
        self._words[idx >> 6] &= ~np.uint64(1 << (idx & 63))

    def get(self, idx: int) -> bool:
        idx = self._check(idx)
        return bool((self._words[idx >> 6] >> np.uint64(idx & 63)) & _ONE)

    __getitem__ = get

    def set_many(self, idxs) -> None:
        idxs = np.asarray(idxs, dtype=np.int64)
        if idxs.size == 0:
            return
        if idxs.min() < 0 or idxs.max() >= self._nbits:
            raise IndexError("bit index out of range in set_many")
        np.bitwise_or.at(
            self._words,
            idxs >> 6,
            np.uint64(1) << (idxs & 63).astype(np.uint64),
        )

    def get_many(self, idxs) -> np.ndarray:
        """Boolean array: bit value for each index in ``idxs``."""
        idxs = np.asarray(idxs, dtype=np.int64)
        if idxs.size == 0:
            return np.zeros(0, dtype=bool)
        if idxs.min() < 0 or idxs.max() >= self._nbits:
            raise IndexError("bit index out of range in get_many")
        return (self._words[idxs >> 6] >> (idxs & 63).astype(np.uint64)) & _ONE != 0

    def count(self) -> int:
        """Number of set bits (word-wise popcount; no unpacked copy)."""
        return int(_popcount(self._words).sum())

    def clear_all(self) -> None:
        self._words[:] = 0

    def to_indices(self) -> np.ndarray:
        """Sorted array of all set bit positions.

        Extracts the lowest set bit of every nonzero word per round, so the
        work is O(set bits) instead of materializing an 8x ``unpackbits``
        copy of the whole word array.
        """
        nz = np.nonzero(self._words)[0]
        if nz.size == 0:
            return np.zeros(0, dtype=np.int64)
        w = self._words[nz].copy()
        base = nz.astype(np.int64) << 6
        chunks = []
        while w.size:
            lsb = w & (~w + _ONE)
            chunks.append(base + _popcount(lsb - _ONE).astype(np.int64))
            w &= w - _ONE
            keep = w != 0
            if not keep.all():
                w = w[keep]
                base = base[keep]
        out = np.concatenate(chunks)
        out.sort()
        return out

    # -- zero-copy word access (bottom-up fringe exchange) ----------------

    @property
    def words(self) -> np.ndarray:
        """The backing uint64 word array (a live view, not a copy)."""
        return self._words

    def or_words(self, words: np.ndarray) -> None:
        """OR a raw word array into this bitset in place (zero-copy merge)."""
        if len(words) != len(self._words):
            raise ValueError(
                f"word count mismatch: got {len(words)}, need {len(self._words)}"
            )
        self._words |= words

    @classmethod
    def from_words(cls, words: np.ndarray, nbits: int) -> "Bitset":
        """Wrap an existing uint64 word array without copying.

        Bits at positions >= ``nbits`` must be zero; the caller keeps
        ownership of ``words`` (mutations are visible both ways).
        """
        nbits = int(nbits)
        words = np.ascontiguousarray(words, dtype=np.uint64)
        if len(words) != (nbits + 63) // 64:
            raise ValueError(
                f"word count mismatch: got {len(words)}, need {(nbits + 63) // 64}"
            )
        bs = cls.__new__(cls)
        bs._nbits = nbits
        bs._words = words
        return bs
