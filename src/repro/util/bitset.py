"""Dense bitset over 64-bit words, vectorized with numpy.

Used by the BFS visited structures and by grDB's sub-block allocation maps.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Bitset"]


class Bitset:
    """Fixed-capacity dense bitset with vectorized batch operations."""

    __slots__ = ("_words", "_nbits")

    def __init__(self, nbits: int):
        if nbits < 0:
            raise ValueError("nbits must be non-negative")
        self._nbits = int(nbits)
        self._words = np.zeros((self._nbits + 63) // 64, dtype=np.uint64)

    def __len__(self) -> int:
        return self._nbits

    def _check(self, idx: int) -> int:
        idx = int(idx)
        if not 0 <= idx < self._nbits:
            raise IndexError(f"bit {idx} out of range for Bitset of size {self._nbits}")
        return idx

    def set(self, idx: int) -> None:
        idx = self._check(idx)
        self._words[idx >> 6] |= np.uint64(1 << (idx & 63))

    def clear(self, idx: int) -> None:
        idx = self._check(idx)
        self._words[idx >> 6] &= ~np.uint64(1 << (idx & 63))

    def get(self, idx: int) -> bool:
        idx = self._check(idx)
        return bool((self._words[idx >> 6] >> np.uint64(idx & 63)) & np.uint64(1))

    __getitem__ = get

    def set_many(self, idxs) -> None:
        idxs = np.asarray(idxs, dtype=np.int64)
        if idxs.size == 0:
            return
        if idxs.min() < 0 or idxs.max() >= self._nbits:
            raise IndexError("bit index out of range in set_many")
        np.bitwise_or.at(
            self._words,
            idxs >> 6,
            np.uint64(1) << (idxs & 63).astype(np.uint64),
        )

    def get_many(self, idxs) -> np.ndarray:
        """Boolean array: bit value for each index in ``idxs``."""
        idxs = np.asarray(idxs, dtype=np.int64)
        if idxs.size == 0:
            return np.zeros(0, dtype=bool)
        if idxs.min() < 0 or idxs.max() >= self._nbits:
            raise IndexError("bit index out of range in get_many")
        return (self._words[idxs >> 6] >> (idxs & 63).astype(np.uint64)) & np.uint64(1) != 0

    def count(self) -> int:
        """Number of set bits (population count)."""
        return int(np.unpackbits(self._words.view(np.uint8)).sum())

    def clear_all(self) -> None:
        self._words[:] = 0

    def to_indices(self) -> np.ndarray:
        """Sorted array of all set bit positions."""
        bits = np.unpackbits(self._words.view(np.uint8), bitorder="little")
        return np.nonzero(bits[: self._nbits])[0].astype(np.int64)
