"""Exception hierarchy for the MSSG reproduction.

The paper's ``GraphDB`` interface (Listing 3.1) throws a single checked
``GraphStorageException``; we keep that name and add a few siblings so that
callers can distinguish storage faults from simulation and configuration
errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this package."""


class GraphStorageException(ReproError):
    """A GraphDB backend failed to store or retrieve graph data.

    Mirrors the checked exception in the paper's Java ``Graph`` interface.
    """


class StorageEngineError(ReproError):
    """A low-level storage engine (paged file, B-tree, MiniSQL) failed."""


class PageFormatError(StorageEngineError):
    """An on-disk page failed validation (bad magic, corrupt layout)."""


class KeyNotFound(StorageEngineError):
    """A key lookup in an index or key-value store found nothing."""


class SqlError(StorageEngineError):
    """MiniSQL statement failed to parse, bind, or execute."""


class SimulationError(ReproError):
    """The simulated cluster reached an invalid state."""


class DeviceFailedError(ReproError):
    """An injected disk fault fired: the block device no longer serves I/O.

    Unlike the other errors this one models *hardware* misbehavior, not a
    program bug — fault-tolerant callers (the BFS failover path) catch it
    and re-route work to a surviving replica; everything else lets it
    propagate, which is the pre-replication behavior.
    """


class CorruptBlockError(DeviceFailedError):
    """A read returned provably bad data: an on-disk frame failed its CRC.

    Subclasses :class:`DeviceFailedError` so every fault-tolerant call site
    (BFS failover, ingestion writers, rebalance) already treats it like a
    dead-chain-member hop and reroutes to a surviving replica.  Unlike its
    parent the device *keeps serving I/O* — only the named frame is bad —
    so callers that care (read-repair, the scrub service) can distinguish
    via ``isinstance`` and rewrite the frame from a clean copy instead of
    declaring the whole device dead.

    Attributes ``device`` (name), ``offset`` and ``length`` locate the bad
    frame on the *physical* (checksummed) layout.
    """

    def __init__(self, device: str, offset: int, length: int, detail: str = ""):
        self.device = device
        self.offset = int(offset)
        self.length = int(length)
        msg = f"corrupt frame on device {device!r} at offset {offset} (+{length} bytes)"
        if detail:
            msg += f": {detail}"
        super().__init__(msg)


class DeadlockError(SimulationError):
    """Every rank is blocked and no message can unblock any of them."""


class CommError(SimulationError):
    """Invalid use of the communicator (bad rank, tag, or payload)."""


class OntologyError(ReproError):
    """A semantic graph violates its ontology, or the ontology is invalid."""


class ConfigError(ReproError):
    """Invalid experiment, cluster, or database configuration."""
