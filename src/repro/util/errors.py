"""Exception hierarchy for the MSSG reproduction.

The paper's ``GraphDB`` interface (Listing 3.1) throws a single checked
``GraphStorageException``; we keep that name and add a few siblings so that
callers can distinguish storage faults from simulation and configuration
errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this package."""


class GraphStorageException(ReproError):
    """A GraphDB backend failed to store or retrieve graph data.

    Mirrors the checked exception in the paper's Java ``Graph`` interface.
    """


class StorageEngineError(ReproError):
    """A low-level storage engine (paged file, B-tree, MiniSQL) failed."""


class PageFormatError(StorageEngineError):
    """An on-disk page failed validation (bad magic, corrupt layout)."""


class KeyNotFound(StorageEngineError):
    """A key lookup in an index or key-value store found nothing."""


class SqlError(StorageEngineError):
    """MiniSQL statement failed to parse, bind, or execute."""


class SimulationError(ReproError):
    """The simulated cluster reached an invalid state."""


class DeviceFailedError(ReproError):
    """An injected disk fault fired: the block device no longer serves I/O.

    Unlike the other errors this one models *hardware* misbehavior, not a
    program bug — fault-tolerant callers (the BFS failover path) catch it
    and re-route work to a surviving replica; everything else lets it
    propagate, which is the pre-replication behavior.
    """


class DeadlockError(SimulationError):
    """Every rank is blocked and no message can unblock any of them."""


class CommError(SimulationError):
    """Invalid use of the communicator (bad rank, tag, or payload)."""


class OntologyError(ReproError):
    """A semantic graph violates its ontology, or the ontology is invalid."""


class ConfigError(ReproError):
    """Invalid experiment, cluster, or database configuration."""
