"""Message payload size estimation for the simulated network.

The network cost model charges ``latency + nbytes / bandwidth`` per message.
Senders can pass an explicit ``size`` to :meth:`Comm.send`; when they do not,
this module estimates the wire size of common payload shapes, mirroring how
the paper's DataCutter buffers serialize (binary, 8 bytes per vertex id).
"""

from __future__ import annotations

import pickle
from typing import Any

import numpy as np

from .longarray import LongArray

__all__ = ["payload_nbytes", "HEADER_BYTES"]

#: Fixed per-message envelope (tag, source, length), as in a binary protocol.
HEADER_BYTES = 24


def payload_nbytes(payload: Any) -> int:
    """Estimate the on-wire byte size of ``payload`` (excluding header).

    Vertex ids travel as 8-byte integers; containers are summed recursively.
    Unknown objects fall back to their pickle length, which is what a generic
    middleware would ship anyway.
    """
    if payload is None:
        return 0
    if isinstance(payload, (bool, int, float)):
        return 8
    if isinstance(payload, np.ndarray):
        return int(payload.nbytes)
    if isinstance(payload, LongArray):
        return 8 * len(payload)
    if isinstance(payload, (bytes, bytearray, memoryview)):
        return len(payload)
    if isinstance(payload, str):
        return len(payload.encode("utf-8"))
    if isinstance(payload, (list, tuple, set, frozenset)):
        return sum(payload_nbytes(x) for x in payload)
    if isinstance(payload, dict):
        return sum(payload_nbytes(k) + payload_nbytes(v) for k, v in payload.items())
    return len(pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL))
