"""Conservative discrete-event scheduler over rank coroutines.

Each simulated rank is a Python generator.  Local work (CPU, disk) advances
the rank's own :class:`VirtualClock` directly and needs no scheduler
involvement; only *communication* yields control.  The yield protocol is:

``("recv", source, tag)``
    Block until a matching message can be *safely* delivered; the scheduler
    resumes the generator with the :class:`Message` and advances the rank's
    clock to ``max(clock, msg.arrival)``.

``("probe", source, tag)``
    Ask whether a matching message has arrived by the rank's current clock.
    The scheduler resumes with the earliest such :class:`Message` (not
    consumed) or ``None`` — but only once it can *prove* the answer, i.e.
    once no other rank can still inject an earlier-arriving match.

Safety argument (conservative PDES).  Any future message is created by some
rank after it next runs, so its arrival strictly exceeds that rank's *lower
bound* ``lb``: the local clock for a runnable rank, ``max(clock, earliest
candidate arrival)`` for a rank blocked on a deliverable recv, and ``+inf``
for ranks that cannot act until someone else does (their first action is
causally after another rank's, whose bound is already in the minimum, or
after the very delivery being justified).  A recv delivery of message ``m``
to rank ``r`` is eligible iff ``m.arrival <= min(lb[x] for x != r)``; a
probe answers ``False`` once that same minimum reaches the prober's clock.
The run loop always executes the eligible action with the smallest event
time (ties broken by kind then rank), which yields a fully deterministic,
causally-ordered simulation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable, Generator

from ..util.errors import DeadlockError, SimulationError
from .message import ANY, Message

__all__ = ["Scheduler", "RankState"]

_INF = float("inf")


class RankState(enum.Enum):
    """Lifecycle state of one simulated rank."""

    RUNNABLE = "runnable"
    BLOCKED_RECV = "blocked_recv"
    BLOCKED_PROBE = "blocked_probe"
    DONE = "done"
    FAILED = "failed"


@dataclass
class _Rank:
    index: int
    gen: Generator
    clock: Any  # VirtualClock
    state: RankState = RankState.RUNNABLE
    wait_source: int = ANY
    wait_tag: int = ANY
    mailbox: list[Message] = field(default_factory=list)
    result: Any = None
    send_value: Any = None  # value to send into the generator on next step
    steps: int = 0


class Scheduler:
    """Runs a set of rank generators to completion in virtual time."""

    def __init__(self, clocks, max_steps: int = 50_000_000):
        self._ranks: list[_Rank] = []
        self._clocks = list(clocks)
        self._seq = 0
        self._max_steps = max_steps
        self._total_steps = 0

    # -- wiring ---------------------------------------------------------

    @property
    def nranks(self) -> int:
        return len(self._clocks)

    def add_rank(self, gen: Generator) -> None:
        idx = len(self._ranks)
        if idx >= len(self._clocks):
            raise SimulationError("more rank programs than clocks")
        self._ranks.append(_Rank(index=idx, gen=gen, clock=self._clocks[idx]))

    def next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def post(self, msg: Message) -> None:
        """Enqueue a message for its destination (called by Comm.send)."""
        if not 0 <= msg.dest < len(self._ranks):
            raise SimulationError(f"message to invalid rank {msg.dest}")
        box = self._ranks[msg.dest].mailbox
        box.append(msg)
        # Keep mailbox ordered by (arrival, seq) for deterministic matching.
        if len(box) > 1 and (box[-2].arrival, box[-2].seq) > (msg.arrival, msg.seq):
            box.sort(key=lambda m: (m.arrival, m.seq))

    # -- matching helpers -------------------------------------------------

    @staticmethod
    def _earliest_match(rank: _Rank, source: int, tag: int) -> Message | None:
        for m in rank.mailbox:  # mailbox is (arrival, seq)-sorted
            if m.matches(source, tag):
                return m
        return None

    def _lower_bound(self, rank: _Rank) -> float:
        """Lower bound on the time of this rank's next action (see module doc)."""
        if rank.state is RankState.RUNNABLE:
            return rank.clock.now
        if rank.state is RankState.BLOCKED_RECV:
            m = self._earliest_match(rank, rank.wait_source, rank.wait_tag)
            if m is not None:
                return max(rank.clock.now, m.arrival)
            return _INF
        if rank.state is RankState.BLOCKED_PROBE:
            # A probing rank resumes at its own clock (probe does not wait for
            # future messages, only for proof of absence).
            return rank.clock.now
        return _INF

    # -- stepping ---------------------------------------------------------

    def _step(self, rank: _Rank) -> None:
        """Advance one rank generator to its next yield (or completion)."""
        self._total_steps += 1
        rank.steps += 1
        if self._total_steps > self._max_steps:
            raise SimulationError(f"scheduler exceeded {self._max_steps} steps; runaway program?")
        value, rank.send_value = rank.send_value, None
        try:
            effect = rank.gen.send(value)
        except StopIteration as stop:
            rank.state = RankState.DONE
            rank.result = stop.value
            return
        if not (isinstance(effect, tuple) and len(effect) == 3 and effect[0] in ("recv", "probe")):
            rank.state = RankState.FAILED
            raise SimulationError(
                f"rank {rank.index} yielded invalid effect {effect!r}; "
                "expected ('recv'|'probe', source, tag)"
            )
        kind, source, tag = effect
        rank.wait_source = int(source)
        rank.wait_tag = int(tag)
        rank.state = RankState.BLOCKED_RECV if kind == "recv" else RankState.BLOCKED_PROBE

    def run(self) -> list[Any]:
        """Run all ranks to completion; returns their return values."""
        ranks = self._ranks
        while True:
            live = [r for r in ranks if r.state not in (RankState.DONE, RankState.FAILED)]
            if not live:
                break

            lbs = {r.index: self._lower_bound(r) for r in live}

            # Candidate actions: (event_time, kind_priority, rank_index, action)
            candidates: list[tuple[float, int, int, Callable[[], None]]] = []
            for r in live:
                if r.state is RankState.RUNNABLE:
                    candidates.append((r.clock.now, 0, r.index, self._make_run(r)))
                elif r.state is RankState.BLOCKED_RECV:
                    m = self._earliest_match(r, r.wait_source, r.wait_tag)
                    if m is None:
                        continue
                    other_lb = min(
                        (lb for i, lb in lbs.items() if i != r.index), default=_INF
                    )
                    if m.arrival <= other_lb:
                        when = max(r.clock.now, m.arrival)
                        candidates.append((when, 1, r.index, self._make_deliver(r, m)))
                elif r.state is RankState.BLOCKED_PROBE:
                    m = self._earliest_probe_hit(r)
                    if m is not None:
                        candidates.append((r.clock.now, 2, r.index, self._make_probe_answer(r, m)))
                    else:
                        other_lb = min(
                            (lb for i, lb in lbs.items() if i != r.index), default=_INF
                        )
                        if other_lb >= r.clock.now:
                            candidates.append(
                                (r.clock.now, 2, r.index, self._make_probe_answer(r, None))
                            )

            if not candidates:
                blocked = {r.index: (r.state.value, r.wait_source, r.wait_tag) for r in live}
                raise DeadlockError(f"simulation deadlock; blocked ranks: {blocked}")

            candidates.sort(key=lambda c: (c[0], c[1], c[2]))
            candidates[0][3]()

        failed = [r.index for r in ranks if r.state is RankState.FAILED]
        if failed:  # pragma: no cover - _step re-raises before we get here
            raise SimulationError(f"ranks failed: {failed}")
        return [r.result for r in ranks]

    def _earliest_probe_hit(self, rank: _Rank) -> Message | None:
        m = self._earliest_match(rank, rank.wait_source, rank.wait_tag)
        if m is not None and m.arrival <= rank.clock.now:
            return m
        return None

    def _make_run(self, rank: _Rank):
        def action():
            self._step(rank)

        return action

    def _make_deliver(self, rank: _Rank, msg: Message):
        def action():
            rank.mailbox.remove(msg)
            rank.clock.advance_to(msg.arrival)
            rank.send_value = msg
            rank.state = RankState.RUNNABLE
            self._step(rank)

        return action

    def _make_probe_answer(self, rank: _Rank, msg: Message | None):
        def action():
            rank.send_value = msg
            rank.state = RankState.RUNNABLE
            self._step(rank)

        return action

    # -- inspection -------------------------------------------------------

    def consume(self, rank_index: int, msg: Message) -> None:
        """Remove a specific message from a mailbox (used after probe)."""
        self._ranks[rank_index].mailbox.remove(msg)

    def mailbox_of(self, rank_index: int) -> list[Message]:
        return list(self._ranks[rank_index].mailbox)
