"""Deterministic discrete-event simulation of a storage cluster.

This package is the substitute for the paper's 64-node Opteron cluster:
rank programs written against an MPI-like :class:`Comm` run as coroutines
under a conservative discrete-event :class:`Scheduler`; per-node
:class:`BlockDevice` disks store real bytes while charging virtual time from
calibrated seek/bandwidth/CPU cost models.
"""

from .cluster import RankContext, SimCluster, SimNode
from .comm import ANY, Comm, SubComm
from .costmodel import CpuProfile, DiskProfile, NetworkProfile, NodeSpec
from .disk import BlockDevice, DiskStats, FileBacking, MemoryBacking
from .faults import DiskFault, FaultPlan
from .message import Message
from .scheduler import RankState, Scheduler
from .virtualtime import VirtualClock

__all__ = [
    "ANY",
    "BlockDevice",
    "Comm",
    "CpuProfile",
    "DiskFault",
    "DiskProfile",
    "DiskStats",
    "FaultPlan",
    "FileBacking",
    "MemoryBacking",
    "Message",
    "NetworkProfile",
    "NodeSpec",
    "RankContext",
    "RankState",
    "Scheduler",
    "SimCluster",
    "SimNode",
    "SubComm",
    "VirtualClock",
]
