"""MPI-like communicator for simulated ranks.

One :class:`Comm` is bound to each rank.  ``send`` is buffered/eager (the
sender is only charged its injection overhead, like ``MPI_Isend`` + DMA);
``recv`` and ``probe`` are *generator* methods, so rank programs call them
with ``yield from``::

    def program(ctx):
        if ctx.rank == 0:
            ctx.comm.send(1, {"hello": "world"}, tag=7)
        else:
            msg = yield from ctx.comm.recv(source=0, tag=7)

Collectives (``bcast``, ``gather``, ``allgather``, ``reduce``, ``allreduce``,
``barrier``, ``alltoall``) are built from point-to-point operations on a
reserved tag space; as in MPI, every rank must invoke the same collectives
in the same order.  ``bcast`` uses a binomial tree, so its critical path
grows with ``log2(p)``.
"""

from __future__ import annotations

from typing import Any, Callable, Generator

import numpy as np

from ..util.errors import CommError
from ..util.longarray import LongArray
from ..util.sizes import HEADER_BYTES, payload_nbytes
from .costmodel import NetworkProfile
from .message import ANY, Message
from .scheduler import Scheduler
from .virtualtime import VirtualClock

__all__ = ["Comm", "SubComm", "ANY"]

#: User tags must stay below this; collectives use the space above it.
MAX_USER_TAG = 1 << 30
#: Sub-communicator collectives use a further-offset tag space so they can
#: never match a parent communicator's collective traffic.
SUBCOMM_TAG_BASE = MAX_USER_TAG * 2


def _isolate(payload: Any) -> Any:
    """Defensively copy mutable array payloads, as serialization would."""
    if isinstance(payload, np.ndarray):
        return payload.copy()
    if isinstance(payload, LongArray):
        return payload.to_numpy()
    return payload


class Comm:
    """Point-to-point + collective communication endpoint of one rank."""

    def __init__(
        self,
        scheduler: Scheduler,
        rank: int,
        size: int,
        clock: VirtualClock,
        network: NetworkProfile,
    ):
        if size <= 0 or not 0 <= rank < size:
            raise CommError(f"invalid rank {rank} for communicator of size {size}")
        self._sched = scheduler
        self.rank = rank
        self.size = size
        self._clock = clock
        self._net = network
        self._nic_free_at = 0.0
        self._coll_seq = 0
        self.sent_messages = 0
        self.sent_bytes = 0
        self.received_messages = 0

    # -- point to point ---------------------------------------------------

    def send(self, dest: int, payload: Any = None, tag: int = 0, size: int | None = None) -> None:
        """Eagerly send ``payload`` to ``dest``; returns immediately.

        The sender's clock is charged per-message overhead plus a per-byte
        copy cost; the transfer itself is serialized through this rank's NIC
        in the background (so back-to-back sends queue up) and the message
        arrives at ``injection_end + latency``.
        """
        if not 0 <= dest < self.size:
            raise CommError(f"send to invalid rank {dest} (size {self.size})")
        if tag < 0:
            raise CommError(f"negative tag {tag}")
        nbytes = HEADER_BYTES + (payload_nbytes(payload) if size is None else int(size))
        self._clock.advance(self._net.sender_cost(nbytes))
        start = max(self._clock.now, self._nic_free_at)
        self._nic_free_at = start + self._net.transfer_seconds(nbytes)
        arrival = self._nic_free_at + self._net.latency
        self._sched.post(
            Message(
                source=self.rank,
                dest=dest,
                tag=tag,
                payload=_isolate(payload),
                nbytes=nbytes,
                arrival=arrival,
                seq=self._sched.next_seq(),
            )
        )
        self.sent_messages += 1
        self.sent_bytes += nbytes

    def recv(self, source: int = ANY, tag: int = ANY) -> Generator[tuple, Message, Message]:
        """Block until a matching message arrives; returns the Message."""
        msg = yield ("recv", source, tag)
        self.received_messages += 1
        return msg

    def probe(self, source: int = ANY, tag: int = ANY) -> Generator[tuple, Any, Message | None]:
        """Non-blocking check for an arrived matching message.

        Returns the earliest matching :class:`Message` *without consuming
        it*, or ``None`` if no match has arrived by the rank's current
        virtual time.  Follow up with :meth:`recv` to consume.
        """
        msg = yield ("probe", source, tag)
        return msg

    def try_recv(self, source: int = ANY, tag: int = ANY) -> Generator[tuple, Any, Message | None]:
        """Probe and, when a message is available, consume and return it."""
        msg = yield ("probe", source, tag)
        if msg is None:
            return None
        self._sched.consume(self.rank, msg)
        self.received_messages += 1
        return msg

    # -- collectives -------------------------------------------------------

    def _next_coll_tag(self) -> int:
        self._coll_seq += 1
        return MAX_USER_TAG + self._coll_seq

    def barrier(self) -> Generator:
        """Synchronize all ranks (gather-to-0 then binomial broadcast)."""
        yield from self.allreduce(0, lambda a, b: 0)

    def bcast(self, value: Any, root: int = 0) -> Generator:
        """Broadcast ``value`` from ``root`` via a binomial tree."""
        tag = self._next_coll_tag()
        vrank = (self.rank - root) % self.size
        # Receive phase: each non-root rank waits for its binomial-tree parent.
        mask = 1
        while mask < self.size:
            if vrank & mask:
                parent = (self.rank - mask) % self.size
                msg = yield from self.recv(source=parent, tag=tag)
                value = msg.payload
                break
            mask <<= 1
        # Send phase: forward to children below the bit where we received.
        mask >>= 1
        while mask > 0:
            if vrank + mask < self.size:
                child = (self.rank + mask) % self.size
                self.send(child, value, tag=tag)
            mask >>= 1
        return value

    def gather(self, value: Any, root: int = 0) -> Generator:
        """Gather one value per rank at ``root``; returns the list there."""
        tag = self._next_coll_tag()
        if self.rank != root:
            self.send(root, value, tag=tag)
            return None
        out: list[Any] = [None] * self.size
        out[root] = value
        for _ in range(self.size - 1):
            msg = yield from self.recv(source=ANY, tag=tag)
            out[msg.source] = msg.payload
        return out

    def allgather(self, value: Any) -> Generator:
        gathered = yield from self.gather(value, root=0)
        gathered = yield from self.bcast(gathered, root=0)
        return gathered

    def reduce(self, value: Any, op: Callable[[Any, Any], Any], root: int = 0) -> Generator:
        """Reduce values with binary ``op`` at ``root`` (rank order)."""
        gathered = yield from self.gather(value, root=root)
        if self.rank != root:
            return None
        acc = gathered[0]
        for v in gathered[1:]:
            acc = op(acc, v)
        return acc

    def allreduce(self, value: Any, op: Callable[[Any, Any], Any]) -> Generator:
        acc = yield from self.reduce(value, op, root=0)
        acc = yield from self.bcast(acc, root=0)
        return acc

    def alltoall(self, values: list[Any]) -> Generator:
        """Personalized all-to-all: ``values[i]`` goes to rank ``i``."""
        if len(values) != self.size:
            raise CommError(f"alltoall needs exactly {self.size} values, got {len(values)}")
        tag = self._next_coll_tag()
        for dest in range(self.size):
            if dest != self.rank:
                self.send(dest, values[dest], tag=tag)
        out: list[Any] = [None] * self.size
        out[self.rank] = _isolate(values[self.rank])
        for _ in range(self.size - 1):
            msg = yield from self.recv(source=ANY, tag=tag)
            out[msg.source] = msg.payload
        return out


class SubComm(Comm):
    """A communicator over a subset of a parent communicator's ranks.

    Like ``MPI_Comm_split``: group members get dense ranks ``0..k-1`` and
    all point-to-point/collective traffic is translated to global ranks.
    Used by the Query Service to run BFS over only the back-end ranks of a
    front-end + back-end cluster.  Received messages are re-labelled with
    group-local source/dest ranks.
    """

    def __init__(self, parent: Comm, ranks):
        ranks = [int(r) for r in ranks]
        if len(set(ranks)) != len(ranks):
            raise CommError(f"duplicate ranks in sub-communicator group {ranks}")
        if parent.rank not in ranks:
            raise CommError(
                f"rank {parent.rank} constructing a SubComm it does not belong to"
            )
        for r in ranks:
            if not 0 <= r < parent.size:
                raise CommError(f"group rank {r} outside parent communicator")
        # Deliberately skip Comm.__init__: state is shared with the parent.
        self._parent = parent
        self._sched = parent._sched
        self._group = ranks
        self._local_of = {g: i for i, g in enumerate(ranks)}
        self.rank = self._local_of[parent.rank]
        self.size = len(ranks)
        self._clock = parent._clock
        self._net = parent._net
        self._coll_seq = 0
        self.sent_messages = 0
        self.sent_bytes = 0
        self.received_messages = 0

    def _next_coll_tag(self) -> int:
        self._coll_seq += 1
        return SUBCOMM_TAG_BASE + self._coll_seq

    def _to_global(self, local: int) -> int:
        if local == ANY:
            return ANY
        if not 0 <= local < self.size:
            raise CommError(f"rank {local} outside sub-communicator of size {self.size}")
        return self._group[local]

    def _localize(self, msg: Message) -> Message:
        src = self._local_of.get(msg.source)
        if src is None:
            raise CommError(
                f"message from global rank {msg.source} leaked into sub-communicator"
            )
        return Message(
            source=src,
            dest=self.rank,
            tag=msg.tag,
            payload=msg.payload,
            nbytes=msg.nbytes,
            arrival=msg.arrival,
            seq=msg.seq,
        )

    def send(self, dest: int, payload: Any = None, tag: int = 0, size: int | None = None) -> None:
        self._parent.send(self._to_global(dest), payload, tag=tag, size=size)
        self.sent_messages += 1

    def recv(self, source: int = ANY, tag: int = ANY):
        msg = yield ("recv", self._to_global(source), tag)
        self.received_messages += 1
        return self._localize(msg)

    def probe(self, source: int = ANY, tag: int = ANY):
        msg = yield ("probe", self._to_global(source), tag)
        return self._localize(msg) if msg is not None else None

    def try_recv(self, source: int = ANY, tag: int = ANY):
        msg = yield ("probe", self._to_global(source), tag)
        if msg is None:
            return None
        self._sched.consume(self._parent.rank, msg)
        self.received_messages += 1
        return self._localize(msg)
