"""Simulated block storage: real bytes, virtual time.

A :class:`BlockDevice` stores genuine bytes (in memory or in a real file on
the host filesystem) while charging its owning node's :class:`VirtualClock`
from a :class:`~repro.simcluster.costmodel.DiskProfile`.  Sequential access
(a request starting exactly where the previous one ended) skips the seek
charge, so append-only engines like StreamDB come out fast and random
sub-block access (grDB without its cache) comes out seek-bound — the
asymmetry that drives every out-of-core result in the paper.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from dataclasses import dataclass

from ..util.errors import DeviceFailedError
from .costmodel import DiskProfile
from .virtualtime import VirtualClock

__all__ = ["MemoryBacking", "FileBacking", "BlockDevice", "DiskStats", "OSPageCache"]


class OSPageCache:
    """A node-wide OS page cache (time model only).

    Shared by every :class:`BlockDevice` of a node, mirroring how one
    kernel page cache fronts all files on a host.  Keys are
    ``(device name, page number)``; capacity is in pages.
    """

    def __init__(self, capacity_pages: int):
        self.capacity = max(1, int(capacity_pages))
        self.pages: OrderedDict[tuple[str, int], None] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def touch(self, key: tuple[str, int]) -> bool:
        """Record an access; returns True on hit."""
        if key in self.pages:
            self.pages.move_to_end(key)
            self.hits += 1
            return True
        self.misses += 1
        self.insert(key)
        return False

    def insert(self, key: tuple[str, int]) -> None:
        self.pages[key] = None
        if len(self.pages) > self.capacity:
            self.pages.popitem(last=False)


class MemoryBacking:
    """Byte storage in an auto-growing in-process buffer.

    Used by tests and by benchmarks that model the disk purely through the
    cost model (which is what determines virtual time either way).
    """

    def __init__(self):
        self._buf = bytearray()

    def __len__(self) -> int:
        return len(self._buf)

    def read(self, offset: int, nbytes: int) -> bytes:
        end = offset + nbytes
        if end > len(self._buf):
            # Reads past the written extent return zero-fill, like a sparse file.
            data = bytes(self._buf[offset : len(self._buf)])
            return data + b"\x00" * (nbytes - len(data))
        return bytes(self._buf[offset:end])

    def write(self, offset: int, data: bytes) -> None:
        if not data:
            return  # zero-length writes do not extend the file
        end = offset + len(data)
        if end > len(self._buf):
            self._buf.extend(b"\x00" * (end - len(self._buf)))
        self._buf[offset:end] = data

    def size(self) -> int:
        return len(self._buf)

    def truncate(self, nbytes: int) -> None:
        if nbytes < len(self._buf):
            del self._buf[nbytes:]

    def close(self) -> None:
        pass


class FileBacking:
    """Byte storage in a real file (sparse-friendly, pread/pwrite style)."""

    def __init__(self, path: str | os.PathLike):
        self._path = os.fspath(path)
        os.makedirs(os.path.dirname(self._path) or ".", exist_ok=True)
        # "r+b" honors seek positions for writes; create the file first if new.
        if not os.path.exists(self._path):
            open(self._path, "xb").close()
        self._f = open(self._path, "r+b")

    @property
    def path(self) -> str:
        return self._path

    def read(self, offset: int, nbytes: int) -> bytes:
        self._f.seek(offset)
        data = self._f.read(nbytes)
        if len(data) < nbytes:
            data += b"\x00" * (nbytes - len(data))
        return data

    def write(self, offset: int, data: bytes) -> None:
        self._f.seek(offset)
        self._f.write(data)

    def size(self) -> int:
        self._f.seek(0, os.SEEK_END)
        return self._f.tell()

    def truncate(self, nbytes: int) -> None:
        if nbytes < self.size():
            self._f.truncate(nbytes)

    def close(self) -> None:
        self._f.close()


@dataclass
class DiskStats:
    """Operation counters for one device, used by tests and reports."""

    reads: int = 0
    writes: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    seeks: int = 0
    busy_seconds: float = 0.0
    failures: int = 0  # injected faults that fired on this device
    #: Bytes damaged in place by injected ``corrupt`` faults (bit rot).
    corrupted_bytes: int = 0
    #: Writes torn short by an injected ``crash`` fault.
    torn_writes: int = 0

    def snapshot(self) -> "DiskStats":
        return DiskStats(**vars(self))


class BlockDevice:
    """A disk with real contents and a virtual-time cost model.

    Parameters
    ----------
    backing:
        Where bytes live (:class:`MemoryBacking` or :class:`FileBacking`).
    profile:
        Seek/bandwidth cost model; ``None`` disables time charging (the
        device still stores data and counts operations).
    clock:
        The owning node's clock.  A private clock is created when omitted so
        engines can run standalone and still report virtual busy time.
    """

    def __init__(
        self,
        backing: MemoryBacking | FileBacking | None = None,
        profile: DiskProfile | None = None,
        clock: VirtualClock | None = None,
        name: str = "disk0",
        os_cache: OSPageCache | None = None,
    ):
        self.backing = backing if backing is not None else MemoryBacking()
        self.profile = profile
        self.clock = clock if clock is not None else VirtualClock()
        self.name = name
        self.stats = DiskStats()
        self._head = -1  # byte position after the last request; -1 = unknown
        # Fault injection (see simcluster.faults): ops served, scheduled
        # faults, sticky failure flag, and the current latency multiplier.
        self.ops = 0
        self.failed = False
        self._faults: list = []
        self._fault_plan = None
        self._slow_factor = 1.0
        self._fired: set[int] = set()  # one-shot faults already applied (by id)
        # OS page cache (time model only — bytes always come from backing).
        # Shared per node when the caller passes one; a private cache is
        # created when only the profile asks for caching.
        self._os_cache = os_cache
        if (
            self._os_cache is None
            and profile is not None
            and profile.os_cache_bytes > 0
        ):
            self._os_cache = OSPageCache(profile.os_cache_bytes // profile.os_page_bytes)

    def install_faults(self, plan, faults) -> None:
        """Attach scheduled faults (see :mod:`repro.simcluster.faults`).

        ``plan`` is kept by reference so arming/disarming it takes effect
        on the next operation; ``faults`` is the subset of its entries that
        matches this device.
        """
        self._fault_plan = plan
        self._faults.extend(faults)

    def clear_faults(self) -> None:
        """Drop scheduled faults and any degradation already in effect.

        A device that already hard-failed stays failed — clearing the plan
        models cancelling pending faults, not repairing dead hardware.
        """
        self._fault_plan = None
        self._faults.clear()
        self._slow_factor = 1.0

    def _apply_corruption(self, fault) -> None:
        """One-shot bit rot: flip every byte of the fault's scope in place.

        The damage happens *below* any checksum framing (it edits the
        backing directly) and costs no I/O time — the platter lied, the
        host did nothing.
        """
        extent = self.backing.size()
        start = min(fault.offset or 0, extent)
        end = extent if fault.length is None else min(start + fault.length, extent)
        if end <= start:
            return
        data = self.backing.read(start, end - start)
        self.backing.write(start, bytes(b ^ 0xFF for b in data))
        self.stats.corrupted_bytes += end - start

    def _check_faults(self, writing: bool = False):
        """Fail or degrade this operation if a scheduled fault has fired.

        Returns the triggering ``crash`` fault when this is a write that
        must be torn short (the caller persists a prefix, then the device
        hard-fails); returns ``None`` otherwise.
        """
        if self.failed:
            raise DeviceFailedError(f"device {self.name!r} has failed")
        if not self._faults or (self._fault_plan is not None and not self._fault_plan.armed):
            self.ops += 1
            return None
        now = self.clock.now
        for fault in self._faults:
            if id(fault) in self._fired or not fault.triggered(now, self.ops):
                continue
            if fault.kind == "fail":
                self._fired.add(id(fault))
                self.failed = True
                self.stats.failures += 1
                raise DeviceFailedError(
                    f"device {self.name!r} failed "
                    f"(injected fault at t={now:.6f}s after {self.ops} ops)"
                )
            if fault.kind == "corrupt":
                self._fired.add(id(fault))
                self.stats.failures += 1
                self._apply_corruption(fault)
            elif fault.kind == "crash":
                self._fired.add(id(fault))
                self.stats.failures += 1
                self.failed = True  # sticky until revive()
                if writing:
                    self.ops += 1
                    return fault  # caller tears the in-flight write
                raise DeviceFailedError(
                    f"device {self.name!r} crashed "
                    f"(injected fault at t={now:.6f}s after {self.ops} ops)"
                )
            elif self._slow_factor < fault.slow_factor:
                self._slow_factor = fault.slow_factor
                self.stats.failures += 1
        self.ops += 1
        return None

    def _os_cache_read(self, offset: int, nbytes: int) -> None:
        """Charge a read through the OS page cache: cached pages pay a
        syscall+copy; missing pages pay physical seek/transfer and are
        inserted.  Each maximal run of contiguous missing pages costs one
        seek; a miss after an interleaved hit starts a new run (unless it
        happens to continue from the device head)."""
        prof = self.profile
        cache = self._os_cache
        page = prof.os_page_bytes
        first, last = offset // page, (offset + max(nbytes, 1) - 1) // page
        hits = 0
        in_miss_run = False
        cost = 0.0
        for p in range(first, last + 1):
            if cache.touch((self.name, p)):
                hits += 1
                in_miss_run = False
            else:
                sequential = in_miss_run or (p * page == self._head)
                if not sequential:
                    self.stats.seeks += 1
                cost += prof.read_cost(page, sequential=sequential)
                self._head = (p + 1) * page
                in_miss_run = True
        cost += hits * prof.os_read_hit_seconds
        cost *= self._slow_factor
        self.clock.advance(cost)
        self.stats.busy_seconds += cost

    def _charge(self, offset: int, nbytes: int, write: bool) -> None:
        if not write and self._os_cache is not None and self.profile is not None:
            self._os_cache_read(offset, nbytes)
            return
        sequential = offset == self._head
        if not sequential:
            self.stats.seeks += 1
        if self.profile is not None:
            cost = (
                self.profile.write_cost(nbytes, sequential)
                if write
                else self.profile.read_cost(nbytes, sequential)
            )
            cost *= self._slow_factor
            self.clock.advance(cost)
            self.stats.busy_seconds += cost
        self._head = offset + nbytes
        if write and self._os_cache is not None and self.profile is not None:
            page = self.profile.os_page_bytes
            for p in range(offset // page, (offset + max(nbytes, 1) - 1) // page + 1):
                self._os_cache.insert((self.name, p))

    def read(self, offset: int, nbytes: int) -> bytes:
        if offset < 0 or nbytes < 0:
            raise ValueError("negative offset or length in BlockDevice.read")
        self._check_faults()
        self._charge(offset, nbytes, write=False)
        self.stats.reads += 1
        self.stats.bytes_read += nbytes
        return self.backing.read(offset, nbytes)

    def readv(self, requests) -> list[bytes]:
        """Vectored read: coalesce adjacent/overlapping requests into runs.

        ``requests`` is a sequence of ``(offset, nbytes)`` pairs; the result
        list matches the request order.  Requests are planned in ascending
        offset order, and every maximal run of touching requests (the next
        offset starting at or before the current run's end) is served by ONE
        device read — one seek, one stats entry, one sequential transfer.
        This is the device half of the batched fringe I/O path: an
        offset-sorted fringe plan turns scattered block reads into a few
        large sequential runs.  No gap is ever read, so byte counts stay
        honest for sparse plans.
        """
        results: list[bytes | None] = [None] * len(requests)
        order = sorted(range(len(requests)), key=lambda i: requests[i][0])
        runs: list[list] = []  # [start, end, [request indices]]
        for i in order:
            offset, nbytes = requests[i]
            if offset < 0 or nbytes < 0:
                raise ValueError("negative offset or length in BlockDevice.readv")
            if runs and offset <= runs[-1][1]:
                runs[-1][1] = max(runs[-1][1], offset + nbytes)
                runs[-1][2].append(i)
            else:
                runs.append([offset, offset + nbytes, [i]])
        for start, end, idxs in runs:
            self._check_faults()
            self._charge(start, end - start, write=False)
            self.stats.reads += 1
            self.stats.bytes_read += end - start
            data = self.backing.read(start, end - start)
            for i in idxs:
                offset, nbytes = requests[i]
                results[i] = data[offset - start : offset - start + nbytes]
        return results

    def write(self, offset: int, data: bytes) -> None:
        if offset < 0:
            raise ValueError("negative offset in BlockDevice.write")
        crash = self._check_faults(writing=True)
        if crash is not None:
            # Torn write: the platter keeps a prefix of the payload, then
            # the device is gone (power loss mid-transfer).
            torn = bytes(data)[: len(data) // 2]
            if torn:
                self._charge(offset, len(torn), write=True)
                self.stats.writes += 1
                self.stats.bytes_written += len(torn)
                self.backing.write(offset, torn)
            self.stats.torn_writes += 1
            raise DeviceFailedError(
                f"device {self.name!r} crashed mid-write: "
                f"{len(torn)}/{len(data)} bytes persisted at offset {offset}"
            )
        self._charge(offset, len(data), write=True)
        self.stats.writes += 1
        self.stats.bytes_written += len(data)
        self.backing.write(offset, bytes(data))

    def truncate(self, nbytes: int) -> None:
        """Discard stored bytes past ``nbytes`` (a metadata op: no time
        charged, like TRIM).  Used by crash recovery to drop torn tails."""
        if nbytes < 0:
            raise ValueError("negative size in BlockDevice.truncate")
        self.backing.truncate(nbytes)
        self._head = -1

    def revive(self) -> None:
        """Model a post-crash restart: the device serves I/O again.

        The stored bytes — including any torn tail a ``crash`` fault left
        behind — are untouched; recovery (superblock replay, scrub) is the
        *caller's* job.  Faults that already fired stay consumed, pending
        ones remain scheduled.
        """
        self.failed = False

    def size(self) -> int:
        return self.backing.size()

    def close(self) -> None:
        self.backing.close()
