"""Cost models for the simulated cluster.

The paper's testbed (ch. 5) is a 64-node cluster: dual 2.4 GHz Opterons,
8 GB RAM, 2x250 GB SATA software RAID0 per node, switched gigabit Ethernet.
These dataclasses capture that hardware as a small set of constants; the
defaults below are calibrated to it (see ``repro.experiments.calibration``
for the derivation).

All costs are in seconds.  The models are intentionally simple — the paper's
own introduction reasons about its workloads with exactly these three knobs
(disk seek + bandwidth, network latency + bandwidth, per-edge CPU work).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["DiskProfile", "NetworkProfile", "CpuProfile", "NodeSpec"]


@dataclass(frozen=True)
class DiskProfile:
    """Seek + streaming-transfer model of a disk.

    A request at the device's current head position (sequential with the
    previous request) pays only transfer time; any other request pays a full
    seek first.  RAID0 of two SATA disks circa 2006 streams at ~100 MB/s with
    ~8 ms average seek.
    """

    seek_seconds: float = 8e-3
    read_bandwidth: float = 100e6  # bytes/second
    write_bandwidth: float = 90e6  # bytes/second
    #: OS page cache in front of the device (0 disables).  Reads of cached
    #: pages skip the physical costs and pay a syscall+copy instead; writes
    #: are write-through and populate the cache.  The paper's experiments
    #: ran on 8 GB nodes whose working sets were RAM-resident, so the
    #: harness enables a large cache; the library default models raw disk.
    os_cache_bytes: int = 0
    os_page_bytes: int = 4096
    os_read_hit_seconds: float = 8e-6  # pread syscall + 4 KB copy, 2006-era

    def read_cost(self, nbytes: int, sequential: bool) -> float:
        cost = nbytes / self.read_bandwidth
        if not sequential:
            cost += self.seek_seconds
        return cost

    def write_cost(self, nbytes: int, sequential: bool) -> float:
        cost = nbytes / self.write_bandwidth
        if not sequential:
            cost += self.seek_seconds
        return cost


@dataclass(frozen=True)
class NetworkProfile:
    """Latency/bandwidth (LogGP-style) model of the cluster interconnect.

    * ``latency``: one-way wire latency.
    * ``bandwidth``: point-to-point stream bandwidth (gigabit Ethernet).
    * ``send_overhead``: CPU time the sender spends per message (syscall,
      DataCutter buffer handling).
    * ``byte_overhead``: CPU time per byte on the sender (copy/serialize).

    The *sender* is charged ``send_overhead + nbytes * byte_overhead``; the
    message then arrives at ``injection_end + latency + nbytes / bandwidth``
    where injection is serialized through the sender's NIC.  This makes
    communication/computation overlap (Algorithm 2) profitable, as in MPI.
    """

    latency: float = 60e-6
    bandwidth: float = 110e6  # bytes/second (~gigabit after protocol overhead)
    send_overhead: float = 12e-6
    byte_overhead: float = 0.4e-9

    def sender_cost(self, nbytes: int) -> float:
        return self.send_overhead + nbytes * self.byte_overhead

    def transfer_seconds(self, nbytes: int) -> float:
        return nbytes / self.bandwidth


@dataclass(frozen=True)
class CpuProfile:
    """Per-operation CPU costs for graph processing on a 2006-era node.

    The JVM prototype's per-edge costs dominate in-memory search times; these
    constants set the floor that the Array backend achieves (~30 M edges/s
    aggregate on 16 nodes in Fig. 5.7 — i.e. ~2 M edges/s/node → ~0.5 us
    per edge touched end-to-end).
    """

    edge_visit_seconds: float = 2.5e-7  # scan one adjacency entry in BFS
    hash_lookup_seconds: float = 2.2e-7  # one HashMap probe (Fig 5.1 gap)
    hashmap_edge_extra_seconds: float = 2.5e-7  # boxed-list overhead per entry
    compare_seconds: float = 4e-9  # one key comparison inside an index
    btree_page_seconds: float = 7.5e-6  # parse + binary-search one B-tree page
    grdb_subblock_seconds: float = 5.5e-6  # address + decode one grDB sub-block
    #: Marginal cost of one additional sub-block resolved from a block that a
    #: batched fringe expansion has already decoded: the address arithmetic is
    #: done once per planned batch and the block's slots are parsed in one
    #: pass, so each extra sub-block pays only a bounds-checked slot gather
    #: (the FlashGraph/GraphMP request-merging effect on the CPU side).
    grdb_batch_subblock_seconds: float = 1.2e-6
    #: Per-byte cost of decoding a delta+varint adjacency stream
    #: (``repro.util.varint``).  The decode is numpy-vectorized — terminator
    #: scan, one reduceat, one cumsum — so it streams at memory-ish rates
    #: rather than per-branch varint loops; ~500 MB/s on a 2006 Opteron.
    varint_decode_seconds: float = 2e-9
    row_parse_seconds: float = 2e-6  # deserialize one relational row
    sql_statement_seconds: float = 9e-5  # parse/plan/round-trip per statement
    ascii_parse_seconds: float = 3.5e-7  # parse one ASCII edge during ingest

    def charge_edges(self, clock, nedges: int) -> None:
        clock.advance(nedges * self.edge_visit_seconds)


@dataclass(frozen=True)
class NodeSpec:
    """Hardware description of one simulated cluster node."""

    disk: DiskProfile = field(default_factory=DiskProfile)
    network: NetworkProfile = field(default_factory=NetworkProfile)
    cpu: CpuProfile = field(default_factory=CpuProfile)
    memory_bytes: int = 8 << 30
