"""Virtual clocks for the simulated cluster.

Every node owns a :class:`VirtualClock`.  Compute, disk, and communication
costs advance the clock by model-derived amounts; the discrete-event
scheduler orders ranks by these clocks.  Clocks are plain monotone floats —
storage engines can be used standalone (outside a simulation) with a fresh
clock and still report how much virtual time their I/O would have cost.
"""

from __future__ import annotations

__all__ = ["VirtualClock"]


class VirtualClock:
    """A monotone virtual-time accumulator, in seconds."""

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    @property
    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> float:
        """Advance by ``seconds`` (must be >= 0) and return the new time."""
        if seconds < 0:
            raise ValueError(f"cannot advance a clock by {seconds!r} seconds")
        self._now += seconds
        return self._now

    def advance_to(self, when: float) -> float:
        """Advance the clock to ``when`` if it is in the future."""
        if when > self._now:
            self._now = when
        return self._now

    def reset(self, start: float = 0.0) -> None:
        """Rewind the clock; only the simulation harness should call this
        (between independent runs), never model code mid-run."""
        self._now = float(start)

    def __repr__(self) -> str:
        return f"VirtualClock(now={self._now:.9f})"
