"""Disk fault injection for the simulated cluster.

Every out-of-core result in the paper silently assumes P healthy disks.
This module makes disks *misbehave* on a schedule so the rest of the stack
can prove it survives: a :class:`FaultPlan` is a set of :class:`DiskFault`
triggers that a :class:`~repro.simcluster.disk.BlockDevice` checks on every
operation, either hard-failing the device (all subsequent I/O raises
:class:`~repro.util.errors.DeviceFailedError`) or degrading its latency by
a constant factor (the "slow disk" straggler mode).

Triggers are expressed in the simulation's own units — virtual seconds on
the owning node's clock, or a count of operations the device has served —
so fault schedules are exactly reproducible.  Plans can be installed at
any point of a deployment's life: before ingest (to fail the ingestion
itself), between streamed batches, or between ingest and queries.  The
only subtlety is the clock: node clocks reset at the start of every
:meth:`SimCluster.run`, so an ``at_time`` trigger is relative to whichever
run comes next, while ``after_ops`` counts a device's lifetime operations
and is run-agnostic.  Install a plan after ingestion (see
``MSSG.set_fault_plan``) to target queries only, or :meth:`FaultPlan.disarm`
it around phases that should stay healthy; only genuinely invalid triggers
(unknown kind, node outside the cluster, negative/senseless scopes) raise
:class:`~repro.util.errors.ConfigError`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from ..util.errors import ConfigError

__all__ = ["DiskFault", "FaultPlan", "FAULT_KINDS"]

FAULT_KINDS = ("fail", "slow", "corrupt", "crash")
_KINDS = FAULT_KINDS


@dataclass(frozen=True)
class DiskFault:
    """One scheduled fault on one node's device(s).

    Parameters
    ----------
    node:
        Cluster rank index whose local devices this fault targets.
    device:
        Device-name prefix (``"grdb"`` matches every grDB level file);
        ``None`` targets every device of the node.
    kind:
        ``"fail"`` — the device hard-fails and stays failed; ``"slow"`` —
        every later operation costs ``slow_factor`` times as much;
        ``"corrupt"`` — a one-shot bit-rot event: stored bytes in the
        ``offset``/``length`` scope are flipped in place and the device
        keeps serving (checksummed reads detect the damage, unchecksummed
        reads return it as good data — the silent-corruption threat);
        ``"crash"`` — a power-loss/torn-write event: the first write after
        the trigger persists only a prefix of its payload, then the device
        hard-fails like ``"fail"`` (``BlockDevice.revive`` models the
        post-crash restart with the torn bytes still on the platter).
    at_time:
        Trigger once the node's virtual clock reaches this many seconds
        (relative to the current run — clocks reset per run).
    after_ops:
        Trigger once the device has completed this many operations
        (reads + writes, counted over the device's whole lifetime).
    slow_factor:
        Latency multiplier for ``kind="slow"``.
    offset / length:
        For ``kind="corrupt"``: byte range of the device to damage
        (``offset=None`` starts at 0, ``length=None`` runs to the end of
        the stored extent).  Offsets are *physical* device offsets — below
        any checksum framing.
    """

    node: int
    device: str | None = None
    kind: str = "fail"
    at_time: float | None = None
    after_ops: int | None = None
    slow_factor: float = 50.0
    offset: int | None = None
    length: int | None = None

    def __post_init__(self):
        if self.kind not in _KINDS:
            raise ConfigError(f"fault kind must be one of {_KINDS}, got {self.kind!r}")
        if self.at_time is None and self.after_ops is None:
            raise ConfigError("a DiskFault needs an at_time or after_ops trigger")
        if self.at_time is not None and self.at_time < 0:
            raise ConfigError(f"negative fault time {self.at_time}")
        if self.after_ops is not None and self.after_ops < 0:
            raise ConfigError(f"negative fault operation count {self.after_ops}")
        if self.kind == "slow" and self.slow_factor < 1.0:
            raise ConfigError("slow_factor below 1.0 would speed the disk up")
        if (self.offset is not None or self.length is not None) and self.kind != "corrupt":
            raise ConfigError("offset/length scope only applies to kind='corrupt'")
        if self.offset is not None and self.offset < 0:
            raise ConfigError(f"negative corruption offset {self.offset}")
        if self.length is not None and self.length <= 0:
            raise ConfigError(f"corruption length must be positive, got {self.length}")

    def matches(self, node_index: int, device_name: str) -> bool:
        if node_index != self.node:
            return False
        return self.device is None or device_name.startswith(self.device)

    def triggered(self, now: float, ops_completed: int) -> bool:
        if self.at_time is not None and now >= self.at_time:
            return True
        return self.after_ops is not None and ops_completed >= self.after_ops


class FaultPlan:
    """A reproducible schedule of disk faults for one cluster.

    The plan is shared by reference with every device it matches, so
    :meth:`arm`/:meth:`disarm` take effect immediately across the cluster
    (e.g. keep ingestion healthy, then arm before the query under test).
    """

    def __init__(self, faults: Iterable[DiskFault] = ()):
        self.faults: list[DiskFault] = list(faults)
        self.armed = True

    def __iter__(self) -> Iterator[DiskFault]:
        return iter(self.faults)

    def __len__(self) -> int:
        return len(self.faults)

    def add(self, fault: DiskFault) -> "FaultPlan":
        self.faults.append(fault)
        return self

    def for_device(self, node_index: int, device_name: str) -> list[DiskFault]:
        return [f for f in self.faults if f.matches(node_index, device_name)]

    def validate(self, nranks: int) -> None:
        """Check every fault against a cluster of ``nranks`` nodes.

        Called at install time (``SimCluster.install_fault_plan`` /
        ``MSSG.set_fault_plan``): a fault naming a node outside the cluster
        — or carrying an unknown kind, possible when the plan was built
        from untyped config data — would otherwise just never fire, which
        reads exactly like the system surviving it.
        """
        for fault in self.faults:
            if fault.kind not in _KINDS:
                raise ConfigError(
                    f"fault kind must be one of {_KINDS}, got {fault.kind!r} in {fault}"
                )
            if not 0 <= fault.node < nranks:
                raise ConfigError(
                    f"fault targets node {fault.node} but the cluster has "
                    f"ranks 0..{nranks - 1}: {fault}"
                )

    def arm(self) -> None:
        self.armed = True

    def disarm(self) -> None:
        self.armed = False

    @classmethod
    def kill_node(
        cls,
        node: int,
        at_time: float | None = None,
        after_ops: int | None = None,
        device: str | None = None,
    ) -> "FaultPlan":
        """Convenience: one plan hard-failing every device of ``node``."""
        return cls([DiskFault(node=node, device=device, at_time=at_time, after_ops=after_ops)])
