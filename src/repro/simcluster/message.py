"""Message envelope for the simulated interconnect."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

__all__ = ["Message", "ANY"]

#: Wildcard for ``source``/``tag`` matching, like ``MPI.ANY_SOURCE``.
ANY = -1


@dataclass(frozen=True)
class Message:
    """An in-flight or delivered message.

    ``arrival`` is the virtual time at which the message becomes visible to
    the destination; ``seq`` is a global monotone counter used for
    deterministic tie-breaking and FIFO (non-overtaking) ordering.
    """

    source: int
    dest: int
    tag: int
    payload: Any
    nbytes: int
    arrival: float
    seq: int

    def matches(self, source: int, tag: int) -> bool:
        return (source == ANY or source == self.source) and (tag == ANY or tag == self.tag)
