"""SimCluster: the façade that wires nodes, comms and the scheduler.

Typical use::

    cluster = SimCluster(nranks=4)

    def program(ctx):
        ctx.compute(1e-3)                      # charge CPU time
        total = yield from ctx.comm.allreduce(ctx.rank, lambda a, b: a + b)
        return total

    results = cluster.run(program)             # [6, 6, 6, 6]
    cluster.makespan                           # virtual seconds of the run

Each rank gets a :class:`SimNode` (clock + disks + cost profiles) and a
:class:`Comm`.  ``run`` accepts either one SPMD program for all ranks or a
list with one program per rank (MPMD), mirroring how the paper places
front-end ingestion filters and back-end GraphDB filters on different hosts.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from ..util.errors import ConfigError
from .comm import Comm
from .costmodel import NodeSpec
from .disk import BlockDevice, FileBacking, MemoryBacking, OSPageCache
from .scheduler import Scheduler
from .virtualtime import VirtualClock

__all__ = ["SimNode", "RankContext", "SimCluster"]


class SimNode:
    """One simulated cluster node: a clock, cost profiles, and local disks."""

    def __init__(
        self,
        index: int,
        spec: NodeSpec,
        storage_dir: str | None = None,
        fault_plan=None,
    ):
        self.index = index
        self.spec = spec
        self.clock = VirtualClock()
        self.storage_dir = storage_dir
        self.fault_plan = fault_plan
        self._disks: dict[str, BlockDevice] = {}
        # Lifetime accounting across runs (clocks reset per run; these do not).
        self.total_run_seconds = 0.0
        self.total_messages_sent = 0
        self.total_bytes_sent = 0
        #: Corrupt frames healed on this node's devices by read-repair/scrub.
        self.repaired_frames = 0
        # One kernel page cache per node, shared by all its devices.
        self.os_cache: OSPageCache | None = None
        if spec.disk.os_cache_bytes > 0:
            self.os_cache = OSPageCache(spec.disk.os_cache_bytes // spec.disk.os_page_bytes)

    def disk(self, name: str = "disk0") -> BlockDevice:
        """Get or create a named local block device (clock-sharing)."""
        dev = self._disks.get(name)
        if dev is None:
            if self.storage_dir is not None:
                backing = FileBacking(os.path.join(self.storage_dir, f"node{self.index}", name))
            else:
                backing = MemoryBacking()
            dev = BlockDevice(
                backing, self.spec.disk, self.clock, name=name, os_cache=self.os_cache
            )
            if self.fault_plan is not None:
                dev.install_faults(
                    self.fault_plan, self.fault_plan.for_device(self.index, name)
                )
            self._disks[name] = dev
        return dev

    def install_fault_plan(self, plan) -> None:
        """Adopt ``plan`` (or clear, with ``None``) for existing and future
        devices of this node."""
        self.fault_plan = plan
        for name, dev in self._disks.items():
            if plan is None:
                dev.clear_faults()
            else:
                dev.install_faults(plan, plan.for_device(self.index, name))

    def compute(self, seconds: float) -> None:
        self.clock.advance(seconds)

    def charge_edges(self, nedges: int) -> None:
        self.clock.advance(nedges * self.spec.cpu.edge_visit_seconds)

    def close(self) -> None:
        for dev in self._disks.values():
            dev.close()
        self._disks.clear()


@dataclass
class RankContext:
    """Everything a rank program needs: identity, node hardware, comm."""

    rank: int
    size: int
    node: SimNode
    comm: Comm

    def compute(self, seconds: float) -> None:
        self.node.compute(seconds)

    def charge_edges(self, nedges: int) -> None:
        self.node.charge_edges(nedges)

    @property
    def clock(self) -> VirtualClock:
        return self.node.clock

    @property
    def cpu(self):
        return self.node.spec.cpu


class SimCluster:
    """A reusable description of a simulated cluster.

    ``run`` builds fresh clocks/comms per invocation so a cluster object can
    execute many independent experiments; nodes (and their disks, i.e. the
    stored graph) persist across runs, which is how an ingestion run is
    followed by many query runs against the same on-disk data.
    """

    def __init__(
        self,
        nranks: int,
        spec: NodeSpec | None = None,
        specs: Sequence[NodeSpec] | None = None,
        storage_dir: str | None = None,
        fault_plan=None,
    ):
        if nranks <= 0:
            raise ConfigError(f"cluster needs at least 1 rank, got {nranks}")
        if specs is not None and len(specs) != nranks:
            raise ConfigError(f"got {len(specs)} specs for {nranks} ranks")
        base = spec if spec is not None else NodeSpec()
        self.specs = list(specs) if specs is not None else [base] * nranks
        self.nranks = nranks
        if fault_plan is not None:
            fault_plan.validate(nranks)
        self.fault_plan = fault_plan
        self.nodes = [
            SimNode(i, self.specs[i], storage_dir, fault_plan=fault_plan)
            for i in range(nranks)
        ]
        self.makespan: float = 0.0
        self.last_contexts: list[RankContext] = []

    def install_fault_plan(self, plan) -> None:
        """Adopt a :class:`~repro.simcluster.faults.FaultPlan` cluster-wide.

        Covers devices that already exist (e.g. created during ingestion)
        as well as ones created later, so a plan can be installed *between*
        a healthy ingest and the query it is meant to disturb.  The plan is
        validated against this cluster first (node indices in range, known
        fault kinds) — a typo'd plan that could never fire raises
        :class:`~repro.util.errors.ConfigError` instead of silently
        reading like a survived fault.
        """
        if plan is not None:
            plan.validate(self.nranks)
        self.fault_plan = plan
        for node in self.nodes:
            node.install_fault_plan(plan)

    def run(
        self,
        program: Callable | Sequence[Callable],
        reset_clocks: bool = True,
    ) -> list[Any]:
        """Execute rank programs to completion; returns per-rank results.

        ``program`` is either a single callable (run on every rank) or one
        callable per rank.  Each callable receives a :class:`RankContext`
        and must be a generator function (it may simply ``return`` without
        yielding if it never communicates).
        """
        if callable(program):
            programs = [program] * self.nranks
        else:
            programs = list(program)
            if len(programs) != self.nranks:
                raise ConfigError(f"got {len(programs)} programs for {self.nranks} ranks")
        if reset_clocks:
            # Fold the previous run into each node's lifetime totals.
            for ctx in self.last_contexts:
                ctx.node.total_messages_sent += ctx.comm.sent_messages
                ctx.node.total_bytes_sent += ctx.comm.sent_bytes
            for node in self.nodes:
                node.total_run_seconds += node.clock.now
                node.clock.reset()

        scheduler = Scheduler([node.clock for node in self.nodes])
        contexts = []
        for i, node in enumerate(self.nodes):
            comm = Comm(scheduler, i, self.nranks, node.clock, node.spec.network)
            contexts.append(RankContext(rank=i, size=self.nranks, node=node, comm=comm))
        self.last_contexts = contexts

        gens = []
        for ctx, prog in zip(contexts, programs):
            gen = prog(ctx)
            if not hasattr(gen, "send"):
                raise ConfigError(
                    f"rank program {prog!r} must be a generator function "
                    "(use 'yield from ctx.comm...' or add a bare 'yield' gate)"
                )
            gens.append(gen)
        for gen in gens:
            scheduler.add_rank(gen)
        results = scheduler.run()
        self.makespan = max(node.clock.now for node in self.nodes)
        return results

    def close(self) -> None:
        for node in self.nodes:
            node.close()

    def __enter__(self) -> "SimCluster":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
