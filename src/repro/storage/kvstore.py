"""BerkeleyDB-like key-value store.

A thin, honest stand-in for the paper's BerkeleyDB 1.7.1 backend: a B-tree
access method over a paged file with an LRU page cache, exposing a
``put/get/delete/cursor`` API.  There is no SQL layer, no query planner —
that structural difference (vs MiniSQL) is exactly what separates the
BerkeleyDB and MySQL lines in Figures 5.3–5.7.
"""

from __future__ import annotations

import struct
from typing import Iterator

from ..simcluster.disk import BlockDevice
from ..util.errors import KeyNotFound
from .btree import BTree
from .pagedfile import PagedFile

__all__ = ["KVStore", "encode_u64", "decode_u64", "encode_key_u64_u32"]

_U64 = struct.Struct(">Q")
_U64_U32 = struct.Struct(">QI")


def encode_u64(v: int) -> bytes:
    """Order-preserving big-endian encoding of an unsigned 64-bit int."""
    return _U64.pack(v)


def decode_u64(b: bytes) -> int:
    return _U64.unpack(b)[0]


def encode_key_u64_u32(hi: int, lo: int) -> bytes:
    """Composite ``(u64, u32)`` key, ordered by ``hi`` then ``lo``.

    This is the (vertex id, chunk number) key shape used by the BerkeleyDB
    and MySQL GraphDB backends for their 8 KB adjacency chunks (Fig. 4.3).
    """
    return _U64_U32.pack(hi, lo)


class KVStore:
    """A single-file B-tree key-value database."""

    def __init__(
        self,
        device: BlockDevice,
        page_size: int = 4096,
        cache_pages: int = 256,
        page_cpu_seconds: float = 0.0,
        shared_cache=None,
        cache_owner: str = "kvstore",
    ):
        self.device = device
        self._tree = BTree(
            PagedFile(device, page_size),
            cache_pages=cache_pages,
            page_cpu_seconds=page_cpu_seconds,
            shared_cache=shared_cache,
            cache_owner=cache_owner,
        )

    def put(self, key: bytes, value: bytes) -> None:
        self._tree.put(key, value)

    def get(self, key: bytes) -> bytes:
        """Return the value for ``key``; raises :class:`KeyNotFound`."""
        return self._tree.get(key)

    def get_or_none(self, key: bytes) -> bytes | None:
        return self._tree.get_or_none(key)

    def delete(self, key: bytes) -> None:
        self._tree.delete(key)

    def contains(self, key: bytes) -> bool:
        return self._tree.contains(key)

    def cursor(self, start: bytes | None = None, end: bytes | None = None) -> Iterator[tuple[bytes, bytes]]:
        """Iterate ``(key, value)`` pairs in key order, ``start <= k < end``."""
        return self._tree.items(start, end)

    def prefix(self, prefix: bytes) -> Iterator[tuple[bytes, bytes]]:
        """Iterate all pairs whose key starts with ``prefix``."""
        for k, v in self._tree.items(start=prefix):
            if not k.startswith(prefix):
                return
            yield k, v

    def __len__(self) -> int:
        return len(self._tree)

    @property
    def cache_stats(self):
        return self._tree.cache.stats

    def flush(self) -> None:
        self._tree.flush()
