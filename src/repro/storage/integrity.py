"""End-to-end block integrity: CRC32-framed devices.

The fault model of the simulated cluster covers disks that *stop* (fail)
or *lag* (slow); this module covers disks that *lie* — bit rot flipping
stored bytes, or a torn write left behind by a mid-flush crash.  A
:class:`ChecksummedDevice` wraps a raw :class:`~repro.simcluster.disk.BlockDevice`
and stores data in fixed *frames*: ``FRAME_PAYLOAD`` (4096) payload bytes
followed by a 4-byte CRC32 trailer, physical stride ``FRAME_STRIDE``
(4100).  Every read verifies the CRC of every frame it touches and raises
:class:`~repro.util.errors.CorruptBlockError` (device, physical offset,
length) on a mismatch, so corruption can never propagate into BFS results
— it either surfaces as an error the failover path reroutes around, or it
never existed.

Layout and semantics
--------------------
* Logical offset ``L`` maps to physical ``(L // 4096) * 4100 + L % 4096``.
  The map is monotone, so the raw device's sequential-vs-seek cost
  accounting keeps working: a logically sequential scan is a physically
  sequential scan.
* A frame whose payload *and* trailer are all zero is **never-written**
  (the sparse zero-fill contract of the backings): it reads back as zeros
  without a CRC check.  ``crc32(b"\\x00" * 4096) != 0``, so a legitimately
  written zero frame carries a non-zero trailer and is distinguishable.
  The one undetectable corruption is an entire frame *and* its trailer
  being zeroed at once — the classic lost-write hole every per-block CRC
  scheme shares.
* Writes not aligned to the 4096-byte frame grid read-modify-write the
  head/tail frames (reads verified, so corruption cannot be silently
  laundered into a freshly checksummed frame).
* Per-frame overhead: 4 bytes per 4096, i.e. ~0.1 % space and one CRC32
  per frame of I/O — the ablation benchmark pins the virtual-time cost at
  low single digits on the Figure 5.4 grDB workload.

``wrap_device`` is idempotent per raw device (the wrapper registers itself
as ``raw._integrity``), which is what lets the scrub service find every
checksummed device of a node by walking ``node._disks``.
"""

from __future__ import annotations

import zlib

from ..simcluster.disk import BlockDevice
from ..util.errors import CorruptBlockError

__all__ = ["FRAME_PAYLOAD", "FRAME_STRIDE", "ChecksummedDevice", "wrap_device"]

FRAME_PAYLOAD = 4096
FRAME_TRAILER = 4
FRAME_STRIDE = FRAME_PAYLOAD + FRAME_TRAILER

_ZERO_FRAME = b"\x00" * FRAME_STRIDE


def _crc(payload: bytes) -> bytes:
    return zlib.crc32(payload).to_bytes(4, "big")


class ChecksummedDevice:
    """A :class:`BlockDevice` facade adding per-frame CRC32 verification.

    Exposes the same ``read``/``readv``/``write``/``size``/``close`` API as
    the raw device (in *logical* byte offsets), so the storage engines are
    oblivious to the framing.  All virtual-time charging happens in the
    underlying device against the physical frame extents actually moved.
    """

    def __init__(self, raw: BlockDevice):
        self.raw = raw
        raw._integrity = self

    # -- passthroughs the engines occasionally touch -----------------------

    @property
    def name(self) -> str:
        return self.raw.name

    @property
    def stats(self):
        return self.raw.stats

    @property
    def clock(self):
        return self.raw.clock

    @property
    def failed(self) -> bool:
        return self.raw.failed

    # -- frame plumbing ---------------------------------------------------

    def _verify(self, frame_idx: int, frame: bytes) -> bytes:
        """Return the payload of one physical frame, checking its CRC."""
        payload = frame[:FRAME_PAYLOAD]
        trailer = frame[FRAME_PAYLOAD:FRAME_STRIDE]
        if frame == _ZERO_FRAME[: len(frame)] and len(frame) < FRAME_STRIDE:
            # Short all-zero tail: reading past the written extent.
            return b"\x00" * FRAME_PAYLOAD
        if payload == _ZERO_FRAME[:FRAME_PAYLOAD] and trailer in (b"", b"\x00\x00\x00\x00"):
            return payload  # never-written frame: sparse zero-fill
        if len(trailer) < FRAME_TRAILER or _crc(payload) != trailer:
            raise CorruptBlockError(
                self.raw.name,
                frame_idx * FRAME_STRIDE,
                FRAME_STRIDE,
                "CRC32 trailer mismatch",
            )
        return payload

    def _read_frames(self, first: int, count: int) -> bytes:
        """Read+verify ``count`` physical frames; returns joined payloads."""
        raw = self.raw.read(first * FRAME_STRIDE, count * FRAME_STRIDE)
        out = bytearray()
        for i in range(count):
            chunk = raw[i * FRAME_STRIDE : (i + 1) * FRAME_STRIDE]
            out += self._verify(first + i, chunk)
        return bytes(out)

    # -- BlockDevice API (logical offsets) ---------------------------------

    def read(self, offset: int, nbytes: int) -> bytes:
        if offset < 0 or nbytes < 0:
            raise ValueError("negative offset or length in ChecksummedDevice.read")
        if nbytes == 0:
            self.raw.read(offset // FRAME_PAYLOAD * FRAME_STRIDE, 0)
            return b""
        first = offset // FRAME_PAYLOAD
        last = (offset + nbytes - 1) // FRAME_PAYLOAD
        payload = self._read_frames(first, last - first + 1)
        start = offset - first * FRAME_PAYLOAD
        return payload[start : start + nbytes]

    def readv(self, requests) -> list[bytes]:
        """Vectored read with per-frame verification.

        Each logical request is widened to its covering frame span; the raw
        device's ``readv`` coalesces adjacent spans exactly as it does for
        unframed requests, so the batched fringe I/O path keeps its
        one-seek-per-run accounting.
        """
        phys = []
        spans = []
        for offset, nbytes in requests:
            if offset < 0 or nbytes < 0:
                raise ValueError("negative offset or length in ChecksummedDevice.readv")
            first = offset // FRAME_PAYLOAD
            last = (offset + max(nbytes, 1) - 1) // FRAME_PAYLOAD
            spans.append((first, last, offset, nbytes))
            phys.append((first * FRAME_STRIDE, (last - first + 1) * FRAME_STRIDE))
        raws = self.raw.readv(phys)
        out = []
        for raw, (first, last, offset, nbytes) in zip(raws, spans):
            payload = bytearray()
            for i in range(last - first + 1):
                payload += self._verify(first + i, raw[i * FRAME_STRIDE : (i + 1) * FRAME_STRIDE])
            start = offset - first * FRAME_PAYLOAD
            out.append(bytes(payload[start : start + nbytes]))
        return out

    def write(self, offset: int, data: bytes) -> None:
        if offset < 0:
            raise ValueError("negative offset in ChecksummedDevice.write")
        if not data:
            return
        data = bytes(data)
        first = offset // FRAME_PAYLOAD
        last = (offset + len(data) - 1) // FRAME_PAYLOAD
        head_pad = offset - first * FRAME_PAYLOAD
        tail_end = (offset + len(data)) - last * FRAME_PAYLOAD  # bytes into last frame
        buf = bytearray((last - first + 1) * FRAME_PAYLOAD)
        if head_pad:
            buf[:FRAME_PAYLOAD] = self._read_frames(first, 1)
        if tail_end != FRAME_PAYLOAD and last != first:
            buf[-FRAME_PAYLOAD:] = self._read_frames(last, 1)
        elif tail_end != FRAME_PAYLOAD and not head_pad:
            buf[:FRAME_PAYLOAD] = self._read_frames(first, 1)
        buf[head_pad : head_pad + len(data)] = data
        framed = bytearray()
        for i in range(last - first + 1):
            payload = bytes(buf[i * FRAME_PAYLOAD : (i + 1) * FRAME_PAYLOAD])
            framed += payload
            framed += _crc(payload)
        self.raw.write(first * FRAME_STRIDE, bytes(framed))

    def size(self) -> int:
        """Logical bytes stored (physical size minus trailer overhead)."""
        phys = self.raw.size()
        frames, rem = divmod(phys, FRAME_STRIDE)
        return frames * FRAME_PAYLOAD + min(rem, FRAME_PAYLOAD)

    def truncate(self, logical_size: int) -> None:
        """Discard everything past ``logical_size`` (frame-aligned only)."""
        if logical_size % FRAME_PAYLOAD:
            raise ValueError("ChecksummedDevice.truncate requires a frame-aligned size")
        self.raw.truncate(logical_size // FRAME_PAYLOAD * FRAME_STRIDE)

    def close(self) -> None:
        self.raw.close()

    # -- scrub support ------------------------------------------------------

    def frame_count(self) -> int:
        phys = self.raw.size()
        return (phys + FRAME_STRIDE - 1) // FRAME_STRIDE

    def scrub_frames(self, chunk_frames: int = 64):
        """Verify every stored frame; yields the physical offset of each bad
        one.  Reads the device in large sequential chunks so the virtual
        time charged is the sequential-scan rate, and counts the scan in
        the raw device's stats like any other read."""
        total = self.frame_count()
        idx = 0
        while idx < total:
            take = min(chunk_frames, total - idx)
            raw = self.raw.read(idx * FRAME_STRIDE, take * FRAME_STRIDE)
            for i in range(take):
                chunk = raw[i * FRAME_STRIDE : (i + 1) * FRAME_STRIDE]
                try:
                    self._verify(idx + i, chunk)
                except CorruptBlockError:
                    yield (idx + i) * FRAME_STRIDE
            idx += take


def wrap_device(raw: BlockDevice) -> ChecksummedDevice:
    """Return the (one) integrity wrapper of ``raw``, creating it if needed."""
    existing = getattr(raw, "_integrity", None)
    if existing is not None:
        return existing
    return ChecksummedDevice(raw)
