"""MiniSQL: a miniature relational database engine.

The stand-in for the paper's MySQL 4.1.12.  It is a genuine (if small)
relational engine: tables live in slotted heap files, B-tree indexes map
order-preserving key encodings to row ids, statements are parsed from SQL
text and planned (index prefix scan when an index matches the WHERE
equality columns, full table scan otherwise).

Two properties make it behave like the paper's MySQL line rather than like
BerkeleyDB, both structural rather than hard-coded:

* every statement pays a parse/plan/round-trip overhead
  (``CpuProfile.sql_statement_seconds``), charged to the node clock, and
* row access is indirect — index probe first, then a heap-page fetch — so a
  logical record read costs two page reads instead of one.
"""

from __future__ import annotations

import struct
from typing import Any, Callable, Iterable, Iterator

from ..simcluster.costmodel import CpuProfile
from ..simcluster.disk import BlockDevice
from ..simcluster.virtualtime import VirtualClock
from ..util.errors import SqlError
from .btree import BTree
from .heapfile import RID, HeapFile
from .pagedfile import PagedFile
from .sqlparser import (
    Condition,
    CreateIndex,
    CreateTable,
    Delete,
    Insert,
    Literal,
    Param,
    Select,
    Update,
    parse,
)

__all__ = ["MiniSQL", "Table"]

_SIGN_FLIP = 1 << 63


def _encode_index_component(col_type: str, value: Any) -> bytes:
    """Order-preserving binary encoding of one indexed column value."""
    if col_type in ("INT64", "INT32"):
        return struct.pack(">Q", (int(value) + _SIGN_FLIP) % (1 << 64))
    if col_type == "TEXT":
        # Escaped, terminated text keeps composite ordering correct.
        return value.encode("utf-8").replace(b"\x00", b"\x00\xff") + b"\x00\x00"
    raise SqlError(f"column type {col_type} is not indexable")


def _encode_rid(rid: RID) -> bytes:
    return struct.pack(">QQ", rid[0], rid[1])


def _decode_rid(b: bytes) -> RID:
    p, o = struct.unpack(">QQ", b)
    return (p, o)


class Table:
    """One table: schema, heap file, and any number of B-tree indexes."""

    def __init__(self, name: str, columns, heap: HeapFile):
        self.name = name
        self.columns = list(columns)  # ColumnDef
        self.col_index = {c.name: i for i, c in enumerate(self.columns)}
        if len(self.col_index) != len(self.columns):
            raise SqlError(f"duplicate column names in table {name}")
        self.heap = heap
        self.indexes: dict[tuple[str, ...], BTree] = {}

    # -- row (de)serialization --------------------------------------------

    def serialize_row(self, values: tuple) -> bytes:
        if len(values) != len(self.columns):
            raise SqlError(
                f"table {self.name} has {len(self.columns)} columns, got {len(values)} values"
            )
        out = bytearray()
        for col, v in zip(self.columns, values):
            if col.type == "INT64":
                out += struct.pack(">q", int(v))
            elif col.type == "INT32":
                out += struct.pack(">i", int(v))
            elif col.type == "BLOB":
                b = bytes(v)
                out += struct.pack(">I", len(b)) + b
            elif col.type == "TEXT":
                b = str(v).encode("utf-8")
                out += struct.pack(">I", len(b)) + b
            else:  # pragma: no cover - schema validated at CREATE
                raise SqlError(f"unknown column type {col.type}")
        return bytes(out)

    def deserialize_row(self, data: bytes) -> tuple:
        values: list[Any] = []
        off = 0
        for col in self.columns:
            if col.type == "INT64":
                values.append(struct.unpack_from(">q", data, off)[0])
                off += 8
            elif col.type == "INT32":
                values.append(struct.unpack_from(">i", data, off)[0])
                off += 4
            else:
                (length,) = struct.unpack_from(">I", data, off)
                off += 4
                raw = data[off : off + length]
                off += length
                values.append(raw.decode("utf-8") if col.type == "TEXT" else raw)
        return tuple(values)

    # -- index maintenance ----------------------------------------------------

    def index_key(self, cols: tuple[str, ...], row: tuple, rid: RID) -> bytes:
        parts = []
        for c in cols:
            col = self.columns[self.col_index[c]]
            parts.append(_encode_index_component(col.type, row[self.col_index[c]]))
        parts.append(_encode_rid(rid))
        return b"".join(parts)

    def index_prefix(self, cols: tuple[str, ...], values: Iterable[Any]) -> bytes:
        parts = []
        for c, v in zip(cols, values):
            col = self.columns[self.col_index[c]]
            parts.append(_encode_index_component(col.type, v))
        return b"".join(parts)

    def add_to_indexes(self, row: tuple, rid: RID) -> None:
        for cols, tree in self.indexes.items():
            tree.put(self.index_key(cols, row, rid), b"")

    def remove_from_indexes(self, row: tuple, rid: RID) -> None:
        for cols, tree in self.indexes.items():
            tree.delete(self.index_key(cols, row, rid))


class MiniSQL:
    """A small SQL database over simulated block devices.

    Parameters
    ----------
    device_provider:
        ``device_provider(name) -> BlockDevice`` supplying one device per
        storage file (heap or index); typically ``node.disk``.
    clock, cpu:
        Charge per-statement overhead to this clock; both optional so the
        engine also runs standalone.
    """

    HEAP_PAGE = 16384
    INDEX_PAGE = 4096

    def __init__(
        self,
        device_provider: Callable[[str], BlockDevice],
        clock: VirtualClock | None = None,
        cpu: CpuProfile | None = None,
        index_cache_pages: int = 256,
        shared_cache=None,
    ):
        self._devices = device_provider
        self._clock = clock
        self._cpu = cpu if cpu is not None else CpuProfile()
        self._index_cache_pages = index_cache_pages
        self._shared_cache = shared_cache
        self.tables: dict[str, Table] = {}
        self.statements_executed = 0
        # Prepared-statement cache: SQL text -> parsed AST.  The virtual
        # per-statement cost is still charged (clients of 2006-era MySQL
        # paid the round trip either way); this only avoids re-parsing in
        # host time.
        self._stmt_cache: dict[str, object] = {}

    # -- public API -------------------------------------------------------

    def execute(self, sql: str, params: tuple = ()) -> list[tuple] | int:
        """Execute one statement; SELECT returns rows, others return counts."""
        if self._clock is not None:
            self._clock.advance(self._cpu.sql_statement_seconds)
        self.statements_executed += 1
        stmt = self._stmt_cache.get(sql)
        if stmt is None:
            stmt = parse(sql)
            if len(self._stmt_cache) < 1024:
                self._stmt_cache[sql] = stmt
        if isinstance(stmt, CreateTable):
            return self._create_table(stmt)
        if isinstance(stmt, CreateIndex):
            return self._create_index(stmt)
        if isinstance(stmt, Insert):
            return self._insert(stmt, params)
        if isinstance(stmt, Select):
            return self._select(stmt, params)
        if isinstance(stmt, Update):
            return self._update(stmt, params)
        if isinstance(stmt, Delete):
            return self._delete(stmt, params)
        raise SqlError(f"unhandled statement {stmt!r}")  # pragma: no cover

    # -- DDL ----------------------------------------------------------------

    def _table(self, name: str) -> Table:
        table = self.tables.get(name)
        if table is None:
            raise SqlError(f"no such table: {name}")
        return table

    def _create_table(self, stmt: CreateTable) -> int:
        if stmt.table in self.tables:
            raise SqlError(f"table {stmt.table} already exists")
        heap = HeapFile(PagedFile(self._devices(f"tbl_{stmt.table}_heap"), self.HEAP_PAGE))
        self.tables[stmt.table] = Table(stmt.table, stmt.columns, heap)
        return 0

    def _create_index(self, stmt: CreateIndex) -> int:
        table = self._table(stmt.table)
        for c in stmt.columns:
            if c not in table.col_index:
                raise SqlError(f"no column {c} in table {stmt.table}")
        if stmt.columns in table.indexes:
            raise SqlError(f"duplicate index on {stmt.columns}")
        dev = self._devices(f"tbl_{stmt.table}_idx_{'_'.join(stmt.columns)}")
        tree = BTree(
            PagedFile(dev, self.INDEX_PAGE),
            cache_pages=self._index_cache_pages,
            page_cpu_seconds=self._cpu.btree_page_seconds if self._clock is not None else 0.0,
            shared_cache=self._shared_cache,
            cache_owner=dev.name,
        )
        table.indexes[stmt.columns] = tree
        # Backfill from existing rows.
        for rid, raw in table.heap.scan():
            row = table.deserialize_row(raw)
            tree.put(table.index_key(stmt.columns, row, rid), b"")
        return 0

    # -- DML -------------------------------------------------------------------

    @staticmethod
    def _bind(value: Literal | Param, params: tuple) -> Any:
        if isinstance(value, Param):
            if value.index >= len(params):
                raise SqlError(f"statement needs parameter #{value.index + 1}, got {len(params)}")
            return params[value.index]
        return value.value

    def _insert(self, stmt: Insert, params: tuple) -> int:
        table = self._table(stmt.table)
        row = tuple(self._bind(v, params) for v in stmt.values)
        raw = table.serialize_row(row)
        rid = table.heap.insert(raw)
        table.add_to_indexes(row, rid)
        return 1

    def _matching_rows(
        self, table: Table, where: tuple[Condition, ...], params: tuple
    ) -> Iterator[tuple[RID, tuple]]:
        """Plan + execute the WHERE clause: index prefix scan or full scan."""
        bound = [(c.column, c.op, self._bind(c.value, params)) for c in where]
        for col, _, _ in bound:
            if col not in table.col_index:
                raise SqlError(f"no column {col} in table {table.name}")
        eq = {col: v for col, op, v in bound if op == "="}

        best: tuple[tuple[str, ...], int] | None = None
        for cols in table.indexes:
            depth = 0
            for c in cols:
                if c in eq:
                    depth += 1
                else:
                    break
            if depth and (best is None or depth > best[1]):
                best = (cols, depth)

        def passes(row: tuple) -> bool:
            for col, op, v in bound:
                x = row[table.col_index[col]]
                if op == "=" and not x == v:
                    return False
                if op == "!=" and not x != v:
                    return False
                if op == "<" and not x < v:
                    return False
                if op == ">" and not x > v:
                    return False
                if op == "<=" and not x <= v:
                    return False
                if op == ">=" and not x >= v:
                    return False
            return True

        def parse(raw: bytes) -> tuple:
            if self._clock is not None:
                self._clock.advance(self._cpu.row_parse_seconds)
            return table.deserialize_row(raw)

        if best is not None:
            cols, depth = best
            prefix = table.index_prefix(cols, [eq[c] for c in cols[:depth]])
            tree = table.indexes[cols]
            for key, _ in tree.items(start=prefix):
                if not key.startswith(prefix):
                    break
                rid = _decode_rid(key[-16:])
                row = parse(table.heap.read(rid))
                if passes(row):
                    yield rid, row
        else:
            for rid, raw in table.heap.scan():
                row = parse(raw)
                if passes(row):
                    yield rid, row

    def _select(self, stmt: Select, params: tuple) -> list[tuple]:
        table = self._table(stmt.table)
        rows = [row for _, row in self._matching_rows(table, stmt.where, params)]
        if stmt.order_by:
            for col, asc in reversed(stmt.order_by):
                if col not in table.col_index:
                    raise SqlError(f"no column {col} in ORDER BY")
                rows.sort(key=lambda r: r[table.col_index[col]], reverse=not asc)
        if stmt.limit is not None:
            rows = rows[: stmt.limit]
        if stmt.columns == ("COUNT(*)",):
            return [(len(rows),)]
        if stmt.columns == ("*",):
            return rows
        idxs = []
        for c in stmt.columns:
            if c not in table.col_index:
                raise SqlError(f"no column {c} in SELECT list")
            idxs.append(table.col_index[c])
        return [tuple(r[i] for i in idxs) for r in rows]

    def _update(self, stmt: Update, params: tuple) -> int:
        table = self._table(stmt.table)
        assignments = [(col, self._bind(v, params)) for col, v in stmt.assignments]
        for col, _ in assignments:
            if col not in table.col_index:
                raise SqlError(f"no column {col} in table {table.name}")
        victims = list(self._matching_rows(table, stmt.where, params))
        for rid, row in victims:
            new_row = list(row)
            for col, v in assignments:
                new_row[table.col_index[col]] = v
            new_row = tuple(new_row)
            raw = table.serialize_row(new_row)
            table.remove_from_indexes(row, rid)
            if table.heap.update_in_place(rid, raw):
                table.add_to_indexes(new_row, rid)
            else:
                table.heap.delete(rid)
                new_rid = table.heap.insert(raw)
                table.add_to_indexes(new_row, new_rid)
        return len(victims)

    def _delete(self, stmt: Delete, params: tuple) -> int:
        table = self._table(stmt.table)
        victims = list(self._matching_rows(table, stmt.where, params))
        for rid, row in victims:
            table.remove_from_indexes(row, rid)
            table.heap.delete(rid)
        return len(victims)

    def flush(self) -> None:
        for table in self.tables.values():
            for tree in table.indexes.values():
                tree.flush()
