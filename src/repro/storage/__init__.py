"""From-scratch storage engines: paged files, caches, B-trees, KV, SQL.

These are the substrates under the paper's GraphDB backends: the
BerkeleyDB-like :class:`KVStore`, the MySQL-like :class:`MiniSQL`, and the
:class:`PagedFile`/:class:`LRUBlockCache` primitives that grDB builds on.
"""

from .blockcache import CacheStats, LRUBlockCache
from .btree import BTree
from .heapfile import HeapFile
from .kvstore import KVStore, decode_u64, encode_key_u64_u32, encode_u64
from .minisql import MiniSQL, Table
from .pagedfile import PagedFile
from .sqlparser import parse as parse_sql

__all__ = [
    "BTree",
    "CacheStats",
    "HeapFile",
    "KVStore",
    "LRUBlockCache",
    "MiniSQL",
    "PagedFile",
    "Table",
    "decode_u64",
    "encode_key_u64_u32",
    "encode_u64",
    "parse_sql",
]
