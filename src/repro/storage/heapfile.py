"""Slotted-ish heap file for MiniSQL table rows.

Rows are stored unspanned (a row must fit in one page) with a one-byte flag
and a length prefix; deletion tombstones the row in place.  Row ids (RIDs)
are ``(page_no, byte_offset)`` pairs, stable for the life of the row.
"""

from __future__ import annotations

import struct
from typing import Iterator

from ..util.errors import StorageEngineError
from .pagedfile import PagedFile

__all__ = ["HeapFile", "RID"]

_PAGE_HDR = struct.Struct(">HI")  # nrows (live), free_off
_ROW_HDR = struct.Struct(">BI")  # flags, payload length
_FLAG_DELETED = 0x1

RID = tuple[int, int]


class HeapFile:
    """Append-oriented row store over a paged file."""

    def __init__(self, pages: PagedFile):
        self.pages = pages
        self.page_size = pages.page_size
        self.max_row = self.page_size - _PAGE_HDR.size - _ROW_HDR.size
        self._tail_page = pages.npages - 1 if pages.npages else -1

    # -- page helpers ---------------------------------------------------

    def _load(self, page_no: int) -> bytearray:
        return bytearray(self.pages.read_page(page_no))

    def _store(self, page_no: int, buf: bytearray) -> None:
        self.pages.write_page(page_no, bytes(buf))

    def _new_page(self) -> int:
        page_no = self.pages.allocate_page()
        buf = bytearray(self.page_size)
        _PAGE_HDR.pack_into(buf, 0, 0, _PAGE_HDR.size)
        self._store(page_no, buf)
        self._tail_page = page_no
        return page_no

    # -- row operations ---------------------------------------------------

    def insert(self, payload: bytes) -> RID:
        """Append a row; returns its RID."""
        if len(payload) > self.max_row:
            raise StorageEngineError(
                f"row of {len(payload)} bytes exceeds max unspanned row {self.max_row}"
            )
        if self._tail_page < 0:
            self._new_page()
        buf = self._load(self._tail_page)
        nrows, free_off = _PAGE_HDR.unpack_from(buf)
        need = _ROW_HDR.size + len(payload)
        if free_off + need > self.page_size:
            self._new_page()
            buf = self._load(self._tail_page)
            nrows, free_off = _PAGE_HDR.unpack_from(buf)
        _ROW_HDR.pack_into(buf, free_off, 0, len(payload))
        buf[free_off + _ROW_HDR.size : free_off + need] = payload
        _PAGE_HDR.pack_into(buf, 0, nrows + 1, free_off + need)
        self._store(self._tail_page, buf)
        return (self._tail_page, free_off)

    def read(self, rid: RID) -> bytes:
        """Fetch a live row by RID."""
        page_no, off = rid
        buf = self._load(page_no)
        flags, length = self._row_header(buf, off)
        if flags & _FLAG_DELETED:
            raise StorageEngineError(f"row {rid} is deleted")
        return bytes(buf[off + _ROW_HDR.size : off + _ROW_HDR.size + length])

    def delete(self, rid: RID) -> None:
        page_no, off = rid
        buf = self._load(page_no)
        flags, length = self._row_header(buf, off)
        if flags & _FLAG_DELETED:
            raise StorageEngineError(f"row {rid} already deleted")
        nrows, free_off = _PAGE_HDR.unpack_from(buf)
        _ROW_HDR.pack_into(buf, off, flags | _FLAG_DELETED, length)
        _PAGE_HDR.pack_into(buf, 0, nrows - 1, free_off)
        self._store(page_no, buf)

    def update_in_place(self, rid: RID, payload: bytes) -> bool:
        """Overwrite a row if the new payload is the same length.

        Returns False (without modifying anything) when the length differs;
        the caller then falls back to delete + insert.
        """
        page_no, off = rid
        buf = self._load(page_no)
        flags, length = self._row_header(buf, off)
        if flags & _FLAG_DELETED:
            raise StorageEngineError(f"row {rid} is deleted")
        if len(payload) != length:
            return False
        buf[off + _ROW_HDR.size : off + _ROW_HDR.size + length] = payload
        self._store(page_no, buf)
        return True

    def _row_header(self, buf: bytearray, off: int) -> tuple[int, int]:
        if not _PAGE_HDR.size <= off <= self.page_size - _ROW_HDR.size:
            raise StorageEngineError(f"row offset {off} outside page bounds")
        return _ROW_HDR.unpack_from(buf, off)

    # -- scans ---------------------------------------------------------------

    def scan(self) -> Iterator[tuple[RID, bytes]]:
        """Iterate all live rows in physical order."""
        for page_no in range(self.pages.npages):
            buf = self._load(page_no)
            _, free_off = _PAGE_HDR.unpack_from(buf)
            off = _PAGE_HDR.size
            while off < free_off:
                flags, length = _ROW_HDR.unpack_from(buf, off)
                if not flags & _FLAG_DELETED:
                    yield (page_no, off), bytes(
                        buf[off + _ROW_HDR.size : off + _ROW_HDR.size + length]
                    )
                off += _ROW_HDR.size + length

    def count(self) -> int:
        total = 0
        for page_no in range(self.pages.npages):
            buf = self._load(page_no)
            nrows, _ = _PAGE_HDR.unpack_from(buf)
            total += nrows
        return total
