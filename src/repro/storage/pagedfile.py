"""Page-addressed file over a :class:`BlockDevice`.

All disk-based engines (B-tree, heap file, grDB level files) do their I/O in
fixed-size pages through this class, so every byte they move is charged to
the owning node's virtual clock by the device's cost model.
"""

from __future__ import annotations

from ..simcluster.disk import BlockDevice
from ..util.errors import StorageEngineError

__all__ = ["PagedFile"]


class PagedFile:
    """Fixed-size-page random access file.

    Pages are numbered from 0.  Reading past the allocated extent is an
    error (engines must allocate first); writing exactly at the end grows
    the file by one page.
    """

    def __init__(self, device: BlockDevice, page_size: int, base_offset: int = 0):
        if page_size <= 0:
            raise StorageEngineError(f"page_size must be positive, got {page_size}")
        self.device = device
        self.page_size = page_size
        self.base_offset = base_offset
        self._npages = 0
        # Adopt pre-existing content (reopened file).
        existing = max(0, device.size() - base_offset)
        self._npages = existing // page_size

    @property
    def npages(self) -> int:
        return self._npages

    def allocate_page(self) -> int:
        """Append a zeroed page; returns its page number."""
        page_no = self._npages
        self.write_page(page_no, b"\x00" * self.page_size)
        return page_no

    def read_page(self, page_no: int) -> bytes:
        if not 0 <= page_no < self._npages:
            raise StorageEngineError(
                f"read of page {page_no} outside allocated extent ({self._npages} pages)"
            )
        return self.device.read(self.base_offset + page_no * self.page_size, self.page_size)

    def write_page(self, page_no: int, data: bytes) -> None:
        if len(data) != self.page_size:
            raise StorageEngineError(
                f"page write of {len(data)} bytes != page size {self.page_size}"
            )
        if not 0 <= page_no <= self._npages:
            raise StorageEngineError(
                f"write of page {page_no} would leave a hole ({self._npages} pages allocated)"
            )
        self.device.write(self.base_offset + page_no * self.page_size, data)
        if page_no == self._npages:
            self._npages += 1
