"""Crash-safe per-backend delta log for streaming ingest (DESIGN §12).

LSM-style sequential append area holding the edge batches a back-end has
accepted since its base store was last compacted.  Each streamed batch
becomes one DATA record (the sorted shard, delta+varint encoded with the
PR 8 codec) followed by one COMMIT record carrying the batch sequence
number; both are CRC32-framed, so recovery can walk the log forward and
stop at the first torn/corrupt byte with no ambiguity::

    magic u32 | kind u32 | seq u64 | nedges u32 | nbytes u32 | payload | crc32

The log is *self-validating*: it lives on a raw (unframed) device and
carries its own record-level CRCs, because a torn append must read as
"absent", not as a checksum violation a later scrub would keep reporting.
Appends are strictly sequential and never rewrite committed bytes (the
record area is byte-addressed, not read-modify-write framed), so a torn
write can only damage the record being appended — recovery truncates the
debris and the committed prefix stands untouched.

Ahead of the record area sit two alternating 4 KiB header slots (a torn
header write can never damage the previously valid header)::

    magic u64 | hseq u64 | compacted u64 | intent_target u64
            | intent_token u64 | flags u64 | crc32 u32

``compacted`` is the highest batch seq already folded into the base store
(those records are gone from the log); the intent fields implement the
two-phase compaction publish: ``begin_compaction`` records the target seq
plus the base store's own durable commit token (grDB WAL seq / StreamDB
commit seq) *before* the base flush, and recovery compares the token then
vs now to decide — all-or-nothing — whether a crashed compaction's flush
committed (finish: adopt ``compacted=target``) or not (abort: keep
replaying the deltas).
"""

from __future__ import annotations

import struct
import zlib

import numpy as np

from ..simcluster.disk import BlockDevice
from ..util.errors import GraphStorageException
from ..util.varint import decode_edge_block, encode_edge_block

__all__ = ["DeltaLog", "RECORD_START"]

_HEADER = struct.Struct("<QQQQQQ")  # magic, hseq, compacted, target, token, flags
_HDR_MAGIC = 0x4D5353474444454C  # "MSSGDDEL"
_HDR_SLOT = 4096
RECORD_START = 2 * _HDR_SLOT

_REC = struct.Struct("<IIQII")  # magic, kind, seq, nedges, nbytes
_REC_MAGIC = 0x444C4F47  # "DLOG"
_KIND_DATA = 1
_KIND_COMMIT = 2
_CRC = struct.Struct("<I")
_FLAG_TOKEN = 1  # intent_token field is meaningful


class DeltaLog:
    """One back-end's streamed-edge delta log (module doc for the format).

    Opening an existing device runs recovery: adopt the newest valid
    header, walk the record area to the last committed batch, truncate any
    torn/uncommitted debris, and decode the surviving DATA records into
    ``pending`` — the ``(seq, edges)`` batches a :class:`DeltaOverlay`
    replays over the base store.  A pending compaction intent is left for
    :meth:`resolve_intent` (the caller holds the base store's token).
    """

    def __init__(self, device: BlockDevice):
        self.device = device
        self._hseq = 0
        #: Highest batch seq folded into the base store (not in the log).
        self.compacted = 0
        #: Highest batch seq with a durable COMMIT record (or compacted).
        self.committed = 0
        #: Unfinished two-phase compaction: ``(target_seq, base_token)``.
        self.intent: tuple[int, int | None] | None = None
        #: Decoded surviving batches, ascending seq in (compacted, committed].
        self.pending: list[tuple[int, np.ndarray]] = []
        self._tail = RECORD_START
        #: Byte offset of each committed batch's DATA record (for trims).
        self._offsets: dict[int, int] = {}
        self._recover()

    # -- recovery -------------------------------------------------------------

    def _read_header_slot(self, slot: int) -> tuple | None:
        off = slot * _HDR_SLOT
        if self.device.size() < off + _HEADER.size + _CRC.size:
            return None
        raw = self.device.read(off, _HEADER.size + _CRC.size)
        magic, hseq, compacted, target, token, flags = _HEADER.unpack_from(raw)
        (crc,) = _CRC.unpack_from(raw, _HEADER.size)
        if magic != _HDR_MAGIC or crc != zlib.crc32(raw[: _HEADER.size]):
            return None
        return hseq, compacted, target, token, flags

    def _recover(self) -> None:
        headers = [self._read_header_slot(s) for s in (0, 1)]
        headers = [h for h in headers if h is not None]
        if headers:
            hseq, compacted, target, token, flags = max(headers)
            self._hseq = hseq
            self.compacted = compacted
            if target:
                self.intent = (target, token if flags & _FLAG_TOKEN else None)
        self.committed = self.compacted
        size = self.device.size()
        if size <= RECORD_START:
            return
        buf = self.device.read(RECORD_START, size - RECORD_START)
        off = 0
        tail = 0  # relative offset just past the last valid COMMIT
        last_commit = 0
        data: list[tuple[int, int, np.ndarray]] = []  # (seq, rel offset, edges)
        while off + _REC.size + _CRC.size <= len(buf):
            magic, kind, seq, nedges, nbytes = _REC.unpack_from(buf, off)
            if magic != _REC_MAGIC or kind not in (_KIND_DATA, _KIND_COMMIT):
                break
            end = off + _REC.size + nbytes
            if end + _CRC.size > len(buf):
                break
            (crc,) = _CRC.unpack_from(buf, end)
            if crc != zlib.crc32(buf[off:end]):
                break
            if kind == _KIND_DATA:
                payload = buf[off + _REC.size : end]
                if nedges:
                    try:
                        edges, consumed = decode_edge_block(
                            payload, nedges, what="delta-log record"
                        )
                    except GraphStorageException:
                        break
                    if consumed != nbytes:
                        break
                else:
                    edges = np.zeros((0, 2), dtype=np.int64)
                data.append((seq, off, edges))
            else:
                last_commit = max(last_commit, seq)
                tail = end + _CRC.size
            off = end + _CRC.size
        self.committed = max(self.compacted, last_commit)
        self._tail = RECORD_START + tail
        if size > self._tail:
            # Torn/uncommitted debris past the committed prefix vanishes.
            self.device.truncate(self._tail)
        for seq, rel, edges in data:
            if self.compacted < seq <= self.committed:
                self.pending.append((seq, edges))
                self._offsets[seq] = RECORD_START + rel
        self.pending.sort(key=lambda t: t[0])

    # -- header protocol ------------------------------------------------------

    def _write_header(self) -> None:
        self._hseq += 1
        target, token = self.intent if self.intent is not None else (0, None)
        flags = _FLAG_TOKEN if (self.intent is not None and token is not None) else 0
        body = _HEADER.pack(
            _HDR_MAGIC,
            self._hseq,
            self.compacted,
            target,
            token if (flags & _FLAG_TOKEN) else 0,
            flags,
        )
        record = body + _CRC.pack(zlib.crc32(body))
        slot = (self._hseq % 2) * _HDR_SLOT
        self.device.write(slot, record.ljust(_HDR_SLOT, b"\x00"))

    # -- append protocol ------------------------------------------------------

    @staticmethod
    def _frame(kind: int, seq: int, nedges: int, payload: bytes) -> bytes:
        body = _REC.pack(_REC_MAGIC, kind, seq, nedges, len(payload)) + payload
        return body + _CRC.pack(zlib.crc32(body))

    def append(self, seq: int, edges: np.ndarray) -> int:
        """Durably append one batch: DATA + COMMIT in a single device write.

        ``edges`` is the back-end's ``(E, 2)`` shard (may be empty — empty
        batches still commit, keeping seq numbering uniform cluster-wide).
        A crash tearing the write leaves the COMMIT invalid, so recovery
        drops the whole batch: all-or-nothing by construction.  Returns the
        bytes appended.
        """
        edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
        if len(edges):
            order = np.lexsort((edges[:, 1], edges[:, 0]))
            edges = edges[order]
            payload = encode_edge_block(edges)
        else:
            payload = b""
        data = self._frame(_KIND_DATA, seq, len(edges), payload)
        data += self._frame(_KIND_COMMIT, seq, 0, b"")
        self._offsets[seq] = self._tail
        self.device.write(self._tail, data)
        self._tail += len(data)
        self.committed = max(self.committed, seq)
        self.pending.append((seq, edges))
        return len(data)

    def truncate_to(self, seq: int) -> None:
        """Drop committed batches with sequence above ``seq``.

        Recovery-time trim: a crash can commit a batch on some back-ends
        but not others; the cluster coordinator rolls every log back to the
        published snapshot so the next stream batch reuses the seq cleanly.
        """
        if self.committed <= seq:
            return
        cut = min(
            (off for s, off in self._offsets.items() if s > seq),
            default=self._tail,
        )
        self.device.truncate(cut)
        self._tail = cut
        self._offsets = {s: o for s, o in self._offsets.items() if s <= seq}
        self.pending = [(s, e) for s, e in self.pending if s <= seq]
        self.committed = max(self.compacted, seq)

    # -- two-phase compaction publish -----------------------------------------

    def begin_compaction(self, token: int | None) -> int:
        """Phase 1: durably record the intent to fold everything pending.

        ``token`` is the base store's durable commit counter *right now*
        (``None`` for stores with no crash story — BDB/MySQL/in-memory —
        whose recovery conservatively aborts).  Returns the target seq.
        """
        target = self.committed
        self.intent = (target, token)
        self._write_header()
        return target

    def finish_compaction(self, target: int) -> None:
        """Phase 2: the base flush committed — publish and drop the deltas."""
        self.intent = None
        self.compacted = max(self.compacted, target)
        self.committed = max(self.committed, self.compacted)
        self._write_header()
        self.device.truncate(RECORD_START)
        self._tail = RECORD_START
        self._offsets = {s: o for s, o in self._offsets.items() if s > target}
        self.pending = [(s, e) for s, e in self.pending if s > target]

    def abort_compaction(self) -> None:
        """The base flush never committed: clear the intent, keep the deltas."""
        self.intent = None
        self._write_header()

    def resolve_intent(self, base_token: int | None) -> bool:
        """Settle a compaction interrupted by a crash (called after the base
        store's own restore ran, so ``base_token`` reflects the recovered
        image).  Returns True when the compaction was completed.

        The base flush is itself all-or-nothing (grDB WAL roll-forward /
        StreamDB commit slots), so comparing its commit counter against the
        value the intent recorded is an unambiguous did-it-land test.  A
        ``None`` on either side means no token is available — abort, the
        conservative choice that never drops data.
        """
        if self.intent is None:
            return False
        target, token = self.intent
        if token is not None and base_token is not None and base_token > token:
            self.finish_compaction(target)
            return True
        self.abort_compaction()
        return False
