"""Block/page caches with write-back: private LRU and rank-shared pools.

:class:`LRUBlockCache` is the "block cache component" of grDB (§3.4.1) and
doubles as the page cache of the BerkeleyDB-like store.  Keys are opaque
hashables (the engines use ``(file_id, block_no)``); values are ``bytes``
of one block.  Dirty blocks are flushed through a caller-supplied writer on
eviction and on :meth:`flush`, so a cache-enabled engine coalesces repeated
writes to a hot block into one device write — exactly the effect Figure 5.2
measures.

:class:`SharedBlockCache` hoists that per-engine cache into one pool per
rank: every storage engine on the rank takes a :class:`CachePartition` view
(an owner-namespaced facade with the full ``LRUBlockCache`` API), so all
in-flight queries and all engines of a back-end compete for — and benefit
from — the same resident set.  Two eviction policies:

``"lru"``
    One global LRU; with a single owner this is bit-identical to a private
    :class:`LRUBlockCache` (the paper-faithful configuration).

``"2q"``
    Scan-resistant two-segment eviction (segmented LRU): first-touch blocks
    enter a *probation* segment and only a re-reference promotes them to
    the *protected* segment; eviction drains probation first.  A bottom-up
    sweep streaming the whole graph can therefore never wipe out another
    query's hot top-down working set — it churns through probation while
    protected blocks survive.

Engines must obtain caches through :func:`make_block_cache` — the factory
is the one place private ``LRUBlockCache`` construction is allowed, which
is what lets a deployment swap every engine onto a shared pool without
touching engine code.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Hashable

from ..util.errors import ConfigError, StorageEngineError

__all__ = [
    "LRUBlockCache",
    "CacheStats",
    "SharedBlockCache",
    "CachePartition",
    "make_block_cache",
    "validate_cache_policy",
]

CACHE_POLICIES = ("lru", "2q")


def validate_cache_policy(policy: str) -> str:
    """Validate a ``cache_policy`` knob value; returns it unchanged.

    The single source of truth for the error — config surfaces
    (``MSSGConfig``, ``shared_cache_for``) and the pool constructor all
    call this instead of re-validating with their own wording.
    """
    if policy not in CACHE_POLICIES:
        raise ConfigError(
            f"unknown cache_policy {policy!r}; choose from {CACHE_POLICIES}"
        )
    return policy


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    writebacks: int = 0
    #: Blocks pulled in ahead of demand by a batched prefetch planner
    #: (``GrDBStorage.prefetch_blocks``); a subset of ``misses``.
    prefetched: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0


class LRUBlockCache:
    """Bounded LRU cache of storage blocks with dirty tracking.

    Parameters
    ----------
    capacity_blocks:
        Maximum number of cached blocks; 0 makes the cache a pure
        pass-through (every ``get`` misses), which is how the "cache
        disabled" configurations of Figure 5.2 run.
    writer:
        ``writer(key, data)`` persists a dirty block; required if any
        ``put`` marks blocks dirty.
    """

    def __init__(
        self,
        capacity_blocks: int,
        writer: Callable[[Hashable, bytes], None] | None = None,
    ):
        if capacity_blocks < 0:
            raise StorageEngineError("cache capacity cannot be negative")
        self.capacity = capacity_blocks
        self._writer = writer
        self._blocks: OrderedDict[Hashable, bytes] = OrderedDict()
        self._pinned: dict[Hashable, bytes] = {}
        self._dirty: set[Hashable] = set()
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._blocks) + len(self._pinned)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._blocks or key in self._pinned

    @property
    def pinned_blocks(self) -> int:
        return len(self._pinned)

    def _free_capacity(self) -> int:
        """Capacity left for evictable blocks after the pinned share."""
        return max(0, self.capacity - len(self._pinned))

    def get(self, key: Hashable) -> bytes | None:
        """Return the cached block and refresh its recency, or ``None``."""
        data = self._pinned.get(key)
        if data is not None:
            self.stats.hits += 1
            return data
        data = self._blocks.get(key)
        if data is None:
            self.stats.misses += 1
            return None
        self._blocks.move_to_end(key)
        self.stats.hits += 1
        return data

    def put(self, key: Hashable, data: bytes, dirty: bool = False) -> None:
        """Insert/overwrite a block; evicts LRU blocks beyond capacity."""
        if key in self._pinned:
            if dirty:
                raise StorageEngineError(f"pinned block {key!r} cannot be dirtied")
            self._pinned[key] = data
            return
        free = self._free_capacity()
        if free == 0:
            if dirty:
                self._write_back(key, data)
            return
        if key in self._blocks:
            self._blocks.move_to_end(key)
        self._blocks[key] = data
        if dirty:
            self._dirty.add(key)
        else:
            # A clean overwrite (fresh read from the device) supersedes any
            # stale dirty mark: writing the old bit pattern back out would
            # clobber the block just read.
            self._dirty.discard(key)
        while len(self._blocks) > free:
            old_key, old_data = self._blocks.popitem(last=False)
            self.stats.evictions += 1
            if old_key in self._dirty:
                self._dirty.discard(old_key)
                self._write_back(old_key, old_data)

    def pin(self, key: Hashable, data: bytes) -> None:
        """Make ``key`` resident and exempt from eviction.

        Pinned blocks are clean by definition (they mirror state the owner
        can rebuild, never the sole copy of a write).  Pinning beyond the
        cache's capacity is a configuration error, not an eviction.
        """
        if key not in self._pinned and len(self._pinned) + 1 > self.capacity:
            raise StorageEngineError(
                f"cannot pin {key!r}: {len(self._pinned)} blocks already "
                f"pinned of capacity {self.capacity}"
            )
        if key in self._blocks:
            del self._blocks[key]
            self._dirty.discard(key)
        self._pinned[key] = data
        # The pinned share shrank the evictable region; trim overflow.
        free = self._free_capacity()
        while len(self._blocks) > free:
            old_key, old_data = self._blocks.popitem(last=False)
            self.stats.evictions += 1
            if old_key in self._dirty:
                self._dirty.discard(old_key)
                self._write_back(old_key, old_data)

    def unpin(self, key: Hashable) -> None:
        """Demote a pinned block to an ordinary (evictable) resident."""
        data = self._pinned.pop(key, None)
        if data is not None:
            self.put(key, data)

    def invalidate(self, key: Hashable) -> None:
        """Drop a block without writing it back (caller persisted it)."""
        self._blocks.pop(key, None)
        self._pinned.pop(key, None)
        self._dirty.discard(key)

    def _write_back(self, key: Hashable, data: bytes) -> None:
        if self._writer is None:
            raise StorageEngineError(f"dirty block {key!r} evicted but no writer configured")
        self._writer(key, data)
        self.stats.writebacks += 1

    def dirty_items(self) -> list[tuple[Hashable, bytes]]:
        """Snapshot of every dirty block (in LRU order), without writing.

        Used by the journaled (crash-consistent) grDB flush, which must
        know the publish set before any in-place write happens.
        """
        return [(k, self._blocks[k]) for k in self._blocks if k in self._dirty]

    def flush(self) -> None:
        """Write back every dirty block (in LRU order) and mark all clean."""
        for key in [k for k in self._blocks if k in self._dirty]:
            self._dirty.discard(key)
            self._write_back(key, self._blocks[key])

    def clear(self) -> None:
        """Flush then drop everything."""
        self.flush()
        self._blocks.clear()
        self._pinned.clear()
        self._dirty.clear()

    def drop(self) -> None:
        """Drop everything WITHOUT flushing.

        For discarding cached state that no longer describes the backing
        store — e.g. after :meth:`GrDBStorage.restore` re-reads a superblock,
        when flushing pre-restore dirty blocks would corrupt the restored
        image.  Not an alternative to :meth:`clear` for shutdown.
        """
        self._blocks.clear()
        self._pinned.clear()
        self._dirty.clear()

    def scan_budget(self) -> int:
        """Cache insertions one streaming pass may make without self-harm.

        A private LRU has no one else to protect, so everything outside the
        pinned share is the budget (inserting more would only evict the
        pass's own earlier blocks; pinned blocks are untouchable either
        way).  Shared partitions narrow this — see
        :meth:`CachePartition.scan_budget`.
        """
        return self._free_capacity()


class SharedBlockCache:
    """One bounded block pool per rank, shared by every engine on it.

    Entries are namespaced by ``(owner, key)``; each owner attaches through
    :meth:`partition`, which hands back a :class:`CachePartition` exposing
    the familiar per-engine cache API.  Hit/miss/prefetch accounting is
    attributed to the accessing partition and evictions/write-backs to the
    partition owning the evicted block, so in the single-owner ``"lru"``
    configuration the partition's ``stats`` are bit-identical to a private
    :class:`LRUBlockCache`'s.

    ``policy="2q"`` splits the pool into probation + protected segments
    (scan resistance; see module docstring).  The protected segment holds
    at most 3/4 of capacity; a probation hit promotes, demoting the
    protected LRU back to probation rather than evicting it.
    """

    #: Fraction of capacity the protected segment may occupy under "2q".
    PROTECTED_FRACTION = 0.75

    def __init__(self, capacity_blocks: int, policy: str = "lru"):
        if capacity_blocks < 0:
            raise StorageEngineError("cache capacity cannot be negative")
        validate_cache_policy(policy)
        self.capacity = capacity_blocks
        self.policy = policy
        self._protected_cap = (
            max(1, int(capacity_blocks * self.PROTECTED_FRACTION))
            if capacity_blocks
            else 0
        )
        # "lru": all blocks live in _probation (single global LRU order);
        # "2q": _probation is the first-touch segment, _protected the
        # re-referenced one.  _pinned holds blocks exempt from eviction
        # (the semi-EM resident directory and hot metadata pages); its
        # share is subtracted from what probation/protected may use.
        # Keys are (owner, key) pairs throughout.
        self._probation: OrderedDict[tuple, bytes] = OrderedDict()
        self._protected: OrderedDict[tuple, bytes] = OrderedDict()
        self._pinned: dict[tuple, bytes] = {}
        self._dirty: set[tuple] = set()
        self._writers: dict[str, Callable[[Hashable, bytes], None] | None] = {}
        self._partitions: dict[str, "CachePartition"] = {}
        #: Pool-wide counters (sum over partitions, plus cross-owner events).
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._probation) + len(self._protected) + len(self._pinned)

    @property
    def pinned_blocks(self) -> int:
        return len(self._pinned)

    def _free_capacity(self) -> int:
        """Capacity left for the evictable segments after the pinned share."""
        return max(0, self.capacity - len(self._pinned))

    def partition(self, owner: str, writer=None) -> "CachePartition":
        """Attach (or re-attach) owner ``owner``; returns its cache view.

        Re-attaching an owner name — a storage engine rebuilt on the same
        devices, e.g. by read-repair — DROPS the previous incarnation's
        entries without flushing: its dirty blocks describe the discarded
        image, and writing them back through the stale writer would corrupt
        the freshly rebuilt store.
        """
        if owner in self._partitions:
            self.drop_owner(owner)
        self._writers[owner] = writer
        part = CachePartition(self, owner)
        self._partitions[owner] = part
        return part

    def drop_owner(self, owner: str) -> None:
        """Discard every block of ``owner`` without write-back."""
        for seg in (self._probation, self._protected, self._pinned):
            for k in [k for k in seg if k[0] == owner]:
                del seg[k]
                self._dirty.discard(k)

    def scan_budget(self) -> int:
        """Insertions one streaming pass may make without collateral damage.

        The pinned segment is off-limits to everyone, so the budget is
        computed over the *free* share (capacity minus pinned blocks) —
        this is what keeps a whole-graph analytics sweep from evicting the
        resident vertex state of semi-EM mode.  Within the free share:
        under ``"2q"`` a pass's first-touch blocks can only displace other
        probation blocks, so the budget is the probation segment's size —
        capping batch inserts there keeps a giant scan from monopolizing
        even probation.  Under ``"lru"`` there is no protected segment and
        the budget is the whole free share (the private-cache behavior).
        A fully-pinned pool has budget 0: a scan may cache nothing.
        """
        free = self._free_capacity()
        if self.policy == "2q":
            return max(0, free - self._protected_cap) or min(1, free)
        return free

    # -- core operations (called through CachePartition) --------------------

    def _get(self, part: "CachePartition", key: Hashable) -> bytes | None:
        k = (part.owner, key)
        data = self._pinned.get(k)
        if data is not None:
            part.stats.hits += 1
            self.stats.hits += 1
            return data
        data = self._probation.get(k)
        if data is not None:
            if self.policy == "2q":
                # Re-reference: promote to protected, demoting its LRU.
                del self._probation[k]
                self._protected[k] = data
                while len(self._protected) > self._protected_cap:
                    old_k, old_data = self._protected.popitem(last=False)
                    self._probation[old_k] = old_data
            else:
                self._probation.move_to_end(k)
            part.stats.hits += 1
            self.stats.hits += 1
            return data
        data = self._protected.get(k)
        if data is not None:
            self._protected.move_to_end(k)
            part.stats.hits += 1
            self.stats.hits += 1
            return data
        part.stats.misses += 1
        self.stats.misses += 1
        return None

    def _put(self, part: "CachePartition", key: Hashable, data: bytes, dirty: bool) -> None:
        k = (part.owner, key)
        if k in self._pinned:
            if dirty:
                raise StorageEngineError(
                    f"pinned block {key!r} of owner {part.owner!r} cannot be dirtied"
                )
            self._pinned[k] = data
            return
        free = self._free_capacity()
        if free == 0:
            if dirty:
                self._write_back(k, data)
            return
        if k in self._protected:
            self._protected.move_to_end(k)
            self._protected[k] = data
        else:
            if k in self._probation:
                self._probation.move_to_end(k)
            self._probation[k] = data
        if dirty:
            self._dirty.add(k)
        else:
            # A clean overwrite (fresh read from the device) supersedes any
            # stale dirty mark, exactly as in the private LRU.
            self._dirty.discard(k)
        self._evict_to(free)

    def _evict_to(self, free: int) -> None:
        """Shrink the evictable segments to ``free`` blocks (probation first)."""
        while len(self._probation) + len(self._protected) > free:
            if self._probation:
                old_k, old_data = self._probation.popitem(last=False)
            else:
                old_k, old_data = self._protected.popitem(last=False)
            evicted_part = self._partitions.get(old_k[0])
            if evicted_part is not None:
                evicted_part.stats.evictions += 1
            self.stats.evictions += 1
            if old_k in self._dirty:
                self._dirty.discard(old_k)
                self._write_back(old_k, old_data)

    def _pin(self, part: "CachePartition", key: Hashable, data: bytes) -> None:
        k = (part.owner, key)
        if k not in self._pinned and len(self._pinned) + 1 > self.capacity:
            raise StorageEngineError(
                f"cannot pin {key!r} for owner {part.owner!r}: "
                f"{len(self._pinned)} blocks already pinned of capacity "
                f"{self.capacity}"
            )
        for seg in (self._probation, self._protected):
            if k in seg:
                del seg[k]
                self._dirty.discard(k)
        self._pinned[k] = data
        # The pinned share shrank the evictable region; trim overflow.
        self._evict_to(self._free_capacity())

    def _unpin(self, part: "CachePartition", key: Hashable) -> None:
        k = (part.owner, key)
        data = self._pinned.pop(k, None)
        if data is not None:
            self._put(part, key, data, dirty=False)

    def _write_back(self, k: tuple, data: bytes) -> None:
        writer = self._writers.get(k[0])
        if writer is None:
            raise StorageEngineError(
                f"dirty block {k[1]!r} of owner {k[0]!r} evicted but no writer configured"
            )
        writer(k[1], data)
        part = self._partitions.get(k[0])
        if part is not None:
            part.stats.writebacks += 1
        self.stats.writebacks += 1

    def _contains(self, owner: str, key: Hashable) -> bool:
        k = (owner, key)
        return k in self._probation or k in self._protected or k in self._pinned

    def _owned_keys(self, owner: str) -> list[tuple]:
        """Owner's blocks in recency order (probation, protected, pinned)."""
        return [
            k
            for seg in (self._probation, self._protected, self._pinned)
            for k in seg
            if k[0] == owner
        ]

    def _data_of(self, k: tuple) -> bytes:
        for seg in (self._probation, self._protected, self._pinned):
            if k in seg:
                return seg[k]
        raise KeyError(k)


class CachePartition:
    """One owner's view of a :class:`SharedBlockCache`.

    Drop-in for :class:`LRUBlockCache` from a storage engine's perspective:
    same methods, same dirty/write-back contract, per-owner ``stats``.
    Obtained from :meth:`SharedBlockCache.partition` (or, transparently,
    from :func:`make_block_cache`).
    """

    def __init__(self, shared: SharedBlockCache, owner: str):
        self.shared = shared
        self.owner = owner
        self.stats = CacheStats()

    @property
    def capacity(self) -> int:
        return self.shared.capacity

    def scan_budget(self) -> int:
        return self.shared.scan_budget()

    def __len__(self) -> int:
        return len(self.shared._owned_keys(self.owner))

    def __contains__(self, key: Hashable) -> bool:
        return self.shared._contains(self.owner, key)

    def get(self, key: Hashable) -> bytes | None:
        return self.shared._get(self, key)

    def put(self, key: Hashable, data: bytes, dirty: bool = False) -> None:
        self.shared._put(self, key, data, dirty)

    def pin(self, key: Hashable, data: bytes) -> None:
        """Make ``key`` resident in the pool, exempt from eviction."""
        self.shared._pin(self, key, data)

    def unpin(self, key: Hashable) -> None:
        """Demote a pinned block to ordinary (evictable) residency."""
        self.shared._unpin(self, key)

    def invalidate(self, key: Hashable) -> None:
        k = (self.owner, key)
        self.shared._probation.pop(k, None)
        self.shared._protected.pop(k, None)
        self.shared._pinned.pop(k, None)
        self.shared._dirty.discard(k)

    def dirty_items(self) -> list[tuple[Hashable, bytes]]:
        sh = self.shared
        return [
            (k[1], sh._data_of(k))
            for k in sh._owned_keys(self.owner)
            if k in sh._dirty
        ]

    def flush(self) -> None:
        sh = self.shared
        for k in sh._owned_keys(self.owner):
            if k in sh._dirty:
                sh._dirty.discard(k)
                sh._write_back(k, sh._data_of(k))

    def clear(self) -> None:
        self.flush()
        sh = self.shared
        for k in sh._owned_keys(self.owner):
            for seg in (sh._probation, sh._protected, sh._pinned):
                if k in seg:
                    del seg[k]
                    break

    def drop(self) -> None:
        self.shared.drop_owner(self.owner)


def make_block_cache(
    capacity_blocks: int,
    writer: Callable[[Hashable, bytes], None] | None = None,
    shared: SharedBlockCache | None = None,
    owner: str = "default",
):
    """The one sanctioned way for a storage engine to obtain a block cache.

    Without ``shared`` this returns a private :class:`LRUBlockCache` — the
    historical per-engine behavior, bit-identical.  With ``shared`` the
    engine attaches to the rank's pool as ``owner`` and gets a
    :class:`CachePartition` (``capacity_blocks`` is then ignored; the pool
    was sized at construction).  Engines must not call ``LRUBlockCache``
    directly — the CI grep enforces it — so swapping a deployment onto a
    shared pool never requires touching engine code.
    """
    if shared is None:
        return LRUBlockCache(capacity_blocks, writer=writer)
    return shared.partition(owner, writer=writer)
