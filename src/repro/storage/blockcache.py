"""LRU block/page cache with write-back.

This is the "block cache component" of grDB (§3.4.1) and doubles as the
page cache of the BerkeleyDB-like store.  Keys are opaque hashables (the
engines use ``(file_id, block_no)``); values are ``bytes`` of one block.
Dirty blocks are flushed through a caller-supplied writer on eviction and on
:meth:`flush`, so a cache-enabled engine coalesces repeated writes to a hot
block into one device write — exactly the effect Figure 5.2 measures.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Hashable

from ..util.errors import StorageEngineError

__all__ = ["LRUBlockCache", "CacheStats"]


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    writebacks: int = 0
    #: Blocks pulled in ahead of demand by a batched prefetch planner
    #: (``GrDBStorage.prefetch_blocks``); a subset of ``misses``.
    prefetched: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0


class LRUBlockCache:
    """Bounded LRU cache of storage blocks with dirty tracking.

    Parameters
    ----------
    capacity_blocks:
        Maximum number of cached blocks; 0 makes the cache a pure
        pass-through (every ``get`` misses), which is how the "cache
        disabled" configurations of Figure 5.2 run.
    writer:
        ``writer(key, data)`` persists a dirty block; required if any
        ``put`` marks blocks dirty.
    """

    def __init__(
        self,
        capacity_blocks: int,
        writer: Callable[[Hashable, bytes], None] | None = None,
    ):
        if capacity_blocks < 0:
            raise StorageEngineError("cache capacity cannot be negative")
        self.capacity = capacity_blocks
        self._writer = writer
        self._blocks: OrderedDict[Hashable, bytes] = OrderedDict()
        self._dirty: set[Hashable] = set()
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._blocks)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._blocks

    def get(self, key: Hashable) -> bytes | None:
        """Return the cached block and refresh its recency, or ``None``."""
        data = self._blocks.get(key)
        if data is None:
            self.stats.misses += 1
            return None
        self._blocks.move_to_end(key)
        self.stats.hits += 1
        return data

    def put(self, key: Hashable, data: bytes, dirty: bool = False) -> None:
        """Insert/overwrite a block; evicts LRU blocks beyond capacity."""
        if self.capacity == 0:
            if dirty:
                self._write_back(key, data)
            return
        if key in self._blocks:
            self._blocks.move_to_end(key)
        self._blocks[key] = data
        if dirty:
            self._dirty.add(key)
        else:
            # A clean overwrite (fresh read from the device) supersedes any
            # stale dirty mark: writing the old bit pattern back out would
            # clobber the block just read.
            self._dirty.discard(key)
        while len(self._blocks) > self.capacity:
            old_key, old_data = self._blocks.popitem(last=False)
            self.stats.evictions += 1
            if old_key in self._dirty:
                self._dirty.discard(old_key)
                self._write_back(old_key, old_data)

    def invalidate(self, key: Hashable) -> None:
        """Drop a block without writing it back (caller persisted it)."""
        self._blocks.pop(key, None)
        self._dirty.discard(key)

    def _write_back(self, key: Hashable, data: bytes) -> None:
        if self._writer is None:
            raise StorageEngineError(f"dirty block {key!r} evicted but no writer configured")
        self._writer(key, data)
        self.stats.writebacks += 1

    def dirty_items(self) -> list[tuple[Hashable, bytes]]:
        """Snapshot of every dirty block (in LRU order), without writing.

        Used by the journaled (crash-consistent) grDB flush, which must
        know the publish set before any in-place write happens.
        """
        return [(k, self._blocks[k]) for k in self._blocks if k in self._dirty]

    def flush(self) -> None:
        """Write back every dirty block (in LRU order) and mark all clean."""
        for key in [k for k in self._blocks if k in self._dirty]:
            self._dirty.discard(key)
            self._write_back(key, self._blocks[key])

    def clear(self) -> None:
        """Flush then drop everything."""
        self.flush()
        self._blocks.clear()
        self._dirty.clear()

    def drop(self) -> None:
        """Drop everything WITHOUT flushing.

        For discarding cached state that no longer describes the backing
        store — e.g. after :meth:`GrDBStorage.restore` re-reads a superblock,
        when flushing pre-restore dirty blocks would corrupt the restored
        image.  Not an alternative to :meth:`clear` for shutdown.
        """
        self._blocks.clear()
        self._dirty.clear()
