"""Tokenizer, AST and recursive-descent parser for MiniSQL.

MiniSQL implements the slice of SQL the paper's MySQL GraphDB backend needs
(prepared statements over one table of BLOB chunks) plus enough generality
to be a believable relational engine: CREATE TABLE / CREATE INDEX, INSERT,
SELECT with conjunctive comparisons and ORDER BY, UPDATE, DELETE, and ``?``
parameter binding.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any

from ..util.errors import SqlError

__all__ = [
    "parse",
    "CreateTable",
    "CreateIndex",
    "Insert",
    "Select",
    "Update",
    "Delete",
    "Condition",
    "Literal",
    "Param",
    "ColumnDef",
]

_TOKEN_RE = re.compile(
    r"""
    \s*(?:
        (?P<number>-?\d+)
      | (?P<string>'(?:[^']|'')*')
      | (?P<ident>[A-Za-z_][A-Za-z_0-9]*)
      | (?P<op><=|>=|!=|<>|=|<|>)
      | (?P<punct>[(),;*?])
    )
    """,
    re.VERBOSE,
)

_KEYWORDS = {
    "CREATE", "TABLE", "INDEX", "ON", "INSERT", "INTO", "VALUES", "SELECT",
    "FROM", "WHERE", "AND", "UPDATE", "SET", "DELETE", "ORDER", "BY", "ASC",
    "DESC", "COUNT", "LIMIT",
}

# MySQL-style type names: INT/INTEGER are 32-bit, BIGINT is 64-bit.
_TYPES = {
    "INT": "INT32",
    "INTEGER": "INT32",
    "SMALLINT": "INT32",
    "INT32": "INT32",
    "BIGINT": "INT64",
    "INT64": "INT64",
    "BLOB": "BLOB",
    "TEXT": "TEXT",
    "VARCHAR": "TEXT",
}


@dataclass(frozen=True)
class Literal:
    value: Any


@dataclass(frozen=True)
class Param:
    index: int


@dataclass(frozen=True)
class Condition:
    column: str
    op: str  # one of = < > <= >= !=
    value: Literal | Param


@dataclass(frozen=True)
class ColumnDef:
    name: str
    type: str  # INT64 | INT32 | BLOB | TEXT


@dataclass(frozen=True)
class CreateTable:
    table: str
    columns: tuple[ColumnDef, ...]


@dataclass(frozen=True)
class CreateIndex:
    table: str
    columns: tuple[str, ...]
    name: str | None = None


@dataclass(frozen=True)
class Insert:
    table: str
    values: tuple[Literal | Param, ...]


@dataclass(frozen=True)
class Select:
    table: str
    columns: tuple[str, ...]  # ("*",) for all; ("COUNT(*)",) for count
    where: tuple[Condition, ...] = ()
    order_by: tuple[tuple[str, bool], ...] = ()  # (column, ascending)
    limit: int | None = None


@dataclass(frozen=True)
class Update:
    table: str
    assignments: tuple[tuple[str, Literal | Param], ...]
    where: tuple[Condition, ...] = ()


@dataclass(frozen=True)
class Delete:
    table: str
    where: tuple[Condition, ...] = ()


def _tokenize(sql: str) -> list[tuple[str, str]]:
    tokens: list[tuple[str, str]] = []
    pos = 0
    while pos < len(sql):
        m = _TOKEN_RE.match(sql, pos)
        if m is None:
            rest = sql[pos:].strip()
            if not rest:
                break
            raise SqlError(f"cannot tokenize SQL near {rest[:30]!r}")
        pos = m.end()
        kind = m.lastgroup
        text = m.group(kind)
        if kind == "ident":
            upper = text.upper()
            if upper in _KEYWORDS:
                tokens.append(("kw", upper))
            else:
                tokens.append(("ident", text))
        elif kind == "number":
            tokens.append(("number", text))
        elif kind == "string":
            tokens.append(("string", text[1:-1].replace("''", "'")))
        else:
            tokens.append((kind, text))
    return tokens


class _Parser:
    def __init__(self, sql: str):
        self.sql = sql
        self.tokens = _tokenize(sql)
        self.pos = 0
        self.param_count = 0

    # -- token helpers ---------------------------------------------------

    def _peek(self) -> tuple[str, str] | None:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def _next(self) -> tuple[str, str]:
        tok = self._peek()
        if tok is None:
            raise SqlError(f"unexpected end of statement: {self.sql!r}")
        self.pos += 1
        return tok

    def _expect(self, kind: str, text: str | None = None) -> str:
        tok = self._next()
        if tok[0] != kind or (text is not None and tok[1] != text):
            raise SqlError(f"expected {text or kind}, got {tok[1]!r} in {self.sql!r}")
        return tok[1]

    def _accept(self, kind: str, text: str | None = None) -> bool:
        tok = self._peek()
        if tok is not None and tok[0] == kind and (text is None or tok[1] == text):
            self.pos += 1
            return True
        return False

    def _ident(self) -> str:
        tok = self._next()
        if tok[0] != "ident":
            raise SqlError(f"expected identifier, got {tok[1]!r}")
        return tok[1]

    def _value(self) -> Literal | Param:
        tok = self._next()
        if tok == ("punct", "?"):
            p = Param(self.param_count)
            self.param_count += 1
            return p
        if tok[0] == "number":
            return Literal(int(tok[1]))
        if tok[0] == "string":
            return Literal(tok[1])
        raise SqlError(f"expected a value or '?', got {tok[1]!r}")

    # -- statements ---------------------------------------------------------

    def parse(self):
        tok = self._next()
        if tok == ("kw", "CREATE"):
            nxt = self._next()
            if nxt == ("kw", "TABLE"):
                stmt = self._create_table()
            elif nxt == ("kw", "INDEX"):
                stmt = self._create_index()
            else:
                raise SqlError(f"CREATE {nxt[1]} not supported")
        elif tok == ("kw", "INSERT"):
            stmt = self._insert()
        elif tok == ("kw", "SELECT"):
            stmt = self._select()
        elif tok == ("kw", "UPDATE"):
            stmt = self._update()
        elif tok == ("kw", "DELETE"):
            stmt = self._delete()
        else:
            raise SqlError(f"unsupported statement starting with {tok[1]!r}")
        self._accept("punct", ";")
        if self._peek() is not None:
            raise SqlError(f"trailing tokens after statement: {self.tokens[self.pos:]!r}")
        return stmt

    def _create_table(self) -> CreateTable:
        table = self._ident()
        self._expect("punct", "(")
        cols = []
        while True:
            name = self._ident()
            type_tok = self._next()
            if type_tok[0] != "ident" or type_tok[1].upper() not in _TYPES:
                raise SqlError(f"unknown column type {type_tok[1]!r}")
            cols.append(ColumnDef(name, _TYPES[type_tok[1].upper()]))
            # Swallow an optional length suffix like VARCHAR(255).
            if self._accept("punct", "("):
                self._expect("number")
                self._expect("punct", ")")
            if self._accept("punct", ")"):
                break
            self._expect("punct", ",")
        return CreateTable(table, tuple(cols))

    def _create_index(self) -> CreateIndex:
        name = None
        tok = self._peek()
        if tok is not None and tok[0] == "ident":
            name = self._ident()
        self._expect("kw", "ON")
        table = self._ident()
        self._expect("punct", "(")
        cols = [self._ident()]
        while self._accept("punct", ","):
            cols.append(self._ident())
        self._expect("punct", ")")
        return CreateIndex(table, tuple(cols), name)

    def _insert(self) -> Insert:
        self._expect("kw", "INTO")
        table = self._ident()
        self._expect("kw", "VALUES")
        self._expect("punct", "(")
        values = [self._value()]
        while self._accept("punct", ","):
            values.append(self._value())
        self._expect("punct", ")")
        return Insert(table, tuple(values))

    def _select(self) -> Select:
        columns: list[str] = []
        if self._accept("punct", "*"):
            columns = ["*"]
        elif self._accept("kw", "COUNT"):
            self._expect("punct", "(")
            self._expect("punct", "*")
            self._expect("punct", ")")
            columns = ["COUNT(*)"]
        else:
            columns.append(self._ident())
            while self._accept("punct", ","):
                columns.append(self._ident())
        self._expect("kw", "FROM")
        table = self._ident()
        where = self._where()
        order = []
        if self._accept("kw", "ORDER"):
            self._expect("kw", "BY")
            while True:
                col = self._ident()
                asc = True
                if self._accept("kw", "DESC"):
                    asc = False
                else:
                    self._accept("kw", "ASC")
                order.append((col, asc))
                if not self._accept("punct", ","):
                    break
        limit = None
        if self._accept("kw", "LIMIT"):
            limit = int(self._expect("number"))
            if limit < 0:
                raise SqlError(f"negative LIMIT {limit}")
        return Select(table, tuple(columns), where, tuple(order), limit)

    def _update(self) -> Update:
        table = self._ident()
        self._expect("kw", "SET")
        assignments = []
        while True:
            col = self._ident()
            self._expect("op", "=")
            assignments.append((col, self._value()))
            if not self._accept("punct", ","):
                break
        return Update(table, tuple(assignments), self._where())

    def _delete(self) -> Delete:
        self._expect("kw", "FROM")
        table = self._ident()
        return Delete(table, self._where())

    def _where(self) -> tuple[Condition, ...]:
        if not self._accept("kw", "WHERE"):
            return ()
        conds = [self._condition()]
        while self._accept("kw", "AND"):
            conds.append(self._condition())
        return tuple(conds)

    def _condition(self) -> Condition:
        col = self._ident()
        tok = self._next()
        if tok[0] != "op":
            raise SqlError(f"expected comparison operator, got {tok[1]!r}")
        op = "!=" if tok[1] == "<>" else tok[1]
        return Condition(col, op, self._value())


def parse(sql: str):
    """Parse one SQL statement into its AST node."""
    return _Parser(sql).parse()
