"""On-disk B+tree with byte-string keys and values.

This is the index engine under both stand-ins for the paper's open-source
databases: the BerkeleyDB-like key-value store keeps adjacency chunks in one
of these, and MiniSQL uses one as its primary index.  The tree stores real
bytes in real pages through :class:`PagedFile`, with all I/O routed through
an :class:`LRUBlockCache` so virtual-time cost reflects cache hits/misses.

Layout (page size configurable, default 4096):

* page 0 — meta: magic, root page, free-list head, key count.
* leaf — ``0x4C | ncells u16 | next_leaf u64`` then size-prefixed cells
  ``key_len u16 | flags u8 | key | (val_len u32 | val)`` inline, or
  ``key_len u16 | 0x01 | key | total_len u64 | first_ovf u64`` when the
  value spills to a chain of overflow pages.
* interior — ``0x49 | ncells u16 | left_child u64`` then cells
  ``key_len u16 | key | child u64``; ``key`` is the smallest key reachable
  through ``child``.
* overflow — ``next u64 | chunk_len u32 | data``.

Keys order lexicographically as bytes; callers encode integers big-endian to
preserve numeric order.  Deletion is implemented without rebalancing
(underfull nodes are tolerated, as in many production trees); freed overflow
pages are recycled through a free list.
"""

from __future__ import annotations

import struct
from typing import Iterator

from ..util.errors import (
    GraphStorageException,
    KeyNotFound,
    PageFormatError,
    StorageEngineError,
)
from .blockcache import SharedBlockCache, make_block_cache
from .pagedfile import PagedFile

__all__ = ["BTree"]

_META_MAGIC = 0x4254524D  # "BTRM"
_LEAF = 0x4C
_INTERIOR = 0x49
_META_FMT = struct.Struct(">IQQQ")  # magic, root, free_head, nkeys
_LEAF_HDR = struct.Struct(">BHQ")  # type, ncells, next_leaf(+1, 0=none)
_INT_HDR = struct.Struct(">BHQ")  # type, ncells, left_child
_OVF_HDR = struct.Struct(">QI")  # next(+1, 0=none), chunk_len

_FLAG_INLINE = 0
_FLAG_OVERFLOW = 1


class _Leaf:
    __slots__ = ("keys", "vals", "next_leaf")

    def __init__(self, keys=None, vals=None, next_leaf=-1):
        self.keys: list[bytes] = keys or []
        # each val: (flags, payload) where payload = value bytes (inline)
        # or (total_len, first_ovf_page) for overflow.
        self.vals: list[tuple[int, object]] = vals or []
        self.next_leaf = next_leaf  # page number or -1

    def serialized_size(self) -> int:
        size = _LEAF_HDR.size
        for k, (flags, payload) in zip(self.keys, self.vals):
            size += 3 + len(k)
            size += (4 + len(payload)) if flags == _FLAG_INLINE else 16
        return size


class _Interior:
    __slots__ = ("keys", "children")

    def __init__(self, keys=None, children=None):
        self.keys: list[bytes] = keys or []
        self.children: list[int] = children or []  # len(keys) + 1

    def serialized_size(self) -> int:
        return _INT_HDR.size + sum(2 + len(k) + 8 for k in self.keys)


class BTree:
    """B+tree over a paged file with an LRU page cache."""

    def __init__(
        self,
        pages: PagedFile,
        cache_pages: int = 256,
        max_inline: int | None = None,
        page_cpu_seconds: float = 0.0,
        shared_cache: SharedBlockCache | None = None,
        cache_owner: str = "btree",
    ):
        self.pages = pages
        self.page_size = pages.page_size
        #: CPU charge per node visit (parse + binary search), billed to the
        #: owning device's clock; 0 keeps standalone use free.
        self.page_cpu_seconds = page_cpu_seconds
        if self.page_size < 128:
            raise StorageEngineError("B-tree needs pages of at least 128 bytes")
        self.max_inline = max_inline if max_inline is not None else self.page_size // 4
        self.cache = make_block_cache(
            cache_pages, writer=self._write_through, shared=shared_cache, owner=cache_owner
        )
        # Host-time accelerator: parsed nodes keyed by page, valid only
        # while the page cache still returns the identical bytes object
        # (any write or byte-cache miss produces a fresh object and forces
        # a re-parse).  Virtual-time charging is unaffected.
        self._parsed: dict[int, tuple[bytes, object]] = {}
        if self.pages.npages == 0:
            meta = self.pages.allocate_page()
            if meta != 0:
                # A fresh paged file must hand out page 0 for the meta
                # node; anything else means the allocator state is corrupt
                # (and an assert would vanish under ``python -O``).
                raise GraphStorageException(
                    f"fresh B-tree file allocated page {meta} for its meta "
                    "node instead of page 0"
                )
            root = self.pages.allocate_page()
            self.root = root
            self.free_head = -1
            self.nkeys = 0
            self._write_node(root, _Leaf())
            self._sync_meta()
        else:
            raw = self.pages.read_page(0)
            magic, root, free_head, nkeys = _META_FMT.unpack_from(raw)
            if magic != _META_MAGIC:
                raise PageFormatError("not a BTree file (bad meta magic)")
            self.root = root
            self.free_head = free_head - 1
            self.nkeys = nkeys

    # -- page plumbing -----------------------------------------------------

    def _write_through(self, page_no: int, data: bytes) -> None:
        self.pages.write_page(page_no, data)

    def _read_raw(self, page_no: int) -> bytes:
        data = self.cache.get(page_no)
        if data is None:
            data = self.pages.read_page(page_no)
            self.cache.put(page_no, data)
        return data

    def _write_raw(self, page_no: int, data: bytes) -> None:
        if self.cache.capacity > 0:
            self.cache.put(page_no, data, dirty=True)
        else:
            self.pages.write_page(page_no, data)

    def _alloc_page(self) -> int:
        if self.free_head >= 0:
            page_no = self.free_head
            raw = self._read_raw(page_no)
            (nxt,) = struct.unpack_from(">Q", raw)
            self.free_head = nxt - 1
            self._sync_meta()
            return page_no
        return self.pages.allocate_page()

    def _free_page(self, page_no: int) -> None:
        buf = bytearray(self.page_size)
        struct.pack_into(">Q", buf, 0, self.free_head + 1)
        self._write_raw(page_no, bytes(buf))
        self.free_head = page_no
        self._sync_meta()

    def _sync_meta(self) -> None:
        buf = bytearray(self.page_size)
        _META_FMT.pack_into(buf, 0, _META_MAGIC, self.root, self.free_head + 1, self.nkeys)
        self._write_raw(0, bytes(buf))

    # -- node (de)serialization ---------------------------------------------

    def _read_node(self, page_no: int):
        if self.page_cpu_seconds:
            self.pages.device.clock.advance(self.page_cpu_seconds)
        raw = self._read_raw(page_no)
        cached = self._parsed.get(page_no)
        if cached is not None and cached[0] is raw:
            return cached[1]
        node = self._parse_node(page_no, raw)
        if len(self._parsed) > 4 * max(self.cache.capacity, 64):
            self._parsed.clear()
        self._parsed[page_no] = (raw, node)
        return node

    def _parse_node(self, page_no: int, raw: bytes):
        kind = raw[0]
        if kind == _LEAF:
            _, ncells, next_leaf = _LEAF_HDR.unpack_from(raw)
            node = _Leaf(next_leaf=next_leaf - 1)
            off = _LEAF_HDR.size
            for _ in range(ncells):
                key_len, flags = struct.unpack_from(">HB", raw, off)
                off += 3
                key = bytes(raw[off : off + key_len])
                off += key_len
                if flags == _FLAG_INLINE:
                    (val_len,) = struct.unpack_from(">I", raw, off)
                    off += 4
                    payload: object = bytes(raw[off : off + val_len])
                    off += val_len
                else:
                    total_len, first_ovf = struct.unpack_from(">QQ", raw, off)
                    off += 16
                    payload = (total_len, first_ovf)
                node.keys.append(key)
                node.vals.append((flags, payload))
            return node
        if kind == _INTERIOR:
            _, ncells, left_child = _INT_HDR.unpack_from(raw)
            node = _Interior(children=[left_child])
            off = _INT_HDR.size
            for _ in range(ncells):
                (key_len,) = struct.unpack_from(">H", raw, off)
                off += 2
                key = bytes(raw[off : off + key_len])
                off += key_len
                (child,) = struct.unpack_from(">Q", raw, off)
                off += 8
                node.keys.append(key)
                node.children.append(child)
            return node
        raise PageFormatError(f"page {page_no} has unknown node type 0x{kind:02x}")

    def _write_node(self, page_no: int, node) -> None:
        buf = bytearray(self.page_size)
        if isinstance(node, _Leaf):
            _LEAF_HDR.pack_into(buf, 0, _LEAF, len(node.keys), node.next_leaf + 1)
            off = _LEAF_HDR.size
            for key, (flags, payload) in zip(node.keys, node.vals):
                struct.pack_into(">HB", buf, off, len(key), flags)
                off += 3
                buf[off : off + len(key)] = key
                off += len(key)
                if flags == _FLAG_INLINE:
                    struct.pack_into(">I", buf, off, len(payload))
                    off += 4
                    buf[off : off + len(payload)] = payload
                    off += len(payload)
                else:
                    total_len, first_ovf = payload
                    struct.pack_into(">QQ", buf, off, total_len, first_ovf)
                    off += 16
        else:
            _INT_HDR.pack_into(buf, 0, _INTERIOR, len(node.keys), node.children[0])
            off = _INT_HDR.size
            for key, child in zip(node.keys, node.children[1:]):
                struct.pack_into(">H", buf, off, len(key))
                off += 2
                buf[off : off + len(key)] = key
                off += len(key)
                struct.pack_into(">Q", buf, off, child)
                off += 8
        if off > self.page_size:
            raise PageFormatError(f"node overflowed page {page_no} ({off} > {self.page_size})")
        self._write_raw(page_no, bytes(buf))

    # -- overflow chains ----------------------------------------------------

    def _write_overflow(self, value: bytes) -> int:
        """Store ``value`` in a chain of overflow pages; returns first page."""
        chunk_cap = self.page_size - _OVF_HDR.size
        chunks = [value[i : i + chunk_cap] for i in range(0, len(value), chunk_cap)] or [b""]
        page_nos = [self._alloc_page() for _ in chunks]
        for i, chunk in enumerate(chunks):
            nxt = page_nos[i + 1] + 1 if i + 1 < len(page_nos) else 0
            buf = bytearray(self.page_size)
            _OVF_HDR.pack_into(buf, 0, nxt, len(chunk))
            buf[_OVF_HDR.size : _OVF_HDR.size + len(chunk)] = chunk
            self._write_raw(page_nos[i], bytes(buf))
        return page_nos[0]

    def _read_overflow(self, first_page: int, total_len: int) -> bytes:
        out = bytearray()
        page_no = first_page
        while page_no != -1 and len(out) < total_len:
            raw = self._read_raw(page_no)
            nxt, chunk_len = _OVF_HDR.unpack_from(raw)
            out += raw[_OVF_HDR.size : _OVF_HDR.size + chunk_len]
            page_no = nxt - 1
        if len(out) != total_len:
            raise PageFormatError(
                f"overflow chain at page {first_page} yielded {len(out)} of {total_len} bytes"
            )
        return bytes(out)

    def _free_overflow(self, first_page: int) -> None:
        page_no = first_page
        while page_no != -1:
            raw = self._read_raw(page_no)
            (nxt,) = struct.unpack_from(">Q", raw)
            self._free_page(page_no)
            page_no = nxt - 1

    def _make_val(self, value: bytes) -> tuple[int, object]:
        if len(value) <= self.max_inline:
            return (_FLAG_INLINE, bytes(value))
        return (_FLAG_OVERFLOW, (len(value), self._write_overflow(value)))

    def _load_val(self, flags: int, payload) -> bytes:
        if flags == _FLAG_INLINE:
            return payload
        total_len, first_ovf = payload
        return self._read_overflow(first_ovf, total_len)

    def _drop_val(self, flags: int, payload) -> None:
        if flags == _FLAG_OVERFLOW:
            self._free_overflow(payload[1])

    # -- search helpers ------------------------------------------------------

    @staticmethod
    def _lower_bound(keys: list[bytes], key: bytes) -> int:
        lo, hi = 0, len(keys)
        while lo < hi:
            mid = (lo + hi) // 2
            if keys[mid] < key:
                lo = mid + 1
            else:
                hi = mid
        return lo

    def _descend(self, key: bytes) -> list[int]:
        """Path of page numbers from root to the leaf that may hold ``key``."""
        path = [self.root]
        node = self._read_node(self.root)
        while isinstance(node, _Interior):
            idx = self._lower_bound(node.keys, key)
            # children[idx] covers keys < keys[idx]; equal keys live right.
            if idx < len(node.keys) and node.keys[idx] == key:
                idx += 1
            child = node.children[idx]
            path.append(child)
            node = self._read_node(child)
        return path

    # -- public API -----------------------------------------------------------

    def get(self, key: bytes) -> bytes:
        key = bytes(key)
        leaf = self._read_node(self._descend(key)[-1])
        idx = self._lower_bound(leaf.keys, key)
        if idx < len(leaf.keys) and leaf.keys[idx] == key:
            flags, payload = leaf.vals[idx]
            return self._load_val(flags, payload)
        raise KeyNotFound(repr(key))

    def get_or_none(self, key: bytes) -> bytes | None:
        try:
            return self.get(key)
        except KeyNotFound:
            return None

    def contains(self, key: bytes) -> bool:
        return self.get_or_none(key) is not None

    def put(self, key: bytes, value: bytes) -> None:
        """Insert or overwrite ``key``."""
        key, value = bytes(key), bytes(value)
        if len(key) > self.page_size // 8:
            raise StorageEngineError(f"key of {len(key)} bytes too large for page size")
        path = self._descend(key)
        leaf = self._read_node(path[-1])
        idx = self._lower_bound(leaf.keys, key)
        if idx < len(leaf.keys) and leaf.keys[idx] == key:
            self._drop_val(*leaf.vals[idx])
            leaf.vals[idx] = self._make_val(value)
        else:
            leaf.keys.insert(idx, key)
            leaf.vals.insert(idx, self._make_val(value))
            self.nkeys += 1
        self._store_and_split(path, leaf)
        self._sync_meta()

    def delete(self, key: bytes) -> None:
        key = bytes(key)
        path = self._descend(key)
        leaf = self._read_node(path[-1])
        idx = self._lower_bound(leaf.keys, key)
        if not (idx < len(leaf.keys) and leaf.keys[idx] == key):
            raise KeyNotFound(repr(key))
        self._drop_val(*leaf.vals[idx])
        del leaf.keys[idx]
        del leaf.vals[idx]
        self.nkeys -= 1
        self._write_node(path[-1], leaf)
        self._sync_meta()

    def _store_and_split(self, path: list[int], node) -> None:
        """Write ``node`` at ``path[-1]``, splitting up the tree as needed."""
        page_no = path[-1]
        if node.serialized_size() <= self.page_size:
            self._write_node(page_no, node)
            return
        # Greedy byte-budget split: fill the left half up to the page size,
        # which (given max_inline <= page_size / 4 and bounded keys)
        # guarantees the remainder also fits in one page.
        if isinstance(node, _Leaf):
            split = self._leaf_split_point(node)
            right = _Leaf(node.keys[split:], node.vals[split:], node.next_leaf)
            right_page = self._alloc_page()
            node.keys, node.vals = node.keys[:split], node.vals[:split]
            node.next_leaf = right_page
            sep_key = right.keys[0]
        else:
            split = self._interior_split_point(node)
            sep_key = node.keys[split]
            right = _Interior(node.keys[split + 1 :], node.children[split + 1 :])
            right_page = self._alloc_page()
            node.keys, node.children = node.keys[:split], node.children[: split + 1]
        for half, where in ((node, page_no), (right, right_page)):
            if half.serialized_size() > self.page_size:  # pragma: no cover - guarded by geometry
                raise StorageEngineError("split produced an oversized node half")
            self._write_node(where, half)
        self._insert_separator(path[:-1], page_no, sep_key, right_page)

    def _leaf_split_point(self, leaf: _Leaf) -> int:
        if len(leaf.keys) < 2:
            raise StorageEngineError("cannot split a leaf with a single oversized cell")
        budget = self.page_size - _LEAF_HDR.size
        used = 0
        for i, (k, (flags, payload)) in enumerate(zip(leaf.keys, leaf.vals)):
            cell = 3 + len(k) + ((4 + len(payload)) if flags == _FLAG_INLINE else 16)
            if used + cell > budget and i > 0:
                return min(i, len(leaf.keys) - 1)
            used += cell
        return len(leaf.keys) - 1

    def _interior_split_point(self, node: _Interior) -> int:
        budget = self.page_size - _INT_HDR.size
        used = 0
        for i, k in enumerate(node.keys):
            cell = 2 + len(k) + 8
            if used + cell > budget and i > 0:
                return min(i, len(node.keys) - 1)
            used += cell
        return max(1, len(node.keys) // 2)

    def _insert_separator(self, path: list[int], left_page: int, key: bytes, right_page: int):
        if not path:
            # Root split: allocate a new root above.
            new_root = self._alloc_page()
            root_node = _Interior(keys=[key], children=[left_page, right_page])
            self._write_node(new_root, root_node)
            self.root = new_root
            self._sync_meta()
            return
        parent_page = path[-1]
        parent = self._read_node(parent_page)
        idx = self._lower_bound(parent.keys, key)
        parent.keys.insert(idx, key)
        parent.children.insert(idx + 1, right_page)
        self._store_and_split(path, parent)

    # -- scans ------------------------------------------------------------------

    def items(self, start: bytes | None = None, end: bytes | None = None) -> Iterator[tuple[bytes, bytes]]:
        """Iterate ``(key, value)`` pairs with ``start <= key < end``."""
        page_no = self._descend(start if start is not None else b"")[-1]
        while page_no != -1:
            leaf = self._read_node(page_no)
            for key, (flags, payload) in zip(leaf.keys, leaf.vals):
                if start is not None and key < start:
                    continue
                if end is not None and key >= end:
                    return
                yield key, self._load_val(flags, payload)
            page_no = leaf.next_leaf

    def keys(self, start: bytes | None = None, end: bytes | None = None) -> Iterator[bytes]:
        for k, _ in self.items(start, end):
            yield k

    def __len__(self) -> int:
        return self.nkeys

    def flush(self) -> None:
        self.cache.flush()
