"""HashMap GraphDB: in-memory per-vertex adjacency lists (§4.1.2).

Adjacency lists are stored one growable array per vertex behind a hash map
keyed by global id (Figure 4.2).  Memory scales with the local partition
(unlike Array's full global ``xadj``), dynamic growth is natural, but every
adjacency access pays a hash lookup — the measured gap of Figure 5.1.
"""

from __future__ import annotations

import numpy as np

from ..util.longarray import LongArray
from .interface import GraphDB

__all__ = ["HashMapGraphDB"]


class HashMapGraphDB(GraphDB):
    """In-memory per-vertex adjacency lists behind a hash map."""

    name = "HashMap"

    def __init__(self, **kwargs):
        super().__init__(**kwargs)
        self._adjacency: dict[int, LongArray] = {}

    def _store_edges(self, edges: np.ndarray) -> None:
        adjacency = self._adjacency
        self.clock.advance(len(edges) * self.cpu.hash_lookup_seconds)
        for src, dst in edges:
            lst = adjacency.get(src)
            if lst is None:
                lst = adjacency[src] = LongArray()
            lst.append(dst)

    def _get_adjacency(self, vertex: int) -> np.ndarray:
        # The defining cost: a hash probe before the list is reachable,
        # plus boxed-container overhead per entry (the JVM prototype stored
        # java.lang.Long objects here, vs Array's primitive long[]).
        self.clock.advance(self.cpu.hash_lookup_seconds)
        lst = self._adjacency.get(vertex)
        if lst is None:
            return np.empty(0, dtype=np.int64)
        self.clock.advance(len(lst) * self.cpu.hashmap_edge_extra_seconds)
        return lst.view()

    def _local_vertices(self) -> np.ndarray:
        return np.array(sorted(self._adjacency), dtype=np.int64)

    @property
    def num_local_vertices(self) -> int:
        return len(self._adjacency)
