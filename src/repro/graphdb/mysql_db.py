"""MySQL GraphDB: adjacency BLOBs in a relational table (§4.1.3).

The schema of Figure 4.3: one table ``edges(src BIGINT, chunk INT, adj
BLOB)`` with a composite index on ``(src, chunk)``; each row's BLOB holds up
to 8 KB of serialized neighbor ids, and adjacency lists too large for one
row spill across rows distinguished by the ``chunk`` column.  All access
goes through SQL text against the MiniSQL engine, so every logical
operation pays statement parse/plan overhead plus the double hop through
index and heap — the structural reasons MySQL trails every other backend in
Figures 5.3–5.7.
"""

from __future__ import annotations

import numpy as np

from ..simcluster.disk import BlockDevice
from ..storage.minisql import MiniSQL
from ..util.longarray import LongArray
from .bdb_db import CHUNK_ENTRIES
from .interface import GraphDB

__all__ = ["MySQLGraphDB"]


class MySQLGraphDB(GraphDB):
    """Adjacency BLOB rows behind SQL statements (MySQL stand-in)."""

    name = "MySQL"

    def __init__(self, device_provider, shared_cache=None, **kwargs):
        """``device_provider(name) -> BlockDevice`` supplies the engine's files."""
        super().__init__(**kwargs)
        self.db = MiniSQL(
            device_provider, clock=self.clock, cpu=self.cpu, shared_cache=shared_cache
        )
        self.db.execute("CREATE TABLE edges (src BIGINT, chunk INT, adj BLOB)")
        self.db.execute("CREATE INDEX ON edges (src, chunk)")
        self._tails: dict[int, tuple[int, int]] = {}

    @staticmethod
    def _pack(neighbors: np.ndarray) -> bytes:
        return np.ascontiguousarray(neighbors.astype("<u8")).tobytes()

    @staticmethod
    def _unpack(blob: bytes) -> np.ndarray:
        return np.frombuffer(blob, dtype="<u8").astype(np.int64)

    def _tail_of(self, vertex: int) -> tuple[int, int]:
        tail = self._tails.get(vertex)
        if tail is None:
            rows = self.db.execute(
                "SELECT chunk, adj FROM edges WHERE src = ? ORDER BY chunk DESC LIMIT 1",
                (vertex,),
            )
            if rows:
                chunk_no, blob = rows[0]
                tail = (chunk_no, len(blob) // 8)
            else:
                tail = (-1, CHUNK_ENTRIES)
            self._tails[vertex] = tail
        return tail

    def _store_edges(self, edges: np.ndarray) -> None:
        if len(edges) == 0:
            return
        order = np.argsort(edges[:, 0], kind="stable")
        srcs = edges[order, 0]
        dsts = edges[order, 1]
        boundaries = np.flatnonzero(np.diff(srcs)) + 1
        for group in np.split(np.arange(len(srcs)), boundaries):
            vertex = int(srcs[group[0]])
            new = dsts[group]
            chunk_no, used = self._tail_of(vertex)
            pos = 0
            while pos < len(new):
                take = min(CHUNK_ENTRIES - used if used < CHUNK_ENTRIES else 0, len(new) - pos)
                if take > 0:
                    rows = self.db.execute(
                        "SELECT adj FROM edges WHERE src = ? AND chunk = ?", (vertex, chunk_no)
                    )
                    merged = np.concatenate([self._unpack(rows[0][0]), new[pos : pos + take]])
                    self.db.execute(
                        "UPDATE edges SET adj = ? WHERE src = ? AND chunk = ?",
                        (self._pack(merged), vertex, chunk_no),
                    )
                    used += take
                    pos += take
                else:
                    chunk_no += 1
                    used = 0
                    take = min(CHUNK_ENTRIES, len(new) - pos)
                    self.db.execute(
                        "INSERT INTO edges VALUES (?, ?, ?)",
                        (vertex, chunk_no, self._pack(new[pos : pos + take])),
                    )
                    used = take
                    pos += take
            self._tails[vertex] = (chunk_no, used)

    def _get_adjacency(self, vertex: int) -> np.ndarray:
        rows = self.db.execute(
            "SELECT adj FROM edges WHERE src = ? ORDER BY chunk", (vertex,)
        )
        if not rows:
            return np.empty(0, dtype=np.int64)
        return np.concatenate([self._unpack(blob) for (blob,) in rows])

    def _expand_fringe(self, vertices, adjlist: LongArray) -> None:
        """Batch fringe SELECTs in ascending ``src`` order.

        Each statement still pays its parse/plan round trip (the structural
        MySQL overhead the figures measure), but issuing the fringe's
        lookups in sorted key order walks the ``(src, chunk)`` index
        monotonically — B-tree page and heap access coalesce instead of
        bouncing across the file — and duplicate fringe entries reuse the
        first result.  Emission order matches the per-vertex path exactly.
        """
        fringe = np.asarray(vertices, dtype=np.int64)
        if not self.batch_io or len(fringe) == 0:
            super()._expand_fringe(fringe, adjlist)
            return
        fetched = {int(v): self._get_adjacency(int(v)) for v in np.unique(fringe)}
        for v in fringe:
            neighbors = fetched[int(v)]
            self.stats.adjacency_requests += 1
            self.stats.edges_scanned += len(neighbors)
            self.clock.advance(len(neighbors) * self.cpu.edge_visit_seconds)
            adjlist.extend(neighbors)

    def _scan_adjacency(self, vertices=None, order: str = "storage"):
        """One range SELECT answers the whole bottom-up scan.

        ``WHERE src >= lo AND src <= hi ORDER BY src, chunk`` is planned by
        MiniSQL as a sequential heap scan plus an in-memory sort — a single
        statement round trip instead of one per vertex, which is exactly
        the trade the bottom-up level wants from this backend.  Row parse
        CPU is charged by the engine; per-edge claim checks are the
        caller's (early-exit accounting).
        """
        if order != "storage":
            raise ValueError(f"unknown scan order {order!r}")
        wset = None
        if vertices is not None:
            wanted = np.unique(np.asarray(vertices, dtype=np.int64))
            if len(wanted) == 0:
                return
            wset = set(int(v) for v in wanted)
            rows = self.db.execute(
                "SELECT src, adj FROM edges WHERE src >= ? AND src <= ? "
                "ORDER BY src, chunk",
                (int(wanted[0]), int(wanted[-1])),
            )
        else:
            rows = self.db.execute("SELECT src, adj FROM edges ORDER BY src, chunk")
        cur = None
        chunks: list[np.ndarray] = []
        for src, blob in rows:
            if src != cur:
                if chunks:
                    yield cur, np.concatenate(chunks) if len(chunks) > 1 else chunks[0]
                cur, chunks = src, []
            if wset is None or src in wset:
                chunks.append(self._unpack(blob))
        if chunks:
            yield cur, np.concatenate(chunks) if len(chunks) > 1 else chunks[0]

    def _local_vertices(self) -> np.ndarray:
        rows = self.db.execute("SELECT src FROM edges")
        return np.unique(np.array([r[0] for r in rows], dtype=np.int64)) if rows else np.empty(0, dtype=np.int64)

    def flush(self) -> None:
        self.db.flush()
