"""Array GraphDB: in-memory compressed adjacency list (§4.1.1).

The paper's fastest backend and the lower bound for search times.  During
ingestion edges accumulate in a hash map (exactly as the prototype did:
"we have actually used the HashMap implementation ... as temporary
storage"); :meth:`finalize_ingest` then packs them into the ``(xadj, adj)``
arrays of Figure 4.1, with ``xadj`` indexed directly by *global* vertex id
— the paper notes each node stores the full ``xadj`` array, which is why
Array's memory does not scale with back-end count but its accesses need no
hash lookup (the Figure 5.1 gap vs HashMap).
"""

from __future__ import annotations

import numpy as np

from ..util.errors import GraphStorageException
from ..util.longarray import LongArray
from .interface import GraphDB

__all__ = ["ArrayGraphDB"]

#: Guard against accidentally materializing a multi-GB xadj in a test run.
_MAX_DENSE_VERTEX = 200_000_000


class ArrayGraphDB(GraphDB):
    """In-memory compressed adjacency list (CSR) — the search lower bound."""

    name = "Array"

    def __init__(self, **kwargs):
        super().__init__(**kwargs)
        self._staging: dict[int, LongArray] = {}
        self._xadj: np.ndarray | None = None
        self._adj: np.ndarray | None = None

    def _store_edges(self, edges: np.ndarray) -> None:
        if self._xadj is not None:
            raise GraphStorageException(
                "Array GraphDB is finalized; it does not support dynamic growth"
            )
        staging = self._staging
        # Hash-map staging cost: one lookup per stored edge.
        self.clock.advance(len(edges) * self.cpu.hash_lookup_seconds)
        for src, dst in edges:
            lst = staging.get(src)
            if lst is None:
                lst = staging[src] = LongArray()
            lst.append(dst)

    def finalize_ingest(self) -> None:
        """Flush the staging hash map into compressed adjacency arrays."""
        if self._xadj is not None:
            return
        max_gid = max(self._staging, default=-1)
        if max_gid >= _MAX_DENSE_VERTEX:
            raise GraphStorageException(
                f"vertex id {max_gid} too large for the dense global xadj array "
                "(the paper notes this Java-array limitation of the Array backend)"
            )
        degrees = np.zeros(max_gid + 1, dtype=np.int64)
        for g, lst in self._staging.items():
            degrees[g] = len(lst)
        xadj = np.zeros(max_gid + 2, dtype=np.int64)
        np.cumsum(degrees, out=xadj[1:])
        adj = np.empty(int(xadj[-1]), dtype=np.int64)
        for g, lst in self._staging.items():
            adj[xadj[g] : xadj[g + 1]] = lst.view()
        self._xadj, self._adj = xadj, adj
        # Packing touches every stored edge once.
        self.clock.advance(len(adj) * self.cpu.edge_visit_seconds)
        self._staging = {}

    def _get_adjacency(self, vertex: int) -> np.ndarray:
        if self._xadj is None:
            # Pre-finalize reads fall back to the staging map.
            lst = self._staging.get(vertex)
            return lst.view().copy() if lst is not None else np.empty(0, dtype=np.int64)
        if vertex + 1 >= len(self._xadj):
            return np.empty(0, dtype=np.int64)
        return self._adj[self._xadj[vertex] : self._xadj[vertex + 1]]

    def _local_vertices(self) -> np.ndarray:
        if self._xadj is None:
            return np.array(sorted(self._staging), dtype=np.int64)
        return np.flatnonzero(np.diff(self._xadj)).astype(np.int64)

    @property
    def num_local_vertices(self) -> int:
        return len(self.local_vertices())
