"""Per-vertex metadata stores (the get/setMetadata half of Listing 3.1).

BFS stores search levels here ("visited" state).  Chapter 5 runs most
experiments with an in-memory metadata/visited structure and one ablation
(Fig. 5.8) with an external-memory one; both live here.
"""

from __future__ import annotations

import abc
import struct

import numpy as np

from ..simcluster.disk import BlockDevice
from ..storage.blockcache import make_block_cache
from ..storage.pagedfile import PagedFile

__all__ = [
    "MetadataStore",
    "InMemoryMetadata",
    "ExternalMetadata",
    "PinnedMetadata",
    "UNSET",
]

#: Default metadata value for vertices never written (plays the role of
#: "level = infinity" in the BFS pseudocode; fits int32 storage).
UNSET = 2**31 - 1


class MetadataStore(abc.ABC):
    """Integer metadata per vertex id, defaulting to :data:`UNSET`."""

    @abc.abstractmethod
    def get(self, vertex: int) -> int: ...

    @abc.abstractmethod
    def set(self, vertex: int, value: int) -> None: ...

    def get_many(self, vertices) -> np.ndarray:
        """Vectorized gather; default loops over :meth:`get`."""
        vs = np.asarray(vertices, dtype=np.int64)
        return np.array([self.get(int(v)) for v in vs], dtype=np.int64)

    def set_many(self, vertices, value: int) -> None:
        """Vectorized scatter of one value; default loops over :meth:`set`."""
        for v in np.asarray(vertices, dtype=np.int64):
            self.set(int(v), value)

    def clear(self) -> None:
        """Reset every vertex to :data:`UNSET`."""
        raise NotImplementedError


class InMemoryMetadata(MetadataStore):
    """Hash-map metadata store (sparse, grows with touched vertices)."""

    def __init__(self):
        self._values: dict[int, int] = {}

    def get(self, vertex: int) -> int:
        return self._values.get(int(vertex), UNSET)

    def set(self, vertex: int, value: int) -> None:
        self._values[int(vertex)] = int(value)

    def get_many(self, vertices) -> np.ndarray:
        vs = np.asarray(vertices, dtype=np.int64).ravel()
        values = self._values
        return np.fromiter(
            (values.get(int(v), UNSET) for v in vs), dtype=np.int64, count=len(vs)
        )

    def set_many(self, vertices, value: int) -> None:
        vs = np.asarray(vertices, dtype=np.int64).ravel()
        value = int(value)
        self._values.update(zip(vs.tolist(), (value,) * len(vs)))

    def clear(self) -> None:
        self._values.clear()

    def __len__(self) -> int:
        return len(self._values)


class PinnedMetadata(MetadataStore):
    """Dense resident int32 metadata over ``[0, num_vertices)`` (semi-EM).

    The semi-external-memory replacement for :class:`ExternalMetadata`:
    the same int32-per-vertex array, but materialized once as a resident
    numpy array (charged to the semi-EM RAM budget) instead of paged to a
    scratch device — so visited/level checks never touch the device during
    a query.  Lookups and scatters are fully vectorized.
    """

    def __init__(self, num_vertices: int):
        if num_vertices < 0:
            raise ValueError("num_vertices cannot be negative")
        self.num_vertices = int(num_vertices)
        self._values = np.full(self.num_vertices, UNSET, dtype=np.int32)

    @property
    def resident_bytes(self) -> int:
        return int(self._values.nbytes)

    def get(self, vertex: int) -> int:
        v = int(vertex)
        if not 0 <= v < self.num_vertices:
            return UNSET
        return int(self._values[v])

    def set(self, vertex: int, value: int) -> None:
        self._values[int(vertex)] = int(value)

    def get_many(self, vertices) -> np.ndarray:
        vs = np.asarray(vertices, dtype=np.int64).ravel()
        out = np.full(len(vs), UNSET, dtype=np.int64)
        ok = (vs >= 0) & (vs < self.num_vertices)
        out[ok] = self._values[vs[ok]]
        return out

    def set_many(self, vertices, value: int) -> None:
        vs = np.asarray(vertices, dtype=np.int64).ravel()
        self._values[vs] = int(value)

    def clear(self) -> None:
        self._values.fill(UNSET)


class ExternalMetadata(MetadataStore):
    """Out-of-core metadata: an int32 array paged to a block device.

    Used for the Fig. 5.8 ablation where even the visited structure no
    longer fits in memory.  A small LRU page cache keeps hot pages local;
    everything else pays device seeks, which is the measured effect.
    """

    VALUES_PER_PAGE = 1024

    def __init__(self, device: BlockDevice, cache_pages: int = 64, shared_cache=None):
        self.page_bytes = self.VALUES_PER_PAGE * 4
        self.pages = PagedFile(device, self.page_bytes)
        self.cache = make_block_cache(
            cache_pages, writer=self._write_page, shared=shared_cache, owner="ext-metadata"
        )
        self._unset_page = struct.pack(">i", UNSET) * self.VALUES_PER_PAGE

    def _write_page(self, page_no: int, data: bytes) -> None:
        while self.pages.npages <= page_no:
            self.pages.write_page(self.pages.npages, self._unset_page)
        self.pages.write_page(page_no, data)

    def _read_page(self, page_no: int) -> bytes:
        data = self.cache.get(page_no)
        if data is None:
            if page_no >= self.pages.npages:
                # Materialize the page (and any gap) on disk, as writing a
                # real file-backed array would; first touch pays the I/O.
                self._write_page(page_no, self._unset_page)
            data = self.pages.read_page(page_no)
            self.cache.put(page_no, data)
        return data

    def get(self, vertex: int) -> int:
        page_no, slot = divmod(int(vertex), self.VALUES_PER_PAGE)
        data = self._read_page(page_no)
        return struct.unpack_from(">i", data, slot * 4)[0]

    def set(self, vertex: int, value: int) -> None:
        page_no, slot = divmod(int(vertex), self.VALUES_PER_PAGE)
        buf = bytearray(self._read_page(page_no))
        struct.pack_into(">i", buf, slot * 4, int(value))
        self.cache.put(page_no, bytes(buf), dirty=True)

    def get_many(self, vertices) -> np.ndarray:
        vs = np.asarray(vertices, dtype=np.int64)
        out = np.empty(len(vs), dtype=np.int64)
        # Group by page so each page is fetched once per call.
        pages = vs // self.VALUES_PER_PAGE
        order = np.argsort(pages, kind="stable")
        current_page, data = -1, b""
        for idx in order:
            page_no = int(pages[idx])
            if page_no != current_page:
                data = self._read_page(page_no)
                current_page = page_no
            slot = int(vs[idx] % self.VALUES_PER_PAGE)
            out[idx] = struct.unpack_from(">i", data, slot * 4)[0]
        return out

    def set_many(self, vertices, value: int) -> None:
        vs = np.asarray(vertices, dtype=np.int64)
        if len(vs) == 0:
            return
        # Group by page so each dirty page is read and re-put once per call,
        # regardless of how many of its slots the fringe touches.
        pages = vs // self.VALUES_PER_PAGE
        order = np.argsort(pages, kind="stable")
        current_page, buf = -1, None
        for idx in order:
            page_no = int(pages[idx])
            if page_no != current_page:
                if buf is not None:
                    self.cache.put(current_page, bytes(buf), dirty=True)
                buf = bytearray(self._read_page(page_no))
                current_page = page_no
            slot = int(vs[idx] % self.VALUES_PER_PAGE)
            struct.pack_into(">i", buf, slot * 4, int(value))
        self.cache.put(current_page, bytes(buf), dirty=True)

    def flush(self) -> None:
        self.cache.flush()
