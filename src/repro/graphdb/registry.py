"""Backend registry: build any of the six GraphDB instances by name.

The experiment harness sweeps backends by the names used in the paper's
figures: ``Array``, ``HashMap``, ``MySQL``, ``BerkeleyDB``, ``StreamDB``,
``grDB``.  ``make_graphdb`` wires a backend to a simulated node (clock,
CPU profile, local disks).
"""

from __future__ import annotations

import dataclasses
from typing import Any

from ..simcluster.cluster import SimNode
from ..storage.blockcache import SharedBlockCache, validate_cache_policy
from ..storage.integrity import wrap_device
from ..util.errors import ConfigError
from .array_db import ArrayGraphDB
from .bdb_db import BerkeleyGraphDB
from .grdb import GrDB, GrDBFormat
from .hashmap_db import HashMapGraphDB
from .idmap import IdMap
from .interface import GraphDB
from .mysql_db import MySQLGraphDB
from .stream_db import StreamGraphDB

__all__ = [
    "BACKENDS",
    "IN_MEMORY_BACKENDS",
    "OUT_OF_CORE_BACKENDS",
    "make_graphdb",
    "shared_cache_for",
]

IN_MEMORY_BACKENDS = ("Array", "HashMap")
OUT_OF_CORE_BACKENDS = ("MySQL", "BerkeleyDB", "StreamDB", "grDB")
BACKENDS = IN_MEMORY_BACKENDS + OUT_OF_CORE_BACKENDS


def shared_cache_for(
    node: SimNode, cache_blocks: int, cache_policy: str
) -> SharedBlockCache | None:
    """Return the node's process-wide block cache, creating it on first use.

    Policy ``"lru"`` means "keep the historical private per-store caches",
    so it returns ``None`` and every store builds its own
    :class:`LRUBlockCache` via the factory.  Any other policy hoists all
    block caching on the node into one :class:`SharedBlockCache` pool that
    every out-of-core store partitions by owner name.
    """
    if cache_policy == "lru":
        return None
    validate_cache_policy(cache_policy)
    pool = getattr(node, "shared_block_cache", None)
    if pool is not None:
        if pool.policy != cache_policy:
            # Silently rebuilding the pool here would discard every resident
            # block mid-process; two stores on one node disagreeing about
            # the policy is a deployment bug, not something to paper over.
            raise ConfigError(
                f"node already has a {pool.policy!r} shared block cache; "
                f"cannot attach a store requesting cache_policy={cache_policy!r}"
            )
        return pool
    pool = SharedBlockCache(cache_blocks, policy=cache_policy)
    node.shared_block_cache = pool
    return pool


def make_graphdb(
    backend: str,
    node: SimNode,
    id_map: IdMap | None = None,
    cache_blocks: int = 256,
    grdb_format: GrDBFormat | None = None,
    growth_policy: str = "link",
    batch_io: bool = True,
    checksums: bool = False,
    cache_policy: str = "lru",
    compress_adjacency: bool = False,
    semi_external: bool = False,
    **extra: Any,
) -> GraphDB:
    """Instantiate ``backend`` on ``node``.

    ``cache_blocks`` sizes the internal block/page cache of the out-of-core
    backends (0 disables caching, the Figure 5.2 ablation); ``id_map`` is
    forwarded to grDB for declustered level-0 addressing; ``batch_io``
    selects the batched/coalescing fringe-expansion path (``False`` keeps
    the paper prototype's per-vertex loop); ``checksums`` puts every device
    of the out-of-core backends behind the CRC32 frame layer
    (:mod:`repro.storage.integrity`) and arms the crash-consistency
    machinery (grDB's flush journal, StreamDB's durable commit records);
    ``compress_adjacency`` switches grDB sub-blocks and the StreamDB log to
    the delta+varint format (:mod:`repro.util.varint`) — a no-op for the
    other four backends; ``semi_external`` arms the FlashGraph-style
    semi-external-memory mode (pinned vertex state + selective adjacency
    I/O on the out-of-core stores).
    """
    common = dict(
        clock=node.clock,
        cpu=node.spec.cpu,
        batch_io=batch_io,
        semi_external=semi_external,
        **extra,
    )
    if checksums:
        provider = lambda name: wrap_device(node.disk(name))  # noqa: E731
    else:
        provider = node.disk
    shared = shared_cache_for(node, cache_blocks, cache_policy)
    if backend == "Array":
        return ArrayGraphDB(**common)
    if backend == "HashMap":
        return HashMapGraphDB(**common)
    if backend == "StreamDB":
        meta = provider("stream_meta") if checksums else None
        return StreamGraphDB(
            provider("streamdb"),
            meta_device=meta,
            compress=compress_adjacency,
            **common,
        )
    if backend == "BerkeleyDB":
        return BerkeleyGraphDB(
            provider("bdb"), cache_pages=cache_blocks, shared_cache=shared, **common
        )
    if backend == "MySQL":
        return MySQLGraphDB(provider, shared_cache=shared, **common)
    if backend == "grDB":
        fmt = grdb_format if grdb_format is not None else GrDBFormat()
        if compress_adjacency and not fmt.compress:
            fmt = dataclasses.replace(fmt, compress=True)
        return GrDB(
            provider,
            fmt=fmt,
            cache_blocks=cache_blocks,
            id_map=id_map,
            growth_policy=growth_policy,
            integrity=checksums,
            shared_cache=shared,
            **common,
        )
    raise ConfigError(f"unknown GraphDB backend {backend!r}; choose from {BACKENDS}")
