"""BerkeleyDB GraphDB: adjacency chunks in a B-tree KV store (§4.1.4).

Adjacency lists are serialized into fixed-capacity binary chunks (8 KB, the
paper's Figure 4.3 blocking) keyed by ``(vertex id, chunk number)``; the
underlying store is the from-scratch B-tree :class:`KVStore` standing in
for BerkeleyDB 1.7.1.  The store's page cache is the "internal (block)
cache" toggled in Figure 5.2.
"""

from __future__ import annotations

import numpy as np

from ..simcluster.disk import BlockDevice
from ..storage.kvstore import KVStore, encode_key_u64_u32, encode_u64
from ..util.longarray import LongArray
from .interface import GraphDB

__all__ = ["BerkeleyGraphDB", "CHUNK_BYTES", "CHUNK_ENTRIES"]

#: 8 KB chunks, "as suggested by the MySQL documentation" and reused for BDB.
CHUNK_BYTES = 8192
CHUNK_ENTRIES = CHUNK_BYTES // 8


class BerkeleyGraphDB(GraphDB):
    """Adjacency chunks in a B-tree key-value store (BerkeleyDB stand-in)."""

    name = "BerkeleyDB"

    def __init__(
        self,
        device: BlockDevice,
        cache_pages: int = 512,
        page_size: int = 4096,
        shared_cache=None,
        **kwargs,
    ):
        super().__init__(**kwargs)
        self.store = KVStore(
            device,
            page_size=page_size,
            cache_pages=cache_pages,
            page_cpu_seconds=self.cpu.btree_page_seconds,
            shared_cache=shared_cache,
            cache_owner="bdb",
        )
        # Lazily discovered tail position per vertex: (chunk_no, entries_used).
        self._tails: dict[int, tuple[int, int]] = {}

    # -- chunk helpers ----------------------------------------------------

    @staticmethod
    def _pack(neighbors: np.ndarray) -> bytes:
        return np.ascontiguousarray(neighbors.astype("<u8")).tobytes()

    @staticmethod
    def _unpack(data: bytes) -> np.ndarray:
        return np.frombuffer(data, dtype="<u8").astype(np.int64)

    def _tail_of(self, vertex: int) -> tuple[int, int]:
        """Last chunk number and its fill for ``vertex`` (queried once)."""
        tail = self._tails.get(vertex)
        if tail is None:
            tail = (-1, CHUNK_ENTRIES)  # no chunks yet; "full" forces a new one
            for key, value in self.store.prefix(encode_u64(vertex)):
                chunk_no = int.from_bytes(key[8:12], "big")
                tail = (chunk_no, len(value) // 8)
            self._tails[vertex] = tail
        return tail

    # -- GraphDB hooks ------------------------------------------------------

    def _store_edges(self, edges: np.ndarray) -> None:
        if len(edges) == 0:
            return
        # Group arrivals by source so each vertex's tail is touched once.
        order = np.argsort(edges[:, 0], kind="stable")
        srcs = edges[order, 0]
        dsts = edges[order, 1]
        boundaries = np.flatnonzero(np.diff(srcs)) + 1
        for group in np.split(np.arange(len(srcs)), boundaries):
            vertex = int(srcs[group[0]])
            new = dsts[group]
            chunk_no, used = self._tail_of(vertex)
            pos = 0
            while pos < len(new):
                if used >= CHUNK_ENTRIES:
                    chunk_no += 1
                    used = 0
                    existing = np.empty(0, dtype=np.int64)
                else:
                    existing = self._unpack(self.store.get(encode_key_u64_u32(vertex, chunk_no)))
                take = min(CHUNK_ENTRIES - used, len(new) - pos)
                merged = np.concatenate([existing, new[pos : pos + take]])
                self.store.put(encode_key_u64_u32(vertex, chunk_no), self._pack(merged))
                used += take
                pos += take
            self._tails[vertex] = (chunk_no, used)

    def _get_adjacency(self, vertex: int) -> np.ndarray:
        chunks = [self._unpack(v) for _, v in self.store.prefix(encode_u64(vertex))]
        if not chunks:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(chunks)

    #: Below this many distinct fringe vertices, batched expansion does
    #: sorted point lookups; at or above it, one range scan over the B-tree
    #: leaf chain amortizes the root-to-leaf descents across the fringe.
    BATCH_SCAN_MIN = 32

    def _expand_fringe(self, vertices, adjlist: LongArray) -> None:
        """Batch adjacency lookups in sorted key order through the B-tree.

        The fringe's ``(vertex, chunk)`` keys are visited in ascending
        order, so consecutive lookups land on the same or neighboring
        leaves (page-cache locality) instead of re-descending into random
        subtrees; dense fringes upgrade to a single leaf-chain range scan
        between the smallest and largest wanted key.  Results are emitted
        per vertex in original fringe order with chunks ascending —
        byte-identical to the per-vertex path.
        """
        fringe = np.asarray(vertices, dtype=np.int64)
        if not self.batch_io or len(fringe) == 0:
            super()._expand_fringe(fringe, adjlist)
            return
        wanted = np.unique(fringe)
        found: dict[int, list[np.ndarray]] = {}
        if len(wanted) >= self.BATCH_SCAN_MIN:
            lo = encode_key_u64_u32(int(wanted[0]), 0)
            hi = encode_u64(int(wanted[-1]) + 1)
            wset = set(int(v) for v in wanted)
            for key, value in self.store.cursor(lo, hi):
                vertex = int.from_bytes(key[:8], "big")
                if vertex in wset:
                    found.setdefault(vertex, []).append(self._unpack(value))
        else:
            for v in wanted:
                chunks = [self._unpack(val) for _, val in self.store.prefix(encode_u64(int(v)))]
                if chunks:
                    found[int(v)] = chunks
        for v in fringe:
            chunks = found.get(int(v))
            self.stats.adjacency_requests += 1
            if not chunks:
                continue
            neighbors = np.concatenate(chunks) if len(chunks) > 1 else chunks[0]
            self.stats.edges_scanned += len(neighbors)
            self.clock.advance(len(neighbors) * self.cpu.edge_visit_seconds)
            adjlist.extend(neighbors)

    def _scan_adjacency(self, vertices=None, order: str = "storage"):
        """Walk the B-tree leaf chain once, yielding wanted vertices.

        One range cursor between the smallest and largest wanted key visits
        every leaf page in key order — the sequential plan of the bottom-up
        BFS level.  Page I/O and B-tree CPU are charged by the cursor; the
        per-edge claim check is the caller's (early-exit accounting).
        """
        if order != "storage":
            raise ValueError(f"unknown scan order {order!r}")
        wset = None
        if vertices is not None:
            wanted = np.unique(np.asarray(vertices, dtype=np.int64))
            if len(wanted) == 0:
                return
            wset = set(int(v) for v in wanted)
            it = self.store.cursor(
                encode_key_u64_u32(int(wanted[0]), 0), encode_u64(int(wanted[-1]) + 1)
            )
        else:
            it = self.store.cursor()
        cur = None
        chunks: list[np.ndarray] = []
        for key, value in it:
            vertex = int.from_bytes(key[:8], "big")
            if vertex != cur:
                if chunks:
                    yield cur, np.concatenate(chunks) if len(chunks) > 1 else chunks[0]
                cur, chunks = vertex, []
            if wset is None or vertex in wset:
                chunks.append(self._unpack(value))
        if chunks:
            yield cur, np.concatenate(chunks) if len(chunks) > 1 else chunks[0]

    def _local_vertices(self) -> np.ndarray:
        seen = []
        last = None
        for key, _ in self.store.cursor():
            vertex = int.from_bytes(key[:8], "big")
            if vertex != last:
                seen.append(vertex)
                last = vertex
        return np.array(seen, dtype=np.int64)

    def flush(self) -> None:
        self.store.flush()

    @property
    def cache_stats(self):
        return self.store.cache_stats
