"""grDB: the paper's novel multi-level out-of-core graph database."""

from .db import GrDB
from .defrag import chain_length, defragment, defragment_vertex
from .format import (
    EMPTY_SLOT,
    MAX_VERTEX_ID,
    SLOT_BYTES,
    GrDBFormat,
    decode_pointer,
    encode_pointer,
    is_empty,
    is_pointer,
)
from .storage import GrDBStorage
from .superblock import load_superblock, save_superblock

__all__ = [
    "EMPTY_SLOT",
    "GrDB",
    "GrDBFormat",
    "GrDBStorage",
    "MAX_VERTEX_ID",
    "SLOT_BYTES",
    "chain_length",
    "decode_pointer",
    "defragment",
    "defragment_vertex",
    "encode_pointer",
    "is_empty",
    "is_pointer",
    "load_superblock",
    "save_superblock",
]
