"""grDB GraphDB implementation (§3.4.1, §4.1.6).

Adjacency storage per vertex ``v``:

* the beginning of ``v``'s adjacency list lives in the ``v``-th level-0
  sub-block (through an :class:`IdMap` when vertices are declustered);
* a sub-block holds vertex entries left-to-right; when it fills and more
  neighbors arrive, its *last* slot is replaced by a pointer to a freshly
  allocated sub-block at a higher level (the displaced entry moves there);
* growth policy (the explicit design fork in §3.4.1):

  - ``"link"`` — leave filled sub-blocks in place and chain, fragmenting
    the list across levels (cheap inserts, extra seeks on read);
  - ``"move"`` — when a level-``l >= 1`` sub-block fills, copy its whole
    contents into a level-``l+1`` sub-block, free the old one, and repoint
    the level-0 pointer, keeping every chain at length <= 2 (extra copies
    on insert, compact reads).

  ``repro.graphdb.grdb.defrag`` converts link-fragmented chains into the
  compact form "during idle time", as the paper suggests.

Degrees beyond the top level's capacity chain additional top-level
sub-blocks, so arbitrarily large hubs are storable.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ...simcluster.disk import BlockDevice
from ...util.errors import ConfigError, GraphStorageException
from ...util.varint import split_sorted_fit, sorted_encoded_size
from ..idmap import IdentityMap, IdMap
from ..interface import GraphDB
from .format import (
    COMPRESSED_COUNT_CAP,
    EMPTY_SLOT,
    MAX_VERTEX_ID,
    GrDBFormat,
    decode_pointer,
    encode_pointer,
    is_pointer,
)
from .storage import GrDBStorage

__all__ = ["GrDB"]

_POLICIES = ("link", "move")


class GrDB(GraphDB):
    """The paper's multi-level sub-block graph database (see module doc)."""

    name = "grDB"

    def __init__(
        self,
        device_provider: Callable[[str], BlockDevice],
        fmt: GrDBFormat | None = None,
        cache_blocks: int = 256,
        id_map: IdMap | None = None,
        growth_policy: str = "link",
        integrity: bool = False,
        shared_cache=None,
        **kwargs,
    ):
        super().__init__(**kwargs)
        if growth_policy not in _POLICIES:
            raise ConfigError(f"growth_policy must be one of {_POLICIES}, got {growth_policy!r}")
        self.fmt = fmt if fmt is not None else GrDBFormat()
        self.storage = GrDBStorage(
            self.fmt,
            device_provider,
            cache_blocks=cache_blocks,
            integrity=integrity,
            shared_cache=shared_cache,
        )
        self.id_map = id_map if id_map is not None else IdentityMap()
        self.growth_policy = growth_policy
        # Ingestion memo: local id -> (chain path [(level, sb), ...], used
        # slots in the tail).  Purely an in-memory accelerator; the on-disk
        # chain is always authoritative and re-walkable.
        self._tails: dict[int, tuple[list[tuple[int, int]], int]] = {}
        self._known_locals: set[int] = set()
        #: Semi-EM selective-I/O directory: sorted written level-0 block ids
        #: (level 0 is id-addressed, so block extents are pure arithmetic).
        self._block_dir: np.ndarray | None = None
        #: Directory chunks currently pinned in the block cache.
        self._dir_chunks = 0
        #: True when this instance adopted state from an existing superblock.
        self.restored = self.storage.restore()
        if self.restored:
            self._rebuild_known_locals()

    # -- chain navigation ----------------------------------------------------

    def _read_slots(self, level: int, sb: int) -> np.ndarray:
        # Addressing + decoding one sub-block is pure arithmetic (no key
        # comparisons), the CPU edge grDB holds over B-tree stores.
        self.clock.advance(self.cpu.grdb_subblock_seconds)
        return self.fmt.parse_slots(self.storage.read_subblock(level, sb))

    def _write_slots(self, level: int, sb: int, slots: np.ndarray) -> None:
        self.storage.write_subblock(level, sb, self.fmt.pack_slots(slots))

    def _read_compressed(self, level: int, sb: int) -> tuple[np.ndarray, int]:
        """Read + unframe one compressed sub-block: ``(values, tail slot)``.

        Charges the same per-sub-block addressing cost as the raw path plus
        the vectorized varint decode, per byte actually decoded.
        """
        values, tail, consumed = self.fmt.decode_subblock(
            self.storage.read_subblock(level, sb)
        )
        self.clock.advance(
            self.cpu.grdb_subblock_seconds + consumed * self.cpu.varint_decode_seconds
        )
        return values, tail

    def _write_compressed(self, level: int, sb: int, values: np.ndarray, tail: int) -> None:
        self.storage.write_subblock(level, sb, self.fmt.encode_subblock(level, values, tail))

    def _gather_sub(
        self,
        blocks: dict[int, dict[int, bytes]],
        level: int,
        sb: int,
        k_by_level: list[int],
    ) -> tuple[np.ndarray, int]:
        """Gather one sub-block from an already-fetched block batch.

        Returns ``(values, last)`` where ``last`` is the chain-continuation
        word (``EMPTY_SLOT`` or a pointer).  Raw sub-blocks may include
        ``EMPTY_SLOT`` words in ``values`` (callers filter); compressed ones
        never do.  Charges the marginal batched sub-block cost, plus the
        vectorized varint decode when compressed.
        """
        block, slot = divmod(sb, k_by_level[level])
        sub_bytes = self.fmt.subblock_bytes(level)
        data = blocks[level][block][slot * sub_bytes : (slot + 1) * sub_bytes]
        if self.fmt.compress:
            values, last, consumed = self.fmt.decode_subblock(data)
            self.clock.advance(
                self.cpu.grdb_batch_subblock_seconds
                + consumed * self.cpu.varint_decode_seconds
            )
            return values, last
        slots = self.fmt.parse_slots(data)
        self.clock.advance(self.cpu.grdb_batch_subblock_seconds)
        last = int(slots[-1])
        return (slots[:-1] if is_pointer(last) else slots), last

    def _walk(self, local: int) -> tuple[list[tuple[int, int]], int]:
        """Follow ``local``'s chain to its tail; returns (path, tail fill)."""
        path = [(0, local)]
        while True:
            level, sb = path[-1]
            if self.fmt.compress:
                values, last = self._read_compressed(level, sb)
            else:
                slots = self._read_slots(level, sb)
                last = int(slots[-1])
            if is_pointer(last):
                nxt = decode_pointer(last)
                if len(path) > self.fmt.num_levels + 64:
                    raise GraphStorageException(f"pointer cycle in chain of local vertex {local}")
                path.append(nxt)
            elif self.fmt.compress:
                return path, len(values)
            else:
                used = int(np.count_nonzero(slots != EMPTY_SLOT))
                return path, used

    def _tail_info(self, local: int) -> tuple[list[tuple[int, int]], int]:
        info = self._tails.get(local)
        if info is None:
            info = self._walk(local)
            self._tails[local] = info
        return info

    # -- ingestion -----------------------------------------------------------

    def _store_edges(self, edges: np.ndarray) -> None:
        if len(edges) == 0:
            return
        if edges.max() > MAX_VERTEX_ID:
            raise GraphStorageException(
                f"vertex id {edges.max()} exceeds grDB's 61-bit id space"
            )
        order = np.argsort(edges[:, 0], kind="stable")
        srcs = edges[order, 0]
        dsts = edges[order, 1]
        boundaries = np.flatnonzero(np.diff(srcs)) + 1
        for group in np.split(np.arange(len(srcs)), boundaries):
            self._append(int(srcs[group[0]]), dsts[group])

    def _append(self, gid: int, new: np.ndarray) -> None:
        local = self.id_map.to_local(gid)
        self._known_locals.add(local)
        if self.fmt.compress:
            self._append_compressed(local, new)
            return
        path, used = self._tail_info(local)
        level, sb = path[-1]
        slots = self._read_slots(level, sb).copy()
        caps = self.fmt.capacities
        top = self.fmt.num_levels - 1
        i = 0
        new_u64 = new.astype("<u8")
        while True:
            cap = caps[level]
            take = min(cap - used, len(new_u64) - i)
            if take > 0:
                slots[used : used + take] = new_u64[i : i + take]
                used += take
                i += take
            if i >= len(new_u64):
                break
            # Tail is full; grow the chain.
            if self.growth_policy == "move" and 1 <= level < top:
                # Copy the whole sub-block one level up, free it, repoint parent.
                tgt = level + 1
                nsb = self.storage.allocate_subblock(tgt)
                nslots = self.fmt.parse_slots(self.fmt.empty_subblock(tgt)).copy()
                nslots[:cap] = slots[:cap]
                self.storage.free_subblock(level, sb)
                plevel, psb = path[-2]
                pslots = self._read_slots(plevel, psb).copy()
                pslots[caps[plevel] - 1] = encode_pointer(tgt, nsb)
                self._write_slots(plevel, psb, pslots)
                path[-1] = (tgt, nsb)
                level, sb, slots = tgt, nsb, nslots
            else:
                # Link: displace the last entry into a new higher-level
                # sub-block and leave a pointer behind.
                tgt = min(level + 1, top)
                nsb = self.storage.allocate_subblock(tgt)
                displaced = slots[cap - 1]
                slots[cap - 1] = encode_pointer(tgt, nsb)
                self._write_slots(level, sb, slots)
                nslots = self.fmt.parse_slots(self.fmt.empty_subblock(tgt)).copy()
                nslots[0] = displaced
                used = 1
                path.append((tgt, nsb))
                level, sb, slots = tgt, nsb, nslots
        self._write_slots(level, sb, slots)
        self._tails[local] = (path, used)

    def _append_compressed(self, local: int, new: np.ndarray) -> None:
        """Merge ``new`` neighbors into the chain tail, delta+varint framed.

        The tail's sorted list and the incoming batch are merged (a sorted
        multiset — duplicate edges are kept); the longest unique prefix
        whose encoding fits the tail's payload budget is re-framed in
        place, and the spill (byte overflow plus duplicate occurrences)
        grows the chain exactly like the raw format: ``link`` leaves the
        full sub-block behind a pointer, ``move`` re-homes the whole tail
        one level up first.  Per-sub-block lists stay strictly sorted, so
        decode-side monotonicity checks have teeth.
        """
        path, _ = self._tail_info(local)
        level, sb = path[-1]
        vals, _tail = self._read_compressed(level, sb)
        pending = np.sort(np.concatenate([vals, new.astype("<u8")]), kind="stable")
        top = self.fmt.num_levels - 1
        rounds = 0
        while True:
            rounds += 1
            if rounds > (1 << 20):
                raise GraphStorageException(
                    f"runaway chain growth appending to local vertex {local}"
                )
            fit, spill = split_sorted_fit(
                pending, self.fmt.payload_bytes(level), COMPRESSED_COUNT_CAP
            )
            if len(spill) == 0:
                self._write_compressed(level, sb, fit, EMPTY_SLOT)
                self._tails[local] = (path, len(fit))
                return
            if self.growth_policy == "move" and 1 <= level < top:
                # Re-home the whole tail one level up, free it, repoint the
                # parent; the pending multiset retries against the larger
                # payload budget.
                tgt = level + 1
                nsb = self.storage.allocate_subblock(tgt)
                self.storage.free_subblock(level, sb)
                plevel, psb = path[-2]
                pvals, _ = self._read_compressed(plevel, psb)
                self._write_compressed(plevel, psb, pvals, encode_pointer(tgt, nsb))
                path[-1] = (tgt, nsb)
                level, sb = tgt, nsb
            else:
                tgt = min(level + 1, top)
                nsb = self.storage.allocate_subblock(tgt)
                self._write_compressed(level, sb, fit, encode_pointer(tgt, nsb))
                path.append((tgt, nsb))
                level, sb = tgt, nsb
                pending = spill

    # -- retrieval --------------------------------------------------------------

    def _get_adjacency(self, vertex: int) -> np.ndarray:
        try:
            local = self.id_map.to_local(vertex)
        except ConfigError:
            return np.empty(0, dtype=np.int64)  # not owned by this node
        parts: list[np.ndarray] = []
        level, sb = 0, local
        hops = 0
        while True:
            if self.fmt.compress:
                values, last = self._read_compressed(level, sb)
                parts.append(values)
            else:
                slots = self._read_slots(level, sb)
                last = int(slots[-1])
                parts.append(slots[:-1] if is_pointer(last) else slots)
            if is_pointer(last):
                level, sb = decode_pointer(last)
                hops += 1
                if hops > 1 << 20:
                    raise GraphStorageException(f"runaway chain for vertex {vertex}")
            else:
                break
        flat = np.concatenate(parts)
        return flat[flat != EMPTY_SLOT].astype(np.int64)

    # -- batched fringe expansion (vectored I/O all the way down) ---------------------

    def _expand_fringe(self, vertices, adjlist) -> None:
        """Expand a whole fringe through the coalescing batch planner.

        Instead of walking each vertex's chain independently (one sub-block
        read at a time, scattered across files), the batched path resolves
        the fringe level-synchronously: every round collects the chain
        addresses all still-walking vertices need next, sorts them by
        ``(level, file, offset)`` — the global block index orders exactly
        that way — fetches the distinct blocks through the cache with
        adjacent misses coalesced into single vectored device reads, then
        decodes each block once and gathers every requested sub-block from
        it.  Pointer targets are re-sorted each round, so chained sub-blocks
        also coalesce.  Output order is byte-identical to the per-vertex
        path: each vertex's neighbors appear in chain order, vertices in
        fringe order.
        """
        if not self.batch_io:
            super()._expand_fringe(vertices, adjlist)
            return
        fringe = np.asarray(vertices, dtype=np.int64)
        self.stats.adjacency_requests += len(fringe)
        if len(fringe) == 0:
            return
        locals_, owned = self.id_map.to_local_many(fringe)
        parts: list[list[np.ndarray]] = [[] for _ in range(len(fringe))]
        # (level, sub-block, fringe position) of every still-walking chain.
        pending = [(0, int(sb), i) for i, sb in enumerate(locals_) if owned[i]]
        k_by_level = [self.fmt.subblocks_per_block(lv) for lv in range(self.fmt.num_levels)]
        rounds = 0
        while pending:
            rounds += 1
            if rounds > 1 << 20:
                raise GraphStorageException("runaway chain during batched fringe expansion")
            pending.sort(key=lambda t: (t[0], t[1]))
            wanted: dict[int, set[int]] = {}
            for level, sb, _ in pending:
                wanted.setdefault(level, set()).add(sb // k_by_level[level])
            blocks: dict[int, dict[int, bytes]] = {}
            for level in sorted(wanted):
                blocks[level] = self.storage.read_block_batch(level, wanted[level])
                # One full address+decode per distinct block; the per-sub-block
                # gathers below ride on the already-parsed block.
                self.clock.advance(len(blocks[level]) * self.cpu.grdb_subblock_seconds)
            nxt = []
            for level, sb, i in pending:
                vals, last = self._gather_sub(blocks, level, sb, k_by_level)
                parts[i].append(vals)
                if is_pointer(last):
                    nxt.append((*decode_pointer(last), i))
            pending = nxt
        total = 0
        for chain in parts:
            if not chain:
                continue
            flat = np.concatenate(chain) if len(chain) > 1 else chain[0]
            neighbors = flat[flat != EMPTY_SLOT].astype(np.int64)
            total += len(neighbors)
            adjlist.extend(neighbors)
        self.stats.edges_scanned += total
        self.clock.advance(total * self.cpu.edge_visit_seconds)

    # -- storage-order scan (bottom-up BFS access plan) -------------------------------

    def _scan_adjacency(self, vertices=None, order: str = "storage"):
        """Yield wanted vertices' lists by walking level files in block order.

        The bottom-up plan: wanted vertices are sorted by level-0 sub-block
        (ascending file offset) and resolved in windows of a few blocks'
        worth of chains through the same level-synchronous planner as
        :meth:`expand_fringe` — distinct blocks fetched once through the
        cache with adjacent misses coalesced, chains followed round by
        round.  Sub-block addressing/decoding CPU is charged here; per-edge
        claim checks are the caller's (early-exit accounting).
        """
        if order != "storage":
            raise ValueError(f"unknown scan order {order!r}")
        if vertices is None:
            gids = self._base_local_vertices()
        else:
            gids = np.unique(np.asarray(vertices, dtype=np.int64))
        if len(gids) == 0:
            return
        locals_, owned = self.id_map.to_local_many(gids)
        idx = np.flatnonzero(owned)
        if len(idx) == 0:
            return
        scan_order = idx[np.argsort(locals_[idx], kind="stable")]
        k_by_level = [self.fmt.subblocks_per_block(lv) for lv in range(self.fmt.num_levels)]
        window = max(1, 4 * k_by_level[0])
        for start in range(0, len(scan_order), window):
            sel = scan_order[start : start + window]
            parts: dict[int, list[np.ndarray]] = {int(i): [] for i in sel}
            pending = [(0, int(locals_[i]), int(i)) for i in sel]
            rounds = 0
            while pending:
                rounds += 1
                if rounds > 1 << 20:
                    raise GraphStorageException("runaway chain during storage-order scan")
                pending.sort(key=lambda t: (t[0], t[1]))
                wanted: dict[int, set[int]] = {}
                for level, sb, _ in pending:
                    wanted.setdefault(level, set()).add(sb // k_by_level[level])
                blocks: dict[int, dict[int, bytes]] = {}
                for level in sorted(wanted):
                    blocks[level] = self.storage.read_block_batch(level, wanted[level])
                    self.clock.advance(len(blocks[level]) * self.cpu.grdb_subblock_seconds)
                nxt = []
                for level, sb, i in pending:
                    vals, last = self._gather_sub(blocks, level, sb, k_by_level)
                    parts[i].append(vals)
                    if is_pointer(last):
                        nxt.append((*decode_pointer(last), i))
                pending = nxt
            for i in sel:
                chain = parts[int(i)]
                flat = np.concatenate(chain) if len(chain) > 1 else chain[0]
                neighbors = flat[flat != EMPTY_SLOT].astype(np.int64)
                if len(neighbors):
                    yield int(gids[int(i)]), neighbors

    # -- prefetch (the §4.2 future-work optimization) ---------------------------------

    def prefetch_fringe(self, vertices) -> int:
        """Prefetch the level-0 blocks of a fringe, sorted by file offset.

        Implements the optimization the paper leaves as future work:
        "introducing some pre-fetching of the adjacency lists of the
        vertices in the frontier ... sorting the pre-fetch disk accesses by
        file offsets to reduce the seek overhead."  The fringe is mapped
        through the id map vectorized and handed to the public coalescing
        planner (:meth:`GrDBStorage.prefetch_blocks`), which fetches
        ascending-offset runs in single vectored reads and counts the cold
        ones in ``cache_stats.prefetched``.  Returns the number of distinct
        level-0 blocks the fringe plans (already-cached blocks cost
        nothing but still count toward the plan).
        """
        fringe = np.asarray(vertices, dtype=np.int64)
        if len(fringe) == 0:
            return 0
        locals_, owned = self.id_map.to_local_many(fringe)
        if not owned.any():
            return 0
        blocks = np.unique(locals_[owned] // self.fmt.subblocks_per_block(0))
        return self.storage.prefetch_blocks(0, blocks.tolist())

    # -- maintenance ------------------------------------------------------------------

    def _rebuild_known_locals(self) -> None:
        """Recover the set of stored vertices by scanning level-0 blocks."""
        k = self.fmt.subblocks_per_block(0)
        d0 = self.fmt.capacities[0]
        level0 = sorted(b for lvl, b in self.storage._written_blocks if lvl == 0)
        data = self.storage.read_block_batch(0, level0)
        if self.fmt.compress:
            sub_bytes = self.fmt.subblock_bytes(0)
            for block in level0:
                raw = data[block]
                for slot in range(k):
                    values, tail, _ = self.fmt.decode_subblock(
                        raw[slot * sub_bytes : (slot + 1) * sub_bytes]
                    )
                    # Occupied iff it stores neighbors or continues a chain
                    # (a count-0 head whose first neighbor spilled).
                    if len(values) or is_pointer(tail):
                        self._known_locals.add(block * k + slot)
            return
        for block in level0:
            slots = self.fmt.parse_slots(data[block])
            occupied = np.flatnonzero((slots.reshape(k, d0) != EMPTY_SLOT).any(axis=1))
            self._known_locals.update(int(i) for i in block * k + occupied)

    def chain_of(self, vertex: int) -> list[tuple[int, int]]:
        """The (level, sub-block) chain of ``vertex`` — for tests/defrag."""
        return list(self._walk(self.id_map.to_local(vertex))[0])

    def known_vertices(self) -> list[int]:
        """Global ids of all vertices this instance has stored edges for."""
        return sorted(self.id_map.to_global(loc) for loc in self._known_locals)

    def _local_vertices(self) -> np.ndarray:
        return np.array(self.known_vertices(), dtype=np.int64)

    # -- semi-EM selective I/O ---------------------------------------------------------

    def _build_block_directory(self) -> None:
        """Materialize the written level-0 block set as a resident array.

        Level 0 is id-addressed (``local // subblocks_per_block(0)`` *is*
        the block number), so the block→vertex-range directory reduces to
        the sorted set of written blocks — pure arithmetic over
        ``_known_locals``, no device I/O.  The serialized directory is
        pinned into the block cache so its residency is charged against
        real capacity (and survives whole-graph sweeps by construction).
        """
        k0 = self.fmt.subblocks_per_block(0)
        blocks = np.unique(
            np.fromiter(
                (loc // k0 for loc in self._known_locals),
                dtype=np.int64,
                count=len(self._known_locals),
            )
        )
        self._block_dir = blocks
        self._pin_directory(blocks)

    def _pin_directory(self, blocks: np.ndarray) -> None:
        """Best-effort: pin the serialized directory into cache blocks.

        Skipped when the cache is too small to spare the room (the resident
        numpy array still serves lookups; only the budget accounting and
        scan-resistance modeling ride on the cache copy).
        """
        cache = self.storage.cache
        payload = blocks.astype("<i8").tobytes()
        chunk = max(1, self.fmt.block_sizes[0])
        nchunks = max(1, -(-len(payload) // chunk))
        if nchunks > cache.capacity // 4:
            nchunks = 0
        for i in range(nchunks):
            cache.pin(("semiem-dir", i), payload[i * chunk : (i + 1) * chunk])
        for i in range(nchunks, self._dir_chunks):
            cache.invalidate(("semiem-dir", i))
        self._dir_chunks = nchunks

    def _directory_bytes(self) -> int:
        return int(self._block_dir.nbytes) if self._block_dir is not None else 0

    def frontier_block_coverage(self, vertices) -> float | None:
        if not self.semi_external or self._pinned() is None:
            return None
        if self._block_dir is None or len(self._block_dir) == 0:
            return None
        wanted = np.unique(np.asarray(vertices, dtype=np.int64))
        if len(wanted) == 0:
            return 0.0
        locals_, owned = self.id_map.to_local_many(wanted)
        if not owned.any():
            return 0.0
        k0 = self.fmt.subblocks_per_block(0)
        wanted_blocks = np.unique(locals_[owned] // k0)
        idx = np.searchsorted(self._block_dir, wanted_blocks)
        idx = np.minimum(idx, len(self._block_dir) - 1)
        hits = int(np.count_nonzero(self._block_dir[idx] == wanted_blocks))
        return hits / len(self._block_dir)

    def invalidate_tail_memo(self, vertex: int | None = None) -> None:
        if vertex is None:
            self._tails.clear()
        else:
            self._tails.pop(self.id_map.to_local(vertex), None)

    def flush(self) -> None:
        self.storage.flush()

    @property
    def cache_stats(self):
        return self.storage.cache.stats
