"""grDB GraphDB implementation (§3.4.1, §4.1.6).

Adjacency storage per vertex ``v``:

* the beginning of ``v``'s adjacency list lives in the ``v``-th level-0
  sub-block (through an :class:`IdMap` when vertices are declustered);
* a sub-block holds vertex entries left-to-right; when it fills and more
  neighbors arrive, its *last* slot is replaced by a pointer to a freshly
  allocated sub-block at a higher level (the displaced entry moves there);
* growth policy (the explicit design fork in §3.4.1):

  - ``"link"`` — leave filled sub-blocks in place and chain, fragmenting
    the list across levels (cheap inserts, extra seeks on read);
  - ``"move"`` — when a level-``l >= 1`` sub-block fills, copy its whole
    contents into a level-``l+1`` sub-block, free the old one, and repoint
    the level-0 pointer, keeping every chain at length <= 2 (extra copies
    on insert, compact reads).

  ``repro.graphdb.grdb.defrag`` converts link-fragmented chains into the
  compact form "during idle time", as the paper suggests.

Degrees beyond the top level's capacity chain additional top-level
sub-blocks, so arbitrarily large hubs are storable.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ...simcluster.disk import BlockDevice
from ...util.errors import ConfigError, GraphStorageException
from ..idmap import IdentityMap, IdMap
from ..interface import GraphDB
from .format import (
    EMPTY_SLOT,
    MAX_VERTEX_ID,
    GrDBFormat,
    decode_pointer,
    encode_pointer,
    is_pointer,
)
from .storage import GrDBStorage

__all__ = ["GrDB"]

_POLICIES = ("link", "move")


class GrDB(GraphDB):
    """The paper's multi-level sub-block graph database (see module doc)."""

    name = "grDB"

    def __init__(
        self,
        device_provider: Callable[[str], BlockDevice],
        fmt: GrDBFormat | None = None,
        cache_blocks: int = 256,
        id_map: IdMap | None = None,
        growth_policy: str = "link",
        **kwargs,
    ):
        super().__init__(**kwargs)
        if growth_policy not in _POLICIES:
            raise ConfigError(f"growth_policy must be one of {_POLICIES}, got {growth_policy!r}")
        self.fmt = fmt if fmt is not None else GrDBFormat()
        self.storage = GrDBStorage(self.fmt, device_provider, cache_blocks=cache_blocks)
        self.id_map = id_map if id_map is not None else IdentityMap()
        self.growth_policy = growth_policy
        # Ingestion memo: local id -> (chain path [(level, sb), ...], used
        # slots in the tail).  Purely an in-memory accelerator; the on-disk
        # chain is always authoritative and re-walkable.
        self._tails: dict[int, tuple[list[tuple[int, int]], int]] = {}
        self._known_locals: set[int] = set()
        #: True when this instance adopted state from an existing superblock.
        self.restored = self.storage.restore()
        if self.restored:
            self._rebuild_known_locals()

    # -- chain navigation ----------------------------------------------------

    def _read_slots(self, level: int, sb: int) -> np.ndarray:
        # Addressing + decoding one sub-block is pure arithmetic (no key
        # comparisons), the CPU edge grDB holds over B-tree stores.
        self.clock.advance(self.cpu.grdb_subblock_seconds)
        return self.fmt.parse_slots(self.storage.read_subblock(level, sb))

    def _write_slots(self, level: int, sb: int, slots: np.ndarray) -> None:
        self.storage.write_subblock(level, sb, self.fmt.pack_slots(slots))

    def _walk(self, local: int) -> tuple[list[tuple[int, int]], int]:
        """Follow ``local``'s chain to its tail; returns (path, tail fill)."""
        path = [(0, local)]
        while True:
            level, sb = path[-1]
            slots = self._read_slots(level, sb)
            last = int(slots[-1])
            if is_pointer(last):
                nxt = decode_pointer(last)
                if len(path) > self.fmt.num_levels + 64:
                    raise GraphStorageException(f"pointer cycle in chain of local vertex {local}")
                path.append(nxt)
            else:
                used = int(np.count_nonzero(slots != EMPTY_SLOT))
                return path, used

    def _tail_info(self, local: int) -> tuple[list[tuple[int, int]], int]:
        info = self._tails.get(local)
        if info is None:
            info = self._walk(local)
            self._tails[local] = info
        return info

    # -- ingestion -----------------------------------------------------------

    def _store_edges(self, edges: np.ndarray) -> None:
        if len(edges) == 0:
            return
        if edges.max() > MAX_VERTEX_ID:
            raise GraphStorageException(
                f"vertex id {edges.max()} exceeds grDB's 61-bit id space"
            )
        order = np.argsort(edges[:, 0], kind="stable")
        srcs = edges[order, 0]
        dsts = edges[order, 1]
        boundaries = np.flatnonzero(np.diff(srcs)) + 1
        for group in np.split(np.arange(len(srcs)), boundaries):
            self._append(int(srcs[group[0]]), dsts[group])

    def _append(self, gid: int, new: np.ndarray) -> None:
        local = self.id_map.to_local(gid)
        self._known_locals.add(local)
        path, used = self._tail_info(local)
        level, sb = path[-1]
        slots = self._read_slots(level, sb).copy()
        caps = self.fmt.capacities
        top = self.fmt.num_levels - 1
        i = 0
        new_u64 = new.astype("<u8")
        while True:
            cap = caps[level]
            take = min(cap - used, len(new_u64) - i)
            if take > 0:
                slots[used : used + take] = new_u64[i : i + take]
                used += take
                i += take
            if i >= len(new_u64):
                break
            # Tail is full; grow the chain.
            if self.growth_policy == "move" and 1 <= level < top:
                # Copy the whole sub-block one level up, free it, repoint parent.
                tgt = level + 1
                nsb = self.storage.allocate_subblock(tgt)
                nslots = self.fmt.parse_slots(self.fmt.empty_subblock(tgt)).copy()
                nslots[:cap] = slots[:cap]
                self.storage.free_subblock(level, sb)
                plevel, psb = path[-2]
                pslots = self._read_slots(plevel, psb).copy()
                pslots[caps[plevel] - 1] = encode_pointer(tgt, nsb)
                self._write_slots(plevel, psb, pslots)
                path[-1] = (tgt, nsb)
                level, sb, slots = tgt, nsb, nslots
            else:
                # Link: displace the last entry into a new higher-level
                # sub-block and leave a pointer behind.
                tgt = min(level + 1, top)
                nsb = self.storage.allocate_subblock(tgt)
                displaced = slots[cap - 1]
                slots[cap - 1] = encode_pointer(tgt, nsb)
                self._write_slots(level, sb, slots)
                nslots = self.fmt.parse_slots(self.fmt.empty_subblock(tgt)).copy()
                nslots[0] = displaced
                used = 1
                path.append((tgt, nsb))
                level, sb, slots = tgt, nsb, nslots
        self._write_slots(level, sb, slots)
        self._tails[local] = (path, used)

    # -- retrieval --------------------------------------------------------------

    def _get_adjacency(self, vertex: int) -> np.ndarray:
        try:
            local = self.id_map.to_local(vertex)
        except ConfigError:
            return np.empty(0, dtype=np.int64)  # not owned by this node
        parts: list[np.ndarray] = []
        level, sb = 0, local
        hops = 0
        while True:
            slots = self._read_slots(level, sb)
            last = int(slots[-1])
            if is_pointer(last):
                parts.append(slots[:-1])
                level, sb = decode_pointer(last)
                hops += 1
                if hops > 1 << 20:
                    raise GraphStorageException(f"runaway chain for vertex {vertex}")
            else:
                parts.append(slots)
                break
        flat = np.concatenate(parts)
        return flat[flat != EMPTY_SLOT].astype(np.int64)

    # -- prefetch (the §4.2 future-work optimization) ---------------------------------

    def prefetch_fringe(self, vertices) -> int:
        """Prefetch the level-0 blocks of a fringe, sorted by file offset.

        Implements the optimization the paper leaves as future work:
        "introducing some pre-fetching of the adjacency lists of the
        vertices in the frontier ... sorting the pre-fetch disk accesses by
        file offsets to reduce the seek overhead."  Sorting turns the
        fringe's scattered block reads into ascending-offset runs, so
        adjacent blocks coalesce into sequential device access.  Returns
        the number of blocks fetched.
        """
        blocks = set()
        for v in np.asarray(vertices, dtype=np.int64):
            try:
                local = self.id_map.to_local(int(v))
            except ConfigError:
                continue
            _, _, block, _ = self.fmt.locate(0, local)
            blocks.add(block)
        # Global block index sorts by (file, offset), so ascending order
        # coalesces adjacent blocks into sequential device reads.
        for block in sorted(blocks):
            self.storage._read_block(0, block)
        return len(blocks)

    # -- maintenance ------------------------------------------------------------------

    def _rebuild_known_locals(self) -> None:
        """Recover the set of stored vertices by scanning level-0 blocks."""
        k = self.fmt.subblocks_per_block(0)
        for level, block in sorted(self.storage._written_blocks):
            if level != 0:
                continue
            slots = self.fmt.parse_slots(self.storage._read_block(0, block))
            d0 = self.fmt.capacities[0]
            for i in range(k):
                sub = slots[i * d0 : (i + 1) * d0]
                if bool(np.any(sub != EMPTY_SLOT)):
                    self._known_locals.add(block * k + i)

    def chain_of(self, vertex: int) -> list[tuple[int, int]]:
        """The (level, sub-block) chain of ``vertex`` — for tests/defrag."""
        return list(self._walk(self.id_map.to_local(vertex))[0])

    def known_vertices(self) -> list[int]:
        """Global ids of all vertices this instance has stored edges for."""
        return sorted(self.id_map.to_global(loc) for loc in self._known_locals)

    def local_vertices(self) -> np.ndarray:
        return np.array(self.known_vertices(), dtype=np.int64)

    def invalidate_tail_memo(self, vertex: int | None = None) -> None:
        if vertex is None:
            self._tails.clear()
        else:
            self._tails.pop(self.id_map.to_local(vertex), None)

    def flush(self) -> None:
        self.storage.flush()

    @property
    def cache_stats(self):
        return self.storage.cache.stats
