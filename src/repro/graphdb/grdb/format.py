"""grDB on-disk format: level geometry, slot encoding, sub-block addressing.

From §3.4.1 and §4.1.6 of the paper:

* A grDB instance has ``L`` levels; the sub-blocks of level ``l`` hold up to
  ``d_l`` adjacent vertices, with ``d_l >= 2 * d_{l-1}`` — exponentially
  growing capacities matched to the power-law degree distribution.  The
  prototype used ``d = (2, 4, 16, 256, 4K, 16K)``.
* Every slot is a ``b``-byte integer (``b = 8``) whose **3 most significant
  bits are reserved**: ``000`` marks a plain vertex id (so ids reach
  ``2^61``, "sufficient for graphs with up to 2 quintillion vertices"),
  ``100`` marks a pointer into a higher-degree storage file, and ``111``
  (the all-ones word) marks an empty slot.
* Sub-blocks pack ``k_l`` to a block of ``B_l = k_l * b * d_l`` bytes
  (4 KB for the first four levels, then 32 KB and 256 KB); blocks pack
  ``N_l = M / B_l`` to a file of at most ``M`` bytes (prototype: 256 MB).
* Sub-block ``s`` of level ``l`` therefore lives in block ``s / k_l``,
  which is in file ``s / k_l / N_l`` at byte offset
  ``B_l * ((s / k_l) % N_l) + b * d_l * (s % k_l)`` — the paper's modulo
  arithmetic, implemented verbatim in :meth:`GrDBFormat.locate`.

With ``compress=True`` the geometry (levels, block sizes, addressing) is
unchanged but each sub-block's *interior* becomes a delta+varint frame
instead of raw slot words::

    count u16 LE | varint delta stream | zero padding | tail slot u64 LE

The tail slot keeps the raw format's semantics exactly — ``EMPTY_SLOT``
terminates the chain, a pointer word continues it — so chain walking,
defragmentation, the superblock, and the WAL are format-agnostic.  The
count ``0xFFFF`` is the never-written sentinel (all-0xFF fill decodes as an
empty sub-block).  Neighbors inside one sub-block are strictly sorted;
duplicate edges spill to the next sub-block of the chain, preserving the
stored multiset.  A sub-block of ``d_l`` slots thus offers
``8 * d_l - 10`` payload bytes, which small gap varints fill with several
times ``d_l`` neighbors — shorter chains, fewer blocks per vertex, fewer
bytes moved per device read.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

import numpy as np

from ...util.errors import ConfigError, GraphStorageException
from ...util.varint import decode_sorted, encode_sorted

__all__ = [
    "GrDBFormat",
    "SLOT_BYTES",
    "EMPTY_SLOT",
    "MAX_VERTEX_ID",
    "COMPRESSED_COUNT_CAP",
    "encode_pointer",
    "decode_pointer",
    "is_pointer",
    "is_empty",
]

SLOT_BYTES = 8
#: All-ones slot = empty (tag bits 111).
EMPTY_SLOT = (1 << 64) - 1
#: Plain vertex ids keep the top 3 bits clear.
MAX_VERTEX_ID = (1 << 61) - 1

#: Compressed sub-blocks: never-written (all-0xFF) count sentinel, and the
#: per-sub-block entry cap that keeps every real count below it.
_COUNT_EMPTY = 0xFFFF
COMPRESSED_COUNT_CAP = 0xFFFE
_COUNT_STRUCT = struct.Struct("<H")
_TAIL_STRUCT = struct.Struct("<Q")

_PTR_TAG = 0b100 << 61
_TAG_MASK = 0b111 << 61
_LEVEL_SHIFT = 56
_LEVEL_MASK = 0x1F << _LEVEL_SHIFT
_INDEX_MASK = (1 << _LEVEL_SHIFT) - 1


def encode_pointer(level: int, subblock: int) -> int:
    """Pack a (level, sub-block index) pointer into one slot word."""
    if not 0 <= level < 32:
        raise ConfigError(f"pointer level {level} out of range")
    if not 0 <= subblock <= _INDEX_MASK:
        raise ConfigError(f"pointer sub-block index {subblock} out of range")
    return _PTR_TAG | (level << _LEVEL_SHIFT) | subblock


def decode_pointer(slot: int) -> tuple[int, int]:
    if not is_pointer(slot):
        raise ConfigError(f"slot 0x{slot:016x} is not a pointer")
    return (slot & _LEVEL_MASK) >> _LEVEL_SHIFT, slot & _INDEX_MASK


def is_pointer(slot: int) -> bool:
    return (slot & _TAG_MASK) == _PTR_TAG


def is_empty(slot: int) -> bool:
    return slot == EMPTY_SLOT


@dataclass(frozen=True)
class GrDBFormat:
    """Level geometry of one grDB instance (validated at construction)."""

    #: Sub-block capacities d_l, in adjacent vertices.
    capacities: tuple[int, ...] = (2, 4, 16, 256, 4096, 16384)
    #: Block size B_l per level, in bytes.
    block_sizes: tuple[int, ...] = (4096, 4096, 4096, 4096, 32768, 262144)
    #: Maximum storage file size M, in bytes (prototype: 256 MB; scaled
    #: experiments shrink it to keep many files in play).
    max_file_bytes: int = 256 << 20
    #: Delta+varint compressed sub-block interiors (see module doc).  Part
    #: of the format — a store written one way must be reopened the same
    #: way, which the superblock enforces.
    compress: bool = False

    def __post_init__(self):
        if not self.capacities:
            raise ConfigError("grDB needs at least one level")
        if len(self.block_sizes) != len(self.capacities):
            raise ConfigError(
                f"{len(self.capacities)} levels but {len(self.block_sizes)} block sizes"
            )
        prev = None
        for lvl, (d, B) in enumerate(zip(self.capacities, self.block_sizes)):
            if d < 2:
                raise ConfigError(f"level {lvl} capacity {d} must be >= 2")
            if prev is not None and d < 2 * prev:
                raise ConfigError(
                    f"level {lvl} capacity {d} violates d_l >= 2*d_(l-1) (prev {prev})"
                )
            sub = d * SLOT_BYTES
            if B % sub != 0:
                raise ConfigError(
                    f"level {lvl}: block size {B} not a multiple of sub-block size {sub}"
                )
            if self.max_file_bytes < B:
                raise ConfigError(
                    f"level {lvl}: max file size {self.max_file_bytes} smaller than one block"
                )
            prev = d

    # -- derived geometry --------------------------------------------------

    @property
    def num_levels(self) -> int:
        return len(self.capacities)

    def subblock_bytes(self, level: int) -> int:
        return self.capacities[level] * SLOT_BYTES

    def subblocks_per_block(self, level: int) -> int:
        """k_l."""
        return self.block_sizes[level] // self.subblock_bytes(level)

    def blocks_per_file(self, level: int) -> int:
        """N_l."""
        return self.max_file_bytes // self.block_sizes[level]

    def locate(self, level: int, subblock: int) -> tuple[int, int, int, int]:
        """Address sub-block ``s``: (file index, byte offset, block index, slot offset).

        ``block index`` is global across files (``s // k_l``); the byte
        offset is within the file, per the paper's formula.
        """
        k = self.subblocks_per_block(level)
        N = self.blocks_per_file(level)
        B = self.block_sizes[level]
        block = subblock // k
        file_idx = block // N
        offset = B * (block % N) + self.subblock_bytes(level) * (subblock % k)
        return file_idx, offset, block, offset % B

    def total_chain_capacity(self) -> int:
        """Vertices storable in one maximal level-0..top chain (link policy),
        accounting for one pointer slot in every non-terminal sub-block."""
        caps = self.capacities
        return sum(d - 1 for d in caps[:-1]) + caps[-1]

    def empty_subblock(self, level: int) -> bytes:
        return b"\xff" * self.subblock_bytes(level)

    def empty_block(self, level: int) -> bytes:
        return b"\xff" * self.block_sizes[level]

    @staticmethod
    def parse_slots(data: bytes) -> np.ndarray:
        """Decode a sub-block's raw bytes into uint64 slot words."""
        return np.frombuffer(data, dtype="<u8")

    @staticmethod
    def pack_slots(slots: np.ndarray) -> bytes:
        return np.ascontiguousarray(slots.astype("<u8")).tobytes()

    # -- compressed sub-block frame (compress=True) -------------------------

    def payload_bytes(self, level: int) -> int:
        """Varint payload budget of one compressed sub-block: everything
        between the u16 count header and the reserved u64 tail slot."""
        return self.subblock_bytes(level) - _COUNT_STRUCT.size - _TAIL_STRUCT.size

    def encode_subblock(self, level: int, values: np.ndarray, tail_slot: int) -> bytes:
        """Frame a strictly sorted neighbor list (+ tail slot) for ``level``."""
        n = len(values)
        if n > COMPRESSED_COUNT_CAP:
            raise GraphStorageException(
                f"{n} neighbors exceed one compressed sub-block's count cap"
            )
        payload = encode_sorted(values)
        budget = self.payload_bytes(level)
        if len(payload) > budget:
            raise GraphStorageException(
                f"compressed payload of {len(payload)} bytes overflows the "
                f"{budget}-byte budget of a level-{level} sub-block"
            )
        return (
            _COUNT_STRUCT.pack(n)
            + payload
            + b"\x00" * (budget - len(payload))
            + _TAIL_STRUCT.pack(tail_slot)
        )

    def decode_subblock(self, data: bytes) -> tuple[np.ndarray, int, int]:
        """Unframe one compressed sub-block: ``(values, tail slot, consumed)``.

        ``consumed`` is the varint byte count actually decoded (the unit the
        CPU model charges).  An all-0xFF (never written) sub-block decodes
        to an empty list with an ``EMPTY_SLOT`` tail.  Truncated or
        non-monotone streams raise :class:`GraphStorageException`.
        """
        (n,) = _COUNT_STRUCT.unpack_from(data)
        (tail,) = _TAIL_STRUCT.unpack_from(data, len(data) - _TAIL_STRUCT.size)
        if n == _COUNT_EMPTY or n == 0:
            return np.empty(0, dtype=np.uint64), tail, 0
        values, consumed = decode_sorted(
            data[_COUNT_STRUCT.size : len(data) - _TAIL_STRUCT.size],
            n,
            what="grDB sub-block delta stream",
        )
        if int(values[-1]) > MAX_VERTEX_ID:
            raise GraphStorageException(
                f"corrupt grDB sub-block: decoded neighbor {int(values[-1])} "
                "exceeds the 61-bit vertex id space"
            )
        return values, tail, consumed
