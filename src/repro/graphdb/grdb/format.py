"""grDB on-disk format: level geometry, slot encoding, sub-block addressing.

From §3.4.1 and §4.1.6 of the paper:

* A grDB instance has ``L`` levels; the sub-blocks of level ``l`` hold up to
  ``d_l`` adjacent vertices, with ``d_l >= 2 * d_{l-1}`` — exponentially
  growing capacities matched to the power-law degree distribution.  The
  prototype used ``d = (2, 4, 16, 256, 4K, 16K)``.
* Every slot is a ``b``-byte integer (``b = 8``) whose **3 most significant
  bits are reserved**: ``000`` marks a plain vertex id (so ids reach
  ``2^61``, "sufficient for graphs with up to 2 quintillion vertices"),
  ``100`` marks a pointer into a higher-degree storage file, and ``111``
  (the all-ones word) marks an empty slot.
* Sub-blocks pack ``k_l`` to a block of ``B_l = k_l * b * d_l`` bytes
  (4 KB for the first four levels, then 32 KB and 256 KB); blocks pack
  ``N_l = M / B_l`` to a file of at most ``M`` bytes (prototype: 256 MB).
* Sub-block ``s`` of level ``l`` therefore lives in block ``s / k_l``,
  which is in file ``s / k_l / N_l`` at byte offset
  ``B_l * ((s / k_l) % N_l) + b * d_l * (s % k_l)`` — the paper's modulo
  arithmetic, implemented verbatim in :meth:`GrDBFormat.locate`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...util.errors import ConfigError

__all__ = [
    "GrDBFormat",
    "SLOT_BYTES",
    "EMPTY_SLOT",
    "MAX_VERTEX_ID",
    "encode_pointer",
    "decode_pointer",
    "is_pointer",
    "is_empty",
]

SLOT_BYTES = 8
#: All-ones slot = empty (tag bits 111).
EMPTY_SLOT = (1 << 64) - 1
#: Plain vertex ids keep the top 3 bits clear.
MAX_VERTEX_ID = (1 << 61) - 1

_PTR_TAG = 0b100 << 61
_TAG_MASK = 0b111 << 61
_LEVEL_SHIFT = 56
_LEVEL_MASK = 0x1F << _LEVEL_SHIFT
_INDEX_MASK = (1 << _LEVEL_SHIFT) - 1


def encode_pointer(level: int, subblock: int) -> int:
    """Pack a (level, sub-block index) pointer into one slot word."""
    if not 0 <= level < 32:
        raise ConfigError(f"pointer level {level} out of range")
    if not 0 <= subblock <= _INDEX_MASK:
        raise ConfigError(f"pointer sub-block index {subblock} out of range")
    return _PTR_TAG | (level << _LEVEL_SHIFT) | subblock


def decode_pointer(slot: int) -> tuple[int, int]:
    if not is_pointer(slot):
        raise ConfigError(f"slot 0x{slot:016x} is not a pointer")
    return (slot & _LEVEL_MASK) >> _LEVEL_SHIFT, slot & _INDEX_MASK


def is_pointer(slot: int) -> bool:
    return (slot & _TAG_MASK) == _PTR_TAG


def is_empty(slot: int) -> bool:
    return slot == EMPTY_SLOT


@dataclass(frozen=True)
class GrDBFormat:
    """Level geometry of one grDB instance (validated at construction)."""

    #: Sub-block capacities d_l, in adjacent vertices.
    capacities: tuple[int, ...] = (2, 4, 16, 256, 4096, 16384)
    #: Block size B_l per level, in bytes.
    block_sizes: tuple[int, ...] = (4096, 4096, 4096, 4096, 32768, 262144)
    #: Maximum storage file size M, in bytes (prototype: 256 MB; scaled
    #: experiments shrink it to keep many files in play).
    max_file_bytes: int = 256 << 20

    def __post_init__(self):
        if not self.capacities:
            raise ConfigError("grDB needs at least one level")
        if len(self.block_sizes) != len(self.capacities):
            raise ConfigError(
                f"{len(self.capacities)} levels but {len(self.block_sizes)} block sizes"
            )
        prev = None
        for lvl, (d, B) in enumerate(zip(self.capacities, self.block_sizes)):
            if d < 2:
                raise ConfigError(f"level {lvl} capacity {d} must be >= 2")
            if prev is not None and d < 2 * prev:
                raise ConfigError(
                    f"level {lvl} capacity {d} violates d_l >= 2*d_(l-1) (prev {prev})"
                )
            sub = d * SLOT_BYTES
            if B % sub != 0:
                raise ConfigError(
                    f"level {lvl}: block size {B} not a multiple of sub-block size {sub}"
                )
            if self.max_file_bytes < B:
                raise ConfigError(
                    f"level {lvl}: max file size {self.max_file_bytes} smaller than one block"
                )
            prev = d

    # -- derived geometry --------------------------------------------------

    @property
    def num_levels(self) -> int:
        return len(self.capacities)

    def subblock_bytes(self, level: int) -> int:
        return self.capacities[level] * SLOT_BYTES

    def subblocks_per_block(self, level: int) -> int:
        """k_l."""
        return self.block_sizes[level] // self.subblock_bytes(level)

    def blocks_per_file(self, level: int) -> int:
        """N_l."""
        return self.max_file_bytes // self.block_sizes[level]

    def locate(self, level: int, subblock: int) -> tuple[int, int, int, int]:
        """Address sub-block ``s``: (file index, byte offset, block index, slot offset).

        ``block index`` is global across files (``s // k_l``); the byte
        offset is within the file, per the paper's formula.
        """
        k = self.subblocks_per_block(level)
        N = self.blocks_per_file(level)
        B = self.block_sizes[level]
        block = subblock // k
        file_idx = block // N
        offset = B * (block % N) + self.subblock_bytes(level) * (subblock % k)
        return file_idx, offset, block, offset % B

    def total_chain_capacity(self) -> int:
        """Vertices storable in one maximal level-0..top chain (link policy),
        accounting for one pointer slot in every non-terminal sub-block."""
        caps = self.capacities
        return sum(d - 1 for d in caps[:-1]) + caps[-1]

    def empty_subblock(self, level: int) -> bytes:
        return b"\xff" * self.subblock_bytes(level)

    def empty_block(self, level: int) -> bytes:
        return b"\xff" * self.block_sizes[level]

    @staticmethod
    def parse_slots(data: bytes) -> np.ndarray:
        """Decode a sub-block's raw bytes into uint64 slot words."""
        return np.frombuffer(data, dtype="<u8")

    @staticmethod
    def pack_slots(slots: np.ndarray) -> bytes:
        return np.ascontiguousarray(slots.astype("<u8")).tobytes()
