"""grDB storage component: multi-level block files + block cache.

One :class:`GrDBStorage` owns, per level, a growing set of block devices
(one per storage file, capped at ``M`` bytes each) and routes every
sub-block read/write through a single shared :class:`LRUBlockCache` keyed
by ``(level, global block index)`` — the "block cache component" of
§3.4.1.  Blocks are the unit of I/O: touching any sub-block moves its whole
block, which is exactly the locality bet the format makes for scale-free
adjacency lists.

Never-written blocks read back as empty-slot fill (0xFF) without touching
the device, modeling the sparse/preallocated level-0 file.
"""

from __future__ import annotations

from typing import Callable

from ...simcluster.disk import BlockDevice
from ...storage.blockcache import LRUBlockCache
from ...util.errors import ConfigError, GraphStorageException
from .format import GrDBFormat

__all__ = ["GrDBStorage"]


class GrDBStorage:
    """Multi-level block files + shared block cache (the storage component)."""

    def __init__(
        self,
        fmt: GrDBFormat,
        device_provider: Callable[[str], BlockDevice],
        cache_blocks: int = 256,
        name: str = "grdb",
    ):
        self.fmt = fmt
        self._provider = device_provider
        self._name = name
        self._files: dict[tuple[int, int], BlockDevice] = {}
        self._written_blocks: set[tuple[int, int]] = set()
        # Free lists and bump allocators, per level (level 0 is id-addressed
        # and has no allocator).
        self._next_subblock = [0] * fmt.num_levels
        self._free: list[list[int]] = [[] for _ in range(fmt.num_levels)]
        self.cache = LRUBlockCache(cache_blocks, writer=self._write_block_through)

    # -- file / block plumbing ---------------------------------------------

    def _device(self, level: int, file_idx: int) -> BlockDevice:
        key = (level, file_idx)
        dev = self._files.get(key)
        if dev is None:
            dev = self._provider(f"{self._name}_L{level}_F{file_idx}")
            self._files[key] = dev
        return dev

    def _block_location(self, level: int, block: int) -> tuple[BlockDevice, int]:
        N = self.fmt.blocks_per_file(level)
        file_idx, in_file = divmod(block, N)
        return self._device(level, file_idx), in_file * self.fmt.block_sizes[level]

    def _write_block_through(self, key: tuple[int, int], data: bytes) -> None:
        level, block = key
        dev, offset = self._block_location(level, block)
        dev.write(offset, data)

    def _read_block(self, level: int, block: int) -> bytes:
        key = (level, block)
        data = self.cache.get(key)
        if data is not None:
            return data
        if key not in self._written_blocks:
            data = self.fmt.empty_block(level)
        else:
            dev, offset = self._block_location(level, block)
            data = dev.read(offset, self.fmt.block_sizes[level])
        self.cache.put(key, data)
        return data

    def read_block_batch(self, level: int, blocks) -> dict[int, bytes]:
        """Fetch many blocks of one level through the cache in one pass.

        Blocks are visited in ascending global index order — which is
        ``(file, offset)`` order — and every maximal run of *adjacent*
        missing blocks within one file is fetched by a single vectored
        device read (:meth:`BlockDevice.readv`), so a sorted fringe plan
        pays one seek per run instead of one per block.  Cache hit/miss
        accounting is identical to per-block reads; never-written blocks
        come back as empty-slot fill without touching the device.
        """
        out: dict[int, bytes] = {}
        missing: list[int] = []
        # Cap cache insertions at capacity: a batch larger than the cache
        # would otherwise evict earlier blocks of this very batch (forcing
        # dirty write-backs mid-read) with none of them surviving anyway.
        budget = self.cache.capacity
        for block in sorted(set(int(b) for b in blocks)):
            key = (level, block)
            data = self.cache.get(key)
            if data is not None:
                out[block] = data
            elif key not in self._written_blocks:
                data = self.fmt.empty_block(level)
                out[block] = data
                if budget > 0:
                    budget -= 1
                    self.cache.put(key, data)
            else:
                missing.append(block)
        if missing:
            B = self.fmt.block_sizes[level]
            N = self.fmt.blocks_per_file(level)
            per_file: dict[int, list[int]] = {}
            for block in missing:  # already sorted ascending
                per_file.setdefault(block // N, []).append(block)
            for file_idx, file_blocks in per_file.items():
                dev = self._device(level, file_idx)
                datas = dev.readv([((b % N) * B, B) for b in file_blocks])
                for block, data in zip(file_blocks, datas):
                    out[block] = data
                    if budget > 0:
                        budget -= 1
                        self.cache.put((level, block), data)
        return out

    def prefetch_blocks(self, level: int, blocks) -> int:
        """Warm the cache with ``blocks`` (coalesced); returns blocks planned.

        The public face of the §4.2 offset-sorted prefetch: blocks already
        cached cost nothing, the rest arrive through the same coalescing
        planner as demand reads and are counted in ``cache.stats.prefetched``.
        The plan is capped at the cache capacity (warming more would only
        evict this plan's own earlier blocks), and only blocks actually
        resident afterwards count as prefetched.  The return value is the
        number of distinct blocks requested (warm or cold), so callers can
        reason about fringe locality.
        """
        wanted = sorted(set(int(b) for b in blocks))
        todo = [b for b in wanted if (level, b) not in self.cache]
        todo = todo[: self.cache.capacity]
        if todo:
            self.read_block_batch(level, todo)
            self.cache.stats.prefetched += sum(
                1 for b in todo if (level, b) in self.cache
            )
        return len(wanted)

    def _write_block(self, level: int, block: int, data: bytes) -> None:
        key = (level, block)
        self._written_blocks.add(key)
        if self.cache.capacity > 0:
            self.cache.put(key, data, dirty=True)
        else:
            self._write_block_through(key, data)

    # -- sub-block API ---------------------------------------------------------

    def read_subblock(self, level: int, subblock: int) -> bytes:
        self._check(level, subblock)
        _, _, block, slot_off = self.fmt.locate(level, subblock)
        data = self._read_block(level, block)
        return data[slot_off : slot_off + self.fmt.subblock_bytes(level)]

    def write_subblock(self, level: int, subblock: int, data: bytes) -> None:
        self._check(level, subblock)
        sub_bytes = self.fmt.subblock_bytes(level)
        if len(data) != sub_bytes:
            raise GraphStorageException(
                f"sub-block write of {len(data)} bytes != {sub_bytes} at level {level}"
            )
        _, _, block, slot_off = self.fmt.locate(level, subblock)
        buf = bytearray(self._read_block(level, block))
        buf[slot_off : slot_off + sub_bytes] = data
        self._write_block(level, block, bytes(buf))

    def _check(self, level: int, subblock: int) -> None:
        if not 0 <= level < self.fmt.num_levels:
            raise GraphStorageException(f"level {level} out of range")
        if subblock < 0:
            raise GraphStorageException(f"negative sub-block index {subblock}")

    # -- allocation ---------------------------------------------------------------

    def allocate_subblock(self, level: int) -> int:
        """Allocate a sub-block at ``level >= 1`` (freelist first, then bump)."""
        if level < 1:
            raise ConfigError("level-0 sub-blocks are addressed by vertex id, not allocated")
        if self._free[level]:
            return self._free[level].pop()
        sb = self._next_subblock[level]
        self._next_subblock[level] = sb + 1
        return sb

    def free_subblock(self, level: int, subblock: int) -> None:
        """Return an allocated sub-block (level >= 1) to its free list.

        Rejects ids that were never handed out and double frees: either
        would later make :meth:`allocate_subblock` hand the same sub-block
        to two owners, silently corrupting adjacency data.
        """
        if not 1 <= level < self.fmt.num_levels:
            raise GraphStorageException(
                f"cannot free sub-block at level {level}: levels 1.."
                f"{self.fmt.num_levels - 1} are allocated, level 0 is id-addressed"
            )
        if not 0 <= subblock < self._next_subblock[level]:
            raise GraphStorageException(
                f"cannot free never-allocated sub-block {subblock} at level "
                f"{level} (allocator high-water mark is {self._next_subblock[level]})"
            )
        if subblock in self._free[level]:
            raise GraphStorageException(
                f"double free of sub-block {subblock} at level {level}"
            )
        self._free[level].append(subblock)

    def allocated_subblocks(self, level: int) -> int:
        return self._next_subblock[level] - len(self._free[level])

    # -- lifecycle / stats -----------------------------------------------------------

    def flush(self) -> None:
        self.cache.flush()
        from .superblock import save_superblock

        save_superblock(self._provider(f"{self._name}_super"), self)

    def restore(self) -> bool:
        """Adopt persisted bookkeeping from this instance's superblock.

        Returns False when no superblock exists (fresh instance); raises
        when one exists but disagrees with the configured format.
        """
        from .superblock import load_superblock

        dev = self._provider(f"{self._name}_super")
        if dev.size() == 0:
            return False
        state = load_superblock(dev)
        if state["format"] != self.fmt:
            raise GraphStorageException(
                "superblock format differs from the configured GrDBFormat; "
                f"on disk: {state['format']}, configured: {self.fmt}"
            )
        # The cache may hold blocks (dirty ones, even) from before the
        # restore; they describe the pre-restore image, so flushing them
        # would corrupt the state just adopted.  Discard, don't flush.
        self.cache.drop()
        self._next_subblock = list(state["next_subblock"])
        self._free = [list(f) for f in state["free"]]
        self._written_blocks = set(state["written_blocks"])
        return True

    def total_device_stats(self) -> dict[str, int]:
        reads = writes = bytes_read = bytes_written = seeks = 0
        for dev in self._files.values():
            reads += dev.stats.reads
            writes += dev.stats.writes
            bytes_read += dev.stats.bytes_read
            bytes_written += dev.stats.bytes_written
            seeks += dev.stats.seeks
        return {
            "reads": reads,
            "writes": writes,
            "bytes_read": bytes_read,
            "bytes_written": bytes_written,
            "seeks": seeks,
            "files": len(self._files),
        }
