"""grDB storage component: multi-level block files + block cache.

One :class:`GrDBStorage` owns, per level, a growing set of block devices
(one per storage file, capped at ``M`` bytes each) and routes every
sub-block read/write through a single shared :class:`LRUBlockCache` keyed
by ``(level, global block index)`` — the "block cache component" of
§3.4.1.  Blocks are the unit of I/O: touching any sub-block moves its whole
block, which is exactly the locality bet the format makes for scale-free
adjacency lists.

Never-written blocks read back as empty-slot fill (0xFF) without touching
the device, modeling the sparse/preallocated level-0 file.

With ``integrity=True`` (the checksummed deployment mode), :meth:`flush`
becomes crash-consistent: the dirty set and the new superblock image are
journaled to a write-ahead log (``<name>_wal``) *before* any in-place
write, so a torn flush either never committed (the WAL commit record is
absent or CRC-bad — recovery discards it and the old image stands) or
rolls forward (recovery replays the journaled spans and superblock).
"""

from __future__ import annotations

import struct
from typing import Callable

from ...simcluster.disk import BlockDevice, MemoryBacking
from ...storage.blockcache import SharedBlockCache, make_block_cache
from ...util.errors import ConfigError, CorruptBlockError, GraphStorageException
from .format import GrDBFormat

__all__ = ["GrDBStorage"]

#: WAL commit record: magic, sequence number, span count, span-entry bytes,
#: superblock-image bytes.  Lives alone in the WAL's first 4 KiB frame and
#: is written *after* the body, so its presence (with a valid frame CRC)
#: is the commit point.
_WAL_HEADER = struct.Struct(">QQIQQ")
_WAL_SPAN = struct.Struct(">HIQQ")  # level, file index, device offset, length
_WAL_MAGIC = 0x6772444257414C31  # "grDBWAL1"
_WAL_FRAME = 4096


class GrDBStorage:
    """Multi-level block files + shared block cache (the storage component)."""

    def __init__(
        self,
        fmt: GrDBFormat,
        device_provider: Callable[[str], BlockDevice],
        cache_blocks: int = 256,
        name: str = "grdb",
        integrity: bool = False,
        shared_cache: SharedBlockCache | None = None,
    ):
        self.fmt = fmt
        self._provider = device_provider
        self._name = name
        self.integrity = integrity
        self._wal_seq = 0
        self._files: dict[tuple[int, int], BlockDevice] = {}
        self._written_blocks: set[tuple[int, int]] = set()
        # Free lists and bump allocators, per level (level 0 is id-addressed
        # and has no allocator).
        self._next_subblock = [0] * fmt.num_levels
        self._free: list[list[int]] = [[] for _ in range(fmt.num_levels)]
        # Private LRU (shared_cache=None, bit-identical to the historical
        # behavior) or an owner partition of the rank's shared pool.
        self.cache = make_block_cache(
            cache_blocks, writer=self._write_block_through, shared=shared_cache, owner=name
        )

    # -- file / block plumbing ---------------------------------------------

    def _device(self, level: int, file_idx: int) -> BlockDevice:
        key = (level, file_idx)
        dev = self._files.get(key)
        if dev is None:
            dev = self._provider(f"{self._name}_L{level}_F{file_idx}")
            self._files[key] = dev
        return dev

    def _block_location(self, level: int, block: int) -> tuple[BlockDevice, int]:
        N = self.fmt.blocks_per_file(level)
        file_idx, in_file = divmod(block, N)
        return self._device(level, file_idx), in_file * self.fmt.block_sizes[level]

    def _write_block_through(self, key: tuple[int, int], data: bytes) -> None:
        level, block = key
        dev, offset = self._block_location(level, block)
        dev.write(offset, data)

    def _read_block(self, level: int, block: int) -> bytes:
        key = (level, block)
        data = self.cache.get(key)
        if data is not None:
            return data
        if key not in self._written_blocks:
            data = self.fmt.empty_block(level)
        else:
            dev, offset = self._block_location(level, block)
            B = self.fmt.block_sizes[level]
            if offset + B > dev.size():
                # The superblock says this block was written, but the file
                # is too short to hold it.  Zero-padding the short read
                # would fabricate adjacency data, so fail loudly instead.
                raise CorruptBlockError(
                    dev.name, offset, B,
                    f"written block {block} of level {level} extends past "
                    f"the stored extent ({dev.size()} bytes) — truncated file?",
                )
            data = dev.read(offset, B)
        self.cache.put(key, data)
        return data

    def read_block_batch(self, level: int, blocks) -> dict[int, bytes]:
        """Fetch many blocks of one level through the cache in one pass.

        Blocks are visited in ascending global index order — which is
        ``(file, offset)`` order — and every maximal run of *adjacent*
        missing blocks within one file is fetched by a single vectored
        device read (:meth:`BlockDevice.readv`), so a sorted fringe plan
        pays one seek per run instead of one per block.  Cache hit/miss
        accounting is identical to per-block reads; never-written blocks
        come back as empty-slot fill without touching the device.
        """
        out: dict[int, bytes] = {}
        missing: list[int] = []
        # Cap cache insertions at the scan budget: a batch larger than that
        # would otherwise evict earlier blocks of this very batch (forcing
        # dirty write-backs mid-read) with none of them surviving anyway —
        # and, on a shared pool, would bulldoze other owners' and queries'
        # hot blocks (the budget is the probation segment there).
        budget = self.cache.scan_budget()
        for block in sorted(set(int(b) for b in blocks)):
            key = (level, block)
            data = self.cache.get(key)
            if data is not None:
                out[block] = data
            elif key not in self._written_blocks:
                data = self.fmt.empty_block(level)
                out[block] = data
                if budget > 0:
                    budget -= 1
                    self.cache.put(key, data)
            else:
                missing.append(block)
        if missing:
            B = self.fmt.block_sizes[level]
            N = self.fmt.blocks_per_file(level)
            per_file: dict[int, list[int]] = {}
            for block in missing:  # already sorted ascending
                per_file.setdefault(block // N, []).append(block)
            for file_idx, file_blocks in per_file.items():
                dev = self._device(level, file_idx)
                last_off = (file_blocks[-1] % N) * B  # ascending order
                if last_off + B > dev.size():
                    raise CorruptBlockError(
                        dev.name, last_off, B,
                        f"written block {file_blocks[-1]} of level {level} "
                        f"extends past the stored extent ({dev.size()} bytes)"
                        " — truncated file?",
                    )
                datas = dev.readv([((b % N) * B, B) for b in file_blocks])
                for block, data in zip(file_blocks, datas):
                    out[block] = data
                    if budget > 0:
                        budget -= 1
                        self.cache.put((level, block), data)
        return out

    def prefetch_blocks(self, level: int, blocks) -> int:
        """Warm the cache with ``blocks`` (coalesced); returns blocks planned.

        The public face of the §4.2 offset-sorted prefetch: blocks already
        cached cost nothing, the rest arrive through the same coalescing
        planner as demand reads and are counted in ``cache.stats.prefetched``.
        The plan is capped at the cache capacity (warming more would only
        evict this plan's own earlier blocks), and only blocks actually
        resident afterwards count as prefetched.  The return value is the
        number of distinct blocks requested (warm or cold), so callers can
        reason about fringe locality.
        """
        wanted = sorted(set(int(b) for b in blocks))
        todo = [b for b in wanted if (level, b) not in self.cache]
        # Plan at most one scan budget's worth: on a shared pool, several
        # queries prefetching concurrently must not evict each other's (or
        # their own) freshly warmed blocks, so the cap is per-pass, not
        # per-capacity.  ``prefetched`` still counts resident-only — blocks
        # the pass inserted but lost again before this check are excluded.
        todo = todo[: self.cache.scan_budget()]
        if todo:
            self.read_block_batch(level, todo)
            self.cache.stats.prefetched += sum(
                1 for b in todo if (level, b) in self.cache
            )
        return len(wanted)

    def _write_block(self, level: int, block: int, data: bytes) -> None:
        key = (level, block)
        self._written_blocks.add(key)
        if self.cache.capacity > 0:
            self.cache.put(key, data, dirty=True)
        else:
            self._write_block_through(key, data)

    # -- sub-block API ---------------------------------------------------------

    def read_subblock(self, level: int, subblock: int) -> bytes:
        self._check(level, subblock)
        _, _, block, slot_off = self.fmt.locate(level, subblock)
        data = self._read_block(level, block)
        return data[slot_off : slot_off + self.fmt.subblock_bytes(level)]

    def write_subblock(self, level: int, subblock: int, data: bytes) -> None:
        self._check(level, subblock)
        sub_bytes = self.fmt.subblock_bytes(level)
        if len(data) != sub_bytes:
            raise GraphStorageException(
                f"sub-block write of {len(data)} bytes != {sub_bytes} at level {level}"
            )
        _, _, block, slot_off = self.fmt.locate(level, subblock)
        buf = bytearray(self._read_block(level, block))
        buf[slot_off : slot_off + sub_bytes] = data
        self._write_block(level, block, bytes(buf))

    def _check(self, level: int, subblock: int) -> None:
        if not 0 <= level < self.fmt.num_levels:
            raise GraphStorageException(f"level {level} out of range")
        if subblock < 0:
            raise GraphStorageException(f"negative sub-block index {subblock}")

    # -- allocation ---------------------------------------------------------------

    def allocate_subblock(self, level: int) -> int:
        """Allocate a sub-block at ``level >= 1`` (freelist first, then bump)."""
        if level < 1:
            raise ConfigError("level-0 sub-blocks are addressed by vertex id, not allocated")
        if self._free[level]:
            return self._free[level].pop()
        sb = self._next_subblock[level]
        self._next_subblock[level] = sb + 1
        return sb

    def free_subblock(self, level: int, subblock: int) -> None:
        """Return an allocated sub-block (level >= 1) to its free list.

        Rejects ids that were never handed out and double frees: either
        would later make :meth:`allocate_subblock` hand the same sub-block
        to two owners, silently corrupting adjacency data.
        """
        if not 1 <= level < self.fmt.num_levels:
            raise GraphStorageException(
                f"cannot free sub-block at level {level}: levels 1.."
                f"{self.fmt.num_levels - 1} are allocated, level 0 is id-addressed"
            )
        if not 0 <= subblock < self._next_subblock[level]:
            raise GraphStorageException(
                f"cannot free never-allocated sub-block {subblock} at level "
                f"{level} (allocator high-water mark is {self._next_subblock[level]})"
            )
        if subblock in self._free[level]:
            raise GraphStorageException(
                f"double free of sub-block {subblock} at level {level}"
            )
        self._free[level].append(subblock)

    def allocated_subblocks(self, level: int) -> int:
        return self._next_subblock[level] - len(self._free[level])

    # -- lifecycle / stats -----------------------------------------------------------

    def _superblock_image(self) -> bytes:
        """Serialize the current superblock to bytes (no device I/O)."""
        from .superblock import save_superblock

        scratch = BlockDevice(MemoryBacking())
        save_superblock(scratch, self)
        return scratch.backing.read(0, scratch.size())

    def _publish_spans(self, dirty) -> list[tuple[int, int, int, bytes]]:
        """Turn the dirty block set into frame-aligned device write spans.

        Each span is ``(level, file_idx, device_offset, payload)`` with
        offset and length multiples of the 4 KiB checksum frame, so replay
        can overwrite torn frames blindly — an unaligned replay write would
        read-modify-write through the checksum layer and trip over the very
        frame it is trying to heal.  Touching spans within one file are
        merged; when the level's block size is not frame-aligned, the gap
        bytes come from a (verified) base read of the current content.
        """
        per_file: dict[tuple[int, int], list[tuple[int, bytes]]] = {}
        for (level, block), data in dirty:
            N = self.fmt.blocks_per_file(level)
            file_idx, in_file = divmod(block, N)
            per_file.setdefault((level, file_idx), []).append(
                (in_file * self.fmt.block_sizes[level], data)
            )
        spans: list[tuple[int, int, int, bytes]] = []
        for (level, file_idx), writes in sorted(per_file.items()):
            writes.sort()
            aligned = self.fmt.block_sizes[level] % _WAL_FRAME == 0
            intervals: list[list[int]] = []  # [start, end), frame-aligned
            for off, data in writes:
                start = (off // _WAL_FRAME) * _WAL_FRAME
                end = -(-(off + len(data)) // _WAL_FRAME) * _WAL_FRAME
                if intervals and start <= intervals[-1][1]:
                    intervals[-1][1] = max(intervals[-1][1], end)
                else:
                    intervals.append([start, end])
            dev = self._device(level, file_idx)
            for start, end in intervals:
                if aligned:
                    buf = bytearray(end - start)
                else:
                    buf = bytearray(dev.read(start, end - start))
                for off, data in writes:
                    if start <= off < end:
                        buf[off - start : off - start + len(data)] = data
                spans.append((level, file_idx, start, bytes(buf)))
        return spans

    def _wal_device(self) -> BlockDevice:
        return self._provider(f"{self._name}_wal")

    def flush(self) -> None:
        from .superblock import save_superblock

        if not self.integrity:
            self.cache.flush()
            save_superblock(self._provider(f"{self._name}_super"), self)
            return
        # Crash-consistent publish: journal the dirty spans and the new
        # superblock image, commit, then apply in place.  A crash before
        # the commit record lands leaves the old image authoritative; a
        # crash after it rolls forward on the next restore().
        spans = self._publish_spans(self.cache.dirty_items())
        super_img = self._superblock_image()
        entries = bytearray()
        for level, file_idx, off, payload in spans:
            entries += _WAL_SPAN.pack(level, file_idx, off, len(payload))
            entries += payload
        wal = self._wal_device()
        self._wal_seq += 1
        wal.write(_WAL_FRAME, bytes(entries) + super_img)  # body first...
        header = _WAL_HEADER.pack(
            _WAL_MAGIC, self._wal_seq, len(spans), len(entries), len(super_img)
        )
        wal.write(0, header.ljust(_WAL_FRAME, b"\x00"))  # ...commit second
        self.cache.flush()
        self._provider(f"{self._name}_super").write(0, super_img)
        wal.truncate(0)

    def _replay_wal(self) -> None:
        """Recover from a torn flush: roll a committed WAL forward, discard
        an uncommitted one.  Idempotent; no-op when the WAL is empty."""
        wal = self._wal_device()
        if wal.size() == 0:
            return
        try:
            header = wal.read(0, _WAL_FRAME)
            magic, seq, n_spans, entries_bytes, super_bytes = _WAL_HEADER.unpack_from(
                header
            )
            if magic != _WAL_MAGIC:
                # Crash before the commit record: the flush never happened.
                wal.truncate(0)
                return
            body = wal.read(_WAL_FRAME, entries_bytes + super_bytes)
        except CorruptBlockError:
            # The commit record (or the body behind it) is itself torn:
            # the flush never committed, so the old image stands.
            wal.truncate(0)
            return
        entries, super_img = body[:entries_bytes], body[entries_bytes:]
        off = 0
        for _ in range(n_spans):
            level, file_idx, dev_off, length = _WAL_SPAN.unpack_from(entries, off)
            off += _WAL_SPAN.size
            self._device(level, file_idx).write(dev_off, entries[off : off + length])
            off += length
        self._provider(f"{self._name}_super").write(0, super_img)
        self._wal_seq = seq
        wal.truncate(0)

    def restore(self) -> bool:
        """Adopt persisted bookkeeping from this instance's superblock.

        Returns False when no superblock exists (fresh instance); raises
        when one exists but disagrees with the configured format, or when
        the adopted block map points past the stored device extents (a
        truncated or swapped level file — better a clear error here than
        fabricated adjacency data mid-query).  With ``integrity=True`` a
        pending write-ahead log is replayed (or discarded) first, so a
        process killed mid-:meth:`flush` reopens onto a consistent image.
        """
        from .superblock import load_superblock

        if self.integrity:
            self._replay_wal()
        dev = self._provider(f"{self._name}_super")
        if dev.size() == 0:
            return False
        state = load_superblock(dev)
        if state["format"] != self.fmt:
            raise GraphStorageException(
                "superblock format differs from the configured GrDBFormat; "
                f"on disk: {state['format']}, configured: {self.fmt}"
            )
        # The cache may hold blocks (dirty ones, even) from before the
        # restore; they describe the pre-restore image, so flushing them
        # would corrupt the state just adopted.  Discard, don't flush.
        self.cache.drop()
        self._next_subblock = list(state["next_subblock"])
        self._free = [list(f) for f in state["free"]]
        self._written_blocks = set(state["written_blocks"])
        # Cross-check the block map against what the devices actually hold:
        # a written block past a file's extent would otherwise surface much
        # later as a zero-padded read masquerading as adjacency data.
        worst: dict[tuple[int, int], int] = {}
        for level, block in self._written_blocks:
            file_idx = block // self.fmt.blocks_per_file(level)
            worst[(level, file_idx)] = max(worst.get((level, file_idx), -1), block)
        for (level, file_idx), block in sorted(worst.items()):
            dev, offset = self._block_location(level, block)
            B = self.fmt.block_sizes[level]
            if offset + B > dev.size():
                raise GraphStorageException(
                    f"superblock lists block {block} of level {level} as "
                    f"written, but device {dev.name!r} holds only "
                    f"{dev.size()} bytes (needs {offset + B}) — truncated "
                    "or mismatched level file"
                )
        return True

    def total_device_stats(self) -> dict[str, int]:
        reads = writes = bytes_read = bytes_written = seeks = 0
        for dev in self._files.values():
            reads += dev.stats.reads
            writes += dev.stats.writes
            bytes_read += dev.stats.bytes_read
            bytes_written += dev.stats.bytes_written
            seeks += dev.stats.seeks
        return {
            "reads": reads,
            "writes": writes,
            "bytes_read": bytes_read,
            "bytes_written": bytes_written,
            "seeks": seeks,
            "files": len(self._files),
        }
