"""grDB superblock: persistence of instance metadata.

A grDB instance's data lives in its level files, but three pieces of
bookkeeping must survive a restart: the format geometry (so a reopen can
verify it), the per-level allocation state (bump pointers + free lists),
and the set of blocks ever written (blocks inside a file's extent that
were never written read back as zeroes, which must not be confused with
vertex id 0 — written blocks are always full-block EMPTY-initialized).

The superblock serializes to its own small device (``grdb_super``) with a
checksummed binary layout:

    magic u32 | version u16 | num_levels u16 | M u64
    [version 2 only] flags u16  (bit 0: compressed sub-block interiors)
    per level: capacity u32 | block_size u32
    per level: next_subblock u64 | nfree u32 | free entries u64...
    nwritten u32 | (level u16, block u64) entries...
    crc32 u32 over everything above

Uncompressed instances keep writing version 1, byte-identical to the
historical layout; ``compress=True`` bumps to version 2 and records the
flag, so reopening a compressed store with a raw-format configuration (or
vice versa) fails the format cross-check instead of mis-parsing sub-blocks.
"""

from __future__ import annotations

import struct
import zlib

from ...simcluster.disk import BlockDevice
from ...util.errors import GraphStorageException
from .format import GrDBFormat

__all__ = ["save_superblock", "load_superblock"]

_MAGIC = 0x67724442  # "grDB"
_VERSION = 1
_VERSION_COMPRESSED = 2
_FLAG_COMPRESS = 1
_HEADER = struct.Struct(">IHHQ")


def save_superblock(device: BlockDevice, storage) -> None:
    """Serialize a :class:`GrDBStorage`'s bookkeeping to ``device``."""
    fmt: GrDBFormat = storage.fmt
    out = bytearray()
    version = _VERSION_COMPRESSED if fmt.compress else _VERSION
    out += _HEADER.pack(_MAGIC, version, fmt.num_levels, fmt.max_file_bytes)
    if fmt.compress:
        out += struct.pack(">H", _FLAG_COMPRESS)
    for cap, bs in zip(fmt.capacities, fmt.block_sizes):
        out += struct.pack(">II", cap, bs)
    for level in range(fmt.num_levels):
        free = storage._free[level]
        out += struct.pack(">QI", storage._next_subblock[level], len(free))
        for sb in free:
            out += struct.pack(">Q", sb)
    written = sorted(storage._written_blocks)
    out += struct.pack(">I", len(written))
    for level, block in written:
        out += struct.pack(">HQ", level, block)
    out += struct.pack(">I", zlib.crc32(bytes(out)))
    device.write(0, struct.pack(">I", len(out)) + bytes(out))


def load_superblock(device: BlockDevice) -> dict:
    """Parse a superblock; returns the bookkeeping needed by GrDBStorage.

    Raises :class:`GraphStorageException` on bad magic, version, or CRC.
    """
    (length,) = struct.unpack(">I", device.read(0, 4))
    if length == 0 or length > 64 << 20:
        raise GraphStorageException(f"implausible superblock length {length}")
    raw = device.read(4, length)
    body, (crc,) = raw[:-4], struct.unpack(">I", raw[-4:])
    if zlib.crc32(body) != crc:
        raise GraphStorageException("superblock CRC mismatch (torn write?)")
    magic, version, num_levels, max_file_bytes = _HEADER.unpack_from(body)
    if magic != _MAGIC:
        raise GraphStorageException("not a grDB superblock (bad magic)")
    if version not in (_VERSION, _VERSION_COMPRESSED):
        raise GraphStorageException(f"unsupported superblock version {version}")
    off = _HEADER.size
    flags = 0
    if version == _VERSION_COMPRESSED:
        (flags,) = struct.unpack_from(">H", body, off)
        off += 2
    capacities, block_sizes = [], []
    for _ in range(num_levels):
        cap, bs = struct.unpack_from(">II", body, off)
        off += 8
        capacities.append(cap)
        block_sizes.append(bs)
    next_subblock, free = [], []
    for _ in range(num_levels):
        nxt, nfree = struct.unpack_from(">QI", body, off)
        off += 12
        entries = list(struct.unpack_from(f">{nfree}Q", body, off)) if nfree else []
        off += 8 * nfree
        next_subblock.append(nxt)
        free.append(entries)
    (nwritten,) = struct.unpack_from(">I", body, off)
    off += 4
    written = set()
    for _ in range(nwritten):
        level, block = struct.unpack_from(">HQ", body, off)
        off += 10
        written.add((level, block))
    return {
        "format": GrDBFormat(
            capacities=tuple(capacities),
            block_sizes=tuple(block_sizes),
            max_file_bytes=max_file_bytes,
            compress=bool(flags & _FLAG_COMPRESS),
        ),
        "next_subblock": next_subblock,
        "free": free,
        "written_blocks": written,
    }
