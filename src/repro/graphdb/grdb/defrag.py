"""Background defragmentation of link-policy chains (§3.4.1).

The link growth policy "creates fragmentation in the adjacency list"; the
paper proposes that "during 'idle' time, the grDB service can defragment
these multi-level adjacency lists in the background".  This module
implements that compaction: a fragmented chain

    L0[d0-1 entries, ptr] -> L1[d1-1, ptr] -> L2[...] -> ...

is rewritten as the minimal two-hop layout

    L0[d0-1 entries, ptr] -> Lk[everything else]

where ``k`` is the smallest level whose sub-block holds the remainder
(falling back to a chain of top-level sub-blocks for extreme hubs).  All
abandoned sub-blocks return to the per-level free lists.
"""

from __future__ import annotations

import numpy as np

from ...util.varint import split_sorted_fit
from .db import GrDB
from .format import COMPRESSED_COUNT_CAP, EMPTY_SLOT, encode_pointer

__all__ = ["defragment_vertex", "defragment", "chain_length"]


def chain_length(db: GrDB, vertex: int) -> int:
    """Number of sub-blocks in ``vertex``'s chain."""
    return len(db.chain_of(vertex))


def defragment_vertex(db: GrDB, vertex: int) -> bool:
    """Compact one vertex's chain; returns True if a rewrite happened."""
    local = db.id_map.to_local(vertex)
    path, _used = db._walk(local)
    if len(path) <= 2 and _is_compact(db, path):
        return False
    if db.fmt.compress:
        return _defragment_vertex_compressed(db, local, path)
    neighbors = db._get_adjacency(vertex)
    caps = db.fmt.capacities
    top = db.fmt.num_levels - 1

    # Free everything beyond the level-0 anchor.
    for level, sb in path[1:]:
        db.storage.free_subblock(level, sb)

    d0 = caps[0]
    l0 = db.fmt.parse_slots(db.fmt.empty_subblock(0)).copy()
    if len(neighbors) <= d0:
        l0[: len(neighbors)] = neighbors.astype("<u8")
        db._write_slots(0, local, l0)
        db._tails[local] = ([(0, local)], len(neighbors))
        return True

    head, rest = neighbors[: d0 - 1], neighbors[d0 - 1 :]
    l0[: d0 - 1] = head.astype("<u8")
    new_path = [(0, local)]

    # Smallest level whose sub-block holds the whole remainder...
    target = next((lv for lv in range(1, top + 1) if caps[lv] >= len(rest)), None)
    if target is not None:
        sb = db.storage.allocate_subblock(target)
        slots = db.fmt.parse_slots(db.fmt.empty_subblock(target)).copy()
        slots[: len(rest)] = rest.astype("<u8")
        db._write_slots(target, sb, slots)
        l0[d0 - 1] = encode_pointer(target, sb)
        new_path.append((target, sb))
        used = len(rest)
    else:
        # ...or a chain of top-level sub-blocks for extreme hubs.
        cap = caps[top]
        pos = 0
        prev_slots, prev_loc = l0, (0, local)
        prev_ptr_slot = d0 - 1
        while pos < len(rest):
            sb = db.storage.allocate_subblock(top)
            remaining = len(rest) - pos
            terminal = remaining <= cap
            take = remaining if terminal else cap - 1
            slots = db.fmt.parse_slots(db.fmt.empty_subblock(top)).copy()
            slots[:take] = rest[pos : pos + take].astype("<u8")
            prev_slots[prev_ptr_slot] = encode_pointer(top, sb)
            db._write_slots(*prev_loc, prev_slots)
            new_path.append((top, sb))
            prev_slots, prev_loc, prev_ptr_slot = slots, (top, sb), cap - 1
            pos += take
            used = take
        db._write_slots(*prev_loc, prev_slots)
        db._tails[local] = (new_path, used)
        return True

    db._write_slots(0, local, l0)
    db._tails[local] = (new_path, used)
    return True


def _defragment_vertex_compressed(db: GrDB, local: int, path) -> bool:
    """Compact one compressed chain.

    The whole multiset is gathered, re-sorted, and re-framed greedily: the
    level-0 anchor takes the longest unique prefix its payload budget
    holds, then each further hop goes to the smallest level whose budget
    holds *everything* still pending (top level otherwise — extreme hubs,
    or duplicate occurrences that by construction need one sub-block each).
    """
    neighbors = db._get_adjacency(db.id_map.to_global(local))
    for level, sb in path[1:]:
        db.storage.free_subblock(level, sb)
    top = db.fmt.num_levels - 1
    pending = np.sort(neighbors.astype("<u8"), kind="stable")
    fit, pending = split_sorted_fit(
        pending, db.fmt.payload_bytes(0), COMPRESSED_COUNT_CAP
    )
    new_path = [(0, local)]
    prev = (0, local, fit)
    while len(pending):
        target = top
        for lv in range(1, top + 1):
            _, spill = split_sorted_fit(
                pending, db.fmt.payload_bytes(lv), COMPRESSED_COUNT_CAP
            )
            if len(spill) == 0:
                target = lv
                break
        fit, pending = split_sorted_fit(
            pending, db.fmt.payload_bytes(target), COMPRESSED_COUNT_CAP
        )
        sb = db.storage.allocate_subblock(target)
        plevel, psb, pvals = prev
        db._write_compressed(plevel, psb, pvals, encode_pointer(target, sb))
        new_path.append((target, sb))
        prev = (target, sb, fit)
    plevel, psb, pvals = prev
    db._write_compressed(plevel, psb, pvals, EMPTY_SLOT)
    db._tails[local] = (new_path, len(pvals))
    return True


def _is_compact(db: GrDB, path: list[tuple[int, int]]) -> bool:
    """A chain is compact if it has no intermediate partially-wasted hops."""
    if len(path) == 1:
        return True
    # Two-hop chains are compact only if the tail is the sole continuation,
    # which _walk already guarantees; deeper chains are never compact.
    return len(path) == 2


def defragment(db: GrDB, vertices=None) -> int:
    """Compact the chains of ``vertices`` (default: all known); returns the
    number of vertices rewritten."""
    if vertices is None:
        vertices = db.known_vertices()
    rewritten = 0
    for v in vertices:
        if defragment_vertex(db, int(v)):
            rewritten += 1
    return rewritten
