"""GraphDB Service: the Listing 3.1 interface and its six backends."""

from .array_db import ArrayGraphDB
from .bdb_db import BerkeleyGraphDB, CHUNK_BYTES, CHUNK_ENTRIES
from .grdb import GrDB, GrDBFormat, defragment
from .hashmap_db import HashMapGraphDB
from .idmap import IdentityMap, IdMap, ModuloMap
from .interface import (
    OP_ALL,
    OP_EQ,
    OP_GT,
    OP_LT,
    OP_NEQ,
    GraphDB,
    GraphDBStats,
)
from .metadata import ExternalMetadata, InMemoryMetadata, MetadataStore, UNSET
from .mysql_db import MySQLGraphDB
from .registry import BACKENDS, IN_MEMORY_BACKENDS, OUT_OF_CORE_BACKENDS, make_graphdb
from .stream_db import StreamGraphDB

__all__ = [
    "ArrayGraphDB",
    "BACKENDS",
    "BerkeleyGraphDB",
    "CHUNK_BYTES",
    "CHUNK_ENTRIES",
    "ExternalMetadata",
    "GraphDB",
    "GraphDBStats",
    "GrDB",
    "GrDBFormat",
    "HashMapGraphDB",
    "IN_MEMORY_BACKENDS",
    "IdMap",
    "IdentityMap",
    "InMemoryMetadata",
    "MetadataStore",
    "ModuloMap",
    "MySQLGraphDB",
    "OP_ALL",
    "OP_EQ",
    "OP_GT",
    "OP_LT",
    "OP_NEQ",
    "OUT_OF_CORE_BACKENDS",
    "StreamGraphDB",
    "UNSET",
    "defragment",
    "make_graphdb",
]
