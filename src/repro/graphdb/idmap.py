"""Global-to-local vertex id maps.

grDB addresses its level-0 sub-blocks directly by vertex id (§3.4.1: "the
beginning of the adjacency list of a vertex v is stored in the v-th
sub-block at level 0").  On a single node that is the identity; with p
back-end nodes and the globally-known ``GID % p`` declustering the paper
uses, each node owns every p-th vertex and maps it to the dense local slot
``GID // p`` so level-0 storage stays compact.
"""

from __future__ import annotations

import abc

import numpy as np

from ..util.errors import ConfigError

__all__ = ["IdMap", "IdentityMap", "ModuloMap"]


class IdMap(abc.ABC):
    """Maps global vertex ids to dense local sub-block slots."""

    @abc.abstractmethod
    def to_local(self, gid: int) -> int: ...

    @abc.abstractmethod
    def to_global(self, local: int) -> int: ...

    def to_local_many(self, gids) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized :meth:`to_local` over an id array.

        Returns ``(locals, owned)``: local slots (int64, -1 where not owned)
        and a boolean ownership mask.  The default loops; both concrete maps
        override with pure-numpy arithmetic so batched fringe planning never
        pays a per-vertex exception-handling round trip.
        """
        gids = np.asarray(gids, dtype=np.int64)
        locals_ = np.full(len(gids), -1, dtype=np.int64)
        owned = np.zeros(len(gids), dtype=bool)
        for i, gid in enumerate(gids):
            try:
                locals_[i] = self.to_local(int(gid))
                owned[i] = True
            except ConfigError:
                pass
        return locals_, owned


class IdentityMap(IdMap):
    """Local slot == global id (single-node layout)."""

    def to_local(self, gid: int) -> int:
        return int(gid)

    def to_global(self, local: int) -> int:
        return int(local)

    def to_local_many(self, gids) -> tuple[np.ndarray, np.ndarray]:
        gids = np.asarray(gids, dtype=np.int64)
        return gids.copy(), np.ones(len(gids), dtype=bool)


class ModuloMap(IdMap):
    """Round-robin ownership: node ``rank`` of ``nparts`` owns ``gid % nparts == rank``."""

    def __init__(self, nparts: int, rank: int):
        if nparts <= 0 or not 0 <= rank < nparts:
            raise ConfigError(f"invalid ModuloMap({nparts}, {rank})")
        self.nparts = nparts
        self.rank = rank

    def to_local(self, gid: int) -> int:
        gid = int(gid)
        if gid % self.nparts != self.rank:
            raise ConfigError(f"vertex {gid} is not owned by rank {self.rank} of {self.nparts}")
        return gid // self.nparts

    def to_global(self, local: int) -> int:
        return int(local) * self.nparts + self.rank

    def to_local_many(self, gids) -> tuple[np.ndarray, np.ndarray]:
        gids = np.asarray(gids, dtype=np.int64)
        owned = gids % self.nparts == self.rank
        locals_ = np.where(owned, gids // self.nparts, -1)
        return locals_, owned

    def owns(self, gid: int) -> bool:
        return int(gid) % self.nparts == self.rank
