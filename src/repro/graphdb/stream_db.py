"""StreamDB: append-only edge log with scan-based retrieval (§4.1.5).

Inspired by Active Disks [4]: edges are written to disk exactly in arrival
order (binary, 16 bytes per edge), making ingestion nothing but sequential
appends — "unrivaled ingestion performance" in Figure 5.5.  The price is
that *any* adjacency retrieval must scan the entire log, so callers must
batch a whole BFS fringe into one :meth:`expand_fringe` call to amortize
the scan across the level (the paper's stated contract for this backend).

With ``compress=True`` each flushed batch becomes one delta+varint record
instead of raw 16-byte pairs::

    magic u32 | nedges u32 | nbytes u32 | edge-block payload (nbytes)

where the payload is :func:`repro.util.varint.encode_edge_block` (edges
sorted by ``(src, dst)``, two gap streams).  Appends stay purely
sequential; every scan pays a per-byte vectorized decode cost but streams
3-5x fewer bytes off the device.  The committed extent is then tracked in
*bytes* (records are variable-length), the durable commit record carries a
distinct magic plus that byte extent, and opening a log with the wrong
mode raises instead of mis-parsing it.
"""

from __future__ import annotations

import struct

import numpy as np

from ..simcluster.disk import BlockDevice
from ..util.errors import CorruptBlockError, GraphStorageException
from ..util.longarray import LongArray
from ..util.varint import decode_edge_block, encode_edge_block
from .interface import GraphDB

__all__ = ["StreamGraphDB"]

_EDGE_BYTES = 16  # two little-endian u64s
_SCAN_CHUNK_EDGES = 65536
_WRITE_BUFFER_EDGES = 8192

# Compressed log record framing (compress=True): header + varint payload.
_CREC_HEADER = struct.Struct("<III")  # magic, nedges, nbytes
_CREC_MAGIC = 0x43474F4C  # "LOGC" little-endian

# Durable-commit metadata (only when a meta device is supplied — the
# checksummed deployment mode).  Logical layout on the meta device, one
# 4 KiB frame per field so every update is a single whole-frame write:
#
#   0     commit slot A \  record (magic, seqno, nedges); the slot
#   4096  commit slot B /  alternates by seqno parity, so a torn commit
#                          write can never damage the previous commit
#   8192  tail guard header (magic, seqno, tail frame offset)
#   12288 tail guard payload (pre-append copy of the committed tail frame)
#
# The guard protects the one frame an append may read-modify-write: if the
# device crashes mid-append, the torn write has destroyed *committed*
# bytes, and recovery restores them from the guard.  A guard whose seqno
# matches an adopted commit is stale (that flush completed) and ignored.
_META_RECORD = struct.Struct(">QQQ")  # magic, seqno, nedges
_META_MAGIC = 0x5354524D4C4F4731  # "STRMLOG1"
# Compressed logs commit a byte extent too (records are variable-length);
# the distinct magic makes a mode mismatch detectable at restore time.
_META_RECORD_C = struct.Struct(">QQQQ")  # magic, seqno, nedges, cbytes
_META_MAGIC_C = 0x5354524D4C4F4732  # "STRMLOG2"
_META_FRAME = 4096
_GUARD_HEADER_OFF = 2 * _META_FRAME
_GUARD_PAYLOAD_OFF = 3 * _META_FRAME


class StreamGraphDB(GraphDB):
    """Append-only edge log; fringe retrieval by full sequential scan."""

    name = "StreamDB"

    def __init__(
        self,
        device: BlockDevice,
        meta_device: BlockDevice | None = None,
        compress: bool = False,
        **kwargs,
    ):
        super().__init__(**kwargs)
        self.device = device
        self.meta_device = meta_device
        #: Delta+varint log records instead of raw 16-byte pairs (module doc).
        self.compress = compress
        self._nedges = 0
        #: Committed byte extent of the log (compressed records are
        #: variable-length; in raw mode this is always nedges * 16).
        self._cbytes = 0
        self._seq = 0
        self._buffer: list[np.ndarray] = []
        self._buffered = 0
        #: Raw log entries streamed past the CPU (>> useful edges returned).
        self.log_edges_scanned = 0
        #: Semi-EM selective-I/O directory: one ``(offset, nbytes, nedges,
        #: src_lo, src_hi)`` row per flushed log record, appended as the
        #: record is written (free — the extent is known at flush time).
        #: ``None`` right after a restore (the extents cannot be known
        #: without a full log pass); the *first* full scan after the
        #: restore rebuilds it as a side effect — that pass touches every
        #: committed byte anyway — so restored stores regain selective
        #: adjacency I/O instead of falling back to whole-log scans forever.
        self._records: list[tuple[int, int, int, int, int]] | None = []
        #: Selective scans served from the directory / records they skipped.
        self.selective_scans = 0
        self.records_skipped = 0
        #: Rebuild the directory on the next full device pass (set by a
        #: restore, cleared once the pass has run).
        self._rebuild_records = False
        self.restored = False
        if meta_device is not None:
            self.restored = self._restore()
            if self.restored:
                self._records = None
                self._rebuild_records = True

    # -- ingestion ------------------------------------------------------

    def _store_edges(self, edges: np.ndarray) -> None:
        if len(edges) == 0:
            return
        self._buffer.append(edges.astype("<u8"))
        self._buffered += len(edges)
        if self._buffered >= _WRITE_BUFFER_EDGES:
            self.flush()

    def flush(self) -> None:
        if not self._buffer:
            return
        batch = np.vstack(self._buffer)
        if self.compress:
            payload = encode_edge_block(batch)
            data = _CREC_HEADER.pack(_CREC_MAGIC, len(batch), len(payload)) + payload
        else:
            data = np.ascontiguousarray(batch).tobytes()
        committed = self._committed_bytes()
        if self._records is not None:
            # Directory row for this record: byte extent plus the source-id
            # range it covers.  Min/max over the batch is ingest-path work a
            # deployment would fold into the same pass that serializes it.
            self._records.append(
                (
                    committed,
                    len(data),
                    len(batch),
                    int(batch[:, 0].min()),
                    int(batch[:, 0].max()),
                )
            )
        guard_written = False
        if self.meta_device is not None and committed % _META_FRAME != 0:
            # The append below will rewrite the committed tail frame; a torn
            # write there destroys already-durable edges.  Save the frame
            # first (payload, then the header that makes the guard valid).
            tail_off = (committed // _META_FRAME) * _META_FRAME
            tail = self.device.read(tail_off, _META_FRAME)
            self.meta_device.write(_GUARD_PAYLOAD_OFF, tail)
            self.meta_device.write(
                _GUARD_HEADER_OFF,
                _META_RECORD.pack(_META_MAGIC, self._seq + 1, tail_off).ljust(
                    _META_FRAME, b"\x00"
                ),
            )
            guard_written = True
        self.device.write(committed, data)
        self._nedges += self._buffered
        self._cbytes = committed + len(data)
        self._buffer, self._buffered = [], 0
        if self.meta_device is not None:
            self._seq += 1
            if self.compress:
                record = _META_RECORD_C.pack(
                    _META_MAGIC_C, self._seq, self._nedges, self._cbytes
                )
            else:
                record = _META_RECORD.pack(_META_MAGIC, self._seq, self._nedges)
            slot = (self._seq % 2) * _META_FRAME
            self.meta_device.write(slot, record.ljust(_META_FRAME, b"\x00"))
            if guard_written:
                self.meta_device.write(_GUARD_HEADER_OFF, b"\x00" * _META_FRAME)

    def _committed_bytes(self) -> int:
        return self._cbytes if self.compress else self._nedges * _EDGE_BYTES

    def _read_meta_record(self, offset: int) -> tuple[int, int] | None:
        """Parse one (seqno, value) meta frame; None if absent/torn.

        A torn frame is rewritten as zeros so a later scrub does not count
        crash debris the recovery already accounted for as corruption.
        """
        try:
            raw = self.meta_device.read(offset, _META_FRAME)
        except CorruptBlockError:
            self.meta_device.write(offset, b"\x00" * _META_FRAME)
            return None
        magic, seq, value = _META_RECORD.unpack_from(raw)
        if magic != _META_MAGIC:
            return None
        return seq, value

    def _read_commit_record(self, offset: int) -> tuple[int, int, int] | None:
        """Parse one commit slot: ``(seqno, nedges, committed bytes)``.

        Returns None for an absent/torn slot (zeroing torn frames like
        :meth:`_read_meta_record`).  A slot whose magic belongs to the
        *other* log mode raises :class:`GraphStorageException` — the store
        was written with a different ``compress`` setting and scanning it
        with this one would mis-parse every record.
        """
        try:
            raw = self.meta_device.read(offset, _META_FRAME)
        except CorruptBlockError:
            self.meta_device.write(offset, b"\x00" * _META_FRAME)
            return None
        (magic,) = struct.unpack_from(">Q", raw)
        want = _META_MAGIC_C if self.compress else _META_MAGIC
        other = _META_MAGIC if self.compress else _META_MAGIC_C
        if magic == other:
            raise GraphStorageException(
                "StreamDB log mode mismatch: the on-disk commit record was "
                f"written with compress={not self.compress}, but this instance "
                f"is configured with compress={self.compress}"
            )
        if magic != want:
            return None
        if self.compress:
            _, seq, nedges, cbytes = _META_RECORD_C.unpack_from(raw)
            return seq, nedges, cbytes
        _, seq, nedges = _META_RECORD.unpack_from(raw)
        return seq, nedges, nedges * _EDGE_BYTES

    def _restore(self) -> bool:
        """Adopt the newest durable commit; heal crash debris.

        Reads both commit slots (a torn slot means the crash hit that very
        commit — the other slot still holds the previous one), restores the
        committed tail frame from the guard when an uncommitted append tore
        it, and truncates the log to the committed extent so torn appended
        frames vanish.  Returns True when a commit was adopted.
        """
        commits = [self._read_commit_record(slot * _META_FRAME) for slot in (0, 1)]
        commits = [c for c in commits if c is not None]
        if commits:
            self._seq, self._nedges, self._cbytes = max(commits)
            guard = self._read_meta_record(_GUARD_HEADER_OFF)
            if guard is not None and guard[0] > self._seq:
                # The flush that wrote this guard never committed, and its
                # append may have torn the committed tail frame — put the
                # pre-append copy back.  (A torn guard *payload* means the
                # crash preceded the append, so there is nothing to heal;
                # _read_meta_record already zeroed the header.)
                try:
                    payload = self.meta_device.read(_GUARD_PAYLOAD_OFF, _META_FRAME)
                    self.device.write(guard[1], payload)
                except CorruptBlockError:
                    pass
            if guard is not None:
                self.meta_device.write(_GUARD_HEADER_OFF, b"\x00" * _META_FRAME)
        # A crash can tear the guard-payload write itself; the frame is
        # never referenced (its header never landed) but would read as
        # corruption forever.  Zero the debris so scrubs stay honest.
        if self.meta_device.size() > _GUARD_PAYLOAD_OFF:
            try:
                self.meta_device.read(_GUARD_PAYLOAD_OFF, _META_FRAME)
            except CorruptBlockError:
                self.meta_device.write(_GUARD_PAYLOAD_OFF, b"\x00" * _META_FRAME)
        # Drop torn appended frames past the committed extent (everything,
        # when no commit ever landed).
        committed = self._committed_bytes()
        frames_end = -(-committed // _META_FRAME) * _META_FRAME
        if self.device.size() > frames_end:
            self.device.truncate(frames_end)
        return bool(commits)

    # -- retrieval ---------------------------------------------------------

    def _scan(self) -> "np.ndarray":
        """Stream the whole edge log from disk in large sequential chunks.

        Under the concurrent multiplexer a :class:`ScanBoard` may be armed
        for log replays: the first consumer of a scheduling round performs
        the device pass and publishes the decoded array (keyed by the
        committed edge count, so an ingest invalidates it); later consumers
        read it back without touching the device.  Callers treat the array
        as read-only (they mask/sort into copies), so sharing is safe.
        """
        self.flush()
        committed = self._committed_bytes()
        if committed and self.device.size() < committed:
            raise CorruptBlockError(
                self.device.name,
                self.device.size(),
                committed - self.device.size(),
                f"edge log holds {self.device.size()} bytes but "
                f"{committed} are committed — truncated log?",
            )
        board = getattr(self, "scan_board", None)
        if board is not None and board.armed("log-replay"):
            hit = board.lookup("log-replay", self._nedges)
            if hit is not None:
                return hit
        else:
            board = None
        rows = [] if self._rebuild_records else None
        if self.compress:
            edges = self._scan_compressed(committed, rows=rows)
        else:
            chunks = []
            offset = 0
            remaining = self._nedges
            while remaining > 0:
                take = min(remaining, _SCAN_CHUNK_EDGES)
                raw = self.device.read(offset, take * _EDGE_BYTES)
                chunk = np.frombuffer(raw, dtype="<u8").reshape(-1, 2).astype(np.int64)
                if rows is not None and len(chunk):
                    # Post-restore directory rebuild: the raw log has no
                    # record framing, so synthesize fixed-slice rows with
                    # the slice's true source-id extent.
                    rows.append(
                        (
                            offset,
                            take * _EDGE_BYTES,
                            take,
                            int(chunk[:, 0].min()),
                            int(chunk[:, 0].max()),
                        )
                    )
                chunks.append(chunk)
                offset += take * _EDGE_BYTES
                remaining -= take
            edges = np.vstack(chunks) if chunks else np.zeros((0, 2), dtype=np.int64)
        if rows is not None:
            self._records = rows
            self._rebuild_records = False
        if board is not None:
            board.publish("log-replay", self._nedges, edges)
        return edges

    def _scan_compressed(self, committed: int, rows: list | None = None) -> "np.ndarray":
        """Stream and decode the compressed record log up to ``committed``.

        The device pass is the same large sequential chunking as the raw
        scan (just over fewer bytes); records are then parsed from memory.
        Truncated headers/payloads and bad magics raise
        :class:`CorruptBlockError` at the offending offset; the varint codec
        raises :class:`GraphStorageException` on non-monotone streams.
        Charges ``varint_decode_seconds`` per payload byte decoded.
        ``rows`` (post-restore directory rebuild) collects one exact
        ``(offset, nbytes, nedges, src_lo, src_hi)`` row per record parsed.
        """
        chunks = []
        offset = 0
        chunk_bytes = _SCAN_CHUNK_EDGES * _EDGE_BYTES
        while offset < committed:
            take = min(committed - offset, chunk_bytes)
            chunks.append(self.device.read(offset, take))
            offset += take
        buf = b"".join(chunks)
        parts = []
        off = 0
        payload_bytes = 0
        total_edges = 0
        while off < len(buf):
            if off + _CREC_HEADER.size > len(buf):
                raise CorruptBlockError(
                    self.device.name,
                    off,
                    len(buf) - off,
                    "truncated compressed edge-record header",
                )
            magic, nedges, nbytes = _CREC_HEADER.unpack_from(buf, off)
            if magic != _CREC_MAGIC:
                raise CorruptBlockError(
                    self.device.name,
                    off,
                    _CREC_HEADER.size,
                    f"bad compressed edge-record magic 0x{magic:08x}",
                )
            off += _CREC_HEADER.size
            if off + nbytes > len(buf):
                raise CorruptBlockError(
                    self.device.name,
                    off,
                    nbytes - (len(buf) - off),
                    f"compressed edge record promises {nbytes} payload bytes "
                    f"but only {len(buf) - off} remain in the committed extent",
                )
            block, consumed = decode_edge_block(
                buf[off : off + nbytes], nedges, what="StreamDB log record"
            )
            if consumed != nbytes:
                raise CorruptBlockError(
                    self.device.name,
                    off,
                    nbytes,
                    f"compressed edge record decoded {consumed} of its "
                    f"{nbytes} payload bytes",
                )
            if rows is not None and nedges:
                rows.append(
                    (
                        off - _CREC_HEADER.size,
                        _CREC_HEADER.size + nbytes,
                        nedges,
                        int(block[:, 0].min()),
                        int(block[:, 0].max()),
                    )
                )
            parts.append(block)
            off += nbytes
            payload_bytes += nbytes
            total_edges += nedges
        if total_edges != self._nedges:
            raise CorruptBlockError(
                self.device.name,
                0,
                len(buf),
                f"compressed log decodes to {total_edges} edges but "
                f"{self._nedges} are committed",
            )
        self.clock.advance(payload_bytes * self.cpu.varint_decode_seconds)
        return np.vstack(parts) if parts else np.zeros((0, 2), dtype=np.int64)

    # -- semi-EM selective I/O (GraphMP-style record scheduling) -----------

    #: Above this fraction of directory records holding active sources, the
    #: selective plan degenerates into the full sequential scan (same bytes,
    #: worse access pattern) — fall back to the shared whole-log replay.
    SELECTIVE_MAX_FRACTION = 0.5

    def _record_mask(self, wanted: np.ndarray) -> np.ndarray | None:
        """Which directory records hold at least one wanted source vertex."""
        if self._records is None or not self._records:
            return None
        los = np.fromiter((r[3] for r in self._records), dtype=np.int64)
        his = np.fromiter((r[4] for r in self._records), dtype=np.int64)
        # A record matters iff some wanted id falls inside [lo, hi].
        idx = np.searchsorted(wanted, los)
        hit = idx < len(wanted)
        mask = np.zeros(len(los), dtype=bool)
        mask[hit] = wanted[np.minimum(idx[hit], len(wanted) - 1)] <= his[hit]
        return mask

    def _scan_selective(self, wanted: np.ndarray) -> "np.ndarray | None":
        """Fetch only the log records whose source extent intersects ``wanted``.

        Returns the concatenated edges of the selected records in log order
        — a superset of the wanted adjacency that is *filter-equivalent* to
        the full log (skipped records cannot contain wanted sources), so
        every caller's mask produces bit-identical answers.  ``None`` means
        the selective plan does not apply (no directory, a shared scan is
        armed, or the frontier covers most records) and the caller should
        use :meth:`_scan`.
        """
        if not self.semi_external or len(wanted) == 0:
            return None
        self.flush()
        board = getattr(self, "scan_board", None)
        if board is not None and board.armed("log-replay"):
            # A whole-log pass is being shared across queries this round;
            # piggybacking on it is cheaper than a private selective fetch.
            return None
        mask = self._record_mask(wanted)
        if mask is None:
            return None
        picked = np.flatnonzero(mask)
        if len(picked) > self.SELECTIVE_MAX_FRACTION * len(mask):
            return None
        self.selective_scans += 1
        self.records_skipped += len(mask) - len(picked)
        if len(picked) == 0:
            return np.zeros((0, 2), dtype=np.int64)
        # Coalesce adjacent selected records into single sequential reads.
        runs: list[tuple[int, int]] = []
        for i in picked:
            off, nbytes = self._records[i][0], self._records[i][1]
            if runs and runs[-1][0] + runs[-1][1] == off:
                runs[-1] = (runs[-1][0], runs[-1][1] + nbytes)
            else:
                runs.append((off, nbytes))
        buf = {off: self.device.read(off, nbytes) for off, nbytes in runs}
        parts = []
        payload_bytes = 0
        run_iter = iter(runs)
        run_off, run_data = None, b""
        for i in picked:
            off, nbytes, nedges = self._records[i][:3]
            if run_off is None or off >= run_off + len(run_data):
                run_off = next(run_iter)[0]
                run_data = buf[run_off]
            raw = run_data[off - run_off : off - run_off + nbytes]
            if self.compress:
                magic, hdr_edges, hdr_bytes = _CREC_HEADER.unpack_from(raw)
                if magic != _CREC_MAGIC or hdr_edges != nedges:
                    raise CorruptBlockError(
                        self.device.name,
                        off,
                        nbytes,
                        "directory/record mismatch in selective scan",
                    )
                block, _ = decode_edge_block(
                    raw[_CREC_HEADER.size :], nedges, what="StreamDB log record"
                )
                payload_bytes += hdr_bytes
                parts.append(block)
            else:
                parts.append(
                    np.frombuffer(raw, dtype="<u8").reshape(-1, 2).astype(np.int64)
                )
        if payload_bytes:
            self.clock.advance(payload_bytes * self.cpu.varint_decode_seconds)
        return np.vstack(parts)

    def frontier_block_coverage(self, vertices) -> float | None:
        if not self.semi_external:
            return None
        self.flush()
        wanted = np.unique(np.asarray(vertices, dtype=np.int64))
        mask = self._record_mask(wanted)
        if mask is None:
            return None
        return float(np.count_nonzero(mask)) / len(mask)

    def _directory_bytes(self) -> int:
        return 0 if self._records is None else len(self._records) * 5 * 8

    def _get_adjacency(self, vertex: int) -> np.ndarray:
        wanted = np.array([vertex], dtype=np.int64)
        edges = self._scan_selective(wanted)
        if edges is None:
            edges = self._scan()
        self.clock.advance(len(edges) * self.cpu.edge_visit_seconds)
        self.log_edges_scanned += len(edges)
        return edges[edges[:, 0] == vertex, 1]

    def _expand_fringe(self, vertices, adjlist: LongArray) -> None:
        """One full scan answers the entire fringe (the Active-Disks trick).

        The CPU cost covers every log entry streamed past the filter, but
        ``stats.edges_scanned`` (the "useful work" figure the edges/s charts
        report) only counts the adjacency entries actually returned.
        """
        fringe = np.asarray(vertices, dtype=np.int64)
        if len(fringe) == 0:
            return
        edges = self._scan_selective(np.unique(fringe))
        if edges is None:
            edges = self._scan()
        self.clock.advance(len(edges) * self.cpu.edge_visit_seconds)
        self.log_edges_scanned += len(edges)
        self.stats.adjacency_requests += len(fringe)
        if len(edges) == 0:
            return
        mask = np.isin(edges[:, 0], fringe)
        matched = edges[mask, 1]
        self.stats.edges_scanned += len(matched)
        adjlist.extend(matched)

    def _scan_adjacency(self, vertices=None, order: str = "storage"):
        """One log replay answers the whole bottom-up scan.

        The storage order of StreamDB *is* the log, so the sequential plan
        is the same full scan ``expand_fringe`` uses: stream every logged
        edge past the CPU once, then hand out per-vertex groups.  Per-edge
        claim-check time is the caller's (early-exit accounting).
        """
        if order != "storage":
            raise ValueError(f"unknown scan order {order!r}")
        wanted = None
        edges = None
        if vertices is not None:
            wanted = np.unique(np.asarray(vertices, dtype=np.int64))
            if len(wanted) == 0:
                return
            edges = self._scan_selective(wanted)
        if edges is None:
            edges = self._scan()
        self.clock.advance(len(edges) * self.cpu.edge_visit_seconds)
        self.log_edges_scanned += len(edges)
        if len(edges) == 0:
            return
        if wanted is not None:
            edges = edges[np.isin(edges[:, 0], wanted)]
            if len(edges) == 0:
                return
        by_src = np.argsort(edges[:, 0], kind="stable")
        srcs = edges[by_src, 0]
        dsts = edges[by_src, 1]
        boundaries = np.flatnonzero(np.diff(srcs)) + 1
        for group in np.split(np.arange(len(srcs)), boundaries):
            yield int(srcs[group[0]]), dsts[group]

    def _local_vertices(self) -> np.ndarray:
        edges = self._scan()
        self.clock.advance(len(edges) * self.cpu.edge_visit_seconds)
        self.log_edges_scanned += len(edges)
        if len(edges) == 0:
            return np.empty(0, dtype=np.int64)
        return np.unique(edges[:, 0])

    @property
    def num_edges_logged(self) -> int:
        return self._nedges + self._buffered
