"""StreamDB: append-only edge log with scan-based retrieval (§4.1.5).

Inspired by Active Disks [4]: edges are written to disk exactly in arrival
order (binary, 16 bytes per edge), making ingestion nothing but sequential
appends — "unrivaled ingestion performance" in Figure 5.5.  The price is
that *any* adjacency retrieval must scan the entire log, so callers must
batch a whole BFS fringe into one :meth:`expand_fringe` call to amortize
the scan across the level (the paper's stated contract for this backend).
"""

from __future__ import annotations

import numpy as np

from ..simcluster.disk import BlockDevice
from ..util.longarray import LongArray
from .interface import GraphDB

__all__ = ["StreamGraphDB"]

_EDGE_BYTES = 16  # two little-endian u64s
_SCAN_CHUNK_EDGES = 65536
_WRITE_BUFFER_EDGES = 8192


class StreamGraphDB(GraphDB):
    """Append-only edge log; fringe retrieval by full sequential scan."""

    name = "StreamDB"

    def __init__(self, device: BlockDevice, **kwargs):
        super().__init__(**kwargs)
        self.device = device
        self._nedges = 0
        self._buffer: list[np.ndarray] = []
        self._buffered = 0
        #: Raw log entries streamed past the CPU (>> useful edges returned).
        self.log_edges_scanned = 0

    # -- ingestion ------------------------------------------------------

    def _store_edges(self, edges: np.ndarray) -> None:
        if len(edges) == 0:
            return
        self._buffer.append(edges.astype("<u8"))
        self._buffered += len(edges)
        if self._buffered >= _WRITE_BUFFER_EDGES:
            self.flush()

    def flush(self) -> None:
        if not self._buffer:
            return
        data = np.ascontiguousarray(np.vstack(self._buffer)).tobytes()
        self.device.write(self._nedges * _EDGE_BYTES, data)
        self._nedges += self._buffered
        self._buffer, self._buffered = [], 0

    # -- retrieval ---------------------------------------------------------

    def _scan(self) -> "np.ndarray":
        """Stream the whole edge log from disk in large sequential chunks."""
        self.flush()
        chunks = []
        offset = 0
        remaining = self._nedges
        while remaining > 0:
            take = min(remaining, _SCAN_CHUNK_EDGES)
            raw = self.device.read(offset, take * _EDGE_BYTES)
            chunks.append(np.frombuffer(raw, dtype="<u8").reshape(-1, 2).astype(np.int64))
            offset += take * _EDGE_BYTES
            remaining -= take
        if not chunks:
            return np.zeros((0, 2), dtype=np.int64)
        return np.vstack(chunks)

    def _get_adjacency(self, vertex: int) -> np.ndarray:
        edges = self._scan()
        self.clock.advance(len(edges) * self.cpu.edge_visit_seconds)
        self.log_edges_scanned += len(edges)
        return edges[edges[:, 0] == vertex, 1]

    def expand_fringe(self, vertices, adjlist: LongArray) -> None:
        """One full scan answers the entire fringe (the Active-Disks trick).

        The CPU cost covers every log entry streamed past the filter, but
        ``stats.edges_scanned`` (the "useful work" figure the edges/s charts
        report) only counts the adjacency entries actually returned.
        """
        fringe = np.asarray(vertices, dtype=np.int64)
        if len(fringe) == 0:
            return
        edges = self._scan()
        self.clock.advance(len(edges) * self.cpu.edge_visit_seconds)
        self.log_edges_scanned += len(edges)
        self.stats.adjacency_requests += len(fringe)
        if len(edges) == 0:
            return
        mask = np.isin(edges[:, 0], fringe)
        matched = edges[mask, 1]
        self.stats.edges_scanned += len(matched)
        adjlist.extend(matched)

    def scan_adjacency(self, vertices=None, order: str = "storage"):
        """One log replay answers the whole bottom-up scan.

        The storage order of StreamDB *is* the log, so the sequential plan
        is the same full scan ``expand_fringe`` uses: stream every logged
        edge past the CPU once, then hand out per-vertex groups.  Per-edge
        claim-check time is the caller's (early-exit accounting).
        """
        if order != "storage":
            raise ValueError(f"unknown scan order {order!r}")
        wanted = None
        if vertices is not None:
            wanted = np.unique(np.asarray(vertices, dtype=np.int64))
            if len(wanted) == 0:
                return
        edges = self._scan()
        self.clock.advance(len(edges) * self.cpu.edge_visit_seconds)
        self.log_edges_scanned += len(edges)
        if len(edges) == 0:
            return
        if wanted is not None:
            edges = edges[np.isin(edges[:, 0], wanted)]
            if len(edges) == 0:
                return
        by_src = np.argsort(edges[:, 0], kind="stable")
        srcs = edges[by_src, 0]
        dsts = edges[by_src, 1]
        boundaries = np.flatnonzero(np.diff(srcs)) + 1
        for group in np.split(np.arange(len(srcs)), boundaries):
            yield int(srcs[group[0]]), dsts[group]

    def local_vertices(self) -> np.ndarray:
        edges = self._scan()
        self.clock.advance(len(edges) * self.cpu.edge_visit_seconds)
        self.log_edges_scanned += len(edges)
        if len(edges) == 0:
            return np.empty(0, dtype=np.int64)
        return np.unique(edges[:, 0])

    @property
    def num_edges_logged(self) -> int:
        return self._nedges + self._buffered
