"""The GraphDB Service interface (paper Listing 3.1).

The paper's central API design: *"the smallest complete set of graph
operations possible"* — store edges, get/set per-vertex metadata, and fetch
a vertex's distance-1 neighbors filtered by their metadata.  None of these
methods communicate; every GraphDB instance operates purely on the data
local to its back-end node, and requesting the adjacency list of a vertex
that is not stored locally returns the empty set (which Algorithms 1 and 2
rely on).

The Java signature::

    void storeEdges(List<Edge> edges)
    int  getMetadata(long vertex)
    void setMetadata(long vertex, int metadata)
    void getAdjacencyListUsingMetadata(long vertex,
            FastLongArrayStorage adjlist, int metadata, int operation)

maps to :class:`GraphDB` below, with edges as ``(E, 2)`` int64 arrays and
``FastLongArrayStorage`` as :class:`~repro.util.LongArray`.  One batch
method is added beyond the paper's listing — ``expand_fringe`` — because
StreamDB (§4.1.5) *requires* posting all fringe vertices at once so it can
answer a whole BFS level in a single scan; other backends inherit the
default per-vertex loop.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from ..simcluster.costmodel import CpuProfile
from ..simcluster.virtualtime import VirtualClock
from ..util.errors import GraphStorageException
from ..util.longarray import LongArray
from .metadata import InMemoryMetadata, MetadataStore

__all__ = [
    "GraphDB",
    "GraphDBStats",
    "PinnedVertexState",
    "OP_ALL",
    "OP_NEQ",
    "OP_EQ",
    "OP_GT",
    "OP_LT",
]

# Metadata filter operations, verbatim from Listing 3.1:
OP_ALL = -2  # ignore metadata and return all neighbor vertices
OP_NEQ = -1  # neighbor's metadata != input metadata
OP_EQ = 0  # neighbor's metadata == input metadata
OP_GT = 1  # neighbor's metadata > input metadata
OP_LT = 2  # neighbor's metadata < input metadata

_VALID_OPS = (OP_ALL, OP_NEQ, OP_EQ, OP_GT, OP_LT)


@dataclass
class GraphDBStats:
    """Operation counters every backend maintains."""

    edges_stored: int = 0
    edges_scanned: int = 0  # adjacency entries returned/visited
    adjacency_requests: int = 0
    store_calls: int = 0


@dataclass
class PinnedVertexState:
    """Resident per-vertex state of semi-external-memory mode.

    Materialized once per store (at ingest or on first use) from the
    in-memory out-degree census: the sorted local vertex ids and their
    aligned out-degrees, as numpy arrays that never touch the device
    again.  ``resident_bytes`` is what the RAM budget is charged.
    """

    vertices: np.ndarray  # sorted int64 global ids with local adjacency
    degrees: np.ndarray  # aligned int64 out-degrees

    @property
    def resident_bytes(self) -> int:
        return int(self.vertices.nbytes + self.degrees.nbytes)


class GraphDB(abc.ABC):
    """Abstract base for all six GraphDB Service backends.

    Subclasses implement :meth:`_store_edges` and :meth:`_get_adjacency`;
    the base class provides metadata handling, metadata-filtered adjacency,
    batch fringe expansion, and bookkeeping.  ``clock``/``cpu`` wire the
    instance to its simulated host so CPU work is charged; both default to
    private instances for standalone use.
    """

    #: Human-readable backend name, e.g. "grDB"; set by subclasses.
    name: str = "abstract"

    def __init__(
        self,
        clock: VirtualClock | None = None,
        cpu: CpuProfile | None = None,
        metadata: MetadataStore | None = None,
        batch_io: bool = True,
        semi_external: bool = False,
    ):
        self.clock = clock if clock is not None else VirtualClock()
        self.cpu = cpu if cpu is not None else CpuProfile()
        self.metadata = metadata if metadata is not None else InMemoryMetadata()
        self.stats = GraphDBStats()
        # In-memory out-degree census, maintained at store time.  The
        # direction controller needs fringe out-degree sums without touching
        # storage; a 2006-era deployment would keep the same counters in the
        # ingest path, so no virtual time is charged for it.
        self._degree: dict[int, int] = {}
        #: Use the batched/coalescing fringe expansion path where a backend
        #: has one (grDB, BerkeleyDB, MySQL).  ``False`` restores the
        #: per-vertex loop of the paper's prototype — the configuration the
        #: chapter-5 reproduction figures measure.  Both paths return
        #: byte-identical adjacency lists; only the access plan (and thus
        #: virtual time) differs.
        self.batch_io = batch_io
        #: Semi-external-memory mode (FlashGraph/GraphMP): pin per-vertex
        #: state in resident numpy arrays and, on backends that keep a
        #: block→vertex-extent directory, fetch only adjacency blocks with
        #: active sources.  Off by default — the paper's prototype is fully
        #: out-of-core and the chapter-5 figures stay bit-identical.
        self.semi_external = semi_external
        self._pinned_state: PinnedVertexState | None = None
        #: Streaming-mode delta overlay (``services.streaming.DeltaOverlay``):
        #: committed-but-uncompacted stream batches, merged into every public
        #: read.  ``None`` outside streaming deployments — the read path then
        #: short-circuits with one attribute check.
        self._stream_overlay = None
        #: Snapshot id pinned around a query slice by the multiplexer
        #: (``None`` = read at the published horizon).  Gates which overlay
        #: batches the reads above may see.
        self._stream_snap: int | None = None

    # -- paper interface ----------------------------------------------------

    def store_edges(self, edges) -> None:
        """Store directed adjacency entries ``dst in adj(src)``.

        The ingestion service emits both directions of each undirected
        edge, each to the owner of its source endpoint.
        """
        edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
        if len(edges) and edges.min() < 0:
            raise GraphStorageException("negative vertex id in store_edges")
        self._store_edges(edges)
        if len(edges):
            srcs, counts = np.unique(edges[:, 0], return_counts=True)
            for v, c in zip(srcs.tolist(), counts.tolist()):
                self._degree[v] = self._degree.get(v, 0) + c
            # New edges invalidate the pinned snapshot (rebalance/repair
            # re-stores); semi-EM re-pins lazily from the updated census.
            self._pinned_state = None
        self.stats.edges_stored += len(edges)
        self.stats.store_calls += 1

    def get_metadata(self, vertex: int) -> int:
        return self.metadata.get(vertex)

    def set_metadata(self, vertex: int, metadata: int) -> None:
        self.metadata.set(vertex, metadata)

    def get_adjacency_list_using_metadata(
        self, vertex: int, adjlist: LongArray, metadata: int, operation: int
    ) -> None:
        """Append ``vertex``'s neighbors passing the metadata filter."""
        if operation not in _VALID_OPS:
            raise GraphStorageException(f"unknown metadata operation {operation}")
        neighbors = self.get_adjacency(vertex)
        if operation == OP_ALL or len(neighbors) == 0:
            adjlist.extend(neighbors)
            return
        md = self.metadata.get_many(neighbors)
        if operation == OP_NEQ:
            mask = md != metadata
        elif operation == OP_EQ:
            mask = md == metadata
        elif operation == OP_GT:
            mask = md > metadata
        else:
            mask = md < metadata
        adjlist.extend(neighbors[mask])

    # -- convenience / batch ---------------------------------------------------

    def _overlay_view(self):
        """The stream-overlay read view at the pinned snapshot (or None)."""
        overlay = self._stream_overlay
        if overlay is None:
            return None
        return overlay.view(self._stream_snap)

    def _base_adjacency(self, vertex: int) -> np.ndarray:
        """``get_adjacency`` over the base store only (no stream overlay)."""
        neighbors = self._get_adjacency(int(vertex))
        self.stats.adjacency_requests += 1
        self.stats.edges_scanned += len(neighbors)
        self.clock.advance(len(neighbors) * self.cpu.edge_visit_seconds)
        return neighbors

    def get_adjacency(self, vertex: int) -> np.ndarray:
        """All locally stored neighbors of ``vertex`` (empty if not local)."""
        neighbors = self._base_adjacency(vertex)
        view = self._overlay_view()
        if view is None:
            return neighbors
        extra = view.adjacency(int(vertex))
        if not len(extra):
            return neighbors
        self.stats.edges_scanned += len(extra)
        self.clock.advance(len(extra) * self.cpu.edge_visit_seconds)
        return np.concatenate([neighbors, extra]) if len(neighbors) else extra

    def _expand_fringe(self, vertices, adjlist: LongArray) -> None:
        """Base-store fringe expansion (overridden per backend).

        Default: one adjacency request per vertex.  StreamDB overrides this
        with a single-pass scan over its edge log.
        """
        for v in np.asarray(vertices, dtype=np.int64):
            adjlist.extend(self._base_adjacency(int(v)))

    def expand_fringe(self, vertices, adjlist: LongArray) -> None:
        """Append the neighbors of every fringe vertex to ``adjlist``.

        The base store answers through the backend's own plan
        (:meth:`_expand_fringe`); any visible stream-overlay batches append
        their entries on top from RAM.  BFS levels are unaffected by the
        ordering (level sets are order-independent).
        """
        view = self._overlay_view()
        if view is None:
            self._expand_fringe(vertices, adjlist)
            return
        vs = np.asarray(vertices, dtype=np.int64)
        self._expand_fringe(vs, adjlist)
        extra = view.fringe(vs)
        if len(extra):
            self.stats.edges_scanned += len(extra)
            self.clock.advance(len(extra) * self.cpu.edge_visit_seconds)
            adjlist.extend(extra)

    def prefetch_fringe(self, vertices) -> int:
        """Warm storage for a coming fringe expansion; returns blocks fetched.

        No-op by default; grDB overrides with offset-sorted block prefetch
        (the paper's §4.2 future-work optimization).
        """
        return 0

    def degree_many(self, vertices) -> np.ndarray:
        """Locally stored out-degree of each vertex (0 if not local).

        Served from the in-memory census; costs no virtual time (see
        ``_degree``).  Used by the direction controller to price a
        top-down expansion of the fringe.  Under semi-EM the lookup is a
        vectorized ``searchsorted`` over the pinned arrays — same values,
        same (zero) cost, no per-vertex dict probes.
        """
        vs = np.asarray(vertices, dtype=np.int64)
        ps = self._pinned()
        if ps is not None:
            if len(ps.vertices) == 0:
                out = np.zeros(len(vs), dtype=np.int64)
            else:
                idx = np.searchsorted(ps.vertices, vs)
                idx = np.clip(idx, 0, len(ps.vertices) - 1)
                hit = ps.vertices[idx] == vs
                out = np.zeros(len(vs), dtype=np.int64)
                out[hit] = ps.degrees[idx[hit]]
        else:
            out = np.fromiter(
                (self._degree.get(int(v), 0) for v in vs), dtype=np.int64, count=len(vs)
            )
        view = self._overlay_view()
        if view is not None:
            out = out + view.degrees(vs)
        return out

    def _scan_adjacency(self, vertices=None, order: str = "storage"):
        """Base-store storage-order scan (overridden per backend)."""
        if order != "storage":
            raise ValueError(f"unknown scan order {order!r}")
        if vertices is None:
            vs = self._base_local_vertices()
        else:
            vs = np.unique(np.asarray(vertices, dtype=np.int64))
        for v in vs:
            neighbors = self._get_adjacency(int(v))
            if len(neighbors):
                yield int(v), neighbors

    def scan_adjacency(self, vertices=None, order: str = "storage"):
        """Yield ``(vertex, neighbors)`` pairs in the backend's storage order.

        The bottom-up BFS access plan: instead of one random adjacency
        request per vertex, walk storage sequentially and hand each wanted
        vertex's list to the caller.  ``vertices=None`` means all local
        vertices.  ``order="storage"`` (the only order) lets each backend
        pick its cheapest sequential plan — grDB walks level files in block
        order, StreamDB replays its log, BerkeleyDB the leaf chain, MySQL
        one range statement over the heap, Array/HashMap memory order.

        Charges storage I/O and per-structure CPU exactly like the access
        it models, but **not** per-edge visit time — the caller owns that,
        because bottom-up claims stop at the first fringe parent and only
        examined entries cost CPU (early-exit accounting).  For the same
        reason ``stats.edges_scanned`` is the caller's responsibility.

        Visible stream-overlay batches merge in: a vertex's overlay entries
        append to its base list, and overlay-only vertices follow the base
        sweep.  Bottom-up claims depend only on membership, not order, so
        answers match a store holding the same edges natively.
        """
        view = self._overlay_view()
        if view is None:
            yield from self._scan_adjacency(vertices, order=order)
            return
        wanted = (
            None
            if vertices is None
            else np.unique(np.asarray(vertices, dtype=np.int64))
        )
        seen: set[int] = set()
        for v, neighbors in self._scan_adjacency(wanted, order=order):
            seen.add(int(v))
            extra = view.adjacency(int(v))
            if len(extra):
                neighbors = np.concatenate([neighbors, extra])
            yield int(v), neighbors
        overlay_vs = view.vertices()
        if wanted is not None and len(overlay_vs):
            overlay_vs = overlay_vs[np.isin(overlay_vs, wanted)]
        for v in overlay_vs:
            if int(v) in seen:
                continue
            extra = view.adjacency(int(v))
            if len(extra):
                yield int(v), extra

    def _base_local_vertices(self) -> np.ndarray:
        """Base-store vertex enumeration (pinned array or backend scan)."""
        ps = self._pinned()
        if ps is not None:
            return ps.vertices
        return self._local_vertices()

    def local_vertices(self) -> np.ndarray:
        """Sorted global ids of vertices with locally stored adjacency.

        Not part of the paper's Listing 3.1, but required by whole-graph
        analyses (connected components, defragmentation sweeps); every
        backend can enumerate cheaply from its own structures.  Under
        semi-EM the answer comes straight from the pinned vertex array —
        backends like StreamDB otherwise pay a full log replay here.
        Stream-overlay sources union in so streamed-but-uncompacted
        vertices are enumerable too.
        """
        base = self._base_local_vertices()
        view = self._overlay_view()
        if view is None:
            return base
        extra = view.vertices()
        if not len(extra):
            return base
        return np.union1d(base, extra)

    def _local_vertices(self) -> np.ndarray:
        """Backend enumeration of stored source vertices (sorted, unique)."""
        raise NotImplementedError(f"{type(self).__name__} cannot enumerate vertices")

    # -- semi-external-memory mode -------------------------------------------

    def _pinned(self) -> PinnedVertexState | None:
        """The pinned snapshot, lazily (re)built when semi-EM is armed.

        Rebuilding from the in-memory census is free (the census is
        maintained at store time with no virtual cost), so invalidation on
        re-store is cheap to recover from.  A store restored from device
        with an empty census pins on first use via
        :meth:`pin_vertex_state`, which charges the enumeration pass.
        """
        if not self.semi_external:
            return None
        if self._pinned_state is None and self._degree:
            self.pin_vertex_state()
        return self._pinned_state

    def pin_vertex_state(self) -> PinnedVertexState:
        """Materialize the resident per-vertex arrays (semi-EM layer 1).

        Built from the ingest-time out-degree census when available (no
        device I/O, no virtual time — the counters already exist in the
        ingest path).  A store restored from device has an empty census;
        then one storage-order enumeration pass rebuilds it, charged like
        the access it is.
        """
        if not self._degree and self.stats.edges_stored == 0:
            # Restored store: rebuild the census with one charged pass.
            # Base-only by contract — overlay degrees merge on top in
            # degree_many, so pinning them here would double-count.
            total = 0
            for v, neighbors in self._scan_adjacency(None, order="storage"):
                self._degree[int(v)] = len(neighbors)
                total += len(neighbors)
            self.clock.advance(total * self.cpu.edge_visit_seconds)
        vertices = np.fromiter(sorted(self._degree), dtype=np.int64, count=len(self._degree))
        degrees = np.fromiter(
            (self._degree[int(v)] for v in vertices), dtype=np.int64, count=len(vertices)
        )
        self._pinned_state = PinnedVertexState(vertices=vertices, degrees=degrees)
        self._build_block_directory()
        return self._pinned_state

    def pinned_resident_bytes(self) -> int:
        """RAM charged against ``semi_external_budget_bytes`` by this store.

        Zero until :meth:`pin_vertex_state` runs — a store whose ingest
        path happens to maintain directory rows (StreamDB) is not charged
        for them while semi-EM is off and nothing is resident by contract.
        """
        ps = self._pinned_state
        if ps is None:
            return 0
        return ps.resident_bytes + self._directory_bytes()

    def _build_block_directory(self) -> None:
        """Hook: build the resident block→vertex-extent directory.

        Default no-op — only backends with a physical block layout
        (grDB, StreamDB) have a directory to build.
        """

    def _directory_bytes(self) -> int:
        """Resident size of the selective-I/O directory (0 = none)."""
        return 0

    def frontier_block_coverage(self, vertices) -> float | None:
        """Fraction of adjacency blocks holding at least one of ``vertices``.

        The selective-I/O planning signal: ``None`` means the backend keeps
        no block directory (or semi-EM is off) and callers should use the
        full storage-order sweep; a small fraction means a selective fetch
        of just the active blocks beats sharing a whole-store scan.
        """
        return None

    # -- lifecycle -----------------------------------------------------------

    def finalize_ingest(self) -> None:
        """Called once after all edges are stored (e.g. Array builds CSR)."""

    def flush(self) -> None:
        """Persist any cached state."""

    def close(self) -> None:
        self.flush()

    # -- backend hooks -----------------------------------------------------------

    @abc.abstractmethod
    def _store_edges(self, edges: np.ndarray) -> None:
        """Store validated ``(E, 2)`` directed adjacency entries."""

    @abc.abstractmethod
    def _get_adjacency(self, vertex: int) -> np.ndarray:
        """Return locally stored neighbors of ``vertex`` as int64 array."""
