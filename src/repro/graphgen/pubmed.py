"""PubMed-like semantic graph generation.

The paper's real workloads, PubMed-S and PubMed-L, were extracted from the
PubMed document database (Table 5.1) and are not redistributable; this
module generates scaled synthetic stand-ins that preserve the properties
chapter 5 exercises:

* power-law degree distribution (preferential attachment core),
* an extreme hub adjacent to ~19–23 % of all vertices (a hot MeSH term),
* the paper's average degrees (~14.8 for -S, ~19.5 for -L),
* min degree 1 (every vertex appears in at least one edge).

``pubmed_like`` returns a raw edge array for the storage/benchmark path;
``pubmed_semantic_graph`` builds a small, fully-typed
:class:`SemanticGraph` against a citation ontology for examples and
ontology tests.
"""

from __future__ import annotations

import numpy as np

from ..ontology import Ontology, SemanticGraph
from .powerlaw import add_super_hub, preferential_attachment

__all__ = ["pubmed_like", "pubmed_ontology", "pubmed_semantic_graph"]


def pubmed_like(
    num_vertices: int,
    avg_degree: float = 14.84,
    hub_fraction: float = 0.19,
    leaf_fraction: float = 0.35,
    seed: int = 0,
) -> np.ndarray:
    """Scale-free edges with PubMed-like degree shape (deduplicated).

    A ``leaf_fraction`` share of vertices attach with a single edge (real
    semantic graphs are full of degree-1 leaves — Table 5.1's min degree is
    1 for every graph); the rest attach with enough edges that, together
    with the super-hub's contribution, the average degree matches.
    """
    n = int(num_vertices)
    rng = np.random.default_rng(seed + 2)
    target_edges = avg_degree * n / 2.0
    core_edges = max(n, target_edges - hub_fraction * n)
    dense_share = max(1e-6, 1.0 - leaf_fraction)
    m_high = max(2, int(round((core_edges / n - leaf_fraction) / dense_share)))
    m = np.full(n, m_high, dtype=np.int64)
    leaves = rng.random(n) < leaf_fraction
    leaves[: m_high + 1] = False  # early vertices bootstrap the process
    m[leaves] = 1
    edges = preferential_attachment(n, m, seed=seed)
    edges = add_super_hub(edges, n, hub_vertex=0, hub_fraction=hub_fraction, seed=seed + 1)
    return edges


def pubmed_ontology() -> Ontology:
    """Citation-network ontology for the synthetic PubMed graphs."""
    onto = Ontology("pubmed")
    for vt in ("Article", "Author", "Journal", "MeSHTerm", "Date"):
        onto.add_vertex_type(vt)
    onto.add_edge_type("Article", "cites", "Article")
    onto.add_edge_type("Author", "authored", "Article")
    onto.add_edge_type("Article", "published_in", "Journal")
    onto.add_edge_type("Article", "has_term", "MeSHTerm")
    onto.add_edge_type("Article", "published_on", "Date")
    return onto


def pubmed_semantic_graph(
    num_articles: int = 200,
    num_authors: int = 80,
    num_journals: int = 10,
    num_terms: int = 30,
    seed: int = 0,
) -> SemanticGraph:
    """A small, fully-typed PubMed-style semantic graph.

    GID layout: articles, then authors, then journals, then MeSH terms.
    Every edge respects :func:`pubmed_ontology`.
    """
    rng = np.random.default_rng(seed)
    onto = pubmed_ontology()
    g = SemanticGraph(onto, name="pubmed-sample")

    articles = range(0, num_articles)
    authors = range(num_articles, num_articles + num_authors)
    journals = range(authors.stop, authors.stop + num_journals)
    terms = range(journals.stop, journals.stop + num_terms)

    for gid in articles:
        g.add_vertex(gid, "Article")
    for gid in authors:
        g.add_vertex(gid, "Author")
    for gid in journals:
        g.add_vertex(gid, "Journal")
    for gid in terms:
        g.add_vertex(gid, "MeSHTerm")

    # Citations: preferential-attachment-ish (newer articles cite earlier,
    # biased toward low ids, which accumulate degree like real citations).
    for a in range(1, num_articles):
        ncites = int(rng.integers(1, 5))
        cited = np.unique((rng.random(ncites) ** 2 * a).astype(np.int64))
        for cid in cited:
            if cid != a:
                g.add_edge(a, int(cid), "cites")
    for a in articles:
        for au in rng.choice(num_authors, size=int(rng.integers(1, 4)), replace=False):
            g.add_edge(num_articles + int(au), a, "authored")
        g.add_edge(a, int(journals.start + rng.integers(0, num_journals)), "published_in")
        for t in rng.choice(num_terms, size=int(rng.integers(1, 4)), replace=False):
            g.add_edge(a, int(terms.start + t), "has_term")
    return g
