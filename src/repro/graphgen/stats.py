"""Degree statistics — the rows of Table 5.1."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["GraphStats", "graph_stats"]


@dataclass(frozen=True)
class GraphStats:
    """One row of Table 5.1."""

    name: str
    vertices: int
    undirected_edges: int
    min_degree: int
    max_degree: int
    avg_degree: float

    def row(self) -> str:
        return (
            f"{self.name:<12} {self.vertices:>12,} {self.undirected_edges:>14,} "
            f"{self.min_degree:>9} {self.max_degree:>10,} {self.avg_degree:>9.2f}"
        )

    @staticmethod
    def header() -> str:
        return (
            f"{'Graph':<12} {'Vertices':>12} {'Und. Edges':>14} "
            f"{'Min. Deg.':>9} {'Max. Deg.':>10} {'Avg. Deg.':>9}"
        )


def graph_stats(edges: np.ndarray, name: str = "graph", num_vertices: int | None = None) -> GraphStats:
    """Compute Table 5.1 statistics for a deduplicated undirected edge list.

    As in the paper, only vertices that appear in at least one edge count
    (min degree is 1 for every graph in Table 5.1), unless ``num_vertices``
    forces the full id range.
    """
    edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
    if len(edges) == 0:
        return GraphStats(name, num_vertices or 0, 0, 0, 0, 0.0)
    endpoints = edges.ravel()
    counts = np.bincount(endpoints, minlength=(num_vertices or 0))
    if num_vertices is None:
        touched = counts[counts > 0]
        nv = int(len(touched))
        min_deg = int(touched.min())
    else:
        nv = int(num_vertices)
        min_deg = int(counts.min())
    return GraphStats(
        name=name,
        vertices=nv,
        undirected_edges=int(len(edges)),
        min_degree=min_deg,
        max_degree=int(counts.max()),
        avg_degree=float(2.0 * len(edges) / nv) if nv else 0.0,
    )
