"""Graph generation and topology utilities (Table 5.1 workloads)."""

from .csr import CSRGraph
from .erdos import erdos_renyi_edges
from .powerlaw import add_super_hub, dedupe_edges, preferential_attachment
from .pubmed import pubmed_like, pubmed_ontology, pubmed_semantic_graph
from .rmat import rmat_edges
from .stats import GraphStats, graph_stats
from .stream import (
    edge_windows,
    read_ascii_edges,
    read_binary_edges,
    split_for_ingesters,
    write_ascii_edges,
    write_binary_edges,
)

__all__ = [
    "CSRGraph",
    "GraphStats",
    "add_super_hub",
    "dedupe_edges",
    "edge_windows",
    "erdos_renyi_edges",
    "graph_stats",
    "preferential_attachment",
    "pubmed_like",
    "pubmed_ontology",
    "pubmed_semantic_graph",
    "read_ascii_edges",
    "read_binary_edges",
    "rmat_edges",
    "split_for_ingesters",
    "write_ascii_edges",
    "write_binary_edges",
]
