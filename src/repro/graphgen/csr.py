"""Compressed sparse row (adjacency list) graph container.

This is the same ``(xadj, adj)`` layout the paper's Array GraphDB uses
(§4.1.1, Figure 4.1): ``adj`` concatenates all adjacency lists and
``xadj[v] : xadj[v+1]`` brackets vertex ``v``'s slice.  Built once from an
edge list with numpy, it is the reference topology used by generators,
sequential BFS, and the Array backend.
"""

from __future__ import annotations

import numpy as np

__all__ = ["CSRGraph"]


class CSRGraph:
    """Immutable undirected graph in compressed adjacency list form."""

    def __init__(self, xadj: np.ndarray, adj: np.ndarray):
        self.xadj = np.asarray(xadj, dtype=np.int64)
        self.adj = np.asarray(adj, dtype=np.int64)
        if self.xadj.ndim != 1 or self.adj.ndim != 1:
            raise ValueError("xadj and adj must be 1-D")
        if len(self.xadj) == 0 or self.xadj[0] != 0 or self.xadj[-1] != len(self.adj):
            raise ValueError("xadj must start at 0 and end at len(adj)")

    @classmethod
    def from_edges(cls, edges: np.ndarray, num_vertices: int | None = None) -> "CSRGraph":
        """Build from an ``(E, 2)`` array of undirected edges.

        Each input edge contributes both directions; duplicate edges and
        self-loops are preserved as given (callers dedupe upstream).
        """
        edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
        n = int(num_vertices) if num_vertices is not None else (
            int(edges.max()) + 1 if len(edges) else 0
        )
        src = np.concatenate([edges[:, 0], edges[:, 1]])
        dst = np.concatenate([edges[:, 1], edges[:, 0]])
        order = np.argsort(src, kind="stable")
        src, dst = src[order], dst[order]
        counts = np.bincount(src, minlength=n)
        xadj = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=xadj[1:])
        return cls(xadj, dst)

    @property
    def num_vertices(self) -> int:
        return len(self.xadj) - 1

    @property
    def num_directed_edges(self) -> int:
        return len(self.adj)

    @property
    def num_undirected_edges(self) -> int:
        return len(self.adj) // 2

    def neighbors(self, v: int) -> np.ndarray:
        """Zero-copy adjacency slice of vertex ``v``."""
        return self.adj[self.xadj[v] : self.xadj[v + 1]]

    def degree(self, v: int) -> int:
        return int(self.xadj[v + 1] - self.xadj[v])

    def degrees(self) -> np.ndarray:
        return np.diff(self.xadj)

    def edge_list(self) -> np.ndarray:
        """Recover one direction of each edge: all ``(u, v)`` with u <= v."""
        src = np.repeat(np.arange(self.num_vertices, dtype=np.int64), np.diff(self.xadj))
        mask = src <= self.adj
        return np.column_stack([src[mask], self.adj[mask]])
