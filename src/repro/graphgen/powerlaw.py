"""Scale-free graph generators (preferential attachment).

The paper's target graphs are power-law ("scale-free") graphs whose hubs
and exponential fringe growth drive every experimental effect.  The core
generator is the Batagelj–Brandes linear-time preferential-attachment
process, optionally augmented with explicit super-hubs to match the extreme
maximum degrees of the PubMed extractions in Table 5.1 (722 692 of 3.75 M
vertices for PubMed-S — a hub adjacent to ~19 % of the graph).
"""

from __future__ import annotations

import numpy as np

from ..util.errors import ConfigError

__all__ = ["preferential_attachment", "add_super_hub", "dedupe_edges"]


def dedupe_edges(edges: np.ndarray) -> np.ndarray:
    """Drop self-loops and duplicate undirected edges (order-normalized)."""
    edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
    lo = np.minimum(edges[:, 0], edges[:, 1])
    hi = np.maximum(edges[:, 0], edges[:, 1])
    mask = lo != hi
    lo, hi = lo[mask], hi[mask]
    pairs = np.unique(np.column_stack([lo, hi]), axis=0)
    return pairs


def preferential_attachment(
    num_vertices: int,
    edges_per_vertex,
    seed: int = 0,
    dedupe: bool = True,
) -> np.ndarray:
    """Barabási–Albert graph via the Batagelj–Brandes O(E) construction.

    Each new vertex attaches ``edges_per_vertex`` edges to endpoints drawn
    uniformly from the endpoint list so far (which is exactly
    degree-proportional sampling).  ``edges_per_vertex`` is an int or a
    per-vertex array — real semantic graphs have many degree-1 leaves
    (Table 5.1: min degree 1), which a mixed attachment count reproduces.
    Returns an ``(E, 2)`` int64 edge array.
    """
    n = int(num_vertices)
    if n < 2:
        raise ConfigError(f"need num_vertices >= 2, got {n}")
    m_arr = np.broadcast_to(
        np.asarray(edges_per_vertex, dtype=np.int64), (n,)
    ).copy()
    if m_arr.min() < 1:
        raise ConfigError("edges_per_vertex must be >= 1 everywhere")
    if m_arr.max() >= n:
        raise ConfigError(f"edges_per_vertex {m_arr.max()} must be < num_vertices {n}")
    rng = np.random.default_rng(seed)
    arriving = np.repeat(np.arange(n, dtype=np.int64), m_arr)
    total = len(arriving)
    # M holds endpoint pairs flattened: M[2i], M[2i+1] are edge i's endpoints.
    M = np.zeros(2 * total, dtype=np.int64)
    # Pre-draw uniforms; index bound 2i depends on position, applied in the loop.
    u = rng.random(total)
    for i in range(total):
        M[2 * i] = arriving[i]
        r = int(u[i] * (2 * i)) if i else 0
        M[2 * i + 1] = M[r]
    edges = M.reshape(-1, 2)
    # The first edges involve only vertex 0 (self-loops from bootstrap);
    # dedupe removes them along with multi-edges.
    return dedupe_edges(edges) if dedupe else edges


def add_super_hub(
    edges: np.ndarray,
    num_vertices: int,
    hub_vertex: int,
    hub_fraction: float,
    seed: int = 1,
) -> np.ndarray:
    """Attach ``hub_vertex`` to a ``hub_fraction`` share of all vertices.

    Models the pathological hubs of real semantic graphs (a PubMed MeSH
    term linked from a fifth of all articles).  Returns the combined,
    deduplicated edge array.
    """
    if not 0 < hub_fraction <= 1:
        raise ConfigError(f"hub_fraction must be in (0, 1], got {hub_fraction}")
    if not 0 <= hub_vertex < num_vertices:
        raise ConfigError(f"hub vertex {hub_vertex} out of range")
    rng = np.random.default_rng(seed)
    k = max(1, int(round(hub_fraction * num_vertices)))
    others = rng.choice(num_vertices, size=min(k, num_vertices), replace=False)
    others = others[others != hub_vertex]
    hub_edges = np.column_stack(
        [np.full(len(others), hub_vertex, dtype=np.int64), others.astype(np.int64)]
    )
    return dedupe_edges(np.vstack([np.asarray(edges, dtype=np.int64), hub_edges]))
