"""R-MAT recursive-matrix graph generator, fully vectorized.

Stands in for the paper's Syn-2B synthetic scale-free graph: Table 5.1
reports 10^8 vertices / 10^9 edges with average degree 20 and a moderate
maximum degree (42 964), i.e. a flatter hub profile than the PubMed graphs
— which an R-MAT with mildly skewed quadrant probabilities matches well.
"""

from __future__ import annotations

import numpy as np

from ..util.errors import ConfigError
from .powerlaw import dedupe_edges

__all__ = ["rmat_edges"]


def rmat_edges(
    scale: int,
    num_edges: int,
    a: float = 0.45,
    b: float = 0.2,
    c: float = 0.2,
    d: float = 0.15,
    seed: int = 0,
    dedupe: bool = True,
) -> np.ndarray:
    """Generate ``num_edges`` edges over ``2**scale`` vertices.

    Each edge descends ``scale`` levels of the recursive adjacency-matrix
    partition, picking quadrant (a|b|c|d) independently per level.  All
    edges advance level-by-level in one vectorized sweep.
    """
    if scale < 1 or scale > 40:
        raise ConfigError(f"scale must be in [1, 40], got {scale}")
    if num_edges < 1:
        raise ConfigError(f"num_edges must be positive, got {num_edges}")
    total = a + b + c + d
    if not np.isclose(total, 1.0, atol=1e-9):
        raise ConfigError(f"quadrant probabilities must sum to 1, got {total}")
    rng = np.random.default_rng(seed)
    src = np.zeros(num_edges, dtype=np.int64)
    dst = np.zeros(num_edges, dtype=np.int64)
    for _ in range(scale):
        r = rng.random(num_edges)
        # Quadrants: a = (0,0), b = (0,1), c = (1,0), d = (1,1).
        src_bit = r >= a + b
        dst_bit = ((r >= a) & (r < a + b)) | (r >= a + b + c)
        src = (src << 1) | src_bit
        dst = (dst << 1) | dst_bit
    edges = np.column_stack([src, dst])
    return dedupe_edges(edges) if dedupe else edges
