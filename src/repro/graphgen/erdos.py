"""Erdős–Rényi random graphs — the pre-scale-free null model.

Chapter 2 of the paper contrasts the classical ER random-graph model
(which predicts binomial degree distributions) with the power-law
distributions observed in real semantic graphs.  This generator exists for
exactly that comparison: same vertex/edge budget, none of the hubs — used
by the topology ablation benchmark to show why MSSG's design targets
scale-free inputs specifically.
"""

from __future__ import annotations

import numpy as np

from ..util.errors import ConfigError
from .powerlaw import dedupe_edges

__all__ = ["erdos_renyi_edges"]


def erdos_renyi_edges(num_vertices: int, num_edges: int, seed: int = 0) -> np.ndarray:
    """G(n, m)-style random graph: ``num_edges`` distinct undirected edges.

    Sampled by oversampling endpoint pairs and deduplicating, which is fast
    and exact for the sparse regime this package works in (m << n^2 / 2).
    """
    n, m = int(num_vertices), int(num_edges)
    if n < 2:
        raise ConfigError(f"need at least 2 vertices, got {n}")
    max_edges = n * (n - 1) // 2
    if not 0 < m <= max_edges:
        raise ConfigError(f"num_edges must be in [1, {max_edges}], got {m}")
    if m > max_edges // 2:
        raise ConfigError(
            f"G(n, m) with m={m} is too dense for rejection sampling (n={n})"
        )
    rng = np.random.default_rng(seed)
    edges = np.zeros((0, 2), dtype=np.int64)
    while len(edges) < m:
        need = m - len(edges)
        batch = rng.integers(0, n, size=(int(need * 1.5) + 16, 2), dtype=np.int64)
        edges = dedupe_edges(np.vstack([edges, batch]))
    # Deterministically trim the surplus (dedupe_edges sorts pairs).
    return edges[:m]
