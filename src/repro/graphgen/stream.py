"""Edge-stream readers, writers, and windowing.

The Ingestion Service consumes graphs as *streams* of edges in blocks
("windows") of a predetermined size (§3.2).  The paper's input data was
ASCII pairs while back-end formats were binary — a distinction Figure 5.5's
discussion calls out — so both formats are supported, and the harness
charges ASCII parsing CPU cost accordingly.
"""

from __future__ import annotations

import io
from typing import Iterator

import numpy as np

__all__ = [
    "write_ascii_edges",
    "read_ascii_edges",
    "write_binary_edges",
    "read_binary_edges",
    "edge_windows",
    "split_for_ingesters",
]


def write_ascii_edges(f: io.TextIOBase, edges: np.ndarray) -> None:
    """Write edges as ``src dst`` ASCII lines."""
    for u, v in np.asarray(edges, dtype=np.int64):
        f.write(f"{u} {v}\n")


def read_ascii_edges(f: io.TextIOBase) -> np.ndarray:
    """Read an entire ASCII edge file into an ``(E, 2)`` array."""
    pairs = []
    for line in f:
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        u, v = line.split()
        pairs.append((int(u), int(v)))
    return np.array(pairs, dtype=np.int64).reshape(-1, 2)


def write_binary_edges(f: io.RawIOBase, edges: np.ndarray) -> None:
    """Write edges as little-endian u64 pairs."""
    arr = np.ascontiguousarray(np.asarray(edges, dtype="<u8"))
    f.write(arr.tobytes())


def read_binary_edges(f: io.RawIOBase) -> np.ndarray:
    data = f.read()
    arr = np.frombuffer(data, dtype="<u8")
    return arr.reshape(-1, 2).astype(np.int64)


def edge_windows(edges: np.ndarray, window_size: int) -> Iterator[np.ndarray]:
    """Yield successive blocks of at most ``window_size`` edges."""
    edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
    if window_size <= 0:
        raise ValueError(f"window_size must be positive, got {window_size}")
    for start in range(0, len(edges), window_size):
        yield edges[start : start + window_size]


def split_for_ingesters(edges: np.ndarray, num_ingesters: int) -> list[np.ndarray]:
    """Contiguous split of the edge stream across front-end ingestion nodes."""
    edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
    if num_ingesters <= 0:
        raise ValueError(f"num_ingesters must be positive, got {num_ingesters}")
    return [np.array(part) for part in np.array_split(edges, num_ingesters)]
