"""Ontology graphs: the typed blueprint of a semantic graph.

Section 1 of the paper: an ontology is itself a small semantic graph whose
vertices are *vertex types* and whose edges are *edge types*; an instance
semantic graph may only contain an edge ``u --(r)--> v`` when the ontology
allows the triple ``(type(u), r, type(v))``.  (E.g. in Figure 1.1, 'Date'
vertices may not connect directly to 'Person' vertices — only through a
'Meeting' via 'attends' and 'occurred on'.)
"""

from __future__ import annotations

from dataclasses import dataclass

from ..util.errors import OntologyError

__all__ = ["Ontology", "EdgeTypeRule"]


@dataclass(frozen=True)
class EdgeTypeRule:
    """One allowed triple: source vertex type, edge type, target vertex type."""

    src_type: str
    edge_type: str
    dst_type: str


class Ontology:
    """A set of vertex types and allowed typed-edge triples.

    ``symmetric`` rules (the default) allow the edge in both directions,
    which matches the undirected semantic graphs of the paper's evaluation.
    """

    def __init__(self, name: str = "ontology"):
        self.name = name
        self._vertex_types: set[str] = set()
        self._rules: set[tuple[str, str, str]] = set()
        self._edge_types: set[str] = set()

    @property
    def vertex_types(self) -> frozenset[str]:
        return frozenset(self._vertex_types)

    @property
    def edge_types(self) -> frozenset[str]:
        return frozenset(self._edge_types)

    @property
    def rules(self) -> frozenset[EdgeTypeRule]:
        return frozenset(EdgeTypeRule(*r) for r in self._rules)

    def add_vertex_type(self, vtype: str) -> "Ontology":
        if not vtype:
            raise OntologyError("vertex type name cannot be empty")
        self._vertex_types.add(vtype)
        return self

    def add_edge_type(
        self, src_type: str, edge_type: str, dst_type: str, symmetric: bool = True
    ) -> "Ontology":
        for t in (src_type, dst_type):
            if t not in self._vertex_types:
                raise OntologyError(
                    f"edge type {edge_type!r} references unknown vertex type {t!r}"
                )
        if not edge_type:
            raise OntologyError("edge type name cannot be empty")
        self._rules.add((src_type, edge_type, dst_type))
        if symmetric:
            self._rules.add((dst_type, edge_type, src_type))
        self._edge_types.add(edge_type)
        return self

    def allows(self, src_type: str, edge_type: str, dst_type: str) -> bool:
        return (src_type, edge_type, dst_type) in self._rules

    def allowed_neighbors(self, src_type: str) -> set[tuple[str, str]]:
        """All ``(edge_type, dst_type)`` pairs reachable from ``src_type``."""
        return {(e, d) for s, e, d in self._rules if s == src_type}

    def __contains__(self, vtype: str) -> bool:
        return vtype in self._vertex_types

    def __repr__(self) -> str:
        return (
            f"Ontology({self.name!r}, {len(self._vertex_types)} vertex types, "
            f"{len(self._rules)} rules)"
        )


def example_meeting_ontology() -> Ontology:
    """The Figure 1.1 ontology: people, meetings, travel, dates."""
    onto = Ontology("figure-1.1")
    for vt in ("Person", "Meeting", "Travel", "Date"):
        onto.add_vertex_type(vt)
    onto.add_edge_type("Person", "attends", "Meeting")
    onto.add_edge_type("Person", "takes", "Travel")
    onto.add_edge_type("Meeting", "occurred on", "Date")
    onto.add_edge_type("Travel", "occurred on", "Date")
    return onto
