"""Semantic-graph typing: ontologies, typed graphs, validation."""

from .schema import EdgeTypeRule, Ontology, example_meeting_ontology
from .semgraph import SemanticGraph, TypedEdge
from .validate import Violation, validate_graph

__all__ = [
    "EdgeTypeRule",
    "Ontology",
    "SemanticGraph",
    "TypedEdge",
    "Violation",
    "example_meeting_ontology",
    "validate_graph",
]
