"""Typed semantic graph container.

A :class:`SemanticGraph` carries vertex types and typed edges alongside the
plain topology that the storage layer works on.  Vertex ids are the 64-bit
global ids (GIDs) that flow through the whole system; ``edge_list`` strips
types for ingestion, and type information stays available for validation and
ontology-aware analyses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from ..util.errors import OntologyError
from .schema import Ontology

__all__ = ["SemanticGraph", "TypedEdge"]


@dataclass(frozen=True)
class TypedEdge:
    src: int
    dst: int
    edge_type: str


class SemanticGraph:
    """A semantic graph: typed vertices plus typed (undirected) edges."""

    def __init__(self, ontology: Ontology | None = None, name: str = "graph"):
        self.ontology = ontology
        self.name = name
        self._vertex_types: dict[int, str] = {}
        self._edges: list[TypedEdge] = []

    # -- construction --------------------------------------------------

    def add_vertex(self, gid: int, vtype: str) -> None:
        if gid < 0:
            raise OntologyError(f"vertex GID must be non-negative, got {gid}")
        if self.ontology is not None and vtype not in self.ontology:
            raise OntologyError(f"vertex type {vtype!r} not in ontology {self.ontology.name!r}")
        existing = self._vertex_types.get(gid)
        if existing is not None and existing != vtype:
            raise OntologyError(f"vertex {gid} already has type {existing!r}, not {vtype!r}")
        self._vertex_types[gid] = vtype

    def add_edge(self, src: int, dst: int, edge_type: str = "related") -> None:
        for v in (src, dst):
            if v not in self._vertex_types:
                raise OntologyError(f"edge endpoint {v} has no declared vertex type")
        if self.ontology is not None:
            st, dt = self._vertex_types[src], self._vertex_types[dst]
            if not self.ontology.allows(st, edge_type, dt):
                raise OntologyError(
                    f"ontology {self.ontology.name!r} forbids {st!r} --({edge_type})--> {dt!r}"
                )
        self._edges.append(TypedEdge(src, dst, edge_type))

    # -- accessors -----------------------------------------------------------

    @property
    def num_vertices(self) -> int:
        return len(self._vertex_types)

    @property
    def num_edges(self) -> int:
        return len(self._edges)

    def vertex_type(self, gid: int) -> str:
        try:
            return self._vertex_types[gid]
        except KeyError:
            raise OntologyError(f"unknown vertex {gid}") from None

    def vertices(self) -> Iterator[tuple[int, str]]:
        return iter(self._vertex_types.items())

    def edges(self) -> Iterator[TypedEdge]:
        return iter(self._edges)

    def edge_list(self) -> np.ndarray:
        """Plain ``(E, 2)`` int64 edge array for the storage layer."""
        if not self._edges:
            return np.zeros((0, 2), dtype=np.int64)
        return np.array([(e.src, e.dst) for e in self._edges], dtype=np.int64)

    def type_histogram(self) -> dict[str, int]:
        hist: dict[str, int] = {}
        for t in self._vertex_types.values():
            hist[t] = hist.get(t, 0) + 1
        return hist
