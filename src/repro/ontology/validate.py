"""Ontology validation of semantic graphs.

:class:`SemanticGraph` already enforces its ontology incrementally; this
module validates graphs that arrive *untyped or untrusted* — e.g. a bulk
edge list about to be ingested — and reports every violation instead of
stopping at the first.
"""

from __future__ import annotations

from dataclasses import dataclass

from .schema import Ontology
from .semgraph import SemanticGraph

__all__ = ["Violation", "validate_graph"]


@dataclass(frozen=True)
class Violation:
    kind: str  # "unknown-vertex-type" | "forbidden-edge"
    detail: str


def validate_graph(graph: SemanticGraph, ontology: Ontology | None = None) -> list[Violation]:
    """Check every vertex and edge of ``graph`` against ``ontology``.

    Returns a list of violations (empty when the graph conforms).  Uses the
    graph's own ontology when none is given.
    """
    onto = ontology if ontology is not None else graph.ontology
    if onto is None:
        raise ValueError("no ontology supplied and the graph carries none")
    violations: list[Violation] = []
    for gid, vtype in graph.vertices():
        if vtype not in onto:
            violations.append(
                Violation("unknown-vertex-type", f"vertex {gid} has type {vtype!r}")
            )
    for edge in graph.edges():
        st = graph.vertex_type(edge.src)
        dt = graph.vertex_type(edge.dst)
        if st not in onto or dt not in onto:
            continue  # already reported as unknown-vertex-type
        if not onto.allows(st, edge.edge_type, dt):
            violations.append(
                Violation(
                    "forbidden-edge",
                    f"{edge.src}({st}) --({edge.edge_type})--> {edge.dst}({dt})",
                )
            )
    return violations
