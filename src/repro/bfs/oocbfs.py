"""Algorithm 1: parallel out-of-core breadth-first search.

Faithful to the paper's pseudocode with three documented repairs:

* the bootstrap fringe is ``{s}`` on every rank (rather than ``adj(s)``), so
  a destination adjacent to the source is found at level 1 — the published
  pseudocode never tests the initial fringe against ``d``;
* the asynchronous "found" message is folded into the level-end allreduce
  (the search is level-synchronous either way, so the reported level is
  identical and the simulation stays deterministic);
* the receiver-side ``level[v] = infinity`` filter of Algorithm 2 (lines
  25–27) is applied in Algorithm 1 as well, preventing re-expansion of
  vertices rediscovered by a rank that does not own them; and global
  termination on an empty fringe (absent from the pseudocode) returns
  "infinity".

Both data distributions are supported: vertex-level granularity with the
globally known ``GID % p`` map (fringe vertices are routed to their owners,
line 16–19), and the unknown-mapping/edge-granularity case where the new
fringe is broadcast to all processors (line 21).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..graphdb.interface import GraphDB
from ..simcluster.cluster import RankContext
from ..util.longarray import LongArray
from .direction import (
    BOTTOM_UP,
    DirectionConfig,
    DirectionController,
    bottom_up_level,
    merge_level_stats,
)
from .failover import (
    FaultTolerance,
    FTState,
    failover_rounds,
    prune_known_dead_pending,
    route_to_replicas,
    try_expand,
)
from .visited import VisitedLevels

__all__ = ["BFSConfig", "BFSRankResult", "oocbfs_program"]

NOT_FOUND = -1


@dataclass(frozen=True)
class BFSConfig:
    """One s–d relationship query."""

    source: int
    dest: int
    #: Vertex-granularity declustering with the globally known GID % p map?
    owner_known: bool = True
    max_levels: int = 64
    #: Prefetch fringe adjacency storage (offset-sorted) before expanding
    #: each level — the paper's §4.2 future-work optimization.
    prefetch: bool = False
    #: Fault-tolerance knobs (replication factor, retry budget, per-attempt
    #: timeout).  ``None`` disables the failover protocol entirely and runs
    #: the original algorithms with zero extra communication.
    ft: FaultTolerance | None = None
    #: Direction-optimizing (push/pull hybrid) knobs.  ``None`` — or an
    #: unknown vertex->owner mapping, which has no one to pull toward —
    #: keeps the original pure top-down search, byte-identical to the
    #: paper mode (the level-end allreduce stays the two-element tuple).
    direction: DirectionConfig | None = None
    #: Emit a ``("level-mark", level, done, next_direction)`` yield after
    #: every level-end allreduce (and one before level 1).  These sentinels
    #: are NOT comm requests — the concurrent-query multiplexer intercepts
    #: them to interleave queries level-by-level and to deliver deadline
    #: aborts; running a marked program directly on a Scheduler would raise.
    #: ``False`` (the default, and the only value paper mode uses) keeps
    #: the yield sequence byte-identical to the original algorithm.
    level_marks: bool = False


@dataclass
class BFSRankResult:
    """Per-rank outcome; the harness aggregates across ranks."""

    found_level: int = NOT_FOUND
    levels_expanded: int = 0
    edges_scanned: int = 0
    fringe_vertices: int = 0
    seconds: float = 0.0
    #: Fringe shards this rank re-expanded on behalf of dead peers.
    failovers: int = 0
    #: Fringe vertices whose adjacency was unreachable (all replicas dead).
    dropped_vertices: int = 0
    #: This rank's own device raised :class:`DeviceFailedError` mid-query.
    device_failed: bool = False
    #: This rank's own device returned a CRC-bad frame (detected corruption;
    #: the device still serves, so the back-end is repairable from replicas).
    corrupt: bool = False
    #: Some adjacency was never expanded — treat the result as a lower bound.
    partial: bool = False
    #: The query was aborted at a level mark because its deadline expired;
    #: implies ``partial`` unless the search had already terminated.
    deadline_exceeded: bool = False
    #: Direction chosen per level when the hybrid is on (rank-uniform, so
    #: identical on every rank); empty for pure top-down runs.
    directions: list = field(default_factory=list)
    #: Adjacency entries actually examined by bottom-up claim checks.
    edges_examined: int = 0
    #: Adjacency entries skipped by bottom-up early exit (claimed at an
    #: earlier slot of the list).
    edges_skipped: int = 0


def _merge_found(a: tuple[bool, int], b: tuple[bool, int]) -> tuple[bool, int]:
    return (a[0] or b[0], a[1] + b[1])


def oocbfs_program(
    ctx: RankContext,
    db: GraphDB,
    cfg: BFSConfig,
    visited: VisitedLevels,
    owner_of=None,
):
    """Rank program (generator) implementing Algorithm 1.

    Run on every back-end rank of a :class:`SimCluster`; returns a
    :class:`BFSRankResult`.  ``owner_of`` maps a vertex array to owner
    ranks when ``cfg.owner_known`` (default: ``GID % p``, the paper's
    globally known mapping).
    """
    comm = ctx.comm
    size = comm.size
    rank = comm.rank
    if owner_of is None:
        owner_of = lambda vs: vs % size  # noqa: E731 - the paper's default map
    result = BFSRankResult()
    start_time = ctx.clock.now
    edges_before = db.stats.edges_scanned
    ft = FTState(cfg.ft, size) if cfg.ft is not None else None
    if ft is not None and rank in ft.cfg.known_dead:
        # This rank is on record as dead (e.g. from a rebalance pass):
        # don't bang on the device to rediscover it.
        ft.self_dead = True

    if cfg.source == cfg.dest:
        result.found_level = 0
        result.seconds = ctx.clock.now - start_time
        return result

    visited.mark(cfg.source, 0)
    fringe = np.array([cfg.source], dtype=np.int64)
    levcnt = 0
    # The hybrid needs a vertex->owner map to know which unvisited vertices
    # to pull for; in broadcast (unknown-mapping) mode it stays off.
    dctl = (
        DirectionController(cfg.direction)
        if cfg.direction is not None and cfg.owner_known
        else None
    )

    aborted = False
    if cfg.level_marks:
        # Pre-admission mark: lets the multiplexer place this query in its
        # round-robin order (and predict a level-1 bottom-up scan) before
        # any I/O or comm happens on its behalf.
        cmd = yield ("level-mark", 0, False, dctl.peek(1) if dctl is not None else None)
        if cmd == "abort":
            aborted = True
            result.partial = True
            result.deadline_exceeded = True

    while not aborted:
        levcnt += 1
        if dctl is not None and dctl.decide(levcnt) == BOTTOM_UP:
            result.directions.append(BOTTOM_UP)
            fringe, found_here = yield from bottom_up_level(
                ctx, db, cfg, visited, levcnt, fringe, owner_of, ft, cfg.direction, result
            )
            result.fringe_vertices += len(fringe)
        else:
            if dctl is not None:
                result.directions.append(dctl.mode)
            if ft is None:
                if cfg.prefetch:
                    db.prefetch_fringe(fringe)
                # Expand: adj_Gi(v) for every fringe vertex; non-local vertices
                # contribute the empty set through the GraphDB contract.
                out = LongArray()
                db.expand_fringe(fringe, out)
                neighbors = out.view()
            else:
                # Fault-tolerant expand: a device failure (or timeout) turns this
                # rank's whole shard into ``pending``, which the collective
                # failover rounds re-expand on a surviving replica.
                expanded = try_expand(ctx, db, cfg, fringe, ft, prefetch=cfg.prefetch)
                pending = fringe if expanded is None else np.empty(0, dtype=np.int64)
                if levcnt == 1 and len(pending):
                    pending = prune_known_dead_pending(
                        pending, ft, rank, owner_of if cfg.owner_known else None
                    )
                extra = yield from failover_rounds(
                    ctx, db, cfg, ft, pending, owner_of if cfg.owner_known else None
                )
                pieces = [a for a in (expanded, extra) if a is not None and len(a)]
                neighbors = np.concatenate(pieces) if pieces else np.empty(0, dtype=np.int64)
            found_here = bool(len(neighbors)) and bool(np.any(neighbors == cfg.dest))

            candidates = np.unique(neighbors) if len(neighbors) else neighbors
            new = visited.unvisited(candidates)

            if cfg.owner_known:
                owners = owner_of(new)
                if ft is not None and ft.dead:
                    # Steer vertices owned by dead ranks straight to their first
                    # surviving replica; drop those whose whole chain is gone.
                    owners = route_to_replicas(owners, ft)
                    lost = owners == -1
                    if lost.any():
                        ft.dropped += int(lost.sum())
                        ft.partial = True
                        visited.mark_many(new[lost], levcnt)
                        new = new[~lost]
                        owners = owners[~lost]
                # Sender-side marking (line 14) for vertices we hand off; our
                # own discoveries are marked on receipt like everyone else's.
                remote = new[owners != rank]
                visited.mark_many(remote, levcnt)
                # One stable sort groups the new fringe by destination rank
                # instead of size boolean-mask passes over the whole array.
                order = np.argsort(owners, kind="stable")
                grouped = new[order]
                dests, starts = np.unique(owners[order], return_index=True)
                bounds = np.append(starts, len(grouped))
                parts = [np.empty(0, dtype=np.int64)] * size
                for j, q in enumerate(dests):
                    parts[int(q)] = grouped[bounds[j] : bounds[j + 1]]
                received = yield from comm.alltoall(parts)
            else:
                # Mapping unknown: broadcast the new fringe to all processors.
                received = yield from comm.allgather(new)

            incoming = (
                np.unique(np.concatenate([np.asarray(r, dtype=np.int64) for r in received]))
                if any(len(r) for r in received)
                else np.empty(0, dtype=np.int64)
            )
            fresh = visited.unvisited(incoming)
            visited.mark_many(fresh, levcnt)
            fringe = fresh
            result.fringe_vertices += len(fringe)

        if dctl is None:
            found_any, total_new = yield from comm.allreduce(
                (found_here, len(fringe)), _merge_found
            )
        else:
            # Extended level-end allreduce: the controller's inputs ride the
            # collective the level ends with anyway.  The stored-edge count
            # seeds m_u on the first level only (divided by the replication
            # factor — every copy of a partition stores the full adjacency).
            repl = ft.cfg.replication if ft is not None else 1
            stored = db.stats.edges_stored if levcnt == 1 else 0
            found_any, total_new, fringe_degree, stored_total = yield from comm.allreduce(
                (found_here, len(fringe), int(db.degree_many(fringe).sum()), stored),
                merge_level_stats,
            )
            dctl.observe(total_new, fringe_degree, stored_total // max(1, repl))
        result.levels_expanded = levcnt
        if found_any:
            result.found_level = levcnt
        done = found_any or total_new == 0 or levcnt >= cfg.max_levels
        if cfg.level_marks:
            # Suspended here, no collective is in flight on any rank: the
            # multiplexer may switch to another query, or deliver "abort"
            # (a rank-uniform decision) to cut this one off mid-search.
            cmd = yield (
                "level-mark",
                levcnt,
                done,
                dctl.peek(levcnt + 1) if dctl is not None else None,
            )
            if cmd == "abort":
                if not done:
                    result.partial = True
                    result.deadline_exceeded = True
                break
        if done:
            break

    result.edges_scanned = db.stats.edges_scanned - edges_before
    result.seconds = ctx.clock.now - start_time
    if ft is not None:
        result.failovers = ft.failovers
        result.dropped_vertices = ft.dropped
        result.device_failed = ft.device_failed
        result.corrupt = ft.corrupt
        result.partial = ft.partial
    return result
