"""Reference sequential BFS over CSR graphs.

Used to pick benchmark queries by true path length (the figures bucket
query times by source-destination distance) and to validate the parallel
out-of-core algorithms against ground truth.
"""

from __future__ import annotations

import numpy as np

from ..graphgen.csr import CSRGraph

__all__ = ["bfs_levels", "bfs_distance", "sample_queries_by_distance"]

UNREACHED = -1


def _concat_ranges(starts: np.ndarray, ends: np.ndarray) -> np.ndarray:
    """Vectorized ``concatenate([arange(s, e) for s, e in zip(starts, ends)])``."""
    counts = ends - starts
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    offsets = np.cumsum(counts) - counts
    return np.repeat(starts - offsets, counts) + np.arange(total, dtype=np.int64)


def bfs_levels(graph: CSRGraph, source: int) -> np.ndarray:
    """Level of every vertex from ``source`` (-1 where unreachable)."""
    n = graph.num_vertices
    levels = np.full(n, UNREACHED, dtype=np.int64)
    if not 0 <= source < n:
        raise ValueError(f"source {source} out of range")
    levels[source] = 0
    frontier = np.array([source], dtype=np.int64)
    depth = 0
    xadj, adj = graph.xadj, graph.adj
    while len(frontier):
        depth += 1
        # Vectorized gather of all frontier adjacencies.
        idx = _concat_ranges(xadj[frontier], xadj[frontier + 1])
        if len(idx) == 0:
            break
        neigh = np.unique(adj[idx])
        new = neigh[levels[neigh] == UNREACHED]
        levels[new] = depth
        frontier = new
    return levels


def bfs_distance(graph: CSRGraph, source: int, dest: int) -> int:
    """Hop distance between two vertices (-1 if disconnected)."""
    return int(bfs_levels(graph, source)[dest])


def sample_queries_by_distance(
    graph: CSRGraph,
    num_queries: int,
    seed: int = 0,
    min_distance: int = 1,
    max_distance: int | None = None,
) -> list[tuple[int, int, int]]:
    """Random ``(source, dest, distance)`` queries spanning path lengths.

    Mirrors the paper's methodology: "100 random BFS queries were executed
    ... and the query execution times are averaged based on the path length
    between the source and destination vertices."  Sampling draws random
    sources, computes their level sets, and picks destinations stratified
    across the available distances so every bucket is populated.
    """
    rng = np.random.default_rng(seed)
    n = graph.num_vertices
    queries: list[tuple[int, int, int]] = []
    attempts = 0
    while len(queries) < num_queries and attempts < num_queries * 10:
        attempts += 1
        source = int(rng.integers(0, n))
        if graph.degree(source) == 0:
            continue
        levels = bfs_levels(graph, source)
        reachable_max = int(levels.max())
        hi = min(reachable_max, max_distance) if max_distance else reachable_max
        if hi < min_distance:
            continue
        want = int(rng.integers(min_distance, hi + 1))
        candidates = np.flatnonzero(levels == want)
        if len(candidates) == 0:
            continue
        dest = int(candidates[rng.integers(0, len(candidates))])
        queries.append((source, dest, want))
    return queries
