"""Parallel out-of-core BFS (Algorithms 1 and 2) and supporting structures."""

from .direction import (
    BOTTOM_UP,
    TOP_DOWN,
    DirectionConfig,
    DirectionController,
    bottom_up_level,
)
from .failover import FaultTolerance, FTState, failover_rounds, route_to_replicas, try_expand
from .oocbfs import NOT_FOUND, BFSConfig, BFSRankResult, oocbfs_program
from .pipelined import pipelined_bfs_program
from .sequential import bfs_distance, bfs_levels, sample_queries_by_distance
from .visited import (
    INFINITY,
    ExternalVisited,
    InMemoryVisited,
    PinnedVisited,
    VisitedLevels,
)

__all__ = [
    "BFSConfig",
    "BFSRankResult",
    "BOTTOM_UP",
    "DirectionConfig",
    "DirectionController",
    "ExternalVisited",
    "FTState",
    "FaultTolerance",
    "INFINITY",
    "InMemoryVisited",
    "NOT_FOUND",
    "PinnedVisited",
    "TOP_DOWN",
    "VisitedLevels",
    "bottom_up_level",
    "failover_rounds",
    "route_to_replicas",
    "try_expand",
    "bfs_distance",
    "bfs_levels",
    "oocbfs_program",
    "pipelined_bfs_program",
    "sample_queries_by_distance",
]
