"""Parallel out-of-core BFS (Algorithms 1 and 2) and supporting structures."""

from .oocbfs import NOT_FOUND, BFSConfig, BFSRankResult, oocbfs_program
from .pipelined import pipelined_bfs_program
from .sequential import bfs_distance, bfs_levels, sample_queries_by_distance
from .visited import INFINITY, ExternalVisited, InMemoryVisited, VisitedLevels

__all__ = [
    "BFSConfig",
    "BFSRankResult",
    "ExternalVisited",
    "INFINITY",
    "InMemoryVisited",
    "NOT_FOUND",
    "VisitedLevels",
    "bfs_distance",
    "bfs_levels",
    "oocbfs_program",
    "pipelined_bfs_program",
    "sample_queries_by_distance",
]
