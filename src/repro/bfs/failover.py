"""Query-side fault tolerance: replica routing and fringe-shard failover.

MSSG's Algorithms 1 and 2 assume every back-end's disk answers every
expand.  This module relaxes that: with k-replica rotational declustering
(:class:`~repro.services.declustering.ReplicatedDeclusterer`) the partition
whose primary owner is rank ``q`` also lives on ranks ``q+1 .. q+k-1``
(mod p), so when a device dies mid-query the coordinator logic below
re-expands the dead rank's fringe shard on a surviving replica.

The protocol is collective and level-synchronous, which keeps the
simulation deterministic and deadlock-free:

1. every rank expands its shard through :func:`try_expand`, which converts
   a :class:`~repro.util.errors.DeviceFailedError` (or an expansion
   exceeding the per-attempt virtual-time timeout) into "this rank is dead,
   its shard is pending";
2. :func:`failover_rounds` then runs bounded retry rounds — each round is
   one allgather announcing deaths and pending shards, after which every
   rank deterministically computes which pending vertices it is the first
   surviving replica for, and re-expands them;
3. a shard whose whole replica chain is dead (or that outlives the retry
   budget) is *dropped*: the query degrades to a partial result, flagged on
   the rank result and ultimately on the ``QueryReport``.

Once a death is known, :func:`route_to_replicas` steers all further fringe
routing straight to the first surviving replica, so a failure costs one
retry round rather than one per level.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..util.errors import CorruptBlockError, DeviceFailedError
from ..util.longarray import LongArray

__all__ = [
    "FaultTolerance",
    "FTState",
    "try_expand",
    "route_to_replicas",
    "failover_rounds",
    "prune_known_dead_pending",
]

_EMPTY = np.empty(0, dtype=np.int64)


@dataclass(frozen=True)
class FaultTolerance:
    """Degraded-mode knobs carried on :class:`~repro.bfs.BFSConfig`.

    ``None`` in ``BFSConfig.ft`` disables the protocol entirely (the
    pre-replication code path, with zero extra communication).
    """

    #: Copies of each adjacency partition (must match ingestion-side
    #: replication; 1 means failures can only degrade, never fail over).
    replication: int = 1
    #: Failover rounds attempted per BFS level before degrading.
    max_retries: int = 2
    #: Per-attempt expand budget in virtual seconds; an attempt that costs
    #: more is treated like a device failure (straggler demotion).
    #: ``None`` disables the timeout.
    attempt_timeout: float | None = None
    #: Explicit per-primary holder chains (``chains[u]`` = ranks storing a
    #: copy of partition ``u``, in routing order).  ``None`` keeps the
    #: rotational ``{(u + j) % p : j < replication}`` shape; a rebalance
    #: pass installs the repaired, no-longer-rotational map here.
    chains: tuple[tuple[int, ...], ...] | None = None
    #: Ranks already known dead before the query starts (e.g. recorded by a
    #: rebalance pass).  Seeding them avoids the discovery round: nothing
    #: is ever routed to them, so an already-repaired cluster pays zero
    #: failover rounds.
    known_dead: frozenset = frozenset()


@dataclass
class FTState:
    """Per-rank fault bookkeeping for one BFS run."""

    cfg: FaultTolerance
    size: int
    #: Ranks known (cluster-wide) to no longer serve expansions.
    dead: set = field(default_factory=set)
    self_dead: bool = False
    device_failed: bool = False  # own device raised DeviceFailedError
    corrupt: bool = False  # own device returned a CRC-bad frame
    timed_out: bool = False  # own expand blew the per-attempt timeout
    failovers: int = 0  # shards this rank re-expanded for dead peers
    dropped: int = 0  # fringe vertices whose adjacency was lost
    partial: bool = False
    #: Lazily built padded ``(p, max_chain)`` matrix of ``cfg.chains``.
    _chain_arr: np.ndarray | None = field(default=None, repr=False)

    def __post_init__(self):
        self.dead.update(self.cfg.known_dead)

    def chain_of(self, primary: int) -> list[int]:
        """Holder ranks of ``primary``'s partition, in routing order."""
        if self.cfg.chains is not None:
            return list(self.cfg.chains[primary])
        return [(primary + j) % self.size for j in range(self.cfg.replication)]

    def chain_matrix(self) -> np.ndarray:
        """``cfg.chains`` as an int64 matrix padded with ``-1``."""
        if self._chain_arr is None:
            chains = self.cfg.chains
            width = max((len(c) for c in chains), default=0)
            arr = np.full((len(chains), max(width, 1)), -1, dtype=np.int64)
            for u, c in enumerate(chains):
                arr[u, : len(c)] = c
            self._chain_arr = arr
        return self._chain_arr


def try_expand(ctx, db, cfg, vertices, ft: FTState, prefetch: bool = False):
    """Expand ``vertices`` locally; ``None`` means this rank cannot serve.

    Converts an injected device failure — or an attempt that exceeds the
    per-attempt virtual-time budget — into the sticky ``self_dead`` state.
    A timed-out attempt's results are discarded (its virtual time stays
    charged: the work happened, the coordinator just stopped waiting),
    mirroring how a straggling disk looks indistinguishable from a dead one
    from the query's side.

    A :class:`CorruptBlockError` (CRC-bad frame, detected by the checksum
    layer) takes the same reroute path — the rank stops serving and its
    shard fails over to the next replica — but is flagged as ``corrupt``
    rather than ``device_failed``: the disk is alive and repairable, and
    the query layer schedules read-repair for it instead of declaring the
    back-end dead.
    """
    if ft.self_dead:
        return None
    start = ctx.clock.now
    out = LongArray()
    try:
        if prefetch:
            db.prefetch_fringe(vertices)
        db.expand_fringe(vertices, out)
    except DeviceFailedError as e:
        ft.self_dead = True
        if isinstance(e, CorruptBlockError):
            ft.corrupt = True
        else:
            ft.device_failed = True
        return None
    timeout = ft.cfg.attempt_timeout
    if timeout is not None and ctx.clock.now - start > timeout:
        ft.self_dead = True
        ft.timed_out = True
        return None
    return out.view()


def route_to_replicas(owners, ft: FTState) -> np.ndarray:
    """Map primary owners to the first surviving rank of each replica chain.

    Returns an int64 route array; ``-1`` marks vertices whose entire chain
    is dead (their adjacency is unreachable — the caller drops them and
    flags a partial result).  The chain is the rotational
    ``{owner + j (mod size) : j < replication}`` unless the config carries
    an explicit (e.g. rebalanced) chain map.
    """
    owners = np.asarray(owners, dtype=np.int64)
    if ft.cfg.chains is not None:
        return _route_via_chains(owners, ft)
    routes = owners.copy()
    if not ft.dead or not len(owners):
        return routes
    dead = np.fromiter(ft.dead, count=len(ft.dead), dtype=np.int64)
    down = np.isin(routes, dead)
    for j in range(1, ft.cfg.replication):
        if not down.any():
            return routes
        routes[down] = (owners[down] + j) % ft.size
        down = np.isin(routes, dead)
    routes[down] = -1
    return routes


def _route_via_chains(owners: np.ndarray, ft: FTState) -> np.ndarray:
    """First alive holder per owner under an explicit chain map."""
    if not len(owners):
        return owners.copy()
    cand = ft.chain_matrix()[owners]  # (n, max_chain) of holder ranks
    alive = cand >= 0
    if ft.dead:
        dead = np.fromiter(ft.dead, count=len(ft.dead), dtype=np.int64)
        alive &= ~np.isin(cand, dead)
    first = np.argmax(alive, axis=1)
    routes = cand[np.arange(len(owners)), first]
    routes[~alive.any(axis=1)] = -1
    return routes


def prune_known_dead_pending(pending, ft: FTState, rank: int, owner_of) -> np.ndarray:
    """Bootstrap-level shard pruning for ranks recorded dead up front.

    The bootstrap fringe ``{s}`` is held by *every* rank, so a rank seeded
    dead via ``known_dead`` has nothing to fail over at level 1: whichever
    alive holder stores the source's partition expanded the same fringe
    against its local copy already.  Only vertices whose whole chain is dead
    stay pending, so a truly unreachable source is still detected, dropped
    and flagged.  This is what makes an already-rebalanced cluster pay zero
    failover rounds.
    """
    if not len(pending) or rank not in ft.cfg.known_dead or owner_of is None:
        return pending
    routes = route_to_replicas(owner_of(pending), ft)
    return pending[routes == -1]


def failover_rounds(ctx, db, cfg, ft: FTState, pending, owner_of):
    """Collective per-level failover; returns neighbors recovered here.

    Every rank (healthy or dead) must call this at the same point of each
    level.  ``pending`` is this rank's unexpanded fringe shard (empty when
    healthy); ``owner_of`` maps vertices to primary owners, or ``None`` in
    broadcast mode (unknown mapping), where replicas have already expanded
    the full fringe against their copies and only coverage is checked.

    Each round costs one allgather.  The loop's control flow depends only
    on globally agreed data (the gathered posts and the shared round
    budget), so all ranks execute the same number of collectives.
    """
    comm = ctx.comm
    gathered = []
    rounds = 0
    pending = np.asarray(pending, dtype=np.int64)
    while True:
        posts = yield from comm.allgather((ft.self_dead, pending))
        for q, (is_dead, _) in enumerate(posts):
            if is_dead:
                ft.dead.add(q)
        shards = [
            (q, np.asarray(s, dtype=np.int64)) for q, (_, s) in enumerate(posts) if len(s)
        ]
        pending = _EMPTY
        if not shards:
            break
        if owner_of is None:
            # Broadcast mode: every rank expanded the full fringe already,
            # so a dead rank's shard is covered whenever any member of its
            # replica chain is alive; nothing needs re-sending.
            for q, shard in shards:
                alive = [r for r in ft.chain_of(q) if r not in ft.dead]
                if alive:
                    if comm.rank == alive[0]:
                        ft.failovers += 1
                else:
                    ft.dropped += len(shard)
                    ft.partial = True
            break
        if rounds >= ft.cfg.max_retries:
            # Retry budget exhausted: degrade instead of looping forever.
            for _, shard in shards:
                ft.dropped += len(shard)
            ft.partial = True
            break
        rounds += 1
        mine = []
        for _, shard in shards:
            routes = route_to_replicas(owner_of(shard), ft)
            mine.append(shard[routes == comm.rank])
            lost = int((routes == -1).sum())
            if lost:
                ft.dropped += lost
                ft.partial = True
        mine = np.concatenate(mine) if mine else _EMPTY
        if len(mine):
            ft.failovers += 1
            recovered = try_expand(ctx, db, cfg, mine, ft, prefetch=cfg.prefetch)
            if recovered is None:
                pending = mine  # this replica died too; next round re-routes
            elif len(recovered):
                gathered.append(recovered)
    return np.concatenate(gathered) if gathered else _EMPTY
