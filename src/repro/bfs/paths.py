"""Path-reconstructing parallel BFS.

The paper's motivating use case (ch. 1, after Kolda et al.) is
*relationship analysis*: not just "how far apart are these two entities"
but "show me the chain that connects them".  This variant of Algorithm 1
tracks a parent pointer for every vertex it settles and, once the
destination is settled, reconstructs the actual vertex chain.

Parents travel with the fringe exchange as ``(vertex, parent)`` pairs;
after the search, the scattered parent maps are merged (one entry per
visited vertex — the same memory class as the visited structure the paper
already replicates per node) and the path is walked backward from the
destination.  Unlike the distance-only algorithms, expansion here is
per-vertex so each discovered neighbor knows which fringe vertex produced
it, and termination triggers on the destination being *settled* rather
than merely sighted, which keeps every recorded parent minimal-level.
"""

from __future__ import annotations

import numpy as np

from ..graphdb.interface import GraphDB
from ..simcluster.cluster import RankContext
from .oocbfs import BFSConfig
from .visited import VisitedLevels

__all__ = ["path_bfs_program"]


def path_bfs_program(
    ctx: RankContext,
    db: GraphDB,
    cfg: BFSConfig,
    visited: VisitedLevels,
    owner_of=None,
):
    """Rank program: BFS with parent tracking; returns the path (or None).

    The returned path is ``[source, ..., dest]`` with ``len(path) - 1``
    equal to the hop distance; every rank returns the same value.
    """
    comm = ctx.comm
    size = comm.size
    rank = comm.rank
    if owner_of is None:
        owner_of = lambda vs: vs % size  # noqa: E731

    source, dest = int(cfg.source), int(cfg.dest)
    if source == dest:
        return [source]

    parents: dict[int, int] = {source: source}
    visited.mark(source, 0)
    fringe = np.array([source], dtype=np.int64)
    levcnt = 0
    found = False

    while not found:
        levcnt += 1
        # Per-vertex expansion keeps the (parent -> child) attribution.
        batch_seen: set[int] = set()
        pairs: list[tuple[int, int]] = []
        for v in fringe:
            v = int(v)
            for u in db.get_adjacency(v):
                u = int(u)
                if u not in batch_seen and not visited.is_visited(u):
                    batch_seen.add(u)
                    pairs.append((u, v))

        if cfg.owner_known:
            new = np.array([u for u, _ in pairs], dtype=np.int64)
            owners = owner_of(new) if len(new) else np.empty(0, dtype=np.int64)
            outgoing = [
                [pairs[i] for i in np.flatnonzero(owners == q)] for q in range(size)
            ]
            for i in np.flatnonzero(owners != rank):
                visited.mark(pairs[i][0], levcnt)
            received = yield from comm.alltoall(outgoing)
        else:
            received = yield from comm.allgather(pairs)

        fresh: list[int] = []
        settled_dest = False
        for chunk in received:
            for u, parent in chunk:
                if not visited.is_visited(u):
                    visited.mark(u, levcnt)
                    parents[u] = parent
                    fresh.append(u)
                    if u == dest:
                        settled_dest = True
        fringe = np.array(sorted(fresh), dtype=np.int64)

        found, total = yield from comm.allreduce(
            (settled_dest, len(fringe)), lambda a, b: (a[0] or b[0], a[1] + b[1])
        )
        if not found and (total == 0 or levcnt >= cfg.max_levels):
            return None

    # Merge the scattered parent maps and walk backward from dest.
    all_parents = yield from comm.allreduce(dict(parents), lambda a, b: {**a, **b})
    path = [dest]
    current = dest
    while current != source:
        current = all_parents[current]
        path.append(current)
        if len(path) > cfg.max_levels + 2:
            return None  # defensive: corrupt parent chain
    path.reverse()
    return path
